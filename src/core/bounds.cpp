#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/int_math.hpp"

namespace dapsp::core::bounds {

using util::ceil_div;
using util::isqrt_ceil_u128;
using util::u128;

std::uint64_t ceil_ln(std::uint64_t n) {
  if (n <= 2) return 1;
  return static_cast<std::uint64_t>(std::ceil(std::log(static_cast<double>(n))));
}

std::uint64_t ceil_log2(std::uint64_t n) {
  if (n <= 2) return 1;
  std::uint64_t bits = 0;
  for (std::uint64_t t = n - 1; t > 0; t >>= 1) ++bits;
  return bits;
}

std::uint64_t hk_ssp(std::uint64_t h, std::uint64_t k, std::uint64_t delta) {
  // 2*ceil(sqrt(h*k*delta)) + h + k, with the degenerate delta=0 case still
  // needing h + k + 1 rounds of hop-driven pipelining.
  const std::uint64_t core = 2 * isqrt_ceil_u128(u128{h} * k * delta);
  return core + h + k + 2;
}

std::uint64_t apsp_pipelined(std::uint64_t n, std::uint64_t delta) {
  return hk_ssp(n, n, delta);
}

std::uint64_t k_ssp_pipelined(std::uint64_t n, std::uint64_t k,
                              std::uint64_t delta) {
  return hk_ssp(n, k, delta);
}

std::uint64_t hk_ssp_custom_gamma(std::uint64_t h, std::uint64_t k,
                                  std::uint64_t delta, const GammaSq& gamma) {
  // Largest key value: ceil(delta*gamma) + h.  List capacity: k sources,
  // each with at most floor(h/gamma)+1 entries (Lemma II.11); h/gamma =
  // ceil(sqrt(h^2*den/num)).
  const std::uint64_t key_max =
      util::ceil_mul_sqrt(delta, gamma.num, gamma.den) + h;
  std::uint64_t per_source;
  if (gamma.num == 0) {
    per_source = h + 1;  // gamma=0: keys are hop counts; no Lemma II.11 bound
  } else {
    per_source = util::ceil_mul_sqrt(h, gamma.den, gamma.num) + 1;
  }
  return key_max + per_source * k + 2;
}

std::uint64_t short_range_congestion(std::uint64_t h) {
  return util::isqrt_ceil(h) + 1;
}

std::uint64_t short_range_dilation(std::uint64_t h, std::uint64_t delta) {
  return isqrt_ceil_u128(u128{h} * delta) + h + 2;
}

std::uint64_t blocker_set_size(std::uint64_t n, std::uint64_t h) {
  // Greedy set cover over at most n^2 paths, each of length h+1 vertices:
  // q <= ceil((n/h)) * (ln(n^2) + 1) elements, loosened to whole integers.
  const std::uint64_t cover = ceil_div(n, std::max<std::uint64_t>(h, 1));
  return cover * (2 * ceil_ln(n) + 1) + 1;
}

std::uint64_t descendant_update(std::uint64_t k, std::uint64_t h) {
  return k + h - 1;
}

std::uint64_t blocker_apsp(std::uint64_t n, std::uint64_t k, std::uint64_t q,
                           std::uint64_t h, std::uint64_t delta2h) {
  // Step 1 (CSSSP, 2h-hop pipelined): hk_ssp(2h, k, delta2h).
  // Step 2 (blocker selection): q iterations, each O(n) select + k+h updates.
  // Steps 3-4: per blocker 2n SSSP rounds + gather/broadcast of k values.
  const std::uint64_t step1 = hk_ssp(2 * h, k, delta2h);
  const std::uint64_t step2 = q * (2 * n + 2 * (k + h));
  const std::uint64_t step34 = q * (2 * n) + 3 * q * k + 4 * n;
  return step1 + step2 + step34;
}

std::uint64_t choose_h_for_weight(std::uint64_t n, std::uint64_t k,
                                  std::uint64_t w) {
  // h = n * (log n)^{1/2} / (W^{1/4} k^{1/4}) (Theorem I.2's balance point).
  const double val =
      static_cast<double>(n) * std::sqrt(static_cast<double>(ceil_log2(n))) /
      (std::pow(static_cast<double>(std::max<std::uint64_t>(w, 1)), 0.25) *
       std::pow(static_cast<double>(k), 0.25));
  const auto h = static_cast<std::uint64_t>(val);
  return std::clamp<std::uint64_t>(h, 1, n > 1 ? n - 1 : 1);
}

std::uint64_t choose_h_for_delta(std::uint64_t n, std::uint64_t k,
                                 std::uint64_t delta) {
  // Balance n^2 log n / h (blocker work with q = n log n / h) against
  // sqrt(h k Delta): h = (n^2 log n)^{2/3} / (k Delta)^{1/3}.
  const double num =
      std::pow(static_cast<double>(n) * static_cast<double>(n) *
                   static_cast<double>(ceil_log2(n)),
               2.0 / 3.0);
  const double den = std::pow(
      static_cast<double>(std::max<std::uint64_t>(k * std::max<std::uint64_t>(
                                                          delta, 1),
                                                  1)),
      1.0 / 3.0);
  const auto h = static_cast<std::uint64_t>(num / den);
  return std::clamp<std::uint64_t>(h, 1, n > 1 ? n - 1 : 1);
}

std::uint64_t agarwal_n32(std::uint64_t n) {
  const double v = std::pow(static_cast<double>(n), 1.5) *
                   std::sqrt(static_cast<double>(ceil_log2(n)));
  return static_cast<std::uint64_t>(std::ceil(v));
}

std::uint64_t approx_apsp(std::uint64_t n, double eps) {
  const double v =
      (static_cast<double>(n) / (eps * eps)) * static_cast<double>(ceil_log2(n));
  return static_cast<std::uint64_t>(std::ceil(v)) + 2 * n;
}

}  // namespace dapsp::core::bounds
