# Empty dependencies file for dapsp.
# This may be replaced when dependencies are built.
