// Immutable in-memory distance oracle built from a finished APSP run.
//
// The paper's algorithms end with every node holding per-source distances
// and last-edge (parent) pointers; until now the library printed those and
// threw them away.  `DistanceOracle` is the consumer-facing half: it
// flattens a full n-source run into a row-major distance matrix plus a
// next-hop table and answers dist / next-hop / full-path queries in O(1) /
// O(1) / O(path length) with no further graph traversal.  Oracles are
// immutable after construction, so any number of threads may query one
// concurrently without synchronization (the query service layers caching
// and metrics on top, see service/query_service.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "congest/metrics.hpp"
#include "graph/graph.hpp"
#include "obs/critpath.hpp"

namespace dapsp::service {

using graph::NodeId;
using graph::Weight;

/// Which algorithm the enum-dispatched factory runs to populate the oracle.
enum class Solver {
  kPipelined,  ///< Algorithm 1 APSP (Thm I.1 ii)
  kBlocker,    ///< Algorithm 3 APSP (Thm I.2/I.3)
  kScaled,     ///< multiplexed per-source Algorithm 2 (Sec. II-C)
  kApprox,     ///< (1+eps)-approx APSP (Thm I.5); distance-only oracle
  kReference,  ///< sequential Dijkstra sweep -- not a CONGEST run; the fast
               ///< local builder for serving large graphs and for tests
};

const char* solver_name(Solver s);

/// Parses "pipelined"/"blocker"/"scaled"/"approx"/"reference"; throws
/// std::invalid_argument otherwise.
Solver parse_solver(const std::string& word);

struct OracleBuildOptions {
  Solver solver = Solver::kPipelined;
  std::uint32_t h = 0;  ///< blocker hop parameter (0 = theorem balance)
  double eps = 0.5;     ///< approx quality
  /// Profile the build: record per-(node, round) work items and stamp the
  /// critical-path summary into the oracle's meta (surfaced through
  /// ServiceStats as `critpath`).  Ignored for kReference (no engine run)
  /// and when a process-global recorder is already installed -- that
  /// recorder owns the observation and its own export carries the analysis.
  bool critpath = false;
};

/// Provenance attached by the builders.
struct OracleMeta {
  std::string label;         ///< human-readable solver description
  bool exact = true;         ///< false for (1+eps)-approximate distances
  congest::RunStats stats;   ///< the producing run (zeroed for kReference)
  /// Critical-path summary of the producing build; empty() unless the
  /// build ran with OracleBuildOptions::critpath.
  obs::CritPathSummary critpath;
};

class DistanceOracle {
 public:
  DistanceOracle() = default;

  NodeId node_count() const noexcept { return n_; }
  /// False when distances are (1+eps)-approximate.
  bool exact() const noexcept { return exact_; }
  /// True when a next-hop table exists (every exact solver).  Approximate
  /// distances cannot certify which edges lie on shortest paths, so the
  /// approx oracle is distance-only.
  bool has_paths() const noexcept { return !next_.empty(); }
  const std::string& solver_label() const noexcept { return meta_.label; }
  /// Stats of the CONGEST run that produced the matrices (rounds, messages).
  const congest::RunStats& build_stats() const noexcept { return meta_.stats; }
  /// Bytes held by the distance + next-hop tables.
  std::size_t memory_bytes() const noexcept;

  /// Distance u -> v (kInfDist when unreachable).  Unchecked hot path: ids
  /// must be < node_count(); the query service validates untrusted input.
  Weight dist(NodeId u, NodeId v) const noexcept {
    return dist_[flat(u, v)];
  }

  /// First hop on a shortest path u -> v; kNoNode when u == v, v is
  /// unreachable, or the oracle is distance-only.  Unchecked ids.
  NodeId next_hop(NodeId u, NodeId v) const noexcept {
    return next_.empty() ? graph::kNoNode : next_[flat(u, v)];
  }

  /// Full node sequence u ... v following next hops; nullopt when v is
  /// unreachable, the oracle is distance-only, or ids are out of range.
  /// For u == v returns {u}.
  std::optional<std::vector<NodeId>> path(NodeId u, NodeId v) const;

  /// Row u of the distance table (all targets of one source).  The serving
  /// tier partitions oracles into vertex-range shards by copying/moving
  /// whole rows; exposing them avoids recomputing the closure per shard.
  std::span<const Weight> dist_row(NodeId u) const noexcept {
    return {dist_.data() + flat(u, 0), static_cast<std::size_t>(n_)};
  }
  /// Row u of the next-hop table; empty span for distance-only oracles.
  std::span<const NodeId> next_row(NodeId u) const noexcept {
    if (next_.empty()) return {};
    return {next_.data() + flat(u, 0), static_cast<std::size_t>(n_)};
  }
  const OracleMeta& meta() const noexcept { return meta_; }

 private:
  friend DistanceOracle build_oracle(const graph::Graph& g,
                                     const OracleBuildOptions& opts);
  friend DistanceOracle make_oracle(
      const std::vector<std::vector<Weight>>& dist,
      const std::vector<std::vector<NodeId>>& parent, OracleMeta meta);
  friend DistanceOracle make_oracle_from_distances(
      const graph::Graph& g, const std::vector<std::vector<Weight>>& dist,
      const std::vector<std::vector<std::uint32_t>>& hops, OracleMeta meta);
  friend DistanceOracle make_oracle_from_rows(NodeId n,
                                              std::vector<Weight> dist,
                                              std::vector<NodeId> next,
                                              OracleMeta meta);

  std::size_t flat(NodeId u, NodeId v) const noexcept {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  NodeId n_ = 0;
  bool exact_ = true;
  OracleMeta meta_;
  std::vector<Weight> dist_;  // row-major [u*n + v]
  std::vector<NodeId> next_;  // row-major; empty for distance-only oracles
};

/// Flattens a full APSP result (dist[s][v] with sources 0..n-1 in order)
/// into an oracle.  `parent` (parent[s][v] = predecessor of v on the s-path)
/// supplies the next-hop table; pass an empty vector for a distance-only
/// oracle.  Throws std::logic_error on non-square input or parent chains
/// that do not reach their source (corrupt run).
DistanceOracle make_oracle(const std::vector<std::vector<Weight>>& dist,
                           const std::vector<std::vector<NodeId>>& parent,
                           OracleMeta meta);

/// Fills next_row[v] (first hop s -> v) for one source from its distance and
/// parent rows; `next_row` must hold n entries initialized to kNoNode.  This
/// is the per-source routine make_oracle runs for every row, exposed so the
/// sharded serving tier (serve/sharded_oracle.*) can fill shard rows
/// directly -- bit-identical to the flat construction -- without ever
/// materializing the full matrix.  Throws std::logic_error on parent chains
/// that cycle or fail to reach their source.
void next_hops_from_parents(NodeId s, NodeId n,
                            std::span<const Weight> dist_row,
                            std::span<const NodeId> parent_row,
                            NodeId* next_row);

/// Same, deriving next hops from the distance matrix over g's arcs: the
/// first hop toward v is the out-neighbor w with w(u,w) + dist(w,v) =
/// dist(u,v), ties broken by fewer remaining hops (progress across
/// zero-weight plateaus) then smaller id.  Used for solvers that report
/// distances + hop counts but no parent pointers (scaled).
DistanceOracle make_oracle_from_distances(
    const graph::Graph& g, const std::vector<std::vector<Weight>>& dist,
    const std::vector<std::vector<std::uint32_t>>& hops, OracleMeta meta);

/// Adopts already-flattened row-major tables without recomputation -- the
/// socket coordinator's reassembly path, where workers ship finished rows.
/// `dist` must hold exactly n*n entries; `next` holds n*n entries or is
/// empty for a distance-only oracle.  Throws std::logic_error on size
/// mismatch.  No parent-chain revalidation happens here: the rows come from
/// a builder that already validated them, and the coordinator's digest
/// checks guard the transport.
DistanceOracle make_oracle_from_rows(NodeId n, std::vector<Weight> dist,
                                     std::vector<NodeId> next,
                                     OracleMeta meta);

/// Enum-dispatched factory: runs the chosen solver on g and builds the
/// oracle from its output.
///
/// Fault safety: when a process-global fault plan is active
/// (congest::Engine::set_global_fault_plan) and the solver ran on the
/// engine, the builder cross-checks the result against BFS reachability on
/// g and throws std::runtime_error if any truly reachable pair came out
/// unreachable -- e.g. a crash-stopped cut vertex partitioned the run.  A
/// faulted build either serves correct reachability or fails loudly; it
/// never silently serves kInfDist for a connected pair.
DistanceOracle build_oracle(const graph::Graph& g,
                            const OracleBuildOptions& opts = {});

}  // namespace dapsp::service
