#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace dapsp::util {

struct ThreadPool::Batch {
  std::size_t n = 0;
  void* ctx = nullptr;
  RawFn fn = nullptr;
  std::atomic<std::size_t> cursor{0};
  std::size_t chunk = 1;
  std::size_t finished_workers = 0;  // guarded by pool mutex
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  // The calling thread participates in every batch, so spawn one fewer.
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::pin_threads() {
  if (pinned_) return;
  pinned_ = true;
#ifdef __linux__
  const unsigned hc = std::thread::hardware_concurrency();
  const unsigned cpus = hc == 0 ? 1 : hc;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    cpu_set_t set;
    CPU_ZERO(&set);
    // Leave CPU 0 to the (unpinned) caller when there is room.
    CPU_SET(static_cast<int>((i + 1) % cpus), &set);
    // Best effort: an affinity failure (e.g. restricted cpuset) is harmless.
    (void)pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set),
                                 &set);
  }
#endif
}

void ThreadPool::parallel_for_raw(std::size_t n, void* ctx, RawFn fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  // Only one batch can own the workers at a time (they key off a single
  // `batch_` pointer).  A second concurrent submitter runs its batch inline
  // instead of queueing: concurrent callers -- e.g. many serving threads
  // issuing query batches on one pool -- already are the parallelism, and
  // blocking them behind each other would serialize exactly the workload
  // that most needs to overlap.
  std::unique_lock submit(submit_mutex_, std::try_to_lock);
  if (!submit.owns_lock()) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  Batch batch;
  batch.n = n;
  batch.ctx = ctx;
  batch.fn = fn;
  batch.chunk = std::max<std::size_t>(1, n / (thread_count() * 8));
  {
    std::lock_guard lock(mutex_);
    batch_ = &batch;
    ++generation_;  // each batch gets a fresh generation; workers key off it
  }
  work_cv_.notify_all();

  // The caller works too.
  while (true) {
    const std::size_t start = batch.cursor.fetch_add(batch.chunk);
    if (start >= n) break;
    const std::size_t end = std::min(n, start + batch.chunk);
    for (std::size_t i = start; i < end; ++i) fn(ctx, i);
  }

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return batch.finished_workers == workers_.size(); });
  batch_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
    }
    while (true) {
      const std::size_t start = batch->cursor.fetch_add(batch->chunk);
      if (start >= batch->n) break;
      const std::size_t end = std::min(batch->n, start + batch->chunk);
      for (std::size_t i = start; i < end; ++i) batch->fn(batch->ctx, i);
    }
    {
      std::lock_guard lock(mutex_);
      ++batch->finished_workers;
      if (batch->finished_workers == workers_.size()) done_cv_.notify_one();
    }
  }
}

}  // namespace dapsp::util
