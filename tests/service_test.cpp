// Tests for the distance-oracle service: oracle correctness against the
// sequential Dijkstra oracle (including zero-weight-edge graphs, the paper's
// distinguishing capability), query-service thread determinism, the path
// cache, the text/JSON protocol, and the stats counters.
#include <gtest/gtest.h>

#include <sstream>

#include "core/paths.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "service/query_service.hpp"
#include "seq/dijkstra.hpp"

namespace dapsp::service {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

/// Path must start at u, end at v, follow real arcs, and cost exactly
/// dist(u, v).
void expect_valid_path(const Graph& g, const DistanceOracle& o, NodeId u,
                       NodeId v) {
  const auto p = o.path(u, v);
  ASSERT_TRUE(p.has_value()) << u << "->" << v;
  EXPECT_EQ(p->front(), u);
  EXPECT_EQ(p->back(), v);
  const auto w = core::path_weight(g, *p);
  ASSERT_TRUE(w.has_value()) << "path uses a non-existent arc " << u << "->"
                             << v;
  EXPECT_EQ(*w, o.dist(u, v)) << u << "->" << v;
}

void expect_matches_dijkstra(const Graph& g, const DistanceOracle& o) {
  const NodeId n = g.node_count();
  ASSERT_EQ(o.node_count(), n);
  for (NodeId u = 0; u < n; ++u) {
    const auto dj = seq::dijkstra(g, u);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(o.dist(u, v), dj.dist[v]) << u << "->" << v;
      if (u == v) continue;
      if (dj.dist[v] == kInfDist) {
        EXPECT_EQ(o.next_hop(u, v), kNoNode);
        EXPECT_FALSE(o.path(u, v).has_value());
      } else {
        expect_valid_path(g, o, u, v);
      }
    }
  }
}

TEST(Oracle, MatchesDijkstraOnRandomZeroWeightGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(16, 0.2, {0, 7, 0.35}, 5000 + seed);
    for (const Solver s : {Solver::kPipelined, Solver::kBlocker,
                           Solver::kScaled, Solver::kReference}) {
      SCOPED_TRACE(std::string("solver=") + solver_name(s) +
                   " seed=" + std::to_string(seed));
      const DistanceOracle o = build_oracle(g, {s, 0, 0.5});
      EXPECT_TRUE(o.exact());
      EXPECT_TRUE(o.has_paths());
      expect_matches_dijkstra(g, o);
    }
  }
}

TEST(Oracle, ZeroWeightPlateauPathsTerminate) {
  // A zero-weight clique plus a weighted tail: next hops across the plateau
  // must make hop progress, not cycle.
  GraphBuilder b(6, /*directed=*/false);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) b.add_edge(u, v, 0);
  }
  b.add_edge(4, 5, 3);
  const Graph g = std::move(b).build();
  for (const Solver s :
       {Solver::kPipelined, Solver::kBlocker, Solver::kReference}) {
    SCOPED_TRACE(solver_name(s));
    const DistanceOracle o = build_oracle(g, {s, 0, 0.5});
    expect_matches_dijkstra(g, o);
  }
}

TEST(Oracle, BlockerParentsOnZeroHeavyGraphRegression) {
  // Regression: the blocker parent fix-up used to re-derive parents from
  // distance equality alone, which let two equal-distance nodes joined by a
  // zero-weight edge adopt each other (a parent 2-cycle).  This graph
  // triggered it.
  const Graph g = graph::erdos_renyi(32, 0.15, {0, 6, 0.2}, 7);
  const DistanceOracle o = build_oracle(g, {Solver::kBlocker, 0, 0.5});
  expect_matches_dijkstra(g, o);
}

TEST(Oracle, DirectedGraphs) {
  const Graph g = graph::cycle(7, {1, 4, 0.0}, 31, /*directed=*/true);
  const DistanceOracle o = build_oracle(g, {Solver::kPipelined, 0, 0.5});
  expect_matches_dijkstra(g, o);
}

TEST(Oracle, UnreachablePairs) {
  GraphBuilder b(5, /*directed=*/false);
  b.add_edge(0, 1, 2).add_edge(1, 2, 2).add_edge(3, 4, 1);
  const Graph g = std::move(b).build();
  const DistanceOracle o = build_oracle(g, {Solver::kReference, 0, 0.5});
  EXPECT_EQ(o.dist(0, 4), kInfDist);
  EXPECT_EQ(o.next_hop(0, 4), kNoNode);
  EXPECT_FALSE(o.path(0, 4).has_value());
  expect_valid_path(g, o, 3, 4);
}

TEST(Oracle, SelfPathIsTrivial) {
  const Graph g = graph::path(4, {1, 1, 0.0}, 1);
  const DistanceOracle o = build_oracle(g, {Solver::kReference, 0, 0.5});
  const auto p = o.path(2, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, std::vector<NodeId>{2});
  EXPECT_EQ(o.dist(2, 2), 0);
}

TEST(Oracle, ApproxIsDistanceOnlyWithinRatio) {
  const double eps = 0.5;
  const Graph g = graph::erdos_renyi(14, 0.25, {0, 6, 0.3}, 77);
  const DistanceOracle o = build_oracle(g, {Solver::kApprox, 0, eps});
  EXPECT_FALSE(o.exact());
  EXPECT_FALSE(o.has_paths());
  EXPECT_EQ(o.next_hop(0, 1), kNoNode);
  EXPECT_FALSE(o.path(0, 1).has_value());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto dj = seq::dijkstra(g, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dj.dist[v] == kInfDist) {
        EXPECT_EQ(o.dist(u, v), kInfDist);
        continue;
      }
      EXPECT_GE(o.dist(u, v), dj.dist[v]);
      EXPECT_LE(static_cast<double>(o.dist(u, v)),
                (1.0 + eps) * static_cast<double>(dj.dist[v]) + 1e-9);
    }
  }
}

TEST(Oracle, MakeOracleRejectsBadInput) {
  EXPECT_THROW(make_oracle({}, {}, {"x", true, {}, {}}), std::logic_error);
  EXPECT_THROW(make_oracle({{0, 1}, {1}}, {}, {"x", true, {}, {}}),
               std::logic_error);
  // Parent 2-cycle must be detected, not looped on.
  std::vector<std::vector<Weight>> dist{{0, 1, 1}, {1, 0, 0}, {1, 0, 0}};
  std::vector<std::vector<NodeId>> parent{
      {kNoNode, 2, 1}, {2, kNoNode, 0}, {1, 0, kNoNode}};
  EXPECT_THROW(make_oracle(dist, parent, {"x", true, {}, {}}), std::logic_error);
}

// ---------------------------------------------------------------------------

std::vector<Query> mixed_batch(NodeId n, std::size_t count) {
  std::vector<Query> qs(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs[i].type = static_cast<QueryType>(i % kQueryTypeCount);
    qs[i].u = static_cast<NodeId>((i * 7) % n);
    qs[i].v = static_cast<NodeId>((i * 13 + 3) % n);
  }
  return qs;
}

TEST(QueryService, BatchedResultsBitIdenticalAcrossThreadCounts) {
  const Graph g = graph::erdos_renyi(24, 0.2, {0, 5, 0.3}, 99);
  const DistanceOracle o = build_oracle(g, {Solver::kReference, 0, 0.5});
  const auto batch = mixed_batch(24, 2000);

  QueryServiceConfig one;
  one.threads = 1;
  const QueryService svc1(o, one);
  QueryServiceConfig many;
  many.threads = 4;
  const QueryService svc4(o, many);

  const auto r1 = svc1.query_batch(batch);
  const auto r4 = svc4.query_batch(batch);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i], r4[i]) << "query " << i;
  }
}

TEST(QueryService, ValidatesIdsAndUnsupportedQueries) {
  const Graph g = graph::path(4, {1, 2, 0.0}, 3);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  const auto bad = svc.query({QueryType::kDist, 0, 99});
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("out of range"), std::string::npos);

  const QueryService approx(build_oracle(g, {Solver::kApprox, 0, 0.5}));
  const auto unsupported = approx.query({QueryType::kPath, 0, 3});
  EXPECT_FALSE(unsupported.ok);
  EXPECT_NE(unsupported.error.find("distance-only"), std::string::npos);
  EXPECT_EQ(approx.stats().total_errors(), 1u);
}

TEST(QueryService, PathCacheHitsAndEvictions) {
  const Graph g = graph::erdos_renyi(16, 0.25, {1, 5, 0.0}, 11);
  QueryServiceConfig cfg;
  cfg.threads = 1;
  cfg.path_cache_capacity = 2;
  cfg.cache_shards = 1;
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}), cfg);

  const Query q{QueryType::kPath, 0, 5};
  const auto first = svc.query(q);
  const auto second = svc.query(q);
  EXPECT_EQ(first, second);
  ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_evictions, 0u);

  // Two more distinct pairs overflow capacity 2 -> one eviction, and the
  // evicted entry misses again.
  (void)svc.query({QueryType::kPath, 0, 6});
  (void)svc.query({QueryType::kPath, 0, 7});
  st = svc.stats();
  EXPECT_EQ(st.cache_evictions, 1u);
  EXPECT_EQ(svc.query(q).path, first.path);  // still correct either way
}

TEST(QueryService, StatsCountersPerType) {
  const Graph g = graph::path(6, {1, 3, 0.0}, 5);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  (void)svc.query({QueryType::kDist, 0, 5});
  (void)svc.query({QueryType::kDist, 5, 0});
  (void)svc.query({QueryType::kNextHop, 0, 5});
  (void)svc.query({QueryType::kPath, 0, 5});
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.of(QueryType::kDist).count(), 2u);
  EXPECT_EQ(st.of(QueryType::kNextHop).count(), 1u);
  EXPECT_EQ(st.of(QueryType::kPath).count(), 1u);
  EXPECT_EQ(st.total_queries(), 4u);
  EXPECT_EQ(st.total_errors(), 0u);
  EXPECT_GT(st.of(QueryType::kPath).total_ns(), 0u);
  const std::string s = st.summary();
  EXPECT_NE(s.find("queries=4"), std::string::npos);
  EXPECT_NE(s.find("dist[n=2"), std::string::npos);
}

TEST(QueryService, ProfiledBuildSurfacesCritpathInStats) {
  const Graph g = graph::path(24, {1, 3, 0.0}, 5);
  const DistanceOracle o =
      build_oracle(g, {Solver::kPipelined, 0, 0.5, /*critpath=*/true});
  ASSERT_FALSE(o.meta().critpath.empty());
  EXPECT_GT(o.meta().critpath.chain_len, 0u);
  EXPECT_GT(o.meta().critpath.total_ns, 0u);

  const QueryService svc(build_oracle(g, {Solver::kPipelined, 0, 0.5, true}));
  const ServiceStats st = svc.stats();
  EXPECT_FALSE(st.last_build_critpath.empty());
  EXPECT_NE(st.summary().find("critpath[runs="), std::string::npos);
  std::ostringstream os;
  obs::JsonWriter w(os);
  st.write_json(w);
  EXPECT_TRUE(obs::json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"critpath\""), std::string::npos);

  // A reference build has no engine run to profile: the flag is a no-op.
  const DistanceOracle ref =
      build_oracle(g, {Solver::kReference, 0, 0.5, true});
  EXPECT_TRUE(ref.meta().critpath.empty());
}

TEST(QueryService, StatsCompose) {
  ServiceStats a, b;
  a.of(QueryType::kDist).latency.record(50);
  a.of(QueryType::kDist).latency.record_n(105, 9);
  a.of(QueryType::kDist).errors = 1;
  a.of(QueryType::kDist).error_ns = 400;
  a.cache_hits = 3;
  b.of(QueryType::kDist).latency.record(20);
  b.of(QueryType::kDist).latency.record_n(120, 3);
  b.of(QueryType::kDist).latency.record(300);
  b.cache_misses = 2;
  b.batches = 1;
  a += b;
  EXPECT_EQ(a.of(QueryType::kDist).count(), 15u);
  EXPECT_EQ(a.of(QueryType::kDist).errors, 1u);
  EXPECT_EQ(a.of(QueryType::kDist).error_ns, 400u);
  EXPECT_EQ(a.of(QueryType::kDist).total_ns(), 50u + 9 * 105u + 20u +
                                                   3 * 120u + 300u);
  EXPECT_EQ(a.of(QueryType::kDist).min_ns(), 20u);
  EXPECT_EQ(a.of(QueryType::kDist).max_ns(), 300u);
  EXPECT_EQ(a.cache_hits, 3u);
  EXPECT_EQ(a.cache_misses, 2u);
  EXPECT_EQ(a.batches, 1u);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate(), 0.6);
}

TEST(QueryService, ErrorTimeDoesNotInflateLatency) {
  // Regression: failed queries' wall-clock used to land in total_ns without
  // a matching count, inflating mean_ns whenever errors occurred.
  const Graph g = graph::path(4, {1, 2, 0.0}, 8);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  (void)svc.query({QueryType::kDist, 0, 3});
  for (int i = 0; i < 50; ++i) {
    (void)svc.query({QueryType::kDist, 0, 99});  // out of range -> error
  }
  const ServiceStats st = svc.stats();
  const auto& dist = st.of(QueryType::kDist);
  EXPECT_EQ(dist.count(), 1u);
  EXPECT_EQ(dist.errors, 50u);
  // Exactly the one ok sample: mean == total == max, errors untangled.
  EXPECT_DOUBLE_EQ(dist.mean_ns(), static_cast<double>(dist.total_ns()));
  EXPECT_EQ(dist.max_ns(), dist.total_ns());
  EXPECT_GT(dist.error_ns, 0u);
}

TEST(QueryService, EmptyStatsRenderAsZeros) {
  // Regression: min_ns used to be a UINT64_MAX sentinel that leaked into
  // snapshots of types that never ran.
  const Graph g = graph::path(3, {1, 1, 0.0}, 9);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  const ServiceStats st = svc.stats();
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    const auto& t = st.per_type[i];
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.min_ns(), 0u);
    EXPECT_EQ(t.max_ns(), 0u);
    EXPECT_EQ(t.mean_ns(), 0.0);
    EXPECT_EQ(t.p99_ns(), 0u);
  }
  EXPECT_EQ(st.summary().find("18446744073709551615"), std::string::npos);
}

TEST(QueryService, LatencyQuantilesExposed) {
  const Graph g = graph::erdos_renyi(12, 0.3, {1, 4, 0.0}, 21);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  for (int i = 0; i < 200; ++i) {
    (void)svc.query({QueryType::kDist, 0, static_cast<NodeId>(i % 12)});
  }
  const ServiceStats st = svc.stats();
  const auto& dist = st.of(QueryType::kDist);
  EXPECT_EQ(dist.count(), 200u);
  EXPECT_LE(dist.min_ns(), dist.p50_ns());
  EXPECT_LE(dist.p50_ns(), dist.p90_ns());
  EXPECT_LE(dist.p90_ns(), dist.p99_ns());
  EXPECT_LE(dist.p99_ns(), dist.max_ns());
}

// ---------------------------------------------------------------------------

TEST(Protocol, ParseQuery) {
  std::string err;
  const auto q = QueryService::parse_query("path 3 9", &err);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, QueryType::kPath);
  EXPECT_EQ(q->u, 3u);
  EXPECT_EQ(q->v, 9u);
  EXPECT_TRUE(QueryService::parse_query("dist  0\t7", &err).has_value());

  EXPECT_FALSE(QueryService::parse_query("", &err).has_value());
  EXPECT_FALSE(QueryService::parse_query("dist 1", &err).has_value());
  EXPECT_FALSE(QueryService::parse_query("dist 1 2 3", &err).has_value());
  EXPECT_FALSE(QueryService::parse_query("hop 1 2", &err).has_value());
  EXPECT_NE(err.find("unknown query type"), std::string::npos);
  EXPECT_FALSE(QueryService::parse_query("dist -1 2", &err).has_value());
  EXPECT_FALSE(QueryService::parse_query("dist a b", &err).has_value());
}

TEST(Protocol, ServeStreamTextAndJson) {
  const Graph g = graph::path(5, {2, 2, 0.0}, 1);  // 0-1-2-3-4, all weight 2
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));

  std::istringstream in(
      "# comment\n\ndist 0 4\nnext 0 4\npath 0 4\nnope 1 2\nquit\ndist 0 1\n");
  std::ostringstream out;
  const int malformed = svc.serve_stream(in, out, /*json=*/false);
  EXPECT_EQ(malformed, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("dist 0 4 = 8"), std::string::npos);
  EXPECT_NE(text.find("next 0 4 = 1 (dist 8)"), std::string::npos);
  EXPECT_NE(text.find("path 0 4 = 0 1 2 3 4 (dist 8, 4 hops)"),
            std::string::npos);
  EXPECT_NE(text.find("error:"), std::string::npos);
  // "quit" stops the stream: the trailing query is never answered.
  EXPECT_EQ(text.find("dist 0 1"), std::string::npos);

  std::istringstream jin("path 0 2\ndist 2 0\n");
  std::ostringstream jout;
  EXPECT_EQ(svc.serve_stream(jin, jout, /*json=*/true), 0);
  EXPECT_EQ(jout.str(),
            "{\"type\":\"path\",\"u\":0,\"v\":2,\"ok\":true,\"dist\":4,"
            "\"path\":[0,1,2]}\n"
            "{\"type\":\"dist\",\"u\":2,\"v\":0,\"ok\":true,\"dist\":4}\n");
}

TEST(Protocol, JsonErrorLinesEscapeUserInput) {
  // Regression: the unknown-token error echoes raw user input; a quote or
  // backslash in it used to break the JSONL stream.
  const Graph g = graph::path(3, {1, 1, 0.0}, 2);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  std::istringstream in(
      "evil\" 0 1\n"
      "back\\slash 0 1\n"
      "\"quoted\" 1 2\n");
  std::ostringstream out;
  EXPECT_EQ(svc.serve_stream(in, out, /*json=*/true), 3);
  EXPECT_TRUE(obs::jsonl_invalid_lines(out.str()).empty()) << out.str();
  EXPECT_NE(out.str().find("evil\\\""), std::string::npos);
}

TEST(Protocol, ServeJsonFuzzEveryLineParses) {
  // Every JSON-mode response line must parse, no matter how hostile the
  // input: quotes, backslashes, control bytes, huge tokens, stats requests
  // interleaved with garbage.
  const Graph g = graph::erdos_renyi(8, 0.4, {1, 3, 0.0}, 12);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  std::string input;
  const std::string nasty[] = {
      "dist 0 1",
      "path 0 7",
      "dist 0 999",
      "\"\" \"\" \"\"",
      "d\"ist 0 1",
      "\\ 0 1",
      "dist \\\" 2",
      "{\"json\":true} 0 1",
      "stats",
      std::string(300, '"') + " 1 2",
      "next 0 \x01\x02",
      "path x y",
      "stats",
  };
  for (const std::string& line : nasty) input += line + "\n";
  std::istringstream in(input);
  std::ostringstream out;
  (void)svc.serve_stream(in, out, /*json=*/true);
  EXPECT_TRUE(obs::jsonl_invalid_lines(out.str()).empty()) << out.str();
}

TEST(Protocol, ServeJsonStatsLineIsStructured) {
  const Graph g = graph::path(4, {1, 2, 0.0}, 6);
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  std::istringstream in("dist 0 3\ndist 0 99\nstats\n");
  std::ostringstream out;
  EXPECT_EQ(svc.serve_stream(in, out, /*json=*/true), 0);
  const std::string text = out.str();
  EXPECT_TRUE(obs::jsonl_invalid_lines(text).empty()) << text;
  // The stats line is a JSON object, not a stringified summary.
  const auto pos = text.find("{\"stats\":{");
  ASSERT_NE(pos, std::string::npos) << text;
  EXPECT_NE(text.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_NE(text.find("\"errors\":1"), std::string::npos);
}

TEST(Protocol, UnreachableRendering) {
  GraphBuilder b(3, /*directed=*/false);
  b.add_edge(0, 1, 1);
  const Graph g = std::move(b).build();
  const QueryService svc(build_oracle(g, {Solver::kReference, 0, 0.5}));
  std::ostringstream text;
  QueryService::write_result_text(svc.query({QueryType::kPath, 0, 2}), text);
  EXPECT_EQ(text.str(), "path 0 2 = unreachable\n");
  std::ostringstream json;
  QueryService::write_result_json(svc.query({QueryType::kDist, 0, 2}), json);
  EXPECT_EQ(json.str(),
            "{\"type\":\"dist\",\"u\":0,\"v\":2,\"ok\":true,\"dist\":null}\n");
}

}  // namespace
}  // namespace dapsp::service
