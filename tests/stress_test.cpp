// Larger-scale runs: the theorem bounds and exactness must hold beyond the
// toy sizes the unit tests use.  Kept under ~2 seconds total.
#include <gtest/gtest.h>

#include "core/approx_apsp.hpp"
#include "core/blocker_apsp.hpp"
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "seq/dijkstra.hpp"

namespace dapsp {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(Stress, PipelinedApspN96) {
  const Graph g = graph::erdos_renyi(96, 0.06, {0, 10, 0.25}, 4242);
  const graph::Weight delta = graph::max_finite_distance(g);
  const auto res = core::pipelined_apsp(g, delta);
  EXPECT_LE(res.settle_round,
            core::bounds::apsp_pipelined(96, static_cast<std::uint64_t>(delta)));
  EXPECT_EQ(res.stats.max_link_congestion, 1u);
  // Spot-check a stripe of sources against the oracle.
  for (NodeId s = 0; s < 96; s += 13) {
    const auto dj = seq::dijkstra(g, s);
    for (NodeId v = 0; v < 96; ++v) {
      ASSERT_EQ(res.dist[s][v], dj.dist[v]) << s << "->" << v;
    }
  }
}

TEST(Stress, PipelinedApspN128ZeroHeavy) {
  const Graph g = graph::erdos_renyi(128, 0.045, {0, 4, 0.5}, 4343);
  const graph::Weight delta = graph::max_finite_distance(g);
  const auto res = core::pipelined_apsp(g, delta);
  EXPECT_LE(res.settle_round,
            core::bounds::apsp_pipelined(128, static_cast<std::uint64_t>(delta)));
  for (NodeId s = 0; s < 128; s += 17) {
    const auto dj = seq::dijkstra(g, s);
    for (NodeId v = 0; v < 128; ++v) {
      ASSERT_EQ(res.dist[s][v], dj.dist[v]) << s << "->" << v;
    }
  }
}

TEST(Stress, BlockerApspN48) {
  const Graph g = graph::erdos_renyi(48, 0.08, {0, 6, 0.3}, 4444);
  core::BlockerApspParams p;  // auto h
  const auto res = core::blocker_apsp(g, p);
  EXPECT_LE(res.stats.rounds, res.theoretical_bound);
  for (NodeId s = 0; s < 48; s += 7) {
    const auto dj = seq::dijkstra(g, s);
    for (NodeId v = 0; v < 48; ++v) {
      ASSERT_EQ(res.dist[s][v], dj.dist[v]) << s << "->" << v;
    }
  }
}

TEST(Stress, ApproxApspN40) {
  const Graph g = graph::erdos_renyi(40, 0.1, {0, 12, 0.4}, 4545);
  core::ApproxApspParams p;
  p.eps = 0.5;
  const auto res = core::approx_apsp(g, p);
  EXPECT_LE(res.stats.rounds, res.implementation_bound);
  for (NodeId s = 0; s < 40; s += 9) {
    const auto dj = seq::dijkstra(g, s);
    for (NodeId v = 0; v < 40; ++v) {
      if (dj.dist[v] == graph::kInfDist) {
        EXPECT_EQ(res.dist[s][v], graph::kInfDist);
      } else if (dj.dist[v] == 0) {
        EXPECT_EQ(res.dist[s][v], 0);
      } else {
        EXPECT_GE(res.dist[s][v], dj.dist[v]);
        EXPECT_LE(static_cast<double>(res.dist[s][v]),
                  1.5 * static_cast<double>(dj.dist[v]));
      }
    }
  }
}

TEST(Stress, KsspLargeSourceSet) {
  const Graph g = graph::barabasi_albert(80, 3, {0, 7, 0.3}, 4646);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 80; v += 2) sources.push_back(v);
  const graph::Weight delta = graph::max_finite_distance(g);
  const auto res = core::pipelined_kssp_full(g, sources, delta);
  EXPECT_LE(res.settle_round,
            core::bounds::k_ssp_pipelined(80, sources.size(),
                                          static_cast<std::uint64_t>(delta)));
  for (std::size_t i = 0; i < res.sources.size(); i += 8) {
    const auto dj = seq::dijkstra(g, res.sources[i]);
    for (NodeId v = 0; v < 80; ++v) {
      ASSERT_EQ(res.dist[i][v], dj.dist[v]);
    }
  }
}

}  // namespace
}  // namespace dapsp
