// Thread-safe query front-end over hot-swappable oracle snapshots.
//
// The service answers three query types (dist, next-hop, full path) for
// untrusted callers: ids are validated, unsupported queries are reported as
// errors instead of UB, and every query is counted in service/stats.hpp.
// Queries execute against an `OracleSnapshot` (flat or sharded, see
// service/snapshot.hpp) behind a shared_ptr slot: `swap_snapshot` publishes
// a replacement under live traffic, and each query pins the snapshot it
// started on by copying the shared_ptr (a mutex held only for the pointer
// copy -- never for the duration of a query, and never for a rebuild).  The
// old snapshot is retired when the last in-flight query drops its
// reference.  Batched
// queries fan out over a private util::ThreadPool and answer from a single
// snapshot, so results[i] always answers queries[i] bit-identically
// regardless of thread count and a batch never mixes epochs.
//
// Reconstructed paths go through a sharded LRU cache whose entries are
// stamped with the snapshot epoch: after a swap a stale cached path can
// never be served (point lookups never touch the cache -- a matrix read is
// cheaper than any cache).  A line-oriented text protocol ("dist 0 5",
// "batch 3", ...) with text or JSONL responses makes the service scriptable
// from the CLI; serve/wire.hpp adds a length-prefixed binary protocol on
// the same service.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "query/types.hpp"
#include "service/snapshot.hpp"
#include "service/stats.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::query {
class Analytics;
}  // namespace dapsp::query

namespace dapsp::service {

struct Query {
  QueryType type = QueryType::kDist;
  NodeId u = 0;
  NodeId v = 0;
  // Analytics parameters (ignored by the point-lookup types).
  std::uint32_t k = 1;        ///< kKPaths: number of paths requested
  std::uint32_t samples = 0;  ///< kBetweenness: source sample (0 = all)
  query::RouteConstraints constraints;  ///< kRoute

  friend bool operator==(const Query&, const Query&) = default;
};

struct QueryResult {
  QueryType type = QueryType::kDist;
  NodeId u = 0;
  NodeId v = 0;
  bool ok = false;            ///< false = invalid ids / unsupported query
  std::string error;          ///< set when !ok
  Weight dist = graph::kInfDist;  ///< kInfDist when unreachable
  NodeId next_hop = graph::kNoNode;
  std::vector<NodeId> path;   ///< filled for kPath when reachable
  // Analytics payloads.
  bool feasible = true;       ///< kRoute: false when no route satisfies
  std::vector<query::Route> routes;      ///< kKPaths (route_less order)
  query::GraphReport report;             ///< kReport
  std::vector<double> centrality;        ///< kBetweenness

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

struct QueryServiceConfig {
  /// Worker threads for query_batch; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Total reconstructed paths kept across all cache shards; 0 disables the
  /// cache entirely (every path query reconstructs).
  std::size_t path_cache_capacity = 4096;
  /// Shards for the path cache (each shard has its own lock); clamped to at
  /// least 1.
  std::size_t cache_shards = 8;
  /// Largest batch the serve loops accept (text "batch N" directive and
  /// binary batch frames).  Oversized batches are rejected whole with a
  /// structured error, never served partially.
  std::size_t max_batch = 1 << 16;
  /// Analytics limits, enforced at parse/decode time with stable errors:
  /// k must be in [1, max_k], each avoid set holds at most max_avoid
  /// entries, and a hop budget that is neither vacuous (>= n-1) nor within
  /// max_hops is refused (it would force an O(max_hops * n) layered
  /// search).
  std::uint32_t max_k = 64;
  std::uint32_t max_avoid = 4096;
  std::uint32_t max_hops = 4096;
  /// Entries kept in the epoch-stamped analytics result cache (keyed by the
  /// full query, so identical kpath/route/report/bc requests replay from
  /// memory until the snapshot swaps); 0 disables it.
  std::size_t analytics_cache_capacity = 256;
};

/// Result of a serve-loop "rebuild" directive (text or binary): the hook is
/// provided by the owner of the SnapshotManager (see
/// serve/snapshot_manager.hpp) and reports the newly published epoch.
struct RebuildOutcome {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::uint64_t build_ns = 0;
  std::string error;
};

/// Serve-loop configuration shared by the text/JSONL and binary protocols.
struct ServeOptions {
  bool json = false;  ///< JSONL responses instead of text (text loop only)
  /// Handler for the "rebuild" directive; when absent the directive is
  /// answered with a structured rebuild_unavailable error.
  std::function<RebuildOutcome()> on_rebuild;
};

class QueryService {
 public:
  /// Wraps a finished oracle in a FlatSnapshot at epoch 0.
  explicit QueryService(DistanceOracle oracle, QueryServiceConfig cfg = {});
  /// Serves an externally built snapshot (e.g. a serve::ShardedOracle).
  /// The snapshot must not be mutated after this call.
  explicit QueryService(std::shared_ptr<OracleSnapshot> snapshot,
                        QueryServiceConfig cfg = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// The snapshot currently serving; pins it against retirement while held.
  std::shared_ptr<const OracleSnapshot> snapshot() const {
    std::lock_guard lock(snap_mu_);
    return snap_;
  }
  const QueryServiceConfig& config() const noexcept { return cfg_; }

  /// Attaches the graph the snapshots were built from, enabling the four
  /// analytics query families (kpath/route/report/bc).  Without it they are
  /// answered with a structured "analytics unavailable" error.  Call before
  /// serving; the graph must outlive the service and match every snapshot's
  /// node count.
  void enable_analytics(std::shared_ptr<const graph::Graph> g);
  bool analytics_enabled() const noexcept { return analytics_ != nullptr; }

  /// Atomically publishes `next` as the serving snapshot and returns its
  /// freshly assigned epoch.  Never blocks readers: in-flight queries finish
  /// on the snapshot they started with, and the old snapshot is destroyed
  /// when its last reference drops.  `next` must be exclusively owned by the
  /// caller (its epoch is stamped here, pre-publication).  `rebuild_ns`, when
  /// nonzero, records the background build duration that produced `next` in
  /// the rebuild-latency histogram.
  std::uint64_t swap_snapshot(std::shared_ptr<OracleSnapshot> next,
                              std::uint64_t rebuild_ns = 0);

  /// Executes one query.  Thread-safe; any number of callers may query
  /// concurrently, including concurrently with swap_snapshot.
  QueryResult query(const Query& q) const;

  /// Executes a batch on the service's thread pool.  results[i] always
  /// answers queries[i]; output is bit-identical regardless of thread count,
  /// and the whole batch answers from one snapshot (never a mix of epochs).
  std::vector<QueryResult> query_batch(std::span<const Query> queries) const;

  /// Snapshot of the counters accumulated since construction / last reset,
  /// plus the current snapshot's epoch and per-shard occupancy.
  ServiceStats stats() const;
  void reset_stats();

  /// Parses one protocol line:
  ///   "dist U V" | "next U V" | "path U V"
  ///   "kpath U V K"
  ///   "route U V [hops=H] [avoid=a,b,...] [avoidedge=a-b,c-d,...]"
  ///   "report"
  ///   "bc [SAMPLES]"
  /// Returns nullopt and fills *error on malformed input.  Limits (max_k,
  /// max_avoid) are enforced later, at execution, where the config lives.
  static std::optional<Query> parse_query(std::string_view line,
                                          std::string* error);

  static void write_result_text(const QueryResult& r, std::ostream& out);
  /// One JSON object per result (JSONL); kInfDist renders as null.
  static void write_result_json(const QueryResult& r, std::ostream& out);

  /// Reads protocol lines from `in` until EOF or "quit", answering each on
  /// `out` (text or JSONL).  Blank lines and '#' comments are skipped.
  /// Directives: "stats" prints a counters snapshot, "batch N" executes the
  /// next N query lines as one pipelined batch (rejected whole with a
  /// structured error when N exceeds config().max_batch), "rebuild" invokes
  /// opts.on_rebuild.  Returns the number of malformed lines (the CLI turns
  /// nonzero into a nonzero exit code).
  int serve_stream(std::istream& in, std::ostream& out,
                   const ServeOptions& opts) const;
  int serve_stream(std::istream& in, std::ostream& out, bool json) const {
    ServeOptions opts;
    opts.json = json;
    return serve_stream(in, out, opts);
  }

 private:
  class PathCache;
  class AnalyticsCache;
  struct Recorder;

  QueryResult execute(const OracleSnapshot& snap, const Query& q) const;
  QueryResult execute_analytics(const OracleSnapshot& snap,
                                const Query& q) const;
  QueryResult timed_execute(const OracleSnapshot& snap, const Query& q) const;
  void serve_batch_directive(std::istream& in, std::ostream& out,
                             const ServeOptions& opts, std::uint64_t count,
                             int* malformed) const;

  QueryServiceConfig cfg_;
  mutable std::mutex snap_mu_;  ///< guards snap_ -- pointer copies only
  std::shared_ptr<const OracleSnapshot> snap_;
  std::atomic<std::uint64_t> epoch_{0};  ///< last assigned epoch
  std::unique_ptr<PathCache> cache_;     // null when capacity == 0
  std::unique_ptr<Recorder> recorder_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<query::Analytics> analytics_;  // null until enabled
  std::unique_ptr<AnalyticsCache> acache_;       // null when disabled
};

}  // namespace dapsp::service
