# Empty dependencies file for zero_weight_overlay.
# This may be replaced when dependencies are built.
