// Quickstart: build a small weighted graph, run the paper's pipelined APSP
// (Algorithm 1 / Theorem I.1(ii)) in the CONGEST simulator, and compare the
// round count against the 2n*sqrt(Delta) + 2n bound.
//
//   ./quickstart [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main(int argc, char** argv) {
  using namespace dapsp;

  const graph::NodeId n =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 24;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  // A connected random graph with zero-weight edges allowed -- the case the
  // paper's algorithms are designed for.
  graph::WeightSpec weights;
  weights.min_weight = 0;
  weights.max_weight = 8;
  weights.zero_fraction = 0.25;
  const graph::Graph g = graph::erdos_renyi(n, 0.15, weights, seed);

  std::cout << "graph: n=" << g.node_count()
            << " undirected edges=" << g.comm_edge_count()
            << " max weight W=" << g.max_weight() << "\n";

  // Delta (the max shortest-path distance) parameterizes the schedule; a
  // real deployment would use a promised bound, here we measure it.
  const graph::Weight delta = graph::max_finite_distance(g);
  std::cout << "Delta (max shortest-path distance) = " << delta << "\n\n";

  const core::KsspResult res = core::pipelined_apsp(g, delta);

  std::cout << "APSP finished:\n"
            << "  settle round (all distances in place): " << res.settle_round
            << "\n"
            << "  Theorem I.1(ii) bound 2n*sqrt(Delta)+2n: "
            << core::bounds::apsp_pipelined(n, static_cast<std::uint64_t>(delta))
            << "\n"
            << "  total messages: " << res.stats.total_messages << "\n"
            << "  max per-link congestion: " << res.stats.max_link_congestion
            << "\n\n";

  // Print the distance row of node 0 with last-edge routing info.
  std::cout << "distances from node 0:\n";
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::cout << "  0 -> " << v << ": ";
    if (res.dist[0][v] == graph::kInfDist) {
      std::cout << "unreachable\n";
      continue;
    }
    std::cout << "dist=" << res.dist[0][v] << " hops=" << res.hops[0][v];
    if (res.parent[0][v] != graph::kNoNode) {
      std::cout << " last-edge=(" << res.parent[0][v] << "," << v << ")";
    }
    std::cout << "\n";
  }
  return 0;
}
