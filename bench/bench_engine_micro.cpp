// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// wall-clock cost per simulated round, message delivery throughput, and the
// exact-key arithmetic.  These measure the *simulator*, not the algorithms'
// round complexity (that's what E1-E9 report).
#include <benchmark/benchmark.h>

#include "baseline/bf_apsp.hpp"
#include "core/key.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/int_math.hpp"

namespace {

using namespace dapsp;

void BM_EngineFloodRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::erdos_renyi(n, 4.0 / n, {1, 4, 0.0}, 1);
  for (auto _ : state) {
    auto res = baseline::bf_sssp(g, 0);
    benchmark::DoNotOptimize(res.dist.data());
    state.counters["rounds"] = static_cast<double>(res.stats.rounds);
  }
}
BENCHMARK(BM_EngineFloodRound)->Arg(64)->Arg(256)->Arg(1024);

void BM_PipelinedApsp(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::erdos_renyi(n, 4.0 / n, {0, 6, 0.2}, 2);
  const graph::Weight delta = graph::max_finite_distance(g);
  for (auto _ : state) {
    auto res = core::pipelined_apsp(g, delta);
    benchmark::DoNotOptimize(res.dist.data());
    state.counters["simulated_rounds"] =
        static_cast<double>(res.stats.rounds);
    state.counters["messages"] = static_cast<double>(res.stats.total_messages);
  }
}
BENCHMARK(BM_PipelinedApsp)->Arg(24)->Arg(48);

void BM_KeyCompare(benchmark::State& state) {
  const core::GammaSq gamma{1234, 567};
  std::uint64_t acc = 0;
  std::int64_t d = 1;
  for (auto _ : state) {
    const core::Key a{d % 100000, static_cast<std::uint32_t>(d % 64)};
    const core::Key b{(d * 7) % 100000, static_cast<std::uint32_t>(d % 61)};
    acc += static_cast<std::uint64_t>(a.compare(b, gamma) + 1);
    ++d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_KeyCompare);

void BM_CeilMulSqrt(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint64_t d = 1;
  for (auto _ : state) {
    acc += util::ceil_mul_sqrt(d % 1000000, 12345, 678);
    ++d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CeilMulSqrt);

}  // namespace

BENCHMARK_MAIN();
