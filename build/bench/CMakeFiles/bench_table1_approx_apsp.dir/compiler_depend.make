# Empty compiler generated dependencies file for bench_table1_approx_apsp.
# This may be replaced when dependencies are built.
