# Empty dependencies file for approx_tradeoff.
# This may be replaced when dependencies are built.
