file(REMOVE_RECURSE
  "CMakeFiles/approx_apsp_test.dir/approx_apsp_test.cpp.o"
  "CMakeFiles/approx_apsp_test.dir/approx_apsp_test.cpp.o.d"
  "approx_apsp_test"
  "approx_apsp_test.pdb"
  "approx_apsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_apsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
