#include "net/coordinator.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "congest/plane.hpp"
#include "graph/io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace dapsp::net {

namespace {

using congest::BlockReader;
using congest::block_put_u32;
using congest::block_put_u64;
using graph::NodeId;
using service::DistanceOracle;

std::string range_str(ShardRange r) {
  return "[" + std::to_string(r.lo) + "," + std::to_string(r.hi) + ")";
}

/// The loud partition error the acceptance criteria demand: it always names
/// the dead shard and its vertex range.
[[noreturn]] void partition_error(std::uint32_t rank, ShardRange range,
                                  const std::string& what) {
  throw std::runtime_error("socket backend: partition: worker " +
                           std::to_string(rank) + " (nodes " +
                           range_str(range) + ") " + what);
}

[[noreturn]] void divergence_error(const std::string& what) {
  throw std::runtime_error("socket backend: replica divergence: " + what);
}

[[noreturn]] void protocol_error(const std::string& what) {
  throw std::runtime_error("socket backend: protocol violation: " + what);
}

struct WorkerProc {
  pid_t pid = -1;
  Socket sock;
  ShardRange range;
};

/// Owns the worker processes; any exit path (including exceptions) kills
/// and reaps whatever is still alive so a failed build never leaks
/// orphans or zombies.
class Fleet {
 public:
  ~Fleet() {
    for (WorkerProc& w : procs) {
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
    }
    for (WorkerProc& w : procs) {
      if (w.pid > 0) {
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        w.pid = -1;
      }
    }
  }

  /// Graceful reap after BYE: give each worker `timeout_ms` to exit on its
  /// own, then SIGKILL stragglers.  Clears pids so the destructor no-ops.
  void reap(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (WorkerProc& w : procs) {
      if (w.pid <= 0) continue;
      for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid) {
          w.pid = -1;
          break;
        }
        if (r < 0 && errno != EINTR) {
          w.pid = -1;
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(w.pid, SIGKILL);
          while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
          }
          w.pid = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  std::vector<WorkerProc> procs;
};

Endpoint make_endpoint(bool tcp) {
  Endpoint ep;
  if (tcp) {
    ep.is_unix = false;
    ep.host = "127.0.0.1";
    ep.port = 0;  // kernel-assigned; Listener reports the real one
  } else {
    static std::atomic<unsigned> seq{0};
    ep.is_unix = true;
    ep.path = "/tmp/dapsp-net-" + std::to_string(::getpid()) + "-" +
              std::to_string(seq.fetch_add(1)) + ".sock";
  }
  return ep;
}

pid_t spawn_worker(const std::string& binary, const std::string& connect_spec,
                   std::uint32_t rank, std::uint32_t timeout_ms) {
  const std::string rank_str = std::to_string(rank);
  const std::string timeout_str = std::to_string(timeout_ms);
  std::vector<std::string> args = {binary,   "worker",
                                   "--connect", connect_spec,
                                   "--rank",    rank_str,
                                   "--net-timeout-ms", timeout_str};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t parent = ::getpid();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("socket backend: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child.  Only async-signal-safe calls until exec (the parent may be
    // multithreaded -- gtest is).  PDEATHSIG guarantees no orphan worker
    // survives a coordinator that dies without running its destructors.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parent) ::_exit(127);  // parent died before prctl
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; 127 = "command not found" convention
  }
  return pid;
}

}  // namespace

DistanceOracle socket_build_oracle(const graph::Graph& g,
                                   const service::OracleBuildOptions& build,
                                   const SocketBackendOptions& opts,
                                   SocketRunReport* report) {
  const NodeId n = g.node_count();
  if (n == 0) {
    throw std::runtime_error("socket backend: empty graph");
  }
  if (opts.workers == 0 || opts.workers > 256) {
    throw std::runtime_error("socket backend: worker count must be in [1, 256]");
  }
  ignore_sigpipe();
  const std::uint32_t W = opts.workers;
  const int tmo = static_cast<int>(opts.timeout_ms);
  SocketRunReport rep;

  std::string graph_text;
  {
    std::ostringstream os;
    graph::write_graph(os, g);
    graph_text = os.str();
  }

  Listener listener(make_endpoint(opts.tcp));
  const std::string spec = listener.bound().spec();
  const std::string binary =
      opts.worker_binary.empty() ? std::string("/proc/self/exe")
                                 : opts.worker_binary;

  Fleet fleet;
  fleet.procs.resize(W);
  for (std::uint32_t r = 0; r < W; ++r) {
    fleet.procs[r].range = shard_range(n, r, W);
    fleet.procs[r].pid = spawn_worker(binary, spec, r, opts.timeout_ms);
  }

  const auto count_frame = [&rep](const std::string& payload) {
    ++rep.frames;
    rep.wire_bytes += 5 + payload.size();
  };
  const auto send_to = [&](std::uint32_t r, FrameType type,
                           const std::string& payload) {
    try {
      write_frame(fleet.procs[r].sock.fd(), type, payload);
      count_frame(payload);
    } catch (const SocketClosed&) {
      partition_error(r, fleet.procs[r].range,
                      std::string("died (connection closed while sending ") +
                          frame_type_name(type) + ")");
    }
  };

  // Rendezvous: accept W connections, identify each by its HELLO rank.
  std::vector<bool> seen(W, false);
  for (std::uint32_t i = 0; i < W; ++i) {
    Socket s = listener.accept_within(tmo);
    std::optional<Frame> f = read_frame(s.fd(), tmo);
    if (!f || f->type != FrameType::kHello) {
      protocol_error("expected HELLO from a connecting worker");
    }
    count_frame(f->payload);
    BlockReader r(f->payload);
    const std::uint32_t rank = r.u32();
    if (!r.ok() || !r.done() || rank >= W || seen[rank]) {
      protocol_error("bad HELLO rank");
    }
    seen[rank] = true;
    fleet.procs[rank].sock = std::move(s);
  }

  for (std::uint32_t r = 0; r < W; ++r) {
    JobSpec job;
    job.rank = r;
    job.workers = W;
    job.solver = static_cast<std::uint32_t>(build.solver);
    job.h = build.h;
    job.eps = build.eps;
    job.dense = false;
    job.engine_threads = opts.engine_threads;
    job.timeout_ms = opts.timeout_ms;
    job.crash_at = (opts.crash_at != 0 && r == opts.crash_rank)
                       ? opts.crash_at
                       : 0;
    job.graph_text = graph_text;
    std::string payload;
    encode_job(payload, job);
    send_to(r, FrameType::kJob, payload);
  }

  // Lockstep loop: one frame from every worker, all of the same type.
  std::vector<Frame> frames(W);
  const auto read_all = [&](const char* waiting_for) {
    for (std::uint32_t r = 0; r < W; ++r) {
      const WorkerProc& w = fleet.procs[r];
      try {
        std::optional<Frame> f = read_frame(w.sock.fd(), tmo);
        if (!f) {
          partition_error(r, w.range,
                          std::string("died (connection closed while the "
                                      "coordinator waited for ") +
                              waiting_for + ")");
        }
        count_frame(f->payload);
        frames[r] = std::move(*f);
      } catch (const SocketTimeout&) {
        partition_error(r, w.range,
                        std::string("timed out (no ") + waiting_for +
                            " within " + std::to_string(tmo) + " ms)");
      } catch (const SocketClosed& e) {
        partition_error(r, w.range, std::string("died (") + e.what() + ")");
      }
    }
    for (std::uint32_t r = 0; r < W; ++r) {
      if (frames[r].type == FrameType::kAbort) {
        throw std::runtime_error("socket backend: worker " +
                                 std::to_string(r) + " (nodes " +
                                 range_str(fleet.procs[r].range) +
                                 ") aborted: " + frames[r].payload);
      }
    }
    for (std::uint32_t r = 1; r < W; ++r) {
      if (frames[r].type != frames[0].type) {
        divergence_error(std::string("worker 0 sent ") +
                         frame_type_name(frames[0].type) + " while worker " +
                         std::to_string(r) + " sent " +
                         frame_type_name(frames[r].type));
      }
    }
  };

  std::string deliver;
  std::uint64_t run_wire_bytes = 0;
  int run_depth = 0;
  bool runs_nested = false;  // disables the per-run byte cross-check
  for (;;) {
    read_all("the next lockstep frame");
    bool results = false;
    switch (frames[0].type) {
      case FrameType::kRunBegin: {
        for (std::uint32_t r = 1; r < W; ++r) {
          if (frames[r].payload != frames[0].payload) {
            divergence_error("RUN_BEGIN payloads differ (engines constructed "
                             "out of lockstep)");
          }
        }
        ++rep.engine_runs;
        if (++run_depth > 1) runs_nested = true;
        break;
      }
      case FrameType::kRound: {
        // payload: u32 run_idx | u64 round | u64 digest | owned slice.
        constexpr std::size_t kPrefix = 4 + 8 + 8;
        if (frames[0].payload.size() < kPrefix + 4) {
          protocol_error("short ROUND payload");
        }
        const std::string_view prefix0 =
            std::string_view(frames[0].payload).substr(0, kPrefix);
        for (std::uint32_t r = 1; r < W; ++r) {
          if (frames[r].payload.size() < kPrefix + 4 ||
              std::string_view(frames[r].payload).substr(0, kPrefix) !=
                  prefix0) {
            divergence_error(
                "round digests disagree -- replicas executed different "
                "rounds");
          }
        }
        BlockReader pr(prefix0);
        pr.u32();  // run_idx
        pr.u64();  // round
        const std::uint64_t digest = pr.u64();

        // Reassemble the canonical block: total sender count, then every
        // worker's owned records in rank order (ranges ascend, so senders
        // come out ascending -- exactly the engine's encoding order).
        deliver.clear();
        block_put_u32(deliver, 0);
        std::uint32_t total = 0;
        for (std::uint32_t r = 0; r < W; ++r) {
          const std::string_view slice =
              std::string_view(frames[r].payload).substr(kPrefix);
          BlockReader sr(slice);
          total += sr.u32();
          deliver.append(slice.substr(4));
        }
        congest::block_patch_u32(deliver, 0, total);
        // The reassembly must hash to what every replica computed locally;
        // anything else means a shard shipped senders that disagree with
        // the shadow execution.
        if (congest::fnv1a64(deliver) != digest) {
          divergence_error("reassembled round block does not match the "
                           "replicas' digest");
        }
        run_wire_bytes += block_message_bytes(deliver);
        for (std::uint32_t r = 0; r < W; ++r) {
          send_to(r, FrameType::kDeliver, deliver);
        }
        ++rep.round_exchanges;
        break;
      }
      case FrameType::kRunEnd: {
        for (std::uint32_t r = 1; r < W; ++r) {
          if (frames[r].payload != frames[0].payload) {
            divergence_error("RUN_END stats differ between replicas");
          }
        }
        BlockReader sr(frames[0].payload);
        sr.u32();  // run_idx
        const congest::RunStats stats = parse_run_stats(sr);
        if (!sr.done()) protocol_error("trailing bytes after RUN_END stats");
        --run_depth;
        // Runtime invariant of the whole design: the engine's
        // message_bytes stat counts exactly the bytes that crossed the
        // wire (8 + 8*used per message).  The coordinator measured the
        // latter independently, so any drift fails the build.
        if (!runs_nested && run_depth == 0 &&
            stats.message_bytes != run_wire_bytes) {
          throw std::runtime_error(
              "socket backend: wire byte accounting mismatch: engine "
              "reported " + std::to_string(stats.message_bytes) +
              " message bytes but " + std::to_string(run_wire_bytes) +
              " crossed the wire");
        }
        if (run_depth == 0) run_wire_bytes = 0;
        break;
      }
      case FrameType::kResultMeta:
        results = true;
        break;
      default:
        protocol_error(std::string("unexpected ") +
                       frame_type_name(frames[0].type) +
                       " in the lockstep phase");
    }
    if (results) break;
  }

  // Results phase: frames[] holds each worker's RESULT_META.
  // payload: u32 row_lo | u32 row_hi | u32 chunks | shared blob.
  std::string_view shared0;
  std::vector<std::uint32_t> chunk_counts(W, 0);
  for (std::uint32_t r = 0; r < W; ++r) {
    BlockReader mr(frames[r].payload);
    const std::uint32_t row_lo = mr.u32();
    const std::uint32_t row_hi = mr.u32();
    chunk_counts[r] = mr.u32();
    if (!mr.ok()) protocol_error("short RESULT_META");
    const ShardRange want = fleet.procs[r].range;
    if (row_lo != want.lo || row_hi != want.hi) {
      protocol_error("worker " + std::to_string(r) +
                     " claims rows [" + std::to_string(row_lo) + "," +
                     std::to_string(row_hi) + ") but owns " +
                     range_str(want));
    }
    const std::string_view shared =
        std::string_view(frames[r].payload).substr(12);
    if (r == 0) {
      shared0 = shared;
    } else if (shared != shared0) {
      divergence_error("RESULT_META oracle metadata differs between "
                       "replicas");
    }
  }
  BlockReader mr(shared0);
  const std::uint32_t meta_n = mr.u32();
  const std::string_view exact_b = mr.bytes(1);
  const std::string_view next_b = mr.bytes(1);
  const std::string label = read_string(mr);
  service::OracleMeta meta;
  meta.label = label;
  meta.exact = !exact_b.empty() && exact_b[0] != '\0';
  const bool has_next = !next_b.empty() && next_b[0] != '\0';
  meta.stats = parse_run_stats(mr);
  if (!mr.ok() || !mr.done() || meta_n != n) {
    protocol_error("malformed RESULT_META shared blob");
  }

  const std::size_t cells = static_cast<std::size_t>(n) * n;
  std::vector<graph::Weight> dist(cells, 0);
  std::vector<NodeId> next(has_next ? cells : 0, graph::kNoNode);
  const std::size_t row_bytes = static_cast<std::size_t>(n) * 8 +
                                (has_next ? static_cast<std::size_t>(n) * 4
                                          : 0);
  for (std::uint32_t r = 0; r < W; ++r) {
    const WorkerProc& w = fleet.procs[r];
    const auto read_one = [&](const char* waiting_for) -> Frame {
      try {
        std::optional<Frame> f = read_frame(w.sock.fd(), tmo);
        if (!f) {
          partition_error(r, w.range,
                          std::string("died (connection closed while the "
                                      "coordinator waited for ") +
                              waiting_for + ")");
        }
        count_frame(f->payload);
        return std::move(*f);
      } catch (const SocketTimeout&) {
        partition_error(r, w.range, std::string("timed out (no ") +
                                        waiting_for + ")");
      } catch (const SocketClosed& e) {
        partition_error(r, w.range, std::string("died (") + e.what() + ")");
      }
    };
    std::uint64_t digest = kFnvBasis;
    NodeId expect = w.range.lo;
    for (std::uint32_t c = 0; c < chunk_counts[r]; ++c) {
      const Frame f = read_one("result rows");
      if (f.type == FrameType::kAbort) {
        throw std::runtime_error("socket backend: worker " +
                                 std::to_string(r) + " aborted: " + f.payload);
      }
      if (f.type != FrameType::kResultRows) {
        protocol_error(std::string("expected RESULT_ROWS, got ") +
                       frame_type_name(f.type));
      }
      BlockReader cr(f.payload);
      const std::uint32_t row_lo = cr.u32();
      const std::uint32_t count = cr.u32();
      if (!cr.ok() || row_lo != expect || count == 0 ||
          row_lo + count > w.range.hi ||
          cr.remaining() != row_bytes * count) {
        protocol_error("malformed RESULT_ROWS chunk");
      }
      digest = fnv1a64_acc(digest, std::string_view(f.payload).substr(8));
      for (std::uint32_t i = 0; i < count; ++i) {
        const NodeId u = row_lo + i;
        graph::Weight* drow = dist.data() + static_cast<std::size_t>(u) * n;
        for (NodeId v = 0; v < n; ++v) {
          drow[v] = static_cast<graph::Weight>(cr.u64());
        }
        if (has_next) {
          NodeId* nrow = next.data() + static_cast<std::size_t>(u) * n;
          for (NodeId v = 0; v < n; ++v) nrow[v] = cr.u32();
        }
      }
      expect += count;
    }
    if (expect != w.range.hi) {
      protocol_error("worker " + std::to_string(r) +
                     " shipped fewer rows than it owns");
    }
    const Frame f = read_one("DONE");
    if (f.type != FrameType::kDone) {
      protocol_error(std::string("expected DONE, got ") +
                     frame_type_name(f.type));
    }
    BlockReader dr(f.payload);
    const std::uint64_t want_digest = dr.u64();
    if (!dr.ok() || !dr.done()) protocol_error("malformed DONE payload");
    if (want_digest != digest) {
      divergence_error("result row digest mismatch for worker " +
                       std::to_string(r));
    }
  }

  for (std::uint32_t r = 0; r < W; ++r) {
    try {
      write_frame(fleet.procs[r].sock.fd(), FrameType::kBye, {});
      count_frame({});
    } catch (const SocketClosed&) {
      // Worker already gone after delivering everything; reap handles it.
    }
  }
  fleet.reap(5000);

  if (report != nullptr) *report = rep;
  return service::make_oracle_from_rows(n, std::move(dist), std::move(next),
                                        std::move(meta));
}

}  // namespace dapsp::net
