#!/usr/bin/env sh
# Builds and runs the engine microbenchmarks, writing the google-benchmark
# JSON to BENCH_ENGINE.json at the repo root.  The Sparse/Dense benchmark
# pairs measure the active-set scheduler against the exhaustive dense
# fallback on the same workloads (bit-identical stats, see docs/PERF.md);
# compare their real_time entries to read off the speedup.
#
# Engine scenarios also carry critical-path counters (critpath_ns,
# critpath_len, critpath_pct -- longest causal dependence chain, its step
# count, and its share of the engine phase wall-clock; see docs/PERF.md,
# "Critical-path profiling").  A per-scenario table is printed after the run.
#
# Extra arguments are forwarded to the bench binary, e.g.:
#   scripts/bench_engine.sh --benchmark_min_time=0.01s
#
# --compare OLD.json NEW.json skips the run and instead diffs two previously
# captured benchmark JSON files via scripts/bench_compare.py (per-scenario
# real_time and critpath_ns deltas; exits non-zero on a >5% real_time
# regression -- tune with --threshold PCT placed after the two files).
#
# --backend socket [N [WORKERS]] skips the microbench and instead times two
# CLI-level oracle builds on an N-node grid (default 256): the in-process
# backend and the multi-process socket backend with WORKERS shard processes
# (default 4; see docs/BACKENDS.md).  Both timings are appended to
# BENCH_ENGINE.json as CLIBuild/ scenarios -- bench_compare.py reports them
# but exempts the CLIBuild/ prefix from the regression gate until a
# committed baseline lands (the socket backend is a correctness surface
# first; EXPERIMENTS.md E14 records the expected slowdown).
set -e
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--compare" ]; then
  shift
  exec python3 scripts/bench_compare.py "$@"
fi

if [ "${1:-}" = "--backend" ] && [ "${2:-}" = "socket" ]; then
  shift 2
  N="${1:-256}"
  WORKERS="${2:-4}"
  if [ -f build/build.ninja ] || [ -f build/Makefile ]; then
    cmake --build build --target dapsp_cli
  else
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build --target dapsp_cli -j
  fi
  N="$N" WORKERS="$WORKERS" python3 - <<'EOF'
import json, os, subprocess, time

n = int(os.environ["N"])
workers = int(os.environ["WORKERS"])
cli = "./build/apps/dapsp_cli"
base = [cli, "query", "--gen", "grid", "--n", str(n), "--seed", "2",
        "--quiet", "--q", f"dist 0 {n - 1}"]
runs = [
    (f"CLIBuild/grid_n{n}_inproc", base),
    (f"CLIBuild/grid_n{n}_socket_w{workers}",
     base + ["--backend", "socket", "--workers", str(workers)]),
]
results = []
outputs = set()
for name, cmd in runs:
    t0 = time.monotonic()
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    ns = (time.monotonic() - t0) * 1e9
    outputs.add(out.stdout)
    results.append({"name": name, "run_name": name, "run_type": "iteration",
                    "iterations": 1, "real_time": ns, "cpu_time": ns,
                    "time_unit": "ns"})
    print("  %-32s %10.3f s" % (name, ns / 1e9))
if len(outputs) != 1:
    raise SystemExit("FAIL: socket and in-process query outputs differ")
print("  query outputs identical across backends")

path = "BENCH_ENGINE.json"
doc = {"benchmarks": []}
if os.path.exists(path):
    with open(path) as f:
        doc = json.load(f)
names = {r["name"] for r in results}
doc["benchmarks"] = [b for b in doc.get("benchmarks", [])
                     if b.get("name") not in names] + results
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
print("merged CLIBuild scenarios into %s" % os.path.abspath(path))
EOF
  exit 0
fi

if [ -f build/build.ninja ]; then
  cmake --build build --target bench_engine_micro
else
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build --target bench_engine_micro -j
fi

./build/bench/bench_engine_micro \
  --benchmark_out=BENCH_ENGINE.json --benchmark_out_format=json "$@"

echo "wrote $(pwd)/BENCH_ENGINE.json"

# Critical-path summary per scenario, read back from the benchmark JSON.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_ENGINE.json") as f:
    doc = json.load(f)
rows = [b for b in doc.get("benchmarks", []) if "critpath_ns" in b]
if rows:
    print()
    print("critical path per scenario (deterministic chain; docs/PERF.md):")
    for b in rows:
        print("  %-32s chain %6d steps  %10.3f ms  %5.1f%% of engine wall"
              % (b["name"], int(b["critpath_len"]),
                 b["critpath_ns"] / 1e6, b["critpath_pct"]))
EOF
fi
