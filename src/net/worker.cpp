#include "net/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "congest/engine.hpp"
#include "congest/plane.hpp"
#include "graph/io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/oracle.hpp"

namespace dapsp::net {

namespace {

using congest::block_put_u32;
using congest::block_put_u64;
using graph::NodeId;

/// The remote MessagePlane: one instance per worker process, installed as
/// the engine's process-global plane for the duration of the build.  Every
/// engine the solver constructs announces itself (RUN_BEGIN), trades one
/// ROUND/DELIVER pair per executed round, and reports its deterministic
/// stats (RUN_END).  The exchange doubles as the lockstep barrier: no
/// replica can run ahead, because the coordinator only delivers once every
/// worker's round frame arrived and agreed.
class SocketPlane final : public congest::MessagePlane {
 public:
  SocketPlane(int fd, ShardRange owned, int timeout_ms, std::uint64_t crash_at)
      : fd_(fd), owned_(owned), timeout_ms_(timeout_ms), crash_at_(crash_at) {}

  const char* name() const noexcept override { return "socket"; }
  bool remote() const noexcept override { return true; }

  void begin_run(NodeId nodes, std::uint64_t links) override {
    ++run_idx_;
    payload_.clear();
    block_put_u32(payload_, run_idx_);
    block_put_u32(payload_, nodes);
    block_put_u64(payload_, links);
    write_frame(fd_, FrameType::kRunBegin, payload_);
  }

  void exchange(congest::Round round, std::string& block) override {
    ++exchanges_;
    // Crash-injection test hook: die exactly where a real worker would --
    // mid-run, with peers blocked on this round's barrier.
    if (crash_at_ != 0 && exchanges_ == crash_at_) ::_exit(13);
    const std::uint64_t digest = congest::fnv1a64(block);
    payload_.clear();
    block_put_u32(payload_, run_idx_);
    block_put_u64(payload_, round);
    block_put_u64(payload_, digest);
    slice_owned(block, owned_.lo, owned_.hi, slice_);
    payload_.append(slice_);
    write_frame(fd_, FrameType::kRound, payload_);

    std::optional<Frame> f = read_frame(fd_, timeout_ms_);
    if (!f) {
      throw SocketClosed("coordinator closed the connection mid-round");
    }
    if (f->type == FrameType::kAbort) {
      throw std::runtime_error("coordinator aborted the run: " + f->payload);
    }
    if (f->type != FrameType::kDeliver) {
      throw std::runtime_error(std::string("protocol violation: expected "
                                           "DELIVER, got ") +
                               frame_type_name(f->type));
    }
    // Layered divergence check: the authoritative reassembly must equal
    // this replica's own execution bit for bit.  The coordinator already
    // compared all workers' digests; this catches coordinator-side
    // reassembly bugs and transport corruption too.
    if (congest::fnv1a64(f->payload) != digest) {
      throw std::runtime_error(
          "replica divergence: delivered round block does not match local "
          "execution at round " + std::to_string(round));
    }
    block = std::move(f->payload);
  }

  void end_run(const congest::RunStats& stats) override {
    payload_.clear();
    block_put_u32(payload_, run_idx_);
    append_run_stats(payload_, stats);
    write_frame(fd_, FrameType::kRunEnd, payload_);
  }

 private:
  int fd_;
  ShardRange owned_;
  int timeout_ms_;
  std::uint64_t crash_at_;
  std::uint32_t run_idx_ = 0;
  std::uint64_t exchanges_ = 0;
  std::string payload_;
  std::string slice_;
};

/// Clears the process-global engine overrides even when the build throws.
struct GlobalPlaneScope {
  explicit GlobalPlaneScope(congest::MessagePlane* plane) {
    congest::Engine::set_global_plane(plane);
  }
  ~GlobalPlaneScope() {
    congest::Engine::set_global_plane(nullptr);
    congest::Engine::set_force_dense(false);
    congest::Engine::set_force_threads(congest::Engine::kNoThreadOverride);
  }
};

void encode_row(std::string& out, const service::DistanceOracle& o, NodeId u,
                bool has_next) {
  for (const graph::Weight w : o.dist_row(u)) {
    block_put_u64(out, static_cast<std::uint64_t>(w));
  }
  if (has_next) {
    for (const NodeId x : o.next_row(u)) block_put_u32(out, x);
  }
}

/// RESULT_META + owned row chunks + DONE{rows digest}.
void send_results(int fd, const service::DistanceOracle& o, ShardRange owned) {
  const NodeId n = o.node_count();
  const bool has_next = o.has_paths();
  const std::size_t row_bytes =
      static_cast<std::size_t>(n) * 8 +
      (has_next ? static_cast<std::size_t>(n) * 4 : 0);
  const std::uint32_t rows = owned.hi - owned.lo;
  // Keep every frame well under the cap; 4 MiB of rows per chunk.
  const std::uint32_t rows_per_chunk = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, (std::size_t{4} << 20) / row_bytes));
  const std::uint32_t chunks =
      rows == 0 ? 0 : (rows + rows_per_chunk - 1) / rows_per_chunk;

  std::string meta;
  block_put_u32(meta, owned.lo);
  block_put_u32(meta, owned.hi);
  block_put_u32(meta, chunks);
  // Shared blob: identical on every worker (shadow execution), so the
  // coordinator compares it byte for byte instead of field by field.
  block_put_u32(meta, n);
  meta.push_back(o.exact() ? '\x01' : '\x00');
  meta.push_back(has_next ? '\x01' : '\x00');
  append_string(meta, o.solver_label());
  append_run_stats(meta, o.build_stats());
  write_frame(fd, FrameType::kResultMeta, meta);

  std::uint64_t digest = kFnvBasis;
  std::string chunk;
  NodeId u = owned.lo;
  while (u < owned.hi) {
    const std::uint32_t count =
        std::min(rows_per_chunk, static_cast<std::uint32_t>(owned.hi - u));
    chunk.clear();
    block_put_u32(chunk, u);
    block_put_u32(chunk, count);
    for (std::uint32_t i = 0; i < count; ++i) {
      encode_row(chunk, o, u + i, has_next);
    }
    digest = fnv1a64_acc(digest, std::string_view(chunk).substr(8));
    write_frame(fd, FrameType::kResultRows, chunk);
    u += count;
  }
  std::string done;
  block_put_u64(done, digest);
  write_frame(fd, FrameType::kDone, done);
}

}  // namespace

int worker_main(const WorkerOptions& opts) {
  ignore_sigpipe();
  Socket sock;
  try {
    sock = connect_with_retry(Endpoint::parse(opts.connect),
                              static_cast<int>(opts.timeout_ms));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dapsp worker %u: %s\n", opts.rank, e.what());
    return 1;
  }
  try {
    std::string hello;
    block_put_u32(hello, opts.rank);
    write_frame(sock.fd(), FrameType::kHello, hello);

    std::optional<Frame> jf =
        read_frame(sock.fd(), static_cast<int>(opts.timeout_ms));
    if (!jf || jf->type != FrameType::kJob) {
      throw std::runtime_error("expected JOB from coordinator");
    }
    const JobSpec job = decode_job(jf->payload);
    const int tmo = job.timeout_ms != 0 ? static_cast<int>(job.timeout_ms)
                                        : static_cast<int>(opts.timeout_ms);
    if (job.rank != opts.rank) {
      throw std::runtime_error("JOB rank does not match --rank");
    }
    if (job.workers == 0 || job.rank >= job.workers) {
      throw std::runtime_error("JOB rank/worker count out of range");
    }

    std::istringstream is(job.graph_text);
    const graph::Graph g = graph::read_graph(is);
    const ShardRange owned = shard_range(g.node_count(), job.rank, job.workers);

    SocketPlane plane(sock.fd(), owned, tmo, job.crash_at);
    GlobalPlaneScope scope(&plane);
    congest::Engine::set_force_dense(job.dense);
    if (job.engine_threads != 0) {
      congest::Engine::set_force_threads(job.engine_threads);
    }

    service::OracleBuildOptions build;
    if (job.solver > static_cast<std::uint32_t>(service::Solver::kReference)) {
      throw std::runtime_error("JOB carries an unknown solver id");
    }
    build.solver = static_cast<service::Solver>(job.solver);
    build.h = job.h;
    build.eps = job.eps;
    build.critpath = false;
    const service::DistanceOracle oracle = service::build_oracle(g, build);

    send_results(sock.fd(), oracle, owned);
    // Hold the connection until the coordinator has everything; BYE (or a
    // clean EOF if it already tore down) releases us.
    (void)read_frame(sock.fd(), tmo);
    return 0;
  } catch (const std::exception& e) {
    try {
      write_frame(sock.fd(), FrameType::kAbort, e.what());
    } catch (...) {
      // Coordinator already gone; stderr is all that's left.
    }
    std::fprintf(stderr, "dapsp worker %u: %s\n", opts.rank, e.what());
    return 1;
  }
}

}  // namespace dapsp::net
