#include "obs/trace.hpp"

#include <map>
#include <utility>

#include "obs/critpath.hpp"
#include "obs/json.hpp"

namespace dapsp::obs {

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(Options opt)
    : opt_(opt), events_(opt.capacity), items_(opt.work_item_capacity) {}

void TraceRecorder::begin_run(std::string label, std::uint64_t nodes,
                              std::uint64_t links) {
  RunInfo info;
  info.label = std::move(label);
  info.nodes = nodes;
  info.links = links;
  runs_.push_back(std::move(info));
}

TraceEvent& TraceRecorder::round_slot() {
  if (runs_.empty()) begin_run("run", 0, 0);  // engine always begins a run
  TraceEvent& e = events_.push_slot();
  e.kind = TraceEvent::Kind::kRound;
  e.run = static_cast<std::uint32_t>(runs_.size() - 1);
  e.round = 0;
  e.rounds = 1;
  e.messages = 0;
  e.senders = 0;
  e.receivers = 0;
  e.max_link_congestion = 0;
  e.send_s = e.deliver_s = e.receive_s = 0.0;
  e.faults_dropped = e.faults_duplicated = e.faults_delayed = 0;
  e.faults_deferred = e.faults_crash_dropped = 0;
  e.top_links.clear();  // capacity survives ring reuse
  return e;
}

void TraceRecorder::commit_round(const TraceEvent& e) {
  ++rounds_seen_;
  total_messages_ += e.messages;
  RunInfo& run = runs_.back();
  ++run.rounds;
  run.messages += e.messages;
}

void TraceRecorder::record_gap(std::uint64_t first_round,
                               std::uint64_t rounds) {
  if (rounds == 0) return;
  if (runs_.empty()) begin_run("run", 0, 0);
  TraceEvent& e = events_.push_slot();
  e.kind = TraceEvent::Kind::kGap;
  e.run = static_cast<std::uint32_t>(runs_.size() - 1);
  e.round = first_round;
  e.rounds = rounds;
  e.messages = 0;
  e.senders = 0;
  e.receivers = 0;
  e.max_link_congestion = 0;
  e.send_s = e.deliver_s = e.receive_s = 0.0;
  e.faults_dropped = e.faults_duplicated = e.faults_delayed = 0;
  e.faults_deferred = e.faults_crash_dropped = 0;
  e.top_links.clear();
  rounds_seen_ += rounds;
  skipped_rounds_ += rounds;
  runs_.back().rounds += rounds;
}

WorkItem& TraceRecorder::work_item_slot() {
  if (runs_.empty()) begin_run("run", 0, 0);
  WorkItem& it = items_.push_slot();
  it = WorkItem{};
  it.run = static_cast<std::uint32_t>(runs_.size() - 1);
  return it;
}

void TraceRecorder::clear() {
  events_.clear();
  items_.clear();
  runs_.clear();
  rounds_seen_ = 0;
  skipped_rounds_ = 0;
  total_messages_ = 0;
}

// --- Chrome trace_event export ---------------------------------------------
//
// Phases become duration ("X") events on a cumulative wall-clock timeline
// (microseconds, as the format requires); per-round message counts and max
// link congestion become counter ("C") tracks.  Each engine run is its own
// "process" so chained solver phases stack as separate lanes.

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Process metadata: name each run lane.
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    w.begin_object()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", static_cast<std::uint64_t>(r))
        .field("tid", std::uint64_t{0});
    w.key("args").begin_object().field("name", runs_[r].label).end_object();
    w.end_object();
  }

  // (run, round) -> this round's slot on the cumulative timeline, kept so
  // the critical-path flame lane below can place chain steps under the
  // phase events they explain.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::pair<double, double>>
      round_ts;
  double cum_us = 0.0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    const auto pid = static_cast<std::uint64_t>(e.run);
    if (e.kind == TraceEvent::Kind::kGap) {
      w.begin_object()
          .field("name", "fast-forward")
          .field("ph", "i")
          .field("s", "t")
          .field("pid", pid)
          .field("tid", std::uint64_t{0})
          .field("ts", cum_us);
      w.key("args")
          .begin_object()
          .field("first_round", e.round)
          .field("rounds", e.rounds)
          .end_object();
      w.end_object();
      continue;
    }
    const double phase_us[3] = {e.send_s * 1e6, e.deliver_s * 1e6,
                                e.receive_s * 1e6};
    static constexpr const char* kPhaseName[3] = {"send", "deliver",
                                                  "receive"};
    round_ts[{e.run, e.round}] = {cum_us,
                                  phase_us[0] + phase_us[1] + phase_us[2]};
    double ts = cum_us;
    for (int p = 0; p < 3; ++p) {
      w.begin_object()
          .field("name", kPhaseName[p])
          .field("ph", "X")
          .field("pid", pid)
          .field("tid", std::uint64_t{0})
          .field("ts", ts)
          .field("dur", phase_us[p]);
      w.key("args").begin_object().field("round", e.round).end_object();
      w.end_object();
      ts += phase_us[p];
    }
    w.begin_object()
        .field("name", "messages")
        .field("ph", "C")
        .field("pid", pid)
        .field("tid", std::uint64_t{0})
        .field("ts", cum_us);
    w.key("args").begin_object();
    w.field("messages", e.messages)
        .field("max_link_congestion", e.max_link_congestion);
    if (e.faults_dropped | e.faults_duplicated | e.faults_delayed |
        e.faults_deferred | e.faults_crash_dropped) {
      w.field("faults_dropped", e.faults_dropped)
          .field("faults_duplicated", e.faults_duplicated)
          .field("faults_delayed", e.faults_delayed)
          .field("faults_deferred", e.faults_deferred)
          .field("faults_crash_dropped", e.faults_crash_dropped);
    }
    w.end_object();
    w.end_object();
    cum_us = ts;
  }

  if (records_work_items()) {
    // Critical-path flame lane: tid 1 of each run carries one duration
    // event per chain step, aligned with the round it ran in, so the chain
    // reads directly under the phase timeline that it bounds.
    const CritPathReport rep = analyze_critical_path(*this);
    for (const RunCritPath& rc : rep.runs) {
      const auto pid = static_cast<std::uint64_t>(rc.run);
      w.begin_object()
          .field("name", "thread_name")
          .field("ph", "M")
          .field("pid", pid)
          .field("tid", std::uint64_t{1});
      w.key("args").begin_object().field("name", "critpath").end_object();
      w.end_object();
      for (const ChainStep& s : rc.chain) {
        const auto it = round_ts.find({rc.run, s.round});
        if (it == round_ts.end()) continue;  // round fell off the event ring
        w.begin_object()
            .field("name", "cp node " + std::to_string(s.node))
            .field("ph", "X")
            .field("pid", pid)
            .field("tid", std::uint64_t{1})
            .field("ts", it->second.first)
            .field("dur", it->second.second);
        w.key("args")
            .begin_object()
            .field("round", s.round)
            .field("node", static_cast<std::uint64_t>(s.node))
            .field("msgs_in", static_cast<std::uint64_t>(s.msgs_in))
            .field("msgs_out", static_cast<std::uint64_t>(s.msgs_out))
            .field("cost", s.cost)
            .field("edge", s.via_wake ? "wake" : "prev")
            .end_object();
        w.end_object();
      }
    }
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData")
      .begin_object()
      .field("rounds_seen", rounds_seen_)
      .field("skipped_rounds", skipped_rounds_)
      .field("total_messages", total_messages_)
      .field("dropped_events", dropped_events());
  if (records_work_items()) {
    w.field("work_items_recorded", static_cast<std::uint64_t>(items_.size()))
        .field("work_items_dropped", dropped_work_items());
  }
  w.field("complete", complete()).end_object();
  w.end_object();
  os << "\n";
}

// --- compact JSONL run record ----------------------------------------------

void TraceRecorder::write_run_record(std::ostream& os) const {
  {
    JsonWriter w(os);
    w.begin_object()
        .field("type", "meta")
        .field("version", std::uint64_t{1})
        .field("rounds_seen", rounds_seen_)
        .field("skipped_rounds", skipped_rounds_)
        .field("total_messages", total_messages_)
        .field("events_recorded", static_cast<std::uint64_t>(events_.size()))
        .field("events_dropped", dropped_events())
        .field("top_k", static_cast<std::uint64_t>(opt_.top_k));
    if (records_work_items()) {
      w.field("work_items_recorded",
              static_cast<std::uint64_t>(items_.size()))
          .field("work_items_dropped", dropped_work_items());
    }
    // Satellite contract: a truncated record is stamped as such so it can
    // never be mistaken for a complete profile.
    w.field("complete", complete());
    w.key("runs").begin_array();
    for (const RunInfo& r : runs_) {
      w.begin_object()
          .field("label", r.label)
          .field("nodes", r.nodes)
          .field("links", r.links)
          .field("rounds", r.rounds)
          .field("messages", r.messages)
          .end_object();
    }
    w.end_array().end_object();
    os << "\n";
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    JsonWriter w(os);
    if (e.kind == TraceEvent::Kind::kGap) {
      w.begin_object()
          .field("type", "gap")
          .field("run", static_cast<std::uint64_t>(e.run))
          .field("first_round", e.round)
          .field("rounds", e.rounds)
          .end_object();
      os << "\n";
      continue;
    }
    w.begin_object()
        .field("type", "round")
        .field("run", static_cast<std::uint64_t>(e.run))
        .field("round", e.round)
        .field("msgs", e.messages)
        .field("senders", static_cast<std::uint64_t>(e.senders))
        .field("receivers", static_cast<std::uint64_t>(e.receivers))
        .field("max_link_congestion", e.max_link_congestion)
        .field("send_ns", static_cast<std::uint64_t>(e.send_s * 1e9))
        .field("deliver_ns", static_cast<std::uint64_t>(e.deliver_s * 1e9))
        .field("receive_ns", static_cast<std::uint64_t>(e.receive_s * 1e9));
    if (e.faults_dropped | e.faults_duplicated | e.faults_delayed |
        e.faults_deferred | e.faults_crash_dropped) {
      w.key("faults")
          .begin_object()
          .field("dropped", e.faults_dropped)
          .field("duplicated", e.faults_duplicated)
          .field("delayed", e.faults_delayed)
          .field("deferred", e.faults_deferred)
          .field("crash_dropped", e.faults_crash_dropped)
          .end_object();
    }
    w.key("top_links").begin_array();
    for (const LinkLoad& l : e.top_links) {
      w.begin_object()
          .field("from", static_cast<std::uint64_t>(l.from))
          .field("to", static_cast<std::uint64_t>(l.to))
          .field("n", l.messages)
          .end_object();
    }
    w.end_array().end_object();
    os << "\n";
  }
  if (records_work_items()) {
    // The critical-path block rides in the same JSONL stream: one
    // {"type":"critpath", ...} line after the per-round lines.
    write_critpath_record_line(analyze_critical_path(*this), os);
  }
}

}  // namespace dapsp::obs
