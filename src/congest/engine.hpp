// Synchronous CONGEST round engine.
//
// Executes one `Protocol` instance per node in lockstep rounds that match
// the paper's algorithm structure (send at the start of a round, receive at
// the end of the same round):
//   round 0:  Protocol::init acts as the send step (the paper's algorithms
//             mostly stay silent here; Algorithm 2's source does send), then
//             messages are delivered and receive_phase runs.
//   round r:  send_phase (may send along incident links, based on state from
//             the end of round r-1), delivery, receive_phase (sees every
//             message sent this round via Context::inbox(); sending here is
//             an error).
// This send/receive split matters: with zero-weight edges a pipelined
// entry's scheduled send round can equal its arrival round, so an engine
// that delivered messages one round later would miss schedules forever.
//
// Within a round all nodes run concurrently on a thread pool; message
// delivery is gathered per receiver in (sender id, send order) order, so
// parallel and single-threaded executions are bit-identical.
//
// Sparse execution (the default): most algorithms leave almost every node
// idle in almost every round -- Algorithm 1's ceil(kappa + pos) schedule
// sends at most one message per node per round and whole stretches of
// rounds are silent.  The engine therefore runs a node's send_phase only
// when the node's `next_send_round()` hint says it may act (or the default
// hint, "every round", applies), and its receive_phase only when its inbox
// is non-empty.  `Engine::run` additionally fast-forwards the round counter
// across provably silent gaps.  Round/message/congestion statistics are
// bit-identical to the dense schedule (see docs/PERF.md for the argument);
// `EngineOptions::dense_fallback` keeps the exhaustive all-nodes-per-round
// path as the correctness oracle.
//
// Termination: the engine stops at `max_rounds`, or earlier when no message
// is in flight and every protocol reports `quiescent()` -- i.e. it would
// never spontaneously send again without new input.  Quiescence detection is
// a simulator-level convenience (a global observer); the algorithms' own
// termination arguments are their round bounds, which tests assert.
#pragma once

#include <chrono>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "util/thread_pool.hpp"

#include "congest/message.hpp"
#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::obs {
class TraceRecorder;
struct TraceEvent;
}  // namespace dapsp::obs

namespace dapsp::congest {

class Engine;
struct FaultPlan;
class FaultPlane;
class MessagePlane;

/// Per-node, per-round view handed to protocol code.
///
/// Abstract so that protocol instances can run either directly on the
/// engine or behind the multiplexer (congest/multiplex.hpp), which queues
/// their sends to respect the one-message-per-link-per-round budget.
class Context {
 public:
  virtual ~Context() = default;

  NodeId self() const noexcept { return self_; }
  Round round() const noexcept { return round_; }
  virtual NodeId node_count() const noexcept = 0;

  /// Communication neighbors (sorted ascending).
  virtual std::span<const NodeId> neighbors() const noexcept = 0;

  /// Messages sent to this node in this round's send phase, ordered by
  /// (sender id, send order).  Empty during the send phase.
  std::span<const Envelope> inbox() const noexcept { return inbox_; }

  /// Sends `m` along the link to `to` (must be a neighbor).  Only legal in
  /// init / send_phase; throws in receive_phase.
  virtual void send(NodeId to, const Message& m) = 0;

  /// Sends `m` along every incident link.
  virtual void broadcast(const Message& m) = 0;

 protected:
  Context(NodeId self, Round round, std::span<const Envelope> inbox,
          bool may_send)
      : self_(self), round_(round), inbox_(inbox), may_send_(may_send) {}
  Context(const Context&) = default;
  Context& operator=(const Context&) = default;

  NodeId self_;
  Round round_;
  std::span<const Envelope> inbox_;
  bool may_send_;
};

/// Node-local protocol logic.  Implementations own only their node's state;
/// the engine guarantees each phase runs exactly once per node per round.
class Protocol {
 public:
  /// Sentinel for next_send_round: the node will never send spontaneously
  /// (it may still be woken by an incoming message).
  static constexpr Round kNeverSends = std::numeric_limits<Round>::max();

  virtual ~Protocol() = default;

  /// Round 0 setup; acts as round 0's send step (sending allowed).
  virtual void init(Context& /*ctx*/) {}

  /// Start of round r: may send, inbox empty.
  virtual void send_phase(Context& /*ctx*/) {}

  /// End of round r: sees everything sent this round, may not send.
  virtual void receive_phase(Context& /*ctx*/) {}

  /// True if, absent further incoming messages, this node will never send
  /// again.  Default suits purely reactive protocols.
  virtual bool quiescent() const { return true; }

  /// Sparse-scheduler hint: the earliest round > `now` in which this node
  /// might send spontaneously (i.e. without receiving anything further), or
  /// kNeverSends if it will stay silent until a message arrives.  The engine
  /// re-queries after init and after every send_phase / receive_phase the
  /// node participates in, and guarantees send_phase runs in the returned
  /// round (sooner if a message arrives in between).
  ///
  /// The default, "next round, always", reproduces the dense schedule
  /// exactly, so protocols without a hint behave as before (every round).
  ///
  /// Contract (required for sparse/dense bit-identical stats; see
  /// docs/PERF.md): the hint must never be later than the node's true next
  /// spontaneous send, and in rounds where the node neither sends nor
  /// receives, `send_phase` must be a no-op on observable state and
  /// `quiescent()` must not change.  `receive_phase` with an empty inbox
  /// must likewise be a no-op (the sparse engine skips it).
  virtual Round next_send_round(Round now) const { return now + 1; }
};

/// Observer invoked once per delivered message (during a single-threaded
/// accounting pass in deterministic (sender, send order) order, so
/// implementations need no locking).  For debugging, visualization, and the
/// message-wave benches.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_message(Round round, NodeId from, NodeId to,
                          const Message& msg) = 0;
};

/// Ready-made sink: keeps up to `limit` events in memory.
class MessageLog final : public TraceSink {
 public:
  struct Event {
    Round round;
    NodeId from;
    NodeId to;
    Message msg;
  };

  explicit MessageLog(std::size_t limit = 100000) : limit_(limit) {}

  void on_message(Round round, NodeId from, NodeId to,
                  const Message& msg) override {
    if (events_.size() < limit_) events_.push_back({round, from, to, msg});
    ++total_;
  }

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t total() const { return total_; }
  bool truncated() const { return total_ > events_.size(); }

 private:
  std::size_t limit_;
  std::vector<Event> events_;
  std::uint64_t total_ = 0;
};

struct EngineOptions {
  Round max_rounds = 1'000'000;
  bool stop_on_quiescence = true;
  bool record_per_round = false;
  /// Deterministically permute each inbox instead of delivering in
  /// (sender, send order).  The CONGEST model does not promise any arrival
  /// order; tests flip this to prove protocols only rely on message
  /// *content*.  Seeded per (receiver, round), so runs stay reproducible.
  bool scramble_inbox = false;
  std::uint64_t scramble_seed = 0x5eed;
  /// Worker threads for node execution; 0 = use the process-global pool.
  /// Results are bit-identical for every value (tested).
  std::size_t threads = 0;
  /// Pin the resolved pool's worker threads round-robin across CPUs
  /// (Linux-only; a no-op elsewhere).  Pure scheduling hint: results are
  /// bit-identical with pinning on or off.
  bool pin_threads = false;
  /// Optional message observer (not owned; must outlive the engine).
  TraceSink* trace = nullptr;
  /// Optional per-round trace recorder (not owned; must outlive the
  /// engine).  Receives one event per executed round -- message count,
  /// top-K link congestion, phase wall-clock -- and one event per
  /// fast-forwarded gap; see obs/trace.hpp.  Null (the default) costs
  /// nothing: deterministic stats and solver outputs are identical with
  /// the recorder on or off (tested).
  obs::TraceRecorder* recorder = nullptr;
  /// Run every node every round (the original exhaustive schedule) instead
  /// of the sparse active-set scheduler.  Kept as the correctness oracle:
  /// stats and protocol outcomes are bit-identical either way (tested).
  bool dense_fallback = false;
  /// Optional fault plan (not owned; must outlive the engine).  Null, or a
  /// plan with no fault enabled, costs nothing: the engine never constructs
  /// the fault plane and the delivery path is the pre-fault code, so outputs
  /// and RunStats are bit-identical to a faultless build (tested).  See
  /// congest/faults.hpp for semantics.
  const FaultPlan* faults = nullptr;
  /// Message-exchange backend (not owned; must outlive the engine).  Null
  /// falls back to the process-global plane (Engine::set_global_plane) and
  /// then to the in-process singleton, which costs nothing: the engine never
  /// serializes a round unless the resolved plane is remote().  A remote
  /// plane is incompatible with a simulated FaultPlan (real transports fail
  /// for real; see congest/plane.hpp) -- the constructor throws on the
  /// combination.
  MessagePlane* plane = nullptr;
};

/// The engine's concrete per-node Context.  One instance per node lives for
/// the whole run and is re-bound per phase (no per-phase construction); it
/// also caches the last resolved link slot so repeated sends to the same
/// neighbor (parent pointers, pipelined relays) skip the binary search.
class NodeContext final : public Context {
 public:
  NodeContext(Engine& e, NodeId self)
      : Context(self, 0, {}, false), engine_(&e) {}
  NodeContext(const NodeContext&) = default;
  NodeContext& operator=(const NodeContext&) = default;

  NodeId node_count() const noexcept override;
  std::span<const NodeId> neighbors() const noexcept override;
  void send(NodeId to, const Message& m) override;
  void broadcast(const Message& m) override;

  /// Engine plumbing: repoint this context at a new phase.
  void rebind(Round round, std::span<const Envelope> inbox,
              bool may_send) noexcept {
    round_ = round;
    inbox_ = inbox;
    may_send_ = may_send;
  }

 private:
  Engine* engine_;
  NodeId last_to_ = graph::kNoNode;  // send-slot cache
  std::size_t last_slot_ = 0;
};

class Engine {
 public:
  /// `protocols` must contain exactly one entry per node.
  Engine(const graph::Graph& g,
         std::vector<std::unique_ptr<Protocol>> protocols,
         EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs to quiescence or the round limit; returns accumulated stats.
  /// May be called once per engine.
  RunStats run();

  /// Executes exactly one round (for step-debugging and tests).  Returns the
  /// number of messages sent in that round.  Never fast-forwards: a silent
  /// round advances the counter by exactly one.
  std::uint64_t step();

  const graph::Graph& graph() const noexcept { return graph_; }
  Protocol& protocol(NodeId v) { return *protocols_[v]; }
  const Protocol& protocol(NodeId v) const { return *protocols_[v]; }
  const RunStats& stats() const noexcept { return stats_; }
  Round current_round() const noexcept { return round_; }

  /// Process-wide overrides for equivalence tests and A/B benches: force
  /// every subsequently constructed engine onto the dense fallback path
  /// and/or a fixed thread count, regardless of its EngineOptions.  Set them
  /// before constructing engines (they are latched in the constructor);
  /// kNoThreadOverride clears the thread override.
  static constexpr std::size_t kNoThreadOverride =
      std::numeric_limits<std::size_t>::max();
  static void set_force_dense(bool on) noexcept;
  static bool force_dense() noexcept;
  static void set_force_threads(std::size_t threads) noexcept;
  /// Force worker pinning for every subsequently constructed engine (how the
  /// CLI's --pin flag reaches engines built deep inside the solvers).
  static void set_force_pin(bool on) noexcept;
  static bool force_pin() noexcept;

  /// Process-wide trace recorder, latched by every subsequently constructed
  /// engine whose options carry no recorder of their own.  This is how the
  /// CLI's --trace flag observes engines built deep inside the solvers
  /// without threading a pointer through every call chain; null clears it.
  /// Same single-threaded-setup contract as the force_* overrides.
  static void set_global_recorder(obs::TraceRecorder* rec) noexcept;
  static obs::TraceRecorder* global_recorder() noexcept;

  /// Process-wide fault plan, latched by every subsequently constructed
  /// engine whose options carry no plan of their own -- how the CLI's
  /// --faults flag reaches engines built deep inside the solvers.  Null
  /// clears it; same single-threaded-setup contract as the overrides above.
  static void set_global_fault_plan(const FaultPlan* plan) noexcept;
  static const FaultPlan* global_fault_plan() noexcept;

  /// Process-wide message plane, latched by every subsequently constructed
  /// engine whose options carry no plane of their own -- how the socket
  /// worker (net/worker.*) reaches the engines built deep inside the
  /// solvers.  Null clears it (engines then use the in-process singleton);
  /// same single-threaded-setup contract as the overrides above.
  static void set_global_plane(MessagePlane* plane) noexcept;
  static MessagePlane* global_plane() noexcept;

  /// Heap bytes currently reserved by the reusable message plane (outbox
  /// columns, inboxes, scheduler and accounting scratch).  All of it is
  /// grow-only across rounds, so once a run reaches steady state this value
  /// stops changing -- the zero-allocation tests assert exactly that.  Host
  /// observability, never part of the deterministic stats.
  std::size_t plane_capacity_bytes() const;

  // Low-level send plumbing for Context implementations (not for protocol
  // code; protocols must go through Context so the phase rules hold).
  std::size_t link_slot(NodeId from, NodeId to) const;
  std::size_t link_base(NodeId v) const { return link_base_[v]; }
  void enqueue(NodeId from, std::size_t slot, const Message& m);

 private:
  using ClockTp = std::chrono::steady_clock::time_point;

  /// How deliver() discovers work: every node (init round / dense path) or
  /// only the senders that were active this round.
  enum class DeliverScope { kAllNodes, kActiveOnly };

  void run_init_round();
  void run_loop();
  /// Delivers this round's sends.  `t_start` is the timestamp taken at the
  /// end of the send phase (which doubles as delivery start); deliver()
  /// reads the clock once at its end and returns that timestamp so the
  /// caller can time the receive phase off it.  Together with the run-loop
  /// tick chaining (round end doubles as next round's start, see
  /// last_tick_) a steady-state round reads the clock 3 times instead of 6.
  ClockTp deliver(DeliverScope scope, ClockTp t_start);
  void gather_inbox(NodeId v);
  void trace_messages();
  /// Remote-plane round path (see congest/plane.hpp): serialize the
  /// finalized senders into the canonical block / rebuild the receive side
  /// from the authoritative bytes the plane returned.
  void encode_round_block(std::string& out) const;
  void decode_and_gather(const std::string& block);
  void gather_inbox_wire(NodeId v);
  bool all_quiescent() const;
  /// Re-queries quiescent() for this round's senders and receivers and folds
  /// the result into the cached non-quiescent count.  Sound because the
  /// Protocol contract (see next_send_round) forbids quiescent() changing in
  /// a round where the node neither sent nor received.  Disabled under
  /// faults, where down-forever nodes need the bespoke scan.
  void refresh_quiescence();
  /// Emits one obs::WorkItem per node that sent or received this round --
  /// a set (and ordering: node id ascending) that is identical for both
  /// schedulers and every thread count, so the critical path extracted
  /// from the items is bit-identical too.  Called at the end of every
  /// executed round when `profile_` is set.
  void record_work_items();
  /// Adds `ns` of node-local phase time for this round (worker-thread safe:
  /// each worker touches only its own node's slot).
  void profile_node(NodeId v, std::uint64_t ns) noexcept;

  // --- sparse scheduler ---
  void schedule(NodeId v, Round wake);
  void reschedule_after_phase(std::span<const NodeId> nodes);
  void build_active_set();
  Round next_heap_wake();
  void skip_silent_rounds(Round count);

  const graph::Graph& graph_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  EngineOptions options_;
  bool dense_ = false;
  obs::TraceRecorder* recorder_ = nullptr;  // latched in ctor, may be global
  /// Constructed only when an enabled plan was attached (options or global);
  /// every fault branch in the engine is guarded on this being non-null.
  std::unique_ptr<FaultPlane> faults_;
  MessagePlane* plane_ = nullptr;  // latched in ctor, never null after
  bool plane_remote_ = false;      // == plane_->remote(), latched
  obs::TraceEvent* trace_event_ = nullptr;  // this round's slot, if recording
  std::unique_ptr<util::ThreadPool> own_pool_;  // when an explicit count is set
  util::ThreadPool* pool_ = nullptr;            // resolved once, never rechecked
  RunStats stats_;
  Round round_ = 0;
  bool init_done_ = false;
  /// Round-boundary tick chaining, active only inside run(): the timestamp
  /// taken at the end of a round's receive phase doubles as the next
  /// round's send-phase start, saving one clock read per round.  External
  /// step() callers keep fresh starts -- otherwise the wall time they spend
  /// between calls would be billed to send_seconds.
  bool chain_ticks_ = false;
  ClockTp last_tick_{};

  // --- zero-allocation message plane (steady state) ---
  //
  // Each sender appends its round's messages to flat per-node columns
  // (struct-of-arrays: tag stream + packed used-prefix payloads, see
  // MessageColumns) in send order; per directed link (CSR position in the
  // sender's comm adjacency) only a count and an offset into those columns
  // are kept.  All buffers are reused across rounds, so after warm-up a
  // round allocates nothing (plane_capacity_bytes() proves it).
  struct Outbox {
    std::vector<std::uint32_t> slots;   ///< global link slot per send
    MessageColumns msgs;                ///< parallel to `slots`, send order
    std::vector<std::uint32_t> touched; ///< distinct slots, first-touch order
    MessageColumns sorted;              ///< per-link-contiguous scatter buffer
    std::vector<std::uint32_t> pos;     ///< scatter permutation scratch
    bool has_dup = false;               ///< some link carries > 1 message
  };
  std::vector<std::size_t> link_base_;       // per node, into link arrays
  std::vector<NodeId> link_target_;          // receiver of each directed link
  std::vector<std::uint32_t> link_cnt_;      // messages this round, per link
  std::vector<std::uint32_t> link_off_;      // start into sender columns
  std::vector<std::uint64_t> link_lifetime_count_;  // per link, whole run
  std::vector<Outbox> out_;                  // per sender, reused
  std::vector<std::uint8_t> sent_mark_;      // sender had sends this round
  std::vector<NodeId> touched_senders_;      // senders with messages, per round
  std::uint64_t round_messages_ = 0;         // messages this round
  std::vector<Message> msg_scratch_;         // materialized view for
                                             // faults/trace consumers

  // Remote-plane scratch (sized only when plane_remote_): the encoded round
  // out-block and the decoded receive side -- per-link counts/offsets into
  // one arrival-order column set, mirroring link_cnt_/link_off_ so the
  // gather loop is the same shape as the in-process one.
  std::string wire_block_;
  MessageColumns wire_cols_;
  std::vector<std::uint32_t> wire_cnt_;
  std::vector<std::uint32_t> wire_off_;
  std::vector<std::uint32_t> wire_slots_;  // touched slots, for cheap reset

  // Per-sender accounting partials so the sender-side pass can run on the
  // pool and still reduce deterministically.
  struct SenderPartial {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t max_cong = 0;
    std::uint64_t max_link_total = 0;
    std::uint32_t max_fields = 0;
  };
  std::vector<SenderPartial> partials_;

  // --- quiescence cache ---
  //
  // all_quiescent() used to scan every protocol on every silent executed
  // round -- the dominant cost of sparse pipelined runs (profiled at ~32% of
  // CPU on cycle/4096).  The Protocol contract pins quiescent() transitions
  // to rounds where the node sends or receives, so the engine keeps a
  // per-node flag plus a non-quiescent count and re-queries only this
  // round's senders and receivers.  Off under faults (crash semantics need
  // the bespoke scan).
  bool track_quiet_ = false;
  std::vector<std::uint8_t> quiet_;   // 1 = quiescent as of last query
  std::uint64_t nonquiet_ = 0;        // number of zeros in quiet_

  // Incoming link list per receiver, flattened CSR: (sender, link slot),
  // sender-ascending per receiver.
  struct InLink {
    NodeId from;
    std::size_t slot;
  };
  std::vector<InLink> in_links_;
  std::vector<std::size_t> in_base_;  // per node, into in_links_
  // Invariant between rounds (faultless path): every inbox is empty except
  // those of the most recent round's receivers_.  deliver() clears exactly
  // that list up front, so delivery touches O(senders + receivers) state
  // instead of all n inboxes -- on the dense path too, whose exhaustive
  // receive loop then reads empty spans for non-receivers (a no-op by the
  // Protocol contract).
  std::vector<std::vector<Envelope>> inbox_;
  std::vector<NodeId> receivers_;         // non-empty inboxes this round
  std::vector<std::uint8_t> inbox_mark_;  // dedup while building receivers_

  // --- work-item recording (critical-path profiler feed) ---
  //
  // Latched true when the recorder asks for work items; all vectors below
  // are sized only then, so a non-profiling run pays one predictable branch
  // per node phase.  Per-node wall-clock is written by each pool worker
  // into its own node's slot (race-free) and tagged with round_ + 1 so
  // stale values from earlier rounds can never leak into a later item.
  bool profile_ = false;
  std::vector<std::uint64_t> node_ns_;       // this round's phase time
  std::vector<Round> node_ns_round_;         // tag: round_ + 1; 0 = never
  std::vector<Round> last_item_round_;       // tag: round_ + 1; 0 = none
  std::vector<NodeId> profile_receivers_;    // sorted scratch
  std::vector<std::pair<std::uint64_t, std::uint32_t>>
      link_scratch_;                      // (count, slot) top-K staging

  // --- active-set scheduler state ---
  //
  // wake_round_[v] is authoritative; 0 means "activated this round, will be
  // re-scheduled after its phase" (real wakes are always >= 1).  Nodes due
  // exactly next round go on active_next_ (the dense-default fast path, no
  // heap traffic); later wakes go through a lazy min-heap whose stale
  // entries are dropped on pop by comparing against wake_round_.
  std::vector<Round> wake_round_;
  std::vector<std::pair<Round, NodeId>> heap_;  // min-heap on Round
  std::vector<NodeId> active_next_;
  std::vector<std::uint8_t> in_next_;
  std::vector<NodeId> active_now_;

  std::vector<NodeContext> contexts_;  // one per node, reused every phase
};

}  // namespace dapsp::congest
