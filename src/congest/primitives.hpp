// Distributed building blocks used by the composite algorithms (Alg. 3):
// BFS spanning tree construction, pipelined broadcast, convergecast max, and
// gather-to-all.  Each primitive runs its own engine over the communication
// graph and returns results plus the rounds consumed, so drivers can chain
// phases and add up stats exactly as the paper composes its steps.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "congest/engine.hpp"
#include "graph/graph.hpp"

namespace dapsp::congest {

/// Rooted BFS spanning tree of the communication graph.
struct BfsTree {
  NodeId root = 0;
  std::vector<NodeId> parent;               ///< kNoNode for root / unreached
  std::vector<std::uint32_t> depth;         ///< hop depth; 0 at root
  std::vector<std::vector<NodeId>> children;
  std::uint32_t height = 0;

  bool reached(NodeId v) const {
    return v == root || parent[v] != graph::kNoNode;
  }
};

/// Builds a BFS tree from `root` by flooding; O(D) rounds.  If `stats` is
/// non-null the phase's rounds/messages are accumulated into it.
BfsTree build_bfs_tree(const graph::Graph& g, NodeId root,
                       RunStats* stats = nullptr);

/// Pipelined broadcast of `values` (held by the root) down `tree`; every node
/// ends up with the full vector, in |values| + height + O(1) rounds.
/// Returns the per-node received copies (index 0 is the root's own copy).
std::vector<std::vector<std::int64_t>> broadcast_values(
    const graph::Graph& g, const BfsTree& tree,
    const std::vector<std::int64_t>& values, RunStats* stats = nullptr);

/// Convergecast maximum: each node contributes (value, id); the root learns
/// the maximum value and the smallest id achieving it, in height + O(1)
/// rounds.  Ties on value break toward the smaller node id.
std::pair<std::int64_t, NodeId> converge_max(
    const graph::Graph& g, const BfsTree& tree,
    const std::vector<std::int64_t>& value_per_node,
    RunStats* stats = nullptr);

/// Gathers every node's items to the root (pipelined up the tree) and then
/// broadcasts the concatenation to everyone: each node ends with the full
/// item list, sorted by (origin, payload).  Items are (origin, a, b) triples.
/// Rounds: O(total_items + height).
struct GatherItem {
  NodeId origin = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  friend auto operator<=>(const GatherItem&, const GatherItem&) = default;
};
std::vector<GatherItem> gather_to_all(
    const graph::Graph& g, const BfsTree& tree,
    const std::vector<std::vector<GatherItem>>& items_per_node,
    RunStats* stats = nullptr);

}  // namespace dapsp::congest
