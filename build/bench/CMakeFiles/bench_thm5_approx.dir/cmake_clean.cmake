file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_approx.dir/bench_thm5_approx.cpp.o"
  "CMakeFiles/bench_thm5_approx.dir/bench_thm5_approx.cpp.o.d"
  "bench_thm5_approx"
  "bench_thm5_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
