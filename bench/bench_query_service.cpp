// Query-service throughput (google-benchmark): the serving-side numbers the
// distance-oracle subsystem exists for.  Reports queries/sec
// (items_per_second) for
//   * raw oracle point lookups (the flat-matrix floor),
//   * batched point lookups through the full service (1 vs 8 threads,
//     including id validation and metrics),
//   * full-path reconstruction, cold cache (capacity 0, every query
//     reconstructs) vs warm cache (pairs repeat, LRU serves them),
//   * end-to-end oracle builds per solver (the amortized cost of standing a
//     service up).
// The n=256 oracle is built from the sequential reference sweep so the
// binary is fast from a cold build; the build benches run the CONGEST
// solvers themselves at small n.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "service/query_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace dapsp;
using service::DistanceOracle;
using service::Query;
using service::QueryService;
using service::QueryServiceConfig;
using service::QueryType;

constexpr graph::NodeId kServeN = 256;

const graph::Graph& serve_graph() {
  static const graph::Graph g =
      graph::erdos_renyi(kServeN, 6.0 / kServeN, {0, 8, 0.2}, 42);
  return g;
}

const DistanceOracle& serve_oracle() {
  static const DistanceOracle o = service::build_oracle(
      serve_graph(), {service::Solver::kReference, 0, 0.5});
  return o;
}

std::vector<Query> random_queries(QueryType type, std::size_t count,
                                  std::size_t distinct_pairs,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Query> pool(distinct_pairs);
  for (auto& q : pool) {
    q.type = type;
    q.u = static_cast<graph::NodeId>(rng.below(kServeN));
    q.v = static_cast<graph::NodeId>(rng.below(kServeN));
  }
  std::vector<Query> out(count);
  for (auto& q : out) q = pool[rng.below(pool.size())];
  return out;
}

/// Raw oracle reads: the floor every service-layer number is compared to.
void BM_OracleDistRaw(benchmark::State& state) {
  const DistanceOracle& o = serve_oracle();
  util::Xoshiro256 rng(1);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs(4096);
  for (auto& [u, v] : pairs) {
    u = static_cast<graph::NodeId>(rng.below(kServeN));
    v = static_cast<graph::NodeId>(rng.below(kServeN));
  }
  graph::Weight acc = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : pairs) acc += o.dist(u, v);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_OracleDistRaw);

/// Batched point lookups through the service; Arg = thread count.
void BM_ServicePointLookup(benchmark::State& state) {
  QueryServiceConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  const QueryService svc(serve_oracle(), cfg);
  const auto batch = random_queries(QueryType::kDist, 1 << 16, 1 << 16, 2);
  for (auto _ : state) {
    auto results = svc.query_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServicePointLookup)->Arg(1)->Arg(8);

/// Path reconstruction with the cache disabled: every query walks next hops.
void BM_ServicePathCold(benchmark::State& state) {
  QueryServiceConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.path_cache_capacity = 0;
  const QueryService svc(serve_oracle(), cfg);
  const auto batch = random_queries(QueryType::kPath, 1 << 14, 1 << 14, 3);
  for (auto _ : state) {
    auto results = svc.query_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServicePathCold)->Arg(1)->Arg(8);

/// Path reconstruction when queries repeat over 1k pairs and the LRU holds
/// them all: steady state is pure cache hits.
void BM_ServicePathWarm(benchmark::State& state) {
  QueryServiceConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.path_cache_capacity = 1 << 12;
  const QueryService svc(serve_oracle(), cfg);
  const auto batch = random_queries(QueryType::kPath, 1 << 14, 1 << 10, 4);
  for (auto _ : state) {
    auto results = svc.query_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  const auto st = svc.stats();
  state.counters["hit_rate"] = st.cache_hit_rate();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServicePathWarm)->Arg(1)->Arg(8);

/// End-to-end oracle builds: solver run + matrix flatten + next-hop table.
void BM_OracleBuild(benchmark::State& state) {
  const auto solver = static_cast<service::Solver>(state.range(0));
  const graph::Graph g = graph::erdos_renyi(32, 0.15, {0, 6, 0.2}, 7);
  for (auto _ : state) {
    auto oracle = service::build_oracle(g, {solver, 0, 0.5});
    benchmark::DoNotOptimize(oracle.node_count());
    state.counters["rounds"] =
        static_cast<double>(oracle.build_stats().rounds);
  }
}
BENCHMARK(BM_OracleBuild)
    ->Arg(static_cast<int>(service::Solver::kPipelined))
    ->Arg(static_cast<int>(service::Solver::kBlocker))
    ->Arg(static_cast<int>(service::Solver::kScaled))
    ->Arg(static_cast<int>(service::Solver::kApprox))
    ->Arg(static_cast<int>(service::Solver::kReference));

}  // namespace

BENCHMARK_MAIN();
