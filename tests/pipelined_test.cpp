// Tests for Algorithm 1, the pipelined (h,k)-SSP algorithm.  The oracle is
// the sequential hop-limited DP; every sweep checks distances, hop counts,
// the Lemma II.14 round bound, and the Invariant-2 list occupancy bound.
#include <gtest/gtest.h>

#include <string>

#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "seq/dijkstra.hpp"
#include "seq/hop_limited.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::WeightSpec;

/// Validates one Algorithm-1 run against the paper's guarantee
/// (Lemma II.13): for every pair whose *true* shortest path is achievable
/// within h hops ("in scope" -- the CSSSP tree-membership condition), the
/// exact distance and min-hop count must be computed; for other pairs the
/// value is only required to be a sound over-estimate (the weight of some
/// <= h-hop walk, hence >= the h-hop optimum) or infinity.
void check_against_oracle(const Graph& g, const KsspResult& res,
                          std::uint32_t h, const std::string& label) {
  SCOPED_TRACE(label);
  // Note: the run may stop at the Lemma II.14 round budget with non-SP
  // stragglers still scheduled -- that is the algorithm's designed
  // termination, so hit_round_limit is not an error here.
  for (std::size_t i = 0; i < res.sources.size(); ++i) {
    const auto dj = seq::dijkstra(g, res.sources[i]);
    const auto hop = seq::hop_limited_sssp(g, res.sources[i], h);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const bool in_scope = dj.dist[v] != kInfDist && dj.hops[v] <= h;
      if (in_scope) {
        ASSERT_EQ(res.dist[i][v], dj.dist[v])
            << "source " << res.sources[i] << " node " << v;
        EXPECT_EQ(res.hops[i][v], dj.hops[v])
            << "source " << res.sources[i] << " node " << v;
        if (v != res.sources[i]) {
          // Parent must be a real predecessor over an existing arc.
          const NodeId p = res.parent[i][v];
          ASSERT_NE(p, kNoNode);
          EXPECT_TRUE(g.arc_weight(p, v).has_value());
        }
      } else {
        // Sound over-estimate: never below the h-hop optimum.
        EXPECT_TRUE(res.dist[i][v] == kInfDist ||
                    res.dist[i][v] >= hop.dist[v])
            << "source " << res.sources[i] << " node " << v;
      }
    }
  }
  // Lemma II.14: everything settles within the theoretical bound.
  EXPECT_LE(res.settle_round, res.theoretical_bound) << label;
}

/// Invariant 2 (Lemma II.11): per-source list occupancy <= h/gamma + 1.
/// The literal INSERT policy respects the cap exactly; the delivery-safe
/// dominance default keeps extra non-dominated entries and is held to a 2x
/// envelope (measured; see DESIGN.md note 3).
void check_invariant2(const KsspResult& res, std::uint32_t h,
                      std::uint64_t k, Weight delta, ListPolicy policy) {
  const GammaSq gamma = GammaSq::paper(k, h, static_cast<std::uint64_t>(delta));
  const std::uint64_t cap =
      gamma.num == 0
          ? h + 1
          : util::ceil_mul_sqrt(h, gamma.den, gamma.num) + 1;
  if (policy == ListPolicy::kLiteral) {
    EXPECT_LE(res.max_entries_per_source, cap);
  } else {
    EXPECT_LE(res.max_entries_per_source, 2 * cap + 2);
  }
}

struct SweepCase {
  NodeId n;
  double p;
  WeightSpec w;
  bool directed;
  std::uint32_t h;
  std::uint32_t k;
  std::uint64_t seed;
};

class PipelinedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelinedSweep, MatchesHopLimitedOracle) {
  const SweepCase& c = GetParam();
  const Graph g = graph::erdos_renyi(c.n, c.p, c.w, c.seed, c.directed);

  PipelinedParams params;
  for (std::uint32_t i = 0; i < c.k; ++i) {
    params.sources.push_back((i * 7) % c.n);
  }
  params.h = c.h;
  params.delta = graph::max_finite_hop_distance(g, c.h);

  for (const ListPolicy policy :
       {ListPolicy::kDominance, ListPolicy::kLiteral}) {
    params.policy = policy;
    const KsspResult res = pipelined_kssp(g, params);
    check_against_oracle(g, res, c.h,
                         policy == ListPolicy::kLiteral ? "literal" : "dom");
    check_invariant2(res, c.h, res.sources.size(), params.delta, policy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PipelinedSweep,
    ::testing::Values(
        // Undirected, small weights.
        SweepCase{20, 0.15, {0, 4, 0.0}, false, 5, 4, 1},
        SweepCase{24, 0.12, {0, 8, 0.0}, false, 8, 6, 2},
        // Zero-heavy weights (the regime prior work could not handle).
        SweepCase{20, 0.2, {0, 3, 0.5}, false, 6, 5, 3},
        SweepCase{26, 0.15, {0, 1, 0.8}, false, 10, 8, 4},
        SweepCase{22, 0.2, {0, 0, 0.0}, false, 6, 5, 5},  // all-zero weights
        // Directed.
        SweepCase{20, 0.15, {0, 5, 0.2}, true, 6, 5, 6},
        SweepCase{24, 0.1, {0, 6, 0.3}, true, 9, 7, 7},
        SweepCase{18, 0.25, {0, 7, 0.1}, true, 4, 18, 8},  // k = n
        // Larger weights.
        SweepCase{20, 0.15, {1, 30, 0.0}, false, 6, 5, 9},
        SweepCase{20, 0.15, {0, 50, 0.3}, true, 7, 6, 10},
        // Single source.
        SweepCase{28, 0.12, {0, 6, 0.3}, false, 8, 1, 11},
        // h = 1 edge case.
        SweepCase{16, 0.3, {0, 5, 0.2}, false, 1, 4, 12},
        // h larger than any path.
        SweepCase{14, 0.25, {0, 4, 0.2}, false, 40, 5, 13}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      const SweepCase& c = param_info.param;
      return "n" + std::to_string(c.n) + (c.directed ? "d" : "u") + "h" +
             std::to_string(c.h) + "k" + std::to_string(c.k) + "s" +
             std::to_string(c.seed);
    });

TEST(Pipelined, StructuredTopologies) {
  const WeightSpec w{0, 5, 0.3};
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    check_against_oracle(
        graph::grid(4, 5, w, seed),
        [&] {
          const Graph g = graph::grid(4, 5, w, seed);
          PipelinedParams p;
          p.sources = {0, 7, 19};
          p.h = 6;
          p.delta = graph::max_finite_hop_distance(g, 6);
          return pipelined_kssp(g, p);
        }(),
        6, "grid seed " + std::to_string(seed));
  }
  {
    const Graph g = graph::cycle(12, w, 3);
    PipelinedParams p;
    p.sources = {0, 5};
    p.h = 11;
    p.delta = graph::max_finite_hop_distance(g, 11);
    check_against_oracle(g, pipelined_kssp(g, p), 11, "cycle");
  }
  {
    const Graph g = graph::star(10, w, 4);
    PipelinedParams p;
    p.sources = {0, 1, 9};
    p.h = 2;
    p.delta = graph::max_finite_hop_distance(g, 2);
    check_against_oracle(g, pipelined_kssp(g, p), 2, "star");
  }
}

TEST(Pipelined, Fig1GadgetZeroChains) {
  // The gadget that defeats naive h-hop tree constructions; Algorithm 1 must
  // still produce correct h-hop distances on it.
  for (const std::uint32_t h : {2u, 3u, 4u, 6u}) {
    const Graph g = graph::fig1_gadget(4);
    PipelinedParams p;
    for (NodeId v = 0; v < g.node_count(); ++v) p.sources.push_back(v);
    p.h = h;
    p.delta = graph::max_finite_hop_distance(g, h);
    check_against_oracle(g, pipelined_kssp(g, p), h,
                         "fig1 h=" + std::to_string(h));
  }
}

TEST(Pipelined, ApspDriverMatchesDijkstra) {
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const Graph g = graph::erdos_renyi(18, 0.2, {0, 6, 0.3}, seed,
                                       seed % 2 == 0);
    const Weight delta = graph::max_finite_distance(g);
    const KsspResult res = pipelined_apsp(g, delta);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const auto dj = seq::dijkstra(g, s);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(res.dist[s][v], dj.dist[v])
            << "seed " << seed << " pair " << s << "->" << v;
      }
    }
    // Theorem I.1(ii): within 2n*sqrt(Delta) + 2n rounds.
    EXPECT_LE(res.settle_round,
              bounds::apsp_pipelined(g.node_count(),
                                     static_cast<std::uint64_t>(delta)));
  }
}

TEST(Pipelined, UnreachableNodesStayInfinite) {
  GraphBuilder b(6, /*directed=*/true);
  b.add_edge(0, 1, 2).add_edge(1, 2, 0).add_edge(3, 4, 1);
  const Graph g = std::move(b).build();
  PipelinedParams p;
  p.sources = {0, 3};
  p.h = 5;
  p.delta = 3;
  const KsspResult res = pipelined_kssp(g, p);
  EXPECT_EQ(res.dist[0][2], 2);
  EXPECT_EQ(res.dist[0][3], kInfDist);
  EXPECT_EQ(res.dist[0][5], kInfDist);
  EXPECT_EQ(res.dist[1][4], 1);
  EXPECT_EQ(res.dist[1][0], kInfDist);
}

TEST(Pipelined, OutOfScopePairsAreSoundOverestimates) {
  // 0 -> 1 -> 2 -> 3 all weight 0 (3 hops), plus a direct 0 -> 3 of weight 9.
  // With h = 1 only the expensive edge is in budget; with h = 3 the zero
  // route wins.  The h=1 value for (0,3) is a sound over-estimate of the
  // true distance 0 (whose min-hop path needs 3 hops -- out of scope).
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1, 0).add_edge(1, 2, 0).add_edge(2, 3, 0).add_edge(0, 3, 9);
  const Graph g = std::move(b).build();
  for (const std::uint32_t h : {1u, 3u}) {
    PipelinedParams p;
    p.sources = {0};
    p.h = h;
    p.delta = 9;
    const KsspResult res = pipelined_kssp(g, p);
    if (h == 1) {
      EXPECT_EQ(res.dist[0][3], 9);  // only the direct edge fits one hop
    } else {
      EXPECT_EQ(res.dist[0][3], 0);
      EXPECT_EQ(res.hops[0][3], 3u);
    }
  }
}

TEST(Pipelined, LiteralPolicySweep) {
  // The word-for-word INSERT transcription must satisfy the same guarantee.
  for (std::uint64_t seed = 70; seed < 76; ++seed) {
    const Graph g = graph::erdos_renyi(20, 0.18, {0, 5, 0.3}, seed,
                                       seed % 2 == 0);
    PipelinedParams p;
    p.sources = {0, 3, 6, 9, 12};
    p.h = 6;
    p.delta = graph::max_finite_hop_distance(g, 6);
    p.policy = ListPolicy::kLiteral;
    check_against_oracle(g, pipelined_kssp(g, p), 6,
                         "literal seed " + std::to_string(seed));
  }
}

TEST(Pipelined, DirectedArcsOnlyUsedInArcDirection) {
  // 0 -> 1 -> 2 directed path: node 0 must not be reachable from 2 even
  // though communication links are bidirectional.
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1, 1).add_edge(1, 2, 1);
  const Graph g = std::move(b).build();
  PipelinedParams p;
  p.sources = {2};
  p.h = 2;
  p.delta = 2;
  const KsspResult res = pipelined_kssp(g, p);
  EXPECT_EQ(res.dist[0][0], kInfDist);
  EXPECT_EQ(res.dist[0][1], kInfDist);
  EXPECT_EQ(res.dist[0][2], 0);
}

TEST(Pipelined, GammaAblationsStillExact) {
  // The paper's gamma choice only affects the round bound, never
  // correctness; unit-gamma keys must give identical distances.
  const Graph g = graph::erdos_renyi(18, 0.18, {0, 5, 0.3}, 42);
  const std::uint32_t h = 6;
  const Weight delta = graph::max_finite_hop_distance(g, h);

  for (const GammaSq gamma : {GammaSq::unit(), GammaSq{4, 1}, GammaSq{1, 9}}) {
    PipelinedParams p;
    p.sources = {0, 3, 6, 9};
    p.h = h;
    p.delta = delta;
    p.gamma = gamma;
    const KsspResult res = pipelined_kssp(g, p);
    SCOPED_TRACE("gamma^2 = " + std::to_string(gamma.num) + "/" +
                 std::to_string(gamma.den));
    for (std::size_t i = 0; i < res.sources.size(); ++i) {
      const auto dj = seq::dijkstra(g, res.sources[i]);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (dj.dist[v] != kInfDist && dj.hops[v] <= h) {
          ASSERT_EQ(res.dist[i][v], dj.dist[v]);
        }
      }
    }
  }
}

TEST(Pipelined, SelfSourceTrivia) {
  const Graph g = graph::path(4, {2, 2, 0.0}, 50);
  PipelinedParams p;
  p.sources = {1};
  p.h = 3;
  p.delta = 4;
  const KsspResult res = pipelined_kssp(g, p);
  EXPECT_EQ(res.dist[0][1], 0);
  EXPECT_EQ(res.hops[0][1], 0u);
  EXPECT_EQ(res.parent[0][1], kNoNode);
}

TEST(Pipelined, KsspFullMatchesDijkstra) {
  // Theorem I.1(iii): full k-SSP (h = n-1) is exact for every pair.
  for (std::uint64_t seed = 80; seed < 83; ++seed) {
    const Graph g = graph::erdos_renyi(20, 0.18, {0, 6, 0.3}, seed,
                                       seed % 2 == 1);
    const Weight delta = graph::max_finite_distance(g);
    const KsspResult res = pipelined_kssp_full(g, {1, 5, 9, 13}, delta);
    for (std::size_t i = 0; i < res.sources.size(); ++i) {
      const auto dj = seq::dijkstra(g, res.sources[i]);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        ASSERT_EQ(res.dist[i][v], dj.dist[v]) << "seed " << seed;
      }
    }
    // Theorem I.1(iii) bound: 2*sqrt(n*k*Delta) + n + k.
    EXPECT_LE(res.settle_round,
              bounds::k_ssp_pipelined(g.node_count(), 4,
                                      static_cast<std::uint64_t>(delta)));
  }
}

TEST(Pipelined, ParamValidation) {
  const Graph g = graph::path(4, {1, 1, 0.0}, 51);
  PipelinedParams p;
  p.h = 2;
  EXPECT_THROW(pipelined_kssp(g, p), std::logic_error);  // no sources
  p.sources = {9};
  EXPECT_THROW(pipelined_kssp(g, p), std::logic_error);  // out of range
  p.sources = {0};
  p.h = 0;
  EXPECT_THROW(pipelined_kssp(g, p), std::logic_error);  // h == 0
}

TEST(Pipelined, DuplicateSourcesDeduplicated) {
  const Graph g = graph::path(5, {1, 1, 0.0}, 52);
  PipelinedParams p;
  p.sources = {2, 2, 0, 2};
  p.h = 4;
  p.delta = 4;
  const KsspResult res = pipelined_kssp(g, p);
  ASSERT_EQ(res.sources.size(), 2u);
  EXPECT_EQ(res.sources[0], 0u);
  EXPECT_EQ(res.sources[1], 2u);
}

TEST(Pipelined, PerSourceSendsTrackListOccupancy) {
  // A node emits at most one message per list entry per schedule value, so
  // per-source sends stay near the per-source occupancy bound.
  const Graph g = graph::erdos_renyi(24, 0.15, {0, 6, 0.3}, 61);
  PipelinedParams p;
  for (NodeId v = 0; v < 24; v += 2) p.sources.push_back(v);
  p.h = 8;
  p.delta = graph::max_finite_hop_distance(g, 8);
  const KsspResult res = pipelined_kssp(g, p);
  EXPECT_GT(res.max_sends_per_source, 0u);
  // Refires (schedule shifts) can add a constant factor; 4x occupancy is a
  // conservative ceiling that catches runaway resend loops.
  EXPECT_LE(res.max_sends_per_source, 4 * (res.max_entries_per_source + 1));
}

TEST(Pipelined, MessageCongestionIsModest) {
  // At most one entry fires per node per round (schedules strictly
  // increase), so per-link congestion should be exactly 1.
  const Graph g = graph::erdos_renyi(24, 0.15, {0, 6, 0.3}, 60);
  PipelinedParams p;
  p.sources = {0, 4, 8, 12, 16, 20};
  p.h = 8;
  p.delta = graph::max_finite_hop_distance(g, 8);
  const KsspResult res = pipelined_kssp(g, p);
  EXPECT_EQ(res.stats.max_link_congestion, 1u);
}

}  // namespace
}  // namespace dapsp::core
