// Binary wire protocol tests: client-encoded frames through serve_binary
// and back through read_response must reproduce query_batch bit-identically,
// and every malformed-input class must come back as a structured ERROR frame
// (recoverable frames keep the session alive; unrecoverable truncation ends
// it after the error).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "serve/sharded_oracle.hpp"
#include "serve/snapshot_manager.hpp"
#include "serve/wire.hpp"
#include "service/query_service.hpp"

namespace dapsp::serve::wire {
namespace {

using graph::Graph;
using service::Query;
using service::QueryResult;
using service::QueryService;
using service::QueryType;

constexpr service::OracleBuildOptions kRef{service::Solver::kReference, 0,
                                           0.5};

/// Runs one client byte-string through the server loop; returns the parsed
/// response frames and reports the server's error count via *errors.
std::vector<Response> roundtrip(const QueryService& svc,
                                const std::string& request_bytes, int* errors,
                                const service::ServeOptions& opts = {}) {
  std::istringstream in(request_bytes);
  std::ostringstream out;
  *errors = serve_binary(svc, in, out, opts);
  std::istringstream rx(out.str());
  std::vector<Response> frames;
  while (auto f = read_response(rx)) frames.push_back(std::move(*f));
  return frames;
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Hand-rolled frame with arbitrary header bytes, for malformed-input tests.
std::string raw_frame(std::string payload) {
  std::string buf;
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  buf += payload;
  return buf;
}

class WireTest : public ::testing::Test {
 protected:
  WireTest()
      : g_(graph::erdos_renyi(20, 0.25, {0, 8, 0.25}, 1234)),
        svc_(service::build_oracle(g_, kRef)) {}

  Graph g_;
  QueryService svc_;
};

TEST_F(WireTest, BatchRoundtripMatchesQueryBatchBitIdentically) {
  std::vector<Query> queries;
  for (graph::NodeId u = 0; u < 6; ++u) {
    for (graph::NodeId v = 0; v < 6; ++v) {
      queries.push_back({QueryType::kDist, u, v});
      queries.push_back({QueryType::kNextHop, u, v});
      queries.push_back({QueryType::kPath, u, v});
    }
  }
  queries.push_back({QueryType::kDist, 99, 0});  // out of range -> ok=false

  std::string req;
  append_batch_request(req, queries);
  append_quit_request(req);
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].kind, Response::Kind::kBatch);

  const std::vector<QueryResult> expect = svc_.query_batch(queries);
  ASSERT_EQ(frames[0].results.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE(i);
    const QueryResult& got = frames[0].results[i];
    EXPECT_EQ(got.ok, expect[i].ok);
    EXPECT_EQ(got.type, expect[i].type);
    if (expect[i].ok) {
      EXPECT_EQ(got.dist, expect[i].dist);
      EXPECT_EQ(got.next_hop, expect[i].next_hop);
      EXPECT_EQ(got.path, expect[i].path);
    } else {
      EXPECT_EQ(got.error, expect[i].error);
    }
  }
}

TEST_F(WireTest, EmptyBatchIsValid) {
  std::string req;
  append_batch_request(req, {});
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, Response::Kind::kBatch);
  EXPECT_TRUE(frames[0].results.empty());
}

TEST_F(WireTest, StatsFrameCarriesValidJson) {
  svc_.query({QueryType::kDist, 0, 1});
  std::string req;
  append_stats_request(req);
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].kind, Response::Kind::kStats);
  EXPECT_TRUE(obs::json_valid(frames[0].stats_json)) << frames[0].stats_json;
  EXPECT_NE(frames[0].stats_json.find("\"snapshot\""), std::string::npos);
}

TEST_F(WireTest, OversizedBatchRejectedWholeAndSessionContinues) {
  service::QueryServiceConfig cfg;
  cfg.max_batch = 4;
  QueryService small(service::build_oracle(g_, kRef), cfg);
  const std::vector<Query> five(5, Query{QueryType::kDist, 0, 1});
  const std::vector<Query> two(2, Query{QueryType::kDist, 0, 1});
  std::string req;
  append_batch_request(req, five);
  append_batch_request(req, two);  // must still be answered
  int errors = -1;
  const auto frames = roundtrip(small, req, &errors);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].kind, Response::Kind::kError);
  EXPECT_EQ(frames[0].code, ErrorCode::kBatchTooLarge);
  ASSERT_EQ(frames[1].kind, Response::Kind::kBatch);
  EXPECT_EQ(frames[1].results.size(), 2u);
  // No query of the oversized batch executed.
  EXPECT_EQ(small.stats().total_queries(), 2u);
}

TEST_F(WireTest, BadMagicVersionOpcodeAreRecoverable) {
  std::string req;
  req += raw_frame("XX\x01\x01");              // bad magic
  req += raw_frame(std::string("DQ\x07\x01", 4));  // bad version
  req += raw_frame(std::string("DQ\x01\x7f", 4));  // bad opcode
  append_stats_request(req);                   // session must still serve
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 3);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].code, ErrorCode::kBadMagic);
  EXPECT_EQ(frames[1].code, ErrorCode::kBadVersion);
  EXPECT_EQ(frames[2].code, ErrorCode::kBadOpcode);
  EXPECT_EQ(frames[3].kind, Response::Kind::kStats);
}

TEST_F(WireTest, BatchBodyShorterThanCountIsTruncatedError)  {
  // Declares 3 queries but carries 2.
  std::string payload = "DQ";
  payload.push_back('\x01');
  payload.push_back('\x01');
  put_u32(payload, 3);
  for (int i = 0; i < 2; ++i) {
    payload.push_back('\0');  // qtype dist
    put_u32(payload, 0);
    put_u32(payload, 1);
  }
  int errors = -1;
  const auto frames = roundtrip(svc_, raw_frame(payload), &errors);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].code, ErrorCode::kTruncated);
}

TEST_F(WireTest, BadQueryTypeRejectsWholeBatch) {
  std::string payload = "DQ";
  payload.push_back('\x01');
  payload.push_back('\x01');
  put_u32(payload, 2);
  payload.push_back('\0');  // valid dist query
  put_u32(payload, 0);
  put_u32(payload, 1);
  payload.push_back('\x09');  // invalid qtype
  put_u32(payload, 0);
  put_u32(payload, 1);
  int errors = -1;
  const auto frames = roundtrip(svc_, raw_frame(payload), &errors);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].code, ErrorCode::kBadQueryType);
  EXPECT_EQ(svc_.stats().total_queries(), 0u)
      << "a partially valid batch must not execute";
}

TEST_F(WireTest, OversizedLengthPrefixEndsSessionWithError) {
  std::string req;
  put_u32(req, (64u << 20) + 1);
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].code, ErrorCode::kFrameTooLarge);
}

TEST_F(WireTest, TruncatedStreamEndsSessionWithError) {
  std::string good;
  append_stats_request(good);
  // Length prefix promises 100 bytes; the stream ends first.
  std::string req = good;
  put_u32(req, 100);
  req += "short";
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].kind, Response::Kind::kStats);
  EXPECT_EQ(frames[1].code, ErrorCode::kTruncated);
}

TEST_F(WireTest, QuitStopsProcessingRemainingFrames) {
  std::string req;
  append_quit_request(req);
  append_stats_request(req);  // must never be answered
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 0);
  EXPECT_TRUE(frames.empty());
}

TEST_F(WireTest, RebuildWithoutHookIsAnError) {
  std::string req;
  append_rebuild_request(req);
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors);
  EXPECT_EQ(errors, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, Response::Kind::kError);
}

TEST_F(WireTest, RebuildWithHookSwapsAndReportsEpoch) {
  SnapshotManager manager(svc_, g_, kRef, 4);
  service::ServeOptions opts;
  opts.on_rebuild = [&manager] { return manager.rebuild_now(); };
  std::string req;
  append_rebuild_request(req);
  append_batch_request(
      req, std::vector<Query>{{QueryType::kDist, 0, 1}});
  int errors = -1;
  const auto frames = roundtrip(svc_, req, &errors, opts);
  EXPECT_EQ(errors, 0);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].kind, Response::Kind::kRebuild);
  EXPECT_EQ(frames[0].epoch, 1u);
  EXPECT_EQ(frames[1].kind, Response::Kind::kBatch);
  EXPECT_EQ(svc_.snapshot()->epoch(), 1u);
  EXPECT_EQ(svc_.snapshot()->shard_count(), 4u);
}

TEST_F(WireTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kBadMagic), "bad_magic");
  EXPECT_STREQ(error_code_name(ErrorCode::kBatchTooLarge), "batch_too_large");
  EXPECT_STREQ(error_code_name(ErrorCode::kBadQueryType), "bad_query_type");
}

}  // namespace
}  // namespace dapsp::serve::wire
