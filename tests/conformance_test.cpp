// Randomized conformance sweep for Algorithm 1 against the paper's
// guarantee, across graph sizes, densities, weight regimes, directedness,
// hop bounds, and both list policies.  This is the widest net in the suite:
// several hundred graph/parameter combinations, each checked pair-by-pair
// against sequential oracles.
//
// Guarantee checked (see DESIGN.md note 1):
//  * in-scope pair (true shortest path realizable within h hops): exact
//    distance and min-hop count;
//  * out-of-scope pair: infinity or a sound over-estimate (>= the h-hop
//    optimum);
//  * settle round within the Lemma II.14 bound.
#include <gtest/gtest.h>

#include "core/blocker_apsp.hpp"
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "seq/dijkstra.hpp"
#include "seq/hop_limited.hpp"

namespace dapsp::core {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;

struct Config {
  ListPolicy policy;
  bool directed;
  graph::WeightSpec weights;
  const char* name;
  bool scramble = false;
};

class Conformance : public ::testing::TestWithParam<Config> {};

TEST_P(Conformance, SweepAgainstOracles) {
  const Config& cfg = GetParam();
  std::uint64_t cases = 0;
  for (NodeId n = 5; n <= 17; n += 4) {
    for (std::uint32_t h = 1; h <= 5; h += 2) {
      for (std::uint64_t seed = 0; seed < 12; ++seed) {
        const Graph g = graph::erdos_renyi(n, 0.3, cfg.weights,
                                           seed * 131 + h + n, cfg.directed);
        PipelinedParams p;
        for (NodeId v = 0; v < n; ++v) p.sources.push_back(v);
        p.h = h;
        p.delta = graph::max_finite_hop_distance(g, h);
        p.policy = cfg.policy;
        p.scramble_inbox = cfg.scramble;
        const KsspResult res = pipelined_kssp(g, p);
        ++cases;

        ASSERT_LE(res.settle_round, res.theoretical_bound)
            << cfg.name << " n=" << n << " h=" << h << " seed=" << seed;
        for (std::size_t i = 0; i < res.sources.size(); ++i) {
          const auto dj = seq::dijkstra(g, res.sources[i]);
          const auto hop = seq::hop_limited_sssp(g, res.sources[i], h);
          for (NodeId v = 0; v < n; ++v) {
            const bool in_scope =
                dj.dist[v] != kInfDist && dj.hops[v] <= h;
            if (in_scope) {
              ASSERT_EQ(res.dist[i][v], dj.dist[v])
                  << cfg.name << " n=" << n << " h=" << h << " seed=" << seed
                  << " pair " << res.sources[i] << "->" << v;
              ASSERT_EQ(res.hops[i][v], dj.hops[v])
                  << cfg.name << " n=" << n << " h=" << h << " seed=" << seed
                  << " pair " << res.sources[i] << "->" << v;
            } else {
              ASSERT_TRUE(res.dist[i][v] == kInfDist ||
                          res.dist[i][v] >= hop.dist[v])
                  << cfg.name << " n=" << n << " h=" << h << " seed=" << seed
                  << " pair " << res.sources[i] << "->" << v;
            }
          }
        }
      }
    }
  }
  EXPECT_GE(cases, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, Conformance,
    ::testing::Values(
        Config{ListPolicy::kDominance, false, {0, 4, 0.25}, "dom_undirected"},
        Config{ListPolicy::kDominance, true, {0, 4, 0.25}, "dom_directed"},
        Config{ListPolicy::kLiteral, false, {0, 4, 0.25}, "lit_undirected"},
        Config{ListPolicy::kLiteral, true, {0, 4, 0.25}, "lit_directed"},
        Config{ListPolicy::kDominance, true, {0, 1, 0.7}, "dom_zeroheavy"},
        Config{ListPolicy::kLiteral, true, {0, 1, 0.7}, "lit_zeroheavy"},
        Config{ListPolicy::kDominance, false, {1, 40, 0.0}, "dom_bigweights"},
        Config{ListPolicy::kLiteral, false, {1, 40, 0.0}, "lit_bigweights"},
        // Arrival order within a round is not promised by the model; the
        // computed distances must be order-independent.
        Config{ListPolicy::kDominance, true, {0, 4, 0.3}, "dom_scrambled",
               /*scramble=*/true},
        Config{ListPolicy::kLiteral, true, {0, 4, 0.3}, "lit_scrambled",
               /*scramble=*/true}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      return param_info.param.name;
    });

TEST(ConformanceBlockerApsp, RandomizedSweep) {
  // Algorithm 3 end-to-end: exact APSP on a wide randomized sweep.
  std::uint64_t cases = 0;
  for (NodeId n = 8; n <= 16; n += 4) {
    for (std::uint32_t h = 2; h <= 4; ++h) {
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        for (int dir = 0; dir <= 1; ++dir) {
          const Graph g = graph::erdos_renyi(n, 0.3, {0, 5, 0.3},
                                             seed * 97 + h, dir == 1);
          BlockerApspParams p;
          p.h = h;
          const auto res = blocker_apsp(g, p);
          ++cases;
          for (NodeId s = 0; s < n; ++s) {
            const auto dj = seq::dijkstra(g, s);
            for (NodeId v = 0; v < n; ++v) {
              ASSERT_EQ(res.dist[s][v], dj.dist[v])
                  << "n=" << n << " h=" << h << " seed=" << seed
                  << " dir=" << dir << " pair " << s << "->" << v;
            }
          }
        }
      }
    }
  }
  EXPECT_GE(cases, 100u);
}

// ---------------------------------------------------------------------------
// Round-bound conformance: the *measured* round count (not just the settle
// round) must respect the paper's closed-form bounds across an n-sweep.
// These recompute the formulas from core/bounds.hpp independently of the
// solver's own theoretical_bound bookkeeping, so a bookkeeping bug cannot
// hide a bound violation.
// ---------------------------------------------------------------------------

TEST(ConformanceRoundBounds, PipelinedSspAcrossSizes) {
  // Theorem I.1(i) single source: every shortest path has settled by round
  // 2*sqrt(h*Delta) + h + 1.  The paper's bound speaks about settling; the
  // engine then runs a handful of extra rounds draining in-flight traffic
  // before it can *detect* quiescence, so those trailing rounds are bounded
  // by the solver's own budget, not the closed form.
  for (NodeId n = 6; n <= 30; n += 6) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const Graph g = graph::erdos_renyi(n, 0.3, {0, 6, 0.2}, seed * 53 + n);
      PipelinedParams p;
      p.sources = {0};
      p.h = n - 1;
      p.delta = graph::max_finite_hop_distance(g, p.h);
      const KsspResult res = pipelined_kssp(g, p);
      const std::uint64_t paper =
          bounds::hk_ssp(p.h, 1, static_cast<std::uint64_t>(p.delta));
      ASSERT_LE(res.settle_round, paper) << "n=" << n << " seed=" << seed;
      ASSERT_LE(res.stats.rounds, res.theoretical_bound)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ConformanceRoundBounds, PipelinedApspAcrossSizes) {
  // Theorem I.1(ii): APSP within 2n*sqrt(Delta) + 2n rounds.
  for (NodeId n = 6; n <= 22; n += 4) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const Graph g = graph::erdos_renyi(n, 0.35, {0, 5, 0.2}, seed * 71 + n);
      const Weight delta = graph::max_finite_distance(g);
      const KsspResult res = pipelined_apsp(g, delta);
      const std::uint64_t paper =
          bounds::apsp_pipelined(n, static_cast<std::uint64_t>(delta));
      ASSERT_LE(res.settle_round, paper) << "n=" << n << " seed=" << seed;
      // The run must also respect the solver's own (list-capacity-refined)
      // Lemma II.14 bookkeeping, which can sit above or below the idealized
      // closed form but never below the measured rounds.
      ASSERT_LE(res.stats.rounds, res.theoretical_bound)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ConformanceRoundBounds, PipelinedKsspAcrossSourceCounts) {
  // Theorem I.1(iii): k-SSP within 2*sqrt(n*k*Delta) + n + k rounds.
  const NodeId n = 18;
  for (std::size_t k = 1; k <= 9; k += 4) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const Graph g = graph::erdos_renyi(n, 0.3, {1, 5, 0.0}, seed * 17 + k);
      std::vector<NodeId> sources;
      for (std::size_t i = 0; i < k; ++i) {
        sources.push_back(static_cast<NodeId>((i * 5) % n));
      }
      const Weight delta = graph::max_finite_distance(g);
      const KsspResult res = pipelined_kssp_full(g, sources, delta);
      const std::uint64_t paper = bounds::k_ssp_pipelined(
          n, res.sources.size(), static_cast<std::uint64_t>(delta));
      ASSERT_LE(res.settle_round, paper) << "k=" << k << " seed=" << seed;
      ASSERT_LE(res.stats.rounds, res.theoretical_bound)
          << "k=" << k << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace dapsp::core
