// Algorithm 1: the pipelined (h,k)-SSP algorithm (Section II of the paper).
//
// Every node maintains a list of entries Z = (kappa, d, l, x) sorted by
// (kappa, d, x), where kappa = d*gamma + l and gamma = sqrt(k*h/Delta).  In
// round r a node sends the entry whose ceil(kappa + pos) equals r (positions
// are 1-based; since ceil(kappa)+pos is strictly increasing along the list,
// at most one entry fires per round).  Receivers relax the entry across the
// incoming arc and insert it subject to the paper's SP / non-SP rules, which
// keep at most h/gamma + 1 entries per source on any list (Invariant 2) and
// guarantee every entry is added before round ceil(kappa + pos)
// (Invariant 1).  All h-hop shortest distances from the k sources arrive
// within 2*sqrt(h*k*Delta) + h + k rounds (Theorem I.1).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/engine.hpp"
#include "congest/metrics.hpp"
#include "core/key.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

/// List maintenance policy (see DESIGN.md).  The conference listing of
/// INSERT is ambiguous about removal/tie-break corner cases; kDominance is
/// the delivery-safe reading this library defaults to (drop an entry only
/// when another entry for the same source matches or beats it in both
/// distance and hops), kLiteral is the word-for-word transcription (remove
/// the closest non-SP entry above every insertion).  Both satisfy the
/// paper's guarantee; the ablation bench compares their list occupancy and
/// settle rounds.
enum class ListPolicy { kDominance, kLiteral };

struct PipelinedParams {
  std::vector<NodeId> sources;  ///< the k sources (deduplicated, nonempty)
  std::uint32_t h = 0;          ///< hop bound
  Weight delta = 0;             ///< bound on h-hop shortest path distances
  /// Key schedule; defaults to the paper's gamma at `finalize()`.
  GammaSq gamma{0, 0};
  ListPolicy policy = ListPolicy::kDominance;
  /// Extra safety factor on the engine's round budget (tests use 1 to assert
  /// the theory bound is respected).
  double round_budget_factor = 1.0;
  /// Deterministically permute message arrival order within each round (the
  /// CONGEST model promises delivery, not order); distances must not change.
  bool scramble_inbox = false;
  /// Record per-round message counts into stats.per_round_messages (the
  /// "pipeline wave"; used by the E4 bench).
  bool record_per_round = false;

  /// Fills gamma with the paper's value if unset and validates ranges.
  void finalize(const graph::Graph& g);
};

struct KsspResult {
  std::vector<NodeId> sources;
  /// dist[i][v]: h-hop shortest distance from sources[i] to v (kInfDist if
  /// no path with <= h hops exists).
  std::vector<std::vector<Weight>> dist;
  std::vector<std::vector<std::uint32_t>> hops;
  std::vector<std::vector<NodeId>> parent;
  congest::RunStats stats;
  std::uint64_t theoretical_bound = 0;  ///< Lemma II.14 round bound
  /// Last round in which any node's best distance/hop/parent improved; the
  /// measured "all shortest paths have arrived" round compared against the
  /// bound by the benches.
  congest::Round settle_round = 0;
  /// Measured Invariant-2 quantities.
  std::uint64_t max_entries_per_source = 0;
  std::uint64_t max_list_size = 0;
  /// Sends that fired after their scheduled round (the Invariant-1 schedule
  /// was missed and caught up).  0 in every sweep we have run; kept as a
  /// visible canary.
  std::uint64_t late_fires = 0;
  std::uint64_t total_sends = 0;
  /// Largest number of messages any node emitted for one source (per-source
  /// congestion; tracks the per-source list occupancy).
  std::uint64_t max_sends_per_source = 0;
};

/// Runs Algorithm 1 for the given sources/hop bound.
KsspResult pipelined_kssp(const graph::Graph& g, PipelinedParams params);

/// Theorem I.1(ii): APSP via Algorithm 1 with all n sources and h = n-1.
/// `delta` is the max shortest-path distance (pass the graph's true Delta,
/// e.g. from graph::max_finite_distance).
KsspResult pipelined_apsp(const graph::Graph& g, Weight delta);

/// Theorem I.1(iii): full (unbounded-hop) k-SSP via Algorithm 1 with
/// h = n-1, in 2*sqrt(n*k*Delta) + n + k rounds.
KsspResult pipelined_kssp_full(const graph::Graph& g,
                               std::vector<NodeId> sources, Weight delta);

}  // namespace dapsp::core
