// Query-side latency/throughput accounting for the distance-oracle service.
//
// Same philosophy as congest/metrics.hpp: the quantities the service exists
// to optimize (queries served, per-type latency, cache effectiveness) are
// first-class results, never debug output.  `ServiceStats` is a plain value
// snapshot -- the query service keeps atomic counters internally and
// materializes one on request -- so snapshots compose with `operator+=`
// (e.g. summing per-shard or per-epoch stats) exactly like RunStats.
//
// Latency is a full obs::Histogram per query type, not min/mean/max scalars:
// quantiles survive composition, and an empty snapshot renders as zeros
// instead of a UINT64_MAX min sentinel.  Failed queries never touch the
// latency histogram -- their wall-clock goes to `error_ns` so error spikes
// cannot inflate the reported service latency.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace dapsp::service {

/// Occupancy of one vertex-range shard of the current oracle snapshot
/// (a flat oracle reports itself as a single shard covering every row).
struct ShardInfo {
  std::uint32_t row_begin = 0;  ///< first source row owned by the shard
  std::uint32_t row_end = 0;    ///< one past the last owned row
  std::size_t bytes = 0;        ///< dist + next-hop bytes held by the shard

  friend bool operator==(const ShardInfo&, const ShardInfo&) = default;
};

enum class QueryType : std::uint8_t {
  kDist,         ///< point lookup: distance u -> v
  kNextHop,      ///< first hop on a shortest path u -> v
  kPath,         ///< full path reconstruction u -> v
  kKPaths,       ///< k shortest loopless paths u -> v (analytics)
  kRoute,        ///< constrained route u -> v (analytics)
  kReport,       ///< whole-graph distance report (analytics)
  kBetweenness,  ///< betweenness centrality (analytics)
};
inline constexpr std::size_t kQueryTypeCount = 7;
/// The first three types are point lookups; only they are accepted inside
/// binary BATCH frames (analytics types have dedicated opcodes and bodies).
inline constexpr std::size_t kPointQueryTypeCount = 3;

inline const char* query_type_name(QueryType t) {
  switch (t) {
    case QueryType::kDist: return "dist";
    case QueryType::kNextHop: return "next";
    case QueryType::kPath: return "path";
    case QueryType::kKPaths: return "kpath";
    case QueryType::kRoute: return "route";
    case QueryType::kReport: return "report";
    case QueryType::kBetweenness: return "bc";
  }
  return "?";
}

/// Counters for one query type.
struct QueryTypeStats {
  /// Latency distribution (ns) of successful queries only.
  obs::Histogram latency;
  std::uint64_t errors = 0;    ///< malformed / unsupported queries
  std::uint64_t error_ns = 0;  ///< wall-clock spent on failed queries

  std::uint64_t count() const { return latency.count(); }
  std::uint64_t total_ns() const { return latency.sum(); }
  /// 0 when no query of this type succeeded (never a sentinel).
  std::uint64_t min_ns() const { return latency.min(); }
  std::uint64_t max_ns() const { return latency.max(); }
  double mean_ns() const { return latency.mean(); }
  std::uint64_t p50_ns() const { return latency.p50(); }
  std::uint64_t p90_ns() const { return latency.p90(); }
  std::uint64_t p99_ns() const { return latency.p99(); }

  QueryTypeStats& operator+=(const QueryTypeStats& o) {
    latency += o.latency;
    errors += o.errors;
    error_ns += o.error_ns;
    return *this;
  }
};

struct ServiceStats {
  std::array<QueryTypeStats, kQueryTypeCount> per_type;
  std::uint64_t batches = 0;  ///< query_batch calls
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  // Snapshot lifecycle (hot-swap serving tier).  `snapshot_epoch` is the
  // epoch of the snapshot serving at the time of the stats() call; `swaps`
  // counts swap_snapshot publications; `swap_ns` is the latency of the
  // atomic publication itself and `rebuild_ns` the full background
  // build-and-swap durations reported by the SnapshotManager.
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t swaps = 0;
  obs::Histogram swap_ns;
  obs::Histogram rebuild_ns;
  /// Per-shard occupancy of the serving snapshot (row ranges + bytes).
  std::vector<ShardInfo> shards;
  /// Critical-path summary of the build that produced the serving snapshot;
  /// empty() unless that build ran with OracleBuildOptions::critpath.
  obs::CritPathSummary last_build_critpath;

  const QueryTypeStats& of(QueryType t) const {
    return per_type[static_cast<std::size_t>(t)];
  }
  QueryTypeStats& of(QueryType t) {
    return per_type[static_cast<std::size_t>(t)];
  }

  std::uint64_t total_queries() const {
    std::uint64_t n = 0;
    for (const auto& t : per_type) n += t.count();
    return n;
  }
  std::uint64_t total_errors() const {
    std::uint64_t n = 0;
    for (const auto& t : per_type) n += t.errors;
    return n;
  }
  double cache_hit_rate() const {
    const std::uint64_t probes = cache_hits + cache_misses;
    return probes == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(probes);
  }

  ServiceStats& operator+=(const ServiceStats& o) {
    for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
      per_type[i] += o.per_type[i];
    }
    batches += o.batches;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    // Counters compose; point-in-time snapshot state takes the newest epoch
    // and keeps this side's shard layout unless it has none.
    snapshot_epoch = std::max(snapshot_epoch, o.snapshot_epoch);
    swaps += o.swaps;
    swap_ns += o.swap_ns;
    rebuild_ns += o.rebuild_ns;
    if (shards.empty()) shards = o.shards;
    if (last_build_critpath.empty()) last_build_critpath = o.last_build_critpath;
    return *this;
  }

  std::string summary() const {
    std::ostringstream os;
    os << "queries=" << total_queries() << " errors=" << total_errors()
       << " batches=" << batches;
    // Every type is listed -- including ones that have served nothing yet --
    // so dashboards see new query families appear with zeroed (never
    // sentinel) histograms the moment a build ships them.
    for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
      const auto& t = per_type[i];
      os << " " << query_type_name(static_cast<QueryType>(i)) << "[n="
         << t.count() << " mean_ns=" << static_cast<std::uint64_t>(t.mean_ns())
         << " p99_ns=" << t.p99_ns() << " max_ns=" << t.max_ns() << "]";
    }
    os << " cache[hits=" << cache_hits << " misses=" << cache_misses
       << " evictions=" << cache_evictions << "]";
    os << " snapshot[epoch=" << snapshot_epoch << " swaps=" << swaps
       << " shards=" << shards.size() << "]";
    if (!last_build_critpath.empty()) {
      const auto& c = last_build_critpath;
      os << " critpath[runs=" << c.runs << " chain=" << c.chain_len
         << " cost=" << c.total_cost << " total_ns=" << c.total_ns
         << " compute_ns=" << c.compute_ns << " deliver_ns=" << c.deliver_ns
         << " wait_ns=" << c.wait_ns
         << (c.truncated || c.items_dropped != 0 ? " truncated" : "") << "]";
    }
    return os.str();
  }

  /// One JSON object with full per-type histograms; used by `serve --format
  /// json` so the "stats" directive emits machine-readable data instead of a
  /// summary string jammed into a JSON string field.
  void write_json(obs::JsonWriter& w) const {
    w.begin_object()
        .field("queries", total_queries())
        .field("errors", total_errors())
        .field("batches", batches);
    w.key("types").begin_object();
    for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
      const auto& t = per_type[i];
      w.key(query_type_name(static_cast<QueryType>(i))).begin_object();
      w.field("count", t.count())
          .field("errors", t.errors)
          .field("error_ns", t.error_ns);
      w.key("latency_ns");
      t.latency.write_json(w);
      w.end_object();
    }
    w.end_object();
    w.key("cache")
        .begin_object()
        .field("hits", cache_hits)
        .field("misses", cache_misses)
        .field("evictions", cache_evictions)
        .field("hit_rate", cache_hit_rate())
        .end_object();
    w.key("snapshot")
        .begin_object()
        .field("epoch", snapshot_epoch)
        .field("swaps", swaps)
        .field("shard_count", static_cast<std::uint64_t>(shards.size()));
    w.key("swap_ns");
    swap_ns.write_json(w);
    w.key("rebuild_ns");
    rebuild_ns.write_json(w);
    w.key("shards").begin_array();
    for (const ShardInfo& s : shards) {
      w.begin_object()
          .field("row_begin", static_cast<std::uint64_t>(s.row_begin))
          .field("row_end", static_cast<std::uint64_t>(s.row_end))
          .field("bytes", static_cast<std::uint64_t>(s.bytes))
          .end_object();
    }
    w.end_array();
    w.end_object();
    if (!last_build_critpath.empty()) {
      w.key("critpath");
      last_build_critpath.write_json(w);
    }
    w.end_object();
  }
};

}  // namespace dapsp::service
