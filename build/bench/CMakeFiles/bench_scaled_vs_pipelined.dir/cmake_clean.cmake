file(REMOVE_RECURSE
  "CMakeFiles/bench_scaled_vs_pipelined.dir/bench_scaled_vs_pipelined.cpp.o"
  "CMakeFiles/bench_scaled_vs_pipelined.dir/bench_scaled_vs_pipelined.cpp.o.d"
  "bench_scaled_vs_pipelined"
  "bench_scaled_vs_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaled_vs_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
