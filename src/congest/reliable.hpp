// Reliable transport over a lossy CONGEST plane.
//
// The paper's algorithms assume every message sent in round r arrives at the
// end of round r.  Under a FaultPlan (congest/faults.hpp) that promise
// breaks: messages drop, duplicate, and arrive late or reordered.  This
// adapter restores exactly-once, in-order delivery per directed link with
// the classic machinery -- per-link sequence numbers, cumulative acks
// (piggybacked on data when possible), retransmission with exponential
// backoff, and duplicate suppression -- so an unmodified inner protocol
// computes the same answer it would on a flawless network, just in more
// rounds.  Rounds-vs-loss-rate is the measurable cost (EXPERIMENTS.md E11).
//
// Scope: masks drop / duplicate / delay / reorder / bandwidth faults.  It
// cannot mask crash-stop -- a crashed node's state machine is gone, and no
// transport recovers state that was never sent; crash handling belongs to
// the service layer (build_oracle's partition check).
//
// Budget: at most one transport message per directed link per round (a data
// frame with a piggybacked ack, or a pure ack), so the CONGEST budget is
// respected exactly like a direct run.  Inner messages may use at most
// Message::kMaxFields - 3 fields -- enough for every algorithm payload in
// this repository (largest is 5).
//
// Timing caveat: the inner protocol sees the physical round number, and
// retransmissions stretch delivery, so round-indexed *schedules* (Algorithm
// 1's send rule) fire late exactly as under the multiplexer.  Monotone
// protocols (Bellman-Ford-style adopt-the-minimum) are unconditionally
// safe; that is what the differential tests run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "congest/engine.hpp"
#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::congest {

struct ReliableOptions {
  /// Max unacked data frames per directed link; further inner sends queue.
  std::size_t window = 16;
  /// Rounds before the first retransmission of an unacked frame (a data/ack
  /// round trip takes 2 rounds on a healthy link).
  Round backoff_base = 2;
  /// Retransmission interval doubles per resend up to this many rounds.
  Round backoff_cap = 32;
};

/// Per-node transport counters (deterministic under a seeded plan).
struct ReliableStats {
  std::uint64_t data_frames = 0;       ///< data transmissions incl. resends
  std::uint64_t retransmits = 0;
  std::uint64_t pure_acks = 0;         ///< acks that needed their own message
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t max_outstanding = 0;   ///< peak unacked+queued on one link

  ReliableStats& operator+=(const ReliableStats& o) {
    data_frames += o.data_frames;
    retransmits += o.retransmits;
    pure_acks += o.pure_acks;
    duplicates_dropped += o.duplicates_dropped;
    max_outstanding =
        max_outstanding > o.max_outstanding ? max_outstanding : o.max_outstanding;
    return *this;
  }
};

/// Wraps one node's inner protocol; one instance per node, engine-facing.
class ReliableTransport final : public Protocol {
 public:
  static constexpr std::uint32_t kTagData = 0x5254;  // "RT"
  static constexpr std::uint32_t kTagAck = 0x5241;   // "RA"

  ReliableTransport(const graph::Graph& g, NodeId self,
                    std::unique_ptr<Protocol> inner,
                    ReliableOptions opt = {});

  void init(Context& ctx) override;
  void send_phase(Context& ctx) override;
  void receive_phase(Context& ctx) override;
  bool quiescent() const override;
  Round next_send_round(Round now) const override;

  Protocol& inner() { return *inner_; }
  const Protocol& inner() const { return *inner_; }
  const ReliableStats& transport_stats() const { return stats_; }

 private:
  class RelSendContext;
  class RelRecvContext;

  struct Frame {
    std::uint64_t seq = 0;
    Message payload;          ///< wrapped wire message (ack field patched)
    Round next_resend = 0;
    Round backoff = 0;
    bool sent_once = false;
  };

  /// Outgoing state for the directed link to neighbor index j.
  struct SendLink {
    std::deque<Message> pending;  ///< inner messages awaiting a window slot
    std::deque<Frame> frames;     ///< unacked, ascending seq
    std::uint64_t next_seq = 1;
  };

  /// Incoming state for the link from neighbor index j.
  struct RecvLink {
    std::uint64_t cum = 0;  ///< highest contiguously delivered seq
    std::map<std::uint64_t, Message> buffered;  ///< out-of-order inner msgs
    bool ack_owed = false;
  };

  void enqueue_inner(std::size_t link, const Message& inner);
  void pump_link_sends(Context& ctx, Round now);
  std::size_t link_index(NodeId from) const;

  const graph::Graph& g_;
  NodeId self_;
  std::unique_ptr<Protocol> inner_;
  ReliableOptions opt_;
  std::vector<SendLink> out_;
  std::vector<RecvLink> in_;
  std::vector<Envelope> delivery_;  ///< this round's in-order inner inbox
  ReliableStats stats_;
};

/// Creates node `v`'s inner protocol.
using ReliableFactory = std::function<std::unique_ptr<Protocol>(NodeId node)>;

struct ReliableResult {
  RunStats stats;
  ReliableStats transport;  ///< summed over all nodes
};

/// Runs every node's inner protocol behind a ReliableTransport to
/// quiescence (or `options.max_rounds`).  Attach a FaultPlan through
/// `options.faults` to exercise the transport; `accessor`, if given, is
/// called per node with the finished transport so callers can read inner
/// protocol results.
ReliableResult run_reliable(
    const graph::Graph& g, const ReliableFactory& make, EngineOptions options,
    ReliableOptions transport_options = {},
    const std::function<void(NodeId, ReliableTransport&)>& accessor = {});

}  // namespace dapsp::congest
