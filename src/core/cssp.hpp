// Consistent h-hop shortest-path tree collections (CSSSP, Section III-A).
//
// Plain h-hop shortest-path parent pointers need not form trees of height h
// (the prefix of an h-hop shortest path need not be an h-hop shortest path;
// see Figure 1 of the paper and graph::fig1_gadget).  The paper's fix is
// simple: run Algorithm 1 with hop bound 2h and keep only the first h hops
// of each tree, i.e. drop a node from tree T_x when its min-hop count
// exceeds h (Lemma III.4).  The result is a collection where the tree path
// between any two nodes is the same in every tree containing both.
//
// The collection also carries per-tree children lists, computed by a real
// k-round notification protocol (each node tells its tree-i parent "I am
// your child" in round i), because the blocker-set algorithms forward
// messages to tree children.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

struct CsspCollection {
  std::uint32_t h = 0;
  std::vector<NodeId> sources;

  /// Full 2h-hop results of the underlying Algorithm-1 run (useful to the
  /// Algorithm-3 combine step).
  std::vector<std::vector<Weight>> dist2h;
  std::vector<std::vector<std::uint32_t>> hops2h;
  std::vector<std::vector<NodeId>> parent2h;

  /// Truncated h-hop trees: parent[i][v] is v's parent in T_{sources[i]} or
  /// kNoNode when v is not in that tree.  depth[i][v] <= h when present.
  std::vector<std::vector<NodeId>> parent;
  std::vector<std::vector<std::uint32_t>> depth;
  std::vector<std::vector<Weight>> dist;  ///< tree distance for present nodes

  /// children[i][v]: v's children in T_{sources[i]} (sorted).
  std::vector<std::vector<std::vector<NodeId>>> children;

  congest::RunStats stats;
  std::uint64_t theoretical_bound = 0;

  bool in_tree(std::size_t i, NodeId v) const {
    return v == sources[i] || parent[i][v] != graph::kNoNode;
  }
};

/// Builds an h-hop CSSSP collection for `sources`.  `delta2h` must bound the
/// 2h-hop shortest path distances (e.g. 2h*W, or the exact value from
/// graph::max_finite_hop_distance).
CsspCollection build_cssp(const graph::Graph& g,
                          const std::vector<NodeId>& sources, std::uint32_t h,
                          Weight delta2h);

}  // namespace dapsp::core
