# Empty compiler generated dependencies file for bench_lemma215_short_range.
# This may be replaced when dependencies are built.
