// Pipelined APSP in the style of Lenzen-Peleg / Holzer-Wattenhofer [12],[17]:
// the unweighted algorithm the paper's Algorithm 1 generalizes.
//
// Every node keeps one best distance d(s) per source, sorted; in round r it
// sends the d(s) with d(s) + pos(s) == r.  For unit weights this computes
// APSP in < 2n rounds with one message per node per source [12].  The same
// schedule stays correct for arbitrary *positive* integer weights (each hop
// decreases the predecessor's distance by at least 1, which is the property
// zero-weight edges break -- Section II of the paper); with distances
// bounded by cap the round bound becomes cap + k + O(1).
//
// The approximate-APSP algorithm (Section IV) uses this twice: on the
// zero-weight subgraph (as plain unweighted reachability) and on the scaled
// positive graphs, so the runner takes an edge-weight transform and an
// optional distance cap.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::baseline {

using graph::NodeId;
using graph::Weight;

struct PositiveApspParams {
  /// Sources (defaults to all nodes when empty).
  std::vector<NodeId> sources;
  /// Maps each arc's weight to the weight used by the run, or nullopt to
  /// drop the arc entirely.  Must return weights >= 1.  Defaults to
  /// "every arc has weight 1" (pure unweighted APSP).
  std::function<std::optional<Weight>(const graph::Edge&)> weight_of;
  /// Distances above the cap are not propagated (0 = no cap).
  Weight distance_cap = 0;
  congest::Round max_rounds = 0;  ///< 0 = derive from cap/k
};

struct PositiveApspResult {
  std::vector<NodeId> sources;
  std::vector<std::vector<Weight>> dist;  ///< dist[i][v], kInfDist if uncapped
  congest::RunStats stats;
  congest::Round settle_round = 0;
  std::uint64_t max_sends_per_node_per_source = 0;
};

PositiveApspResult positive_apsp(const graph::Graph& g,
                                 PositiveApspParams params);

/// Unweighted APSP of [12]: hop distances between all pairs in < 2n rounds.
PositiveApspResult unweighted_apsp(const graph::Graph& g);

/// All-pairs zero-weight reachability (Section IV step 1): unweighted APSP
/// over the zero-weight arcs only.  reach[s][v] true iff a zero-weight path
/// s -> v exists.
std::vector<std::vector<bool>> zero_reach_congest(const graph::Graph& g,
                                                  congest::RunStats* stats);

}  // namespace dapsp::baseline
