#include "core/routing.hpp"

#include "util/int_math.hpp"

namespace dapsp::core {

using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

RoutingTables build_routing_tables(const Graph& g, const KsspResult& apsp) {
  util::check(!g.directed(),
              "build_routing_tables: needs an undirected network");
  const NodeId n = g.node_count();
  util::check(apsp.sources.size() == n,
              "build_routing_tables: needs a full APSP result (k = n)");

  RoutingTables t;
  t.dist_ = apsp.dist;
  t.next_.assign(n, std::vector<NodeId>(n, kNoNode));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId dest = 0; dest < n; ++dest) {
      if (dest == u || apsp.dist[dest][u] == kInfDist) continue;
      // Best neighbor: minimize w(u,w) + dist(dest, w); ties prefer fewer
      // remaining hops (guarantees progress across zero-weight plateaus),
      // then the smaller id (determinism).
      NodeId best = kNoNode;
      Weight best_cost = kInfDist;
      std::uint32_t best_hops = 0;
      for (const auto& e : g.out_edges(u)) {
        const Weight dw = apsp.dist[dest][e.to];
        if (dw == kInfDist) continue;
        const Weight cost = e.weight + dw;
        const std::uint32_t hops = apsp.hops[dest][e.to];
        const bool wins = cost < best_cost ||
                          (cost == best_cost &&
                           (hops < best_hops ||
                            (hops == best_hops && e.to < best)));
        if (wins) {
          best = e.to;
          best_cost = cost;
          best_hops = hops;
        }
      }
      t.next_[u][dest] = best;
    }
  }
  return t;
}

std::optional<RouteResult> route(const Graph& g, const RoutingTables& tables,
                                 NodeId s, NodeId t) {
  RouteResult r;
  r.path.push_back(s);
  NodeId u = s;
  while (u != t) {
    if (r.path.size() > g.node_count() + 1u) return std::nullopt;  // loop
    const NodeId w = tables.next_hop(u, t);
    if (w == kNoNode) return std::nullopt;
    const auto edge = g.arc_weight(u, w);
    if (!edge) return std::nullopt;
    r.cost += *edge;
    r.path.push_back(w);
    u = w;
  }
  return r;
}

}  // namespace dapsp::core
