file(REMOVE_RECURSE
  "CMakeFiles/cssp_trees.dir/cssp_trees.cpp.o"
  "CMakeFiles/cssp_trees.dir/cssp_trees.cpp.o.d"
  "cssp_trees"
  "cssp_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cssp_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
