// Query-service throughput (google-benchmark): the serving-side numbers the
// distance-oracle subsystem exists for.  Reports queries/sec
// (items_per_second) for
//   * raw oracle point lookups (the flat-matrix floor),
//   * batched point lookups through the full service (1 vs 8 threads,
//     including id validation and metrics),
//   * full-path reconstruction, cold cache (capacity 0, every query
//     reconstructs) vs warm cache (pairs repeat, LRU serves them),
//   * end-to-end oracle builds per solver (the amortized cost of standing a
//     service up).
// The n=256 oracle is built from the sequential reference sweep so the
// binary is fast from a cold build; the build benches run the CONGEST
// solvers themselves at small n.
#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "serve/sharded_oracle.hpp"
#include "serve/snapshot_manager.hpp"
#include "serve/wire.hpp"
#include "service/query_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace dapsp;
using service::DistanceOracle;
using service::Query;
using service::QueryService;
using service::QueryServiceConfig;
using service::QueryType;

constexpr graph::NodeId kServeN = 256;

const graph::Graph& serve_graph() {
  static const graph::Graph g =
      graph::erdos_renyi(kServeN, 6.0 / kServeN, {0, 8, 0.2}, 42);
  return g;
}

const DistanceOracle& serve_oracle() {
  static const DistanceOracle o = service::build_oracle(
      serve_graph(), {service::Solver::kReference, 0, 0.5});
  return o;
}

std::vector<Query> random_queries(QueryType type, std::size_t count,
                                  std::size_t distinct_pairs,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Query> pool(distinct_pairs);
  for (auto& q : pool) {
    q.type = type;
    q.u = static_cast<graph::NodeId>(rng.below(kServeN));
    q.v = static_cast<graph::NodeId>(rng.below(kServeN));
  }
  std::vector<Query> out(count);
  for (auto& q : out) q = pool[rng.below(pool.size())];
  return out;
}

/// Raw oracle reads: the floor every service-layer number is compared to.
void BM_OracleDistRaw(benchmark::State& state) {
  const DistanceOracle& o = serve_oracle();
  util::Xoshiro256 rng(1);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs(4096);
  for (auto& [u, v] : pairs) {
    u = static_cast<graph::NodeId>(rng.below(kServeN));
    v = static_cast<graph::NodeId>(rng.below(kServeN));
  }
  graph::Weight acc = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : pairs) acc += o.dist(u, v);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
}
BENCHMARK(BM_OracleDistRaw);

/// Batched point lookups through the service; Arg = thread count.
void BM_ServicePointLookup(benchmark::State& state) {
  QueryServiceConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  const QueryService svc(serve_oracle(), cfg);
  const auto batch = random_queries(QueryType::kDist, 1 << 16, 1 << 16, 2);
  for (auto _ : state) {
    auto results = svc.query_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServicePointLookup)->Arg(1)->Arg(8);

/// Path reconstruction with the cache disabled: every query walks next hops.
void BM_ServicePathCold(benchmark::State& state) {
  QueryServiceConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.path_cache_capacity = 0;
  const QueryService svc(serve_oracle(), cfg);
  const auto batch = random_queries(QueryType::kPath, 1 << 14, 1 << 14, 3);
  for (auto _ : state) {
    auto results = svc.query_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServicePathCold)->Arg(1)->Arg(8);

/// Path reconstruction when queries repeat over 1k pairs and the LRU holds
/// them all: steady state is pure cache hits.
void BM_ServicePathWarm(benchmark::State& state) {
  QueryServiceConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.path_cache_capacity = 1 << 12;
  const QueryService svc(serve_oracle(), cfg);
  const auto batch = random_queries(QueryType::kPath, 1 << 14, 1 << 10, 4);
  for (auto _ : state) {
    auto results = svc.query_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  const auto st = svc.stats();
  state.counters["hit_rate"] = st.cache_hit_rate();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServicePathWarm)->Arg(1)->Arg(8);

/// End-to-end oracle builds: solver run + matrix flatten + next-hop table.
void BM_OracleBuild(benchmark::State& state) {
  const auto solver = static_cast<service::Solver>(state.range(0));
  const graph::Graph g = graph::erdos_renyi(32, 0.15, {0, 6, 0.2}, 7);
  for (auto _ : state) {
    auto oracle = service::build_oracle(g, {solver, 0, 0.5});
    benchmark::DoNotOptimize(oracle.node_count());
    state.counters["rounds"] =
        static_cast<double>(oracle.build_stats().rounds);
  }
}
BENCHMARK(BM_OracleBuild)
    ->Arg(static_cast<int>(service::Solver::kPipelined))
    ->Arg(static_cast<int>(service::Solver::kBlocker))
    ->Arg(static_cast<int>(service::Solver::kScaled))
    ->Arg(static_cast<int>(service::Solver::kApprox))
    ->Arg(static_cast<int>(service::Solver::kReference));

// ---------------------------------------------------------------------------
// Serving-tier load scenarios (sharded snapshots, hot swap, wire protocols).

constexpr service::OracleBuildOptions kRefBuild{service::Solver::kReference,
                                                0, 0.5};

/// Sustained many-client load with continuous background rebuild + swap:
/// Arg = client thread count.  Each iteration runs every client through
/// 8 batches of 4096 point queries while the main thread alternates the
/// serving graph and hot-swaps freshly built 4-shard snapshots.  Every
/// response is verified against the two reference closures -- a batch that
/// matches neither (a dropped, wrong, or epoch-mixed answer) aborts the
/// bench with SkipWithError, so the reported QPS is certified-correct
/// throughput under swap pressure, not just survivable traffic.
void BM_ServeSustainedQPS(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const graph::Graph ga = serve_graph();
  const graph::Graph gb =
      graph::erdos_renyi(kServeN, 6.0 / kServeN, {0, 8, 0.2}, 43);
  const DistanceOracle& refA = serve_oracle();
  static const DistanceOracle refB = service::build_oracle(gb, kRefBuild);

  QueryServiceConfig cfg;
  cfg.threads = 2;
  QueryService svc(serve::build_sharded_oracle(ga, kRefBuild, 4), cfg);
  serve::SnapshotManager manager(svc, ga, kRefBuild, 4);

  const auto batch = random_queries(QueryType::kDist, 4096, 4096, 11);
  constexpr int kBatchesPerClient = 8;
  std::atomic<std::uint64_t> violations{0};
  const auto client = [&] {
    for (int b = 0; b < kBatchesPerClient; ++b) {
      const auto results = svc.query_batch(batch);
      bool all_a = true, all_b = true;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!results[i].ok) {
          all_a = all_b = false;
          break;
        }
        all_a = all_a && results[i].dist == refA.dist(batch[i].u, batch[i].v);
        all_b = all_b && results[i].dist == refB.dist(batch[i].u, batch[i].v);
      }
      if (!all_a && !all_b) violations.fetch_add(1);
    }
  };

  int cycle = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client);
    // Two full rebuild+swap cycles land while this iteration's traffic runs.
    for (int swaps = 0; swaps < 2; ++swaps) {
      manager.set_graph(++cycle % 2 ? gb : ga);
      manager.rebuild_now();
    }
    for (auto& t : threads) t.join();
  }
  if (violations.load() != 0) {
    state.SkipWithError("response matched neither snapshot (dropped or "
                        "epoch-mixed answer under swap)");
    return;
  }
  const auto st = svc.stats();
  state.counters["swaps"] = static_cast<double>(st.swaps);
  state.counters["errors"] = static_cast<double>(st.total_errors());
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(clients * kBatchesPerClient * batch.size()));
}
BENCHMARK(BM_ServeSustainedQPS)->Arg(2)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Mixed analytics + point traffic (kpath / route / report / bc / dist)
/// against a live service while the snapshot manager rebuilds and hot-swaps
/// underneath.  Per-family ok counters are exported; an iteration where any
/// analytics family fails to produce a single in-band answer aborts the
/// bench, so the reported QPS is all-four-families-live throughput during
/// rebuild, not a survivor average.
void BM_ServeAnalyticsUnderRebuild(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  static const std::shared_ptr<const graph::Graph> g =
      std::make_shared<const graph::Graph>(
          graph::rmat(/*scale=*/7, /*edgefactor=*/8, {0, 8, 0.2}, 21));
  const graph::NodeId n = g->node_count();

  QueryServiceConfig cfg;
  cfg.threads = 2;
  QueryService svc(serve::build_sharded_oracle(*g, kRefBuild, 4), cfg);
  svc.enable_analytics(g);
  serve::SnapshotManager manager(svc, *g, kRefBuild, 4);

  util::Xoshiro256 rng(31);
  std::vector<Query> batch;
  for (int i = 0; i < 64; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    Query kq;
    kq.type = QueryType::kKPaths;
    kq.u = u;
    kq.v = v;
    kq.k = 4;
    batch.push_back(kq);
    Query rq;
    rq.type = QueryType::kRoute;
    rq.u = u;
    rq.v = v;
    rq.constraints.avoid_nodes = {static_cast<graph::NodeId>((u + v) % n)};
    batch.push_back(rq);
    Query dq;
    dq.type = QueryType::kDist;
    dq.u = u;
    dq.v = v;
    batch.push_back(dq);
  }
  Query gq;
  gq.type = QueryType::kReport;
  batch.push_back(gq);
  Query bq;
  bq.type = QueryType::kBetweenness;
  bq.samples = 8;
  batch.push_back(bq);

  std::array<std::atomic<std::uint64_t>, service::kQueryTypeCount> ok{};
  const auto client = [&] {
    const auto results = svc.query_batch(batch);
    for (const auto& r : results) {
      if (r.ok) ok[static_cast<std::size_t>(r.type)].fetch_add(1);
    }
  };

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client);
    // A full rebuild+swap cycle lands while this iteration's traffic runs.
    manager.rebuild_now();
    for (auto& t : threads) t.join();
  }

  const auto count = [&ok](QueryType t) {
    return static_cast<double>(ok[static_cast<std::size_t>(t)].load());
  };
  state.counters["kpath_ok"] = count(QueryType::kKPaths);
  state.counters["route_ok"] = count(QueryType::kRoute);
  state.counters["report_ok"] = count(QueryType::kReport);
  state.counters["bc_ok"] = count(QueryType::kBetweenness);
  state.counters["dist_ok"] = count(QueryType::kDist);
  state.counters["swaps"] = static_cast<double>(svc.stats().swaps);
  for (const QueryType t : {QueryType::kKPaths, QueryType::kRoute,
                            QueryType::kReport, QueryType::kBetweenness}) {
    if (count(t) == 0.0) {
      state.SkipWithError("an analytics family produced no ok answer under "
                          "rebuild");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients * batch.size()));
}
BENCHMARK(BM_ServeAnalyticsUnderRebuild)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Per-line text protocol: the baseline the batch+binary path is measured
/// against.  One "dist U V" line per query, parsed and answered one at a
/// time through serve_stream.
void BM_ServeTextProtocol(benchmark::State& state) {
  const QueryService svc(serve_oracle());
  const auto queries = random_queries(QueryType::kDist, 1 << 14, 1 << 14, 12);
  std::string request;
  for (const Query& q : queries) {
    request += "dist " + std::to_string(q.u) + " " + std::to_string(q.v) +
               "\n";
  }
  for (auto _ : state) {
    std::istringstream in(request);
    std::ostringstream out;
    const int malformed = svc.serve_stream(in, out, /*json=*/false);
    if (malformed != 0) state.SkipWithError("malformed text request");
    benchmark::DoNotOptimize(out.str().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_ServeTextProtocol);

/// Text protocol with the "batch N" directive: same line format, but the
/// body executes as one pipelined query_batch.
void BM_ServeTextBatchDirective(benchmark::State& state) {
  const QueryService svc(serve_oracle());
  const auto queries = random_queries(QueryType::kDist, 1 << 14, 1 << 14, 12);
  std::string request = "batch " + std::to_string(queries.size()) + "\n";
  for (const Query& q : queries) {
    request += "dist " + std::to_string(q.u) + " " + std::to_string(q.v) +
               "\n";
  }
  for (auto _ : state) {
    std::istringstream in(request);
    std::ostringstream out;
    const int malformed = svc.serve_stream(in, out, /*json=*/false);
    if (malformed != 0) state.SkipWithError("malformed batch request");
    benchmark::DoNotOptimize(out.str().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_ServeTextBatchDirective);

/// Length-prefixed binary batch frames through serve_binary: no per-query
/// tokenizing or decimal formatting, one frame per 16k queries.
void BM_ServeBinaryBatch(benchmark::State& state) {
  const QueryService svc(serve_oracle());
  const auto queries = random_queries(QueryType::kDist, 1 << 14, 1 << 14, 12);
  std::string request;
  serve::wire::append_batch_request(request, queries);
  for (auto _ : state) {
    std::istringstream in(request);
    std::ostringstream out;
    const int errors = serve::wire::serve_binary(svc, in, out);
    if (errors != 0) state.SkipWithError("binary request rejected");
    benchmark::DoNotOptimize(out.str().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_ServeBinaryBatch);

}  // namespace

BENCHMARK_MAIN();
