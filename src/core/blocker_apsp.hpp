// Algorithm 3: the faster k-SSP / APSP algorithm (Section III, Theorems I.2
// and I.3).
//
// Pipeline:
//   1. h-hop CSSSP from every source (Algorithm 1 with hop bound 2h).
//   2. Greedy blocker set Q over those trees (Section III-B).
//   3. For each blocker c, full SSSP trees rooted at c: forward (dist(c, v))
//      and reverse (dist(v, c)) distributed Bellman-Ford, n rounds each.
//   4. Each source x knows dist(x, c) after the reverse runs; the q*k values
//      are gathered and broadcast to everyone.
//   5. Local combine: dist(x, v) = min(2h-hop dist, min_c dist(x,c) +
//      dist(c, v)).  Any shortest path with more than h hops passes through
//      a depth-h tree leaf whose root path contains a blocker, which makes
//      the combine exact.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "core/cssp.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

struct BlockerApspParams {
  std::vector<NodeId> sources;  ///< k sources; empty = all nodes (APSP)
  /// Hop parameter h; 0 = choose by Theorem I.2's balance using W, or by
  /// Theorem I.3's balance when `delta_for_h` is set.
  std::uint32_t h = 0;
  /// When nonzero and h == 0, choose h by Theorem I.3's Delta balance with
  /// this distance bound instead of Theorem I.2's weight balance.
  Weight delta_for_h = 0;
  /// Bound on 2h-hop shortest path distances; 0 = use 2h * max edge weight.
  Weight delta2h = 0;
};

struct BlockerApspResult {
  std::vector<NodeId> sources;
  std::vector<std::vector<Weight>> dist;    ///< exact dist[i][v]
  std::vector<std::vector<NodeId>> parent;  ///< last edge on a shortest path
  std::vector<NodeId> blockers;
  std::uint32_t h = 0;
  congest::RunStats stats;  ///< all phases composed sequentially
  std::uint64_t theoretical_bound = 0;
  /// Phase-level round breakdown (sums to stats.rounds).
  congest::Round cssp_rounds = 0;
  congest::Round blocker_rounds = 0;
  congest::Round sssp_rounds = 0;
  congest::Round combine_rounds = 0;
};

BlockerApspResult blocker_apsp(const graph::Graph& g, BlockerApspParams params);

}  // namespace dapsp::core
