// E6 -- Lemma II.15: short-range (Algorithm 2) dilation and congestion.
//
// Single-source short-range with the paper's gamma = sqrt(h): dilation
// (settle round) <= ceil(Delta*sqrt(h)) + h and per-node congestion
// (messages per source over the whole run) <= sqrt(h) + 1.  The multi-source
// variant switches to gamma = sqrt(hk/Delta) as in Section II-C's closing
// remark.
#include "core/short_range.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E6: Lemma II.15 (short-range Algorithm 2)",
                "Dilation and congestion vs their bounds under an h sweep; "
                "'late sends' is the Invariant-1 canary and must be 0.");

  const graph::NodeId n = 48;
  const graph::Graph g = graph::erdos_renyi(n, 0.1, {0, 4, 0.3}, 31337);

  {
    bench::Table table({"h", "Delta_h", "settle", "dilation bound",
                        "congestion", "congestion bound", "late sends"});
    for (const std::uint32_t h : {4u, 9u, 16u, 25u, 47u}) {
      core::ShortRangeParams p;
      p.sources = {0};
      p.h = h;
      p.delta = graph::max_finite_hop_distance(g, h);
      const auto res = core::short_range(g, p);
      table.row({fmt(std::uint64_t{h}),
                 fmt(static_cast<std::uint64_t>(p.delta)),
                 fmt(res.settle_round), fmt(res.dilation_bound),
                 fmt(res.max_sends_per_node), fmt(res.congestion_bound),
                 fmt(res.late_sends)});
    }
    std::cout << "-- single source (gamma = sqrt(h)) --\n";
    table.print();
  }

  {
    bench::Table table({"k", "h", "settle", "dilation bound", "congestion",
                        "congestion bound"});
    for (const std::uint32_t k : {2u, 6u, 12u}) {
      for (const std::uint32_t h : {4u, 16u}) {
        core::ShortRangeParams p;
        for (std::uint32_t i = 0; i < k; ++i) {
          p.sources.push_back((i * 11) % n);
        }
        p.h = h;
        p.delta = graph::max_finite_hop_distance(g, h);
        const auto res = core::short_range(g, p);
        table.row({fmt(std::uint64_t{k}), fmt(std::uint64_t{h}),
                   fmt(res.settle_round), fmt(res.dilation_bound),
                   fmt(res.max_sends_per_node), fmt(res.congestion_bound)});
      }
    }
    std::cout << "\n-- k sources (gamma = sqrt(hk/Delta)) --\n";
    table.print();
  }

  {
    // Extension: seed one node per "region" with a precomputed distance and
    // extend by h hops (the short-range-extension of [13]).
    bench::Table table({"h", "settle", "dilation bound", "congestion"});
    for (const std::uint32_t h : {4u, 9u, 16u}) {
      core::ShortRangeParams p;
      p.sources = {0};
      p.h = h;
      p.delta = 400;
      p.initial.assign(1, std::vector<graph::Weight>(n, graph::kInfDist));
      p.initial[0][0] = 0;
      p.initial[0][n / 2] = 17;
      p.initial[0][n - 1] = 40;
      const auto res = core::short_range(g, p);
      table.row({fmt(std::uint64_t{h}), fmt(res.settle_round),
                 fmt(res.dilation_bound), fmt(res.max_sends_per_node)});
    }
    std::cout << "\n-- short-range-extension (3 seeded nodes) --\n";
    table.print();
  }
  return 0;
}
