// Sequential Bellman–Ford oracle.  Slower than Dijkstra but structurally
// identical to the distributed baseline, which makes it a convenient
// cross-check for the CONGEST Bellman–Ford implementation.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "seq/dijkstra.hpp"

namespace dapsp::seq {

/// Full shortest paths from `source` (n-1 relaxation sweeps).
SsspResult bellman_ford(const graph::Graph& g, graph::NodeId source);

}  // namespace dapsp::seq
