#include "congest/primitives.hpp"

#include <algorithm>
#include <deque>

#include "util/int_math.hpp"

namespace dapsp::congest {

using graph::Graph;
using graph::kNoNode;
using graph::NodeId;

namespace {

enum Tag : std::uint32_t {
  kBfsToken = 1,   // {depth}
  kBfsJoin = 2,    // {} -> sent to adopted parent
  kBcast = 3,      // {index, total, value}
  kConvMax = 4,    // {value, argmin_id}
  kGatherUp = 5,   // {origin, a, b}
  kGatherDone = 6, // {count} root -> everyone via kBcast reuse
};

/// --- BFS tree ------------------------------------------------------------

class BfsProtocol final : public Protocol {
 public:
  BfsProtocol(NodeId root, NodeId self) : root_(root), self_(self) {}

  void init(Context& ctx) override {
    if (self_ == root_) {
      depth_ = 0;
      joined_ = true;
      ctx.broadcast(Message(kBfsToken, {0}));
    }
  }

  void send_phase(Context& ctx) override {
    if (pending_token_) {
      pending_token_ = false;
      ctx.broadcast(Message(kBfsToken, {depth_}));
      ctx.send(parent_, Message(kBfsJoin, {}));
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag == kBfsToken && !joined_) {
        // Inbox is sender-ascending, so the first token wins => min-id parent.
        joined_ = true;
        parent_ = env.from;
        depth_ = static_cast<std::uint32_t>(env.msg.f[0]) + 1;
        pending_token_ = true;
      } else if (env.msg.tag == kBfsJoin) {
        children_.push_back(env.from);
      }
    }
  }

  bool quiescent() const override { return !pending_token_; }

  Round next_send_round(Round now) const override {
    return pending_token_ ? now + 1 : kNeverSends;
  }

  NodeId parent() const { return parent_; }
  std::uint32_t depth() const { return depth_; }
  const std::vector<NodeId>& children() const { return children_; }
  bool joined() const { return joined_; }

 private:
  NodeId root_;
  NodeId self_;
  NodeId parent_ = kNoNode;
  std::uint32_t depth_ = 0;
  bool joined_ = false;
  bool pending_token_ = false;
  std::vector<NodeId> children_;
};

/// --- Pipelined broadcast ---------------------------------------------------

class BroadcastProtocol final : public Protocol {
 public:
  BroadcastProtocol(const BfsTree& tree, NodeId self,
                    const std::vector<std::int64_t>* root_values)
      : tree_(tree), self_(self) {
    if (self == tree.root) {
      received_.assign(root_values->begin(), root_values->end());
      total_ = received_.size();
    }
  }

  void send_phase(Context& ctx) override {
    // Root injects one value per round; relays forward what has arrived.
    if (self_ == tree_.root) {
      if (next_ < received_.size()) {
        const Message m(kBcast,
                        {static_cast<std::int64_t>(next_),
                         static_cast<std::int64_t>(received_.size()),
                         received_[next_]});
        for (const NodeId c : tree_.children[self_]) ctx.send(c, m);
        ++next_;
      }
      return;
    }
    if (!forward_.empty()) {
      const Message m = forward_.front();
      forward_.pop_front();
      for (const NodeId c : tree_.children[self_]) ctx.send(c, m);
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kBcast) continue;
      const auto index = static_cast<std::size_t>(env.msg.f[0]);
      total_ = static_cast<std::size_t>(env.msg.f[1]);
      if (received_.size() <= index) received_.resize(index + 1);
      received_[index] = env.msg.f[2];
      ++have_;
      forward_.push_back(env.msg);
    }
  }

  bool quiescent() const override {
    if (self_ == tree_.root) return next_ >= received_.size();
    return forward_.empty();
  }

  Round next_send_round(Round now) const override {
    return quiescent() ? kNeverSends : now + 1;
  }

  bool complete() const {
    return self_ == tree_.root || have_ == total_;
  }
  const std::vector<std::int64_t>& received() const { return received_; }

 private:
  const BfsTree& tree_;
  NodeId self_;
  std::vector<std::int64_t> received_;
  std::deque<Message> forward_;
  std::size_t next_ = 0;   // root: next index to inject
  std::size_t have_ = 0;
  std::size_t total_ = static_cast<std::size_t>(-1);
};

/// --- Convergecast max ------------------------------------------------------

class ConvergeMaxProtocol final : public Protocol {
 public:
  ConvergeMaxProtocol(const BfsTree& tree, NodeId self, std::int64_t value)
      : tree_(tree), self_(self), best_(value), arg_(self) {}

  void send_phase(Context& ctx) override {
    if (!sent_ && reports_ == tree_.children[self_].size() &&
        self_ != tree_.root && tree_.reached(self_)) {
      sent_ = true;
      ctx.send(tree_.parent[self_],
               Message(kConvMax, {best_, static_cast<std::int64_t>(arg_)}));
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kConvMax) continue;
      ++reports_;
      const std::int64_t v = env.msg.f[0];
      const auto id = static_cast<NodeId>(env.msg.f[1]);
      if (v > best_ || (v == best_ && id < arg_)) {
        best_ = v;
        arg_ = id;
      }
    }
  }

  bool quiescent() const override {
    // A node still owing its parent a report is waiting on children, not on
    // its own schedule, so "quiescent" is fine: progress is message-driven.
    return true;
  }

  Round next_send_round(Round now) const override {
    const bool owes_report = !sent_ && self_ != tree_.root &&
                             tree_.reached(self_) &&
                             reports_ == tree_.children[self_].size();
    return owes_report ? now + 1 : kNeverSends;
  }

  bool done() const {
    return self_ == tree_.root && reports_ == tree_.children[self_].size();
  }
  std::pair<std::int64_t, NodeId> best() const { return {best_, arg_}; }

 private:
  const BfsTree& tree_;
  NodeId self_;
  std::int64_t best_;
  NodeId arg_;
  std::size_t reports_ = 0;
  bool sent_ = false;
};

/// --- Gather to all ----------------------------------------------------------

class GatherProtocol final : public Protocol {
 public:
  GatherProtocol(const BfsTree& tree, NodeId self,
                 std::vector<GatherItem> own_items)
      : tree_(tree), self_(self) {
    // Leaves with no items must still tell the parent they are done; we use a
    // per-child "expected count" handshake instead: every node first reports
    // its subtree item count, then streams the items.
    for (const GatherItem& it : own_items) up_.push_back(it);
    own_count_ = own_items.size();
  }

  void send_phase(Context& ctx) override {
    maybe_report_count(ctx);
    // Stream items upward, one per round per link (pipelined).
    if (self_ != tree_.root && tree_.reached(self_) && streamed_ < up_.size()) {
      const GatherItem& it = up_[streamed_];
      ctx.send(tree_.parent[self_],
               Message(kGatherUp, {static_cast<std::int64_t>(it.origin), it.a,
                                   it.b}));
      ++streamed_;
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      switch (env.msg.tag) {
        case kGatherDone: {  // child subtree count
          ++count_reports_;
          expected_from_children_ += static_cast<std::size_t>(env.msg.f[0]);
          break;
        }
        case kGatherUp: {
          GatherItem it{static_cast<NodeId>(env.msg.f[0]), env.msg.f[1],
                        env.msg.f[2]};
          up_.push_back(it);
          ++received_from_children_;
          break;
        }
        default:
          break;
      }
    }
  }

  bool quiescent() const override {
    if (self_ == tree_.root) return true;
    return streamed_ >= up_.size() &&
           (count_sent_ || !tree_.reached(self_));
  }

  Round next_send_round(Round now) const override {
    if (self_ == tree_.root || !tree_.reached(self_)) return kNeverSends;
    const bool count_due =
        !count_sent_ && count_reports_ >= tree_.children[self_].size();
    return (count_due || streamed_ < up_.size()) ? now + 1 : kNeverSends;
  }

  bool root_has_all() const {
    return count_reports_ == tree_.children[self_].size() &&
           received_from_children_ == expected_from_children_;
  }
  std::vector<GatherItem> take_items() { return std::move(up_); }

 private:
  void maybe_report_count(Context& ctx) {
    if (count_sent_ || self_ == tree_.root || !tree_.reached(self_)) return;
    if (count_reports_ < tree_.children[self_].size()) return;
    const std::size_t subtree = own_count_ + expected_from_children_;
    ctx.send(tree_.parent[self_],
             Message(kGatherDone, {static_cast<std::int64_t>(subtree)}));
    count_sent_ = true;
  }

  const BfsTree& tree_;
  NodeId self_;
  std::vector<GatherItem> up_;
  std::size_t own_count_ = 0;
  std::size_t streamed_ = 0;
  std::size_t count_reports_ = 0;
  std::size_t expected_from_children_ = 0;
  std::size_t received_from_children_ = 0;
  bool count_sent_ = false;
};

void accumulate(RunStats* into, const RunStats& phase) {
  if (into != nullptr) *into += phase;
}

}  // namespace

BfsTree build_bfs_tree(const Graph& g, NodeId root, RunStats* stats) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<BfsProtocol>(root, v));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(n) + 2;
  Engine engine(g, std::move(procs), opt);
  accumulate(stats, engine.run());

  BfsTree tree;
  tree.root = root;
  tree.parent.resize(n);
  tree.depth.resize(n);
  tree.children.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const BfsProtocol&>(engine.protocol(v));
    tree.parent[v] = p.parent();
    tree.depth[v] = p.joined() ? p.depth() : 0;
    tree.children[v] = p.children();
    std::sort(tree.children[v].begin(), tree.children[v].end());
    if (p.joined()) tree.height = std::max(tree.height, p.depth());
  }
  return tree;
}

std::vector<std::vector<std::int64_t>> broadcast_values(
    const Graph& g, const BfsTree& tree,
    const std::vector<std::int64_t>& values, RunStats* stats) {
  const NodeId n = g.node_count();
  if (values.empty()) return std::vector<std::vector<std::int64_t>>(n);
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<BroadcastProtocol>(
        tree, v, v == tree.root ? &values : nullptr));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(values.size()) + tree.height + 4;
  Engine engine(g, std::move(procs), opt);
  accumulate(stats, engine.run());

  std::vector<std::vector<std::int64_t>> out(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const BroadcastProtocol&>(engine.protocol(v));
    util::check(!tree.reached(v) || p.complete(),
                "broadcast_values: node missed values");
    out[v] = p.received();
  }
  return out;
}

std::pair<std::int64_t, NodeId> converge_max(
    const Graph& g, const BfsTree& tree,
    const std::vector<std::int64_t>& value_per_node, RunStats* stats) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(
        std::make_unique<ConvergeMaxProtocol>(tree, v, value_per_node[v]));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(tree.height) + 4;
  Engine engine(g, std::move(procs), opt);
  accumulate(stats, engine.run());

  const auto& root =
      static_cast<const ConvergeMaxProtocol&>(engine.protocol(tree.root));
  util::check(root.done(), "converge_max: root missing child reports");
  return root.best();
}

std::vector<GatherItem> gather_to_all(
    const Graph& g, const BfsTree& tree,
    const std::vector<std::vector<GatherItem>>& items_per_node,
    RunStats* stats) {
  const NodeId n = g.node_count();
  std::size_t total = 0;
  for (const auto& items : items_per_node) total += items.size();

  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<GatherProtocol>(tree, v, items_per_node[v]));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(total) + 2ULL * tree.height + 8;
  Engine engine(g, std::move(procs), opt);
  accumulate(stats, engine.run());

  auto& root = static_cast<GatherProtocol&>(engine.protocol(tree.root));
  util::check(root.root_has_all(), "gather_to_all: root missing items");
  std::vector<GatherItem> all = root.take_items();
  std::sort(all.begin(), all.end());

  // Broadcast the gathered list back down (three int64 fields per item do
  // not fit the single-value broadcast, so pack origin/a/b as consecutive
  // values; still O(log n) bits per message).
  std::vector<std::int64_t> flat;
  flat.reserve(all.size() * 3);
  for (const GatherItem& it : all) {
    flat.push_back(static_cast<std::int64_t>(it.origin));
    flat.push_back(it.a);
    flat.push_back(it.b);
  }
  const auto copies = broadcast_values(g, tree, flat, stats);
  (void)copies;
  return all;
}

}  // namespace dapsp::congest
