#!/usr/bin/env python3
"""Compare two google-benchmark JSON files scenario by scenario.

Usage: bench_compare.py OLD.json NEW.json [--threshold PCT] [--out FILE]

Matches benchmarks by name, prints per-scenario real_time deltas plus
critpath_ns deltas where both sides carry the counter (the engine
microbenches do; see docs/PERF.md), and exits non-zero when any scenario's
real_time regresses by more than --threshold percent (default 5).  Scenarios
present on only one side are listed but never fail the run, so adding or
retiring a benchmark does not break CI.

The threshold gate is one-sided: improvements of any size pass.  CI calls
this with a wide threshold (noisy shared runners); locally the default 5% is
a useful guard when iterating on delivery-path changes.

Scenarios whose name matches --exempt (default ^CLIBuild/ -- the CLI-level
oracle-build timings bench_engine.sh --backend socket appends, which have no
committed baseline yet) are reported with their deltas but never fail the
gate.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used;
        # raw iterations carry run_type "iteration" (absent in old versions).
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = b
    return out


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.3f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.3f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.3f us" % (ns / 1e3)
    return "%.0f ns" % ns


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale.get(unit, 1.0)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old_json")
    ap.add_argument("new_json")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="max tolerated real_time regression in percent "
                         "(default 5)")
    ap.add_argument("--exempt", default="^CLIBuild/",
                    help="regex of scenario names reported but excluded "
                         "from the regression gate (default ^CLIBuild/; "
                         "empty string exempts nothing)")
    ap.add_argument("--out", help="also write the report to FILE")
    args = ap.parse_args()
    exempt = re.compile(args.exempt) if args.exempt else None

    old = load(args.old_json)
    new = load(args.new_json)
    common = [n for n in old if n in new]
    only_old = [n for n in old if n not in new]
    only_new = [n for n in new if n not in old]

    lines = []
    lines.append("benchmark compare: %s -> %s  (threshold %.1f%%)"
                 % (args.old_json, args.new_json, args.threshold))
    lines.append("%-36s %12s %12s %8s %10s" %
                 ("scenario", "old", "new", "delta", "critpath"))
    regressions = []
    for name in common:
        o, n = old[name], new[name]
        o_ns = to_ns(o["real_time"], o.get("time_unit", "ns"))
        n_ns = to_ns(n["real_time"], n.get("time_unit", "ns"))
        pct = 100.0 * (n_ns - o_ns) / o_ns if o_ns > 0 else 0.0
        crit = ""
        if "critpath_ns" in o and "critpath_ns" in n and o["critpath_ns"] > 0:
            cpct = 100.0 * (n["critpath_ns"] - o["critpath_ns"]) / o["critpath_ns"]
            crit = "%+.1f%%" % cpct
        gated = not (exempt and exempt.search(name))
        lines.append("%-36s %12s %12s %+7.1f%% %10s%s" %
                     (name, fmt_ns(o_ns), fmt_ns(n_ns), pct, crit,
                      "" if gated else "  (exempt)"))
        if gated and pct > args.threshold:
            regressions.append((name, pct))
    for name in only_old:
        lines.append("%-36s %12s %12s   (removed)" % (name, "-", "-"))
    for name in only_new:
        lines.append("%-36s %12s %12s   (new)" % (name, "-", "-"))

    if regressions:
        lines.append("")
        lines.append("FAIL: %d scenario(s) regressed past %.1f%%:"
                     % (len(regressions), args.threshold))
        for name, pct in regressions:
            lines.append("  %s  +%.1f%%" % (name, pct))
    else:
        lines.append("")
        lines.append("OK: no scenario regressed past %.1f%%" % args.threshold)

    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
