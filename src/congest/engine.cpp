#include "congest/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "congest/faults.hpp"
#include "congest/plane.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::congest {

using graph::Graph;
using graph::NodeId;

namespace {

// Process-wide A/B overrides (see Engine::set_force_dense).  Plain statics:
// they are latched in the Engine constructor, and tests set them between
// solver runs, never concurrently with engine construction.
bool g_force_dense = false;
bool g_force_pin = false;
std::size_t g_force_threads = Engine::kNoThreadOverride;
obs::TraceRecorder* g_global_recorder = nullptr;
const FaultPlan* g_global_fault_plan = nullptr;
MessagePlane* g_global_plane = nullptr;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double seconds_between(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

std::uint64_t to_ns(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

/// Min-heap helpers over (wake round, node).
struct WakeGreater {
  bool operator()(const std::pair<Round, NodeId>& a,
                  const std::pair<Round, NodeId>& b) const {
    return a.first > b.first || (a.first == b.first && a.second > b.second);
  }
};

}  // namespace

void Engine::set_force_dense(bool on) noexcept { g_force_dense = on; }
bool Engine::force_dense() noexcept { return g_force_dense; }
void Engine::set_force_threads(std::size_t threads) noexcept {
  g_force_threads = threads;
}
void Engine::set_force_pin(bool on) noexcept { g_force_pin = on; }
bool Engine::force_pin() noexcept { return g_force_pin; }
void Engine::set_global_recorder(obs::TraceRecorder* rec) noexcept {
  g_global_recorder = rec;
}
obs::TraceRecorder* Engine::global_recorder() noexcept {
  return g_global_recorder;
}
void Engine::set_global_fault_plan(const FaultPlan* plan) noexcept {
  g_global_fault_plan = plan;
}
const FaultPlan* Engine::global_fault_plan() noexcept {
  return g_global_fault_plan;
}
void Engine::set_global_plane(MessagePlane* plane) noexcept {
  g_global_plane = plane;
}
MessagePlane* Engine::global_plane() noexcept { return g_global_plane; }

// --- NodeContext -----------------------------------------------------------

NodeId NodeContext::node_count() const noexcept {
  return engine_->graph().node_count();
}

std::span<const NodeId> NodeContext::neighbors() const noexcept {
  return engine_->graph().comm_neighbors(self_);
}

void NodeContext::send(NodeId to, const Message& m) {
  if (!may_send_) {
    throw std::logic_error("Context::send: sending in receive_phase");
  }
  if (to != last_to_) {
    last_slot_ = engine_->link_slot(self_, to);  // throws on non-neighbor
    last_to_ = to;
  }
  engine_->enqueue(self_, last_slot_, m);
}

void NodeContext::broadcast(const Message& m) {
  if (!may_send_) {
    throw std::logic_error("Context::broadcast: sending in receive_phase");
  }
  const auto deg = engine_->graph().comm_degree(self_);
  const std::size_t base = engine_->link_base(self_);
  for (std::size_t j = 0; j < deg; ++j) engine_->enqueue(self_, base + j, m);
}

// --- Engine ----------------------------------------------------------------

void Engine::enqueue(NodeId from, std::size_t slot, const Message& m) {
  Outbox& ob = out_[from];
  // Only this sender's own worker writes its mark byte; the pool join
  // publishes it before deliver() scans the array.
  sent_mark_[from] = 1;
  if (link_cnt_[slot]++ == 0) {
    ob.touched.push_back(static_cast<std::uint32_t>(slot));
  } else {
    ob.has_dup = true;
  }
  ob.slots.push_back(static_cast<std::uint32_t>(slot));
  ob.msgs.push_back(m);
}

Engine::Engine(const Graph& g, std::vector<std::unique_ptr<Protocol>> protocols,
               EngineOptions options)
    : graph_(g), protocols_(std::move(protocols)), options_(options) {
  util::check(protocols_.size() == g.node_count(),
              "Engine: need one protocol per node");
  dense_ = options_.dense_fallback || g_force_dense;
  recorder_ = options_.recorder != nullptr ? options_.recorder
                                           : g_global_recorder;
  const NodeId n = g.node_count();

  // Satellite fix: resolve the pool exactly once, here, instead of lazily
  // re-checking on every phase call.
  const std::size_t threads =
      g_force_threads != kNoThreadOverride ? g_force_threads : options_.threads;
  if (threads > 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(threads);
    pool_ = own_pool_.get();
  } else {
    pool_ = &util::ThreadPool::global();
  }
  if (options_.pin_threads || g_force_pin) pool_->pin_threads();

  link_base_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    link_base_[v + 1] = link_base_[v] + g.comm_degree(v);
  }
  const std::size_t links = link_base_[n];
  link_target_.resize(links);
  link_cnt_.assign(links, 0);
  link_off_.assign(links, 0);
  link_lifetime_count_.assign(links, 0);
  out_.resize(n);
  sent_mark_.assign(n, 0);
  inbox_.resize(n);
  inbox_mark_.assign(n, 0);

  in_base_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.comm_neighbors(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      link_target_[link_base_[u] + j] = nbrs[j];
      ++in_base_[nbrs[j] + 1];
    }
  }
  for (NodeId v = 0; v < n; ++v) in_base_[v + 1] += in_base_[v];
  in_links_.resize(links);
  {
    std::vector<std::size_t> cursor(in_base_.begin(), in_base_.end() - 1);
    // comm_neighbors is sorted and u iterates ascending, so each receiver's
    // in-link list comes out sender-ascending with no extra sort.
    for (NodeId u = 0; u < n; ++u) {
      const auto nbrs = g.comm_neighbors(u);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        in_links_[cursor[nbrs[j]]++] = {u, link_base_[u] + j};
      }
    }
  }

  const FaultPlan* plan =
      options_.faults != nullptr ? options_.faults : g_global_fault_plan;
  if (plan != nullptr && plan->enabled()) {
    std::vector<NodeId> link_from(links);
    for (NodeId u = 0; u < n; ++u) {
      for (std::size_t s = link_base_[u]; s < link_base_[u + 1]; ++s) {
        link_from[s] = u;
      }
    }
    faults_ =
        std::make_unique<FaultPlane>(*plan, n, std::move(link_from),
                                     link_target_);
  }

  plane_ = options_.plane != nullptr ? options_.plane : g_global_plane;
  if (plane_ == nullptr) plane_ = &InProcessPlane::instance();
  plane_remote_ = plane_->remote();
  if (plane_remote_ && faults_ != nullptr) {
    // A simulated fault plan inside a real distributed run would fork the
    // replicas' message histories; real faults come from real processes.
    throw std::logic_error(
        "Engine: a remote message plane cannot combine with a simulated "
        "FaultPlan");
  }
  if (plane_remote_) {
    wire_cnt_.assign(links, 0);
    wire_off_.assign(links, 0);
  }

  if (!dense_) {
    wake_round_.assign(n, 0);
    in_next_.assign(n, 0);
    active_next_.reserve(n);
  }
  track_quiet_ = faults_ == nullptr;
  if (track_quiet_) quiet_.assign(n, 0);
  contexts_.reserve(n);
  for (NodeId v = 0; v < n; ++v) contexts_.emplace_back(*this, v);

  profile_ = recorder_ != nullptr && recorder_->records_work_items();
  if (profile_) {
    node_ns_.assign(n, 0);
    node_ns_round_.assign(n, 0);
    last_item_round_.assign(n, 0);
  }

  if (recorder_ != nullptr) {
    recorder_->begin_run(dense_ ? "engine(dense)" : "engine(sparse)", n,
                         links);
  }
  plane_->begin_run(n, static_cast<std::uint64_t>(links));
}

Engine::~Engine() = default;

std::size_t Engine::link_slot(NodeId from, NodeId to) const {
  const auto nbrs = graph_.comm_neighbors(from);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) {
    throw std::logic_error("Context::send: target is not a neighbor");
  }
  return link_base_[from] + static_cast<std::size_t>(it - nbrs.begin());
}

bool Engine::all_quiescent() const {
  if (track_quiet_) return nonquiet_ == 0;
  if (faults_ != nullptr && faults_->plan().has_crashes()) {
    // A crashed node that never revives can never act again; waiting on its
    // quiescent() would spin the run to max_rounds.  A node that will revive
    // keeps its say.
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
      if (faults_->down_forever(v, round_)) continue;
      if (!protocols_[v]->quiescent()) return false;
    }
    return true;
  }
  return std::all_of(protocols_.begin(), protocols_.end(),
                     [](const auto& p) { return p->quiescent(); });
}

void Engine::refresh_quiescence() {
  // Senders and receivers may overlap; the update is idempotent so the
  // double query is harmless (and rare).
  const auto update = [&](NodeId v) {
    const std::uint8_t q = protocols_[v]->quiescent() ? 1 : 0;
    if (q != quiet_[v]) {
      quiet_[v] = q;
      nonquiet_ += q ? std::uint64_t(-1) : std::uint64_t(1);
    }
  };
  for (const NodeId v : touched_senders_) update(v);
  for (const NodeId v : receivers_) update(v);
}

std::size_t Engine::plane_capacity_bytes() const {
  std::size_t bytes = 0;
  for (const Outbox& ob : out_) {
    bytes += ob.slots.capacity() * sizeof(std::uint32_t) +
             ob.touched.capacity() * sizeof(std::uint32_t) +
             ob.pos.capacity() * sizeof(std::uint32_t) +
             ob.msgs.capacity_bytes() + ob.sorted.capacity_bytes();
  }
  for (const auto& in : inbox_) bytes += in.capacity() * sizeof(Envelope);
  bytes += touched_senders_.capacity() * sizeof(NodeId) +
           receivers_.capacity() * sizeof(NodeId) +
           partials_.capacity() * sizeof(SenderPartial) +
           msg_scratch_.capacity() * sizeof(Message) +
           heap_.capacity() * sizeof(std::pair<Round, NodeId>) +
           active_next_.capacity() * sizeof(NodeId) +
           active_now_.capacity() * sizeof(NodeId) +
           link_scratch_.capacity() *
               sizeof(std::pair<std::uint64_t, std::uint32_t>);
  return bytes;
}

// --- sparse scheduler ------------------------------------------------------

void Engine::schedule(NodeId v, Round wake) {
  wake_round_[v] = wake;
  if (wake == Protocol::kNeverSends) return;
  if (wake <= round_ + 1) {
    if (!in_next_[v]) {
      in_next_[v] = 1;
      active_next_.push_back(v);
    }
  } else {
    heap_.emplace_back(wake, v);
    std::push_heap(heap_.begin(), heap_.end(), WakeGreater{});
  }
}

void Engine::reschedule_after_phase(std::span<const NodeId> nodes) {
  for (const NodeId v : nodes) {
    if (faults_ != nullptr && faults_->node_down(v, round_)) {
      // Park the node's wake at its revive round (kNever == kNeverSends, so
      // a permanent crash simply never re-enters the schedule).
      schedule(v, faults_->revive_round(v));
      continue;
    }
    schedule(v, protocols_[v]->next_send_round(round_));
  }
}

/// Builds active_now_ for the (already incremented) round_: the swapped-in
/// next-round list plus every heap entry now due.  Activation consumes the
/// node's wake (set to the 0 sentinel) so stale heap duplicates are dropped.
void Engine::build_active_set() {
  active_now_.clear();
  for (const NodeId v : active_next_) {
    in_next_[v] = 0;
    if (wake_round_[v] != 0 && wake_round_[v] <= round_) {
      wake_round_[v] = 0;
      active_now_.push_back(v);
    }
  }
  active_next_.clear();
  while (!heap_.empty() && heap_.front().first <= round_) {
    const auto [wake, v] = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), WakeGreater{});
    heap_.pop_back();
    if (wake_round_[v] == wake) {
      wake_round_[v] = 0;
      active_now_.push_back(v);
    }
  }
}

/// Earliest live heap wake, discarding stale entries; kNeverSends if none.
Round Engine::next_heap_wake() {
  while (!heap_.empty()) {
    const auto [wake, v] = heap_.front();
    if (wake_round_[v] == wake) return wake;
    std::pop_heap(heap_.begin(), heap_.end(), WakeGreater{});
    heap_.pop_back();
  }
  return Protocol::kNeverSends;
}

/// Accounts `count` provably silent rounds without executing them: the
/// counter, per-round zeros, and the skipped-round stat advance exactly as
/// if the dense engine had run them and observed no messages.
void Engine::skip_silent_rounds(Round count) {
  const Round first = round_ + 1;
  round_ += count;
  stats_.rounds = round_;
  stats_.skipped_rounds += count;
  round_messages_ = 0;
  stats_.round_messages_hist.record_n(0, count);
  if (options_.record_per_round) {
    stats_.per_round_messages.resize(stats_.per_round_messages.size() + count,
                                     0);
  }
  if (recorder_ != nullptr) recorder_->record_gap(first, count);
}

// --- work-item recording (critical-path profiler feed) ---------------------

void Engine::profile_node(NodeId v, std::uint64_t ns) noexcept {
  if (node_ns_round_[v] != round_ + 1) {
    node_ns_round_[v] = round_ + 1;
    node_ns_[v] = ns;
  } else {
    node_ns_[v] += ns;
  }
}

void Engine::record_work_items() {
  // Items go out in node-id order: merge the (sorted) sender list --
  // msgs_out comes from the deliver() partials, still parallel to it --
  // with a sorted copy of the receiver list.  Both sets are identical for
  // sparse/dense and every thread count, so the item stream is too.
  profile_receivers_.assign(receivers_.begin(), receivers_.end());
  std::sort(profile_receivers_.begin(), profile_receivers_.end());
  std::size_t si = 0;
  std::size_t ri = 0;
  while (si < touched_senders_.size() || ri < profile_receivers_.size()) {
    NodeId v;
    std::uint32_t msgs_out = 0;
    bool received = false;
    if (si < touched_senders_.size() &&
        (ri >= profile_receivers_.size() ||
         touched_senders_[si] <= profile_receivers_[ri])) {
      v = touched_senders_[si];
      msgs_out = static_cast<std::uint32_t>(partials_[si].msgs);
      if (ri < profile_receivers_.size() && profile_receivers_[ri] == v) {
        received = true;
        ++ri;
      }
      ++si;
    } else {
      v = profile_receivers_[ri++];
      received = true;
    }
    obs::WorkItem& it = recorder_->work_item_slot();
    it.round = round_;
    it.node = v;
    it.msgs_out = msgs_out;
    if (received) {
      const auto& in = inbox_[v];
      it.msgs_in = static_cast<std::uint32_t>(in.size());
      // Wake edge: the max-lag arrival, ties by smallest sender.  Without
      // faults every arrival was sent this round (lag 0), so this is the
      // smallest sender id -- independent of delivery/scramble order.
      // Under faults the true send round of a delayed frame is unknown at
      // delivery; the delivery round is the documented approximation.
      NodeId wake = in[0].from;
      for (const Envelope& e : in) wake = std::min(wake, e.from);
      it.wake_from = wake;
      it.wake_round = round_;
    }
    it.compute_ns = node_ns_round_[v] == round_ + 1 ? node_ns_[v] : 0;
    it.prev_round = last_item_round_[v] == 0 ? obs::WorkItem::kNoRound
                                             : last_item_round_[v] - 1;
    last_item_round_[v] = round_ + 1;
  }
}

// --- delivery --------------------------------------------------------------

void Engine::gather_inbox(NodeId v) {
  auto& in = inbox_[v];
  in.clear();  // already empty by the deferred-clear invariant; kept cheap
  const std::size_t end = in_base_[v + 1];
  for (std::size_t i = in_base_[v]; i < end; ++i) {
    const auto& [from, slot] = in_links_[i];
    const std::uint32_t cnt = link_cnt_[slot];
    if (cnt == 0) continue;
    const Outbox& ob = out_[from];
    const MessageColumns& src = ob.has_dup ? ob.sorted : ob.msgs;
    const std::uint32_t off = link_off_[slot];
    for (std::uint32_t j = 0; j < cnt; ++j) {
      src.append_envelope(off + j, from, in);
    }
  }
  if (options_.scramble_inbox && in.size() > 1) {
    util::Xoshiro256 rng(options_.scramble_seed ^ (v * 0x9e3779b9ULL) ^
                         (round_ << 20));
    for (std::size_t i = in.size(); i > 1; --i) {
      std::swap(in[i - 1], in[rng.below(i)]);
    }
  }
}

/// Serializes the finalized round into the canonical block (see plane.hpp):
/// senders ascending, each sender's links in first-touch order, send order
/// within a link.  Must run after step 2 of deliver() has filled link_off_.
void Engine::encode_round_block(std::string& out) const {
  out.clear();
  block_put_u32(out, static_cast<std::uint32_t>(touched_senders_.size()));
  for (const NodeId sender : touched_senders_) {
    const Outbox& ob = out_[sender];
    const MessageColumns& src = ob.has_dup ? ob.sorted : ob.msgs;
    block_put_u32(out, sender);
    block_put_u32(out, static_cast<std::uint32_t>(ob.touched.size()));
    const std::size_t len_pos = out.size();
    block_put_u32(out, 0);  // byte_len, patched once the groups are written
    const std::size_t body_start = out.size();
    for (const std::uint32_t slot : ob.touched) {
      const std::uint32_t cnt = link_cnt_[slot];
      const std::uint32_t off = link_off_[slot];
      block_put_u32(out, slot);
      block_put_u32(out, cnt);
      for (std::uint32_t j = 0; j < cnt; ++j) {
        const std::size_t idx = off + j;
        block_put_u32(out, src.tag(idx));
        const std::uint32_t used = src.used(idx);
        block_put_u32(out, used);
        const std::int64_t* f = src.fields(idx);
        for (std::uint32_t t = 0; t < used; ++t) {
          block_put_u64(out, static_cast<std::uint64_t>(f[t]));
        }
      }
    }
    block_patch_u32(out, len_pos,
                    static_cast<std::uint32_t>(out.size() - body_start));
  }
}

/// Rebuilds the receive side of the round from an authoritative wire block:
/// validates the canonical layout, fills the wire columns and per-link
/// (count, offset) tables, and gathers every receiver's inbox from them --
/// the wire twin of the direct column gather.  Receiver discovery order
/// matches the in-process path because the block preserves (sender
/// ascending, first-touch link) order.
void Engine::decode_and_gather(const std::string& block) {
  const NodeId n = graph_.node_count();
  const auto bad = [](const char* why) {
    throw std::runtime_error(
        std::string("Engine: malformed wire round block: ") + why);
  };
  wire_cols_.clear();
  wire_slots_.clear();
  receivers_.clear();
  BlockReader r(block);
  const std::uint32_t sender_count = r.u32();
  NodeId prev_sender = 0;
  bool have_prev = false;
  for (std::uint32_t s = 0; s < sender_count && r.ok(); ++s) {
    const NodeId sender = r.u32();
    const std::uint32_t groups = r.u32();
    r.u32();  // byte_len: shard-slicing metadata, redundant here
    if (!r.ok()) break;
    if (sender >= n) bad("sender id out of range");
    if (have_prev && sender <= prev_sender) bad("senders not ascending");
    prev_sender = sender;
    have_prev = true;
    const std::size_t lo = link_base_[sender];
    const std::size_t hi = link_base_[sender + 1];
    for (std::uint32_t g = 0; g < groups && r.ok(); ++g) {
      const std::uint32_t slot = r.u32();
      const std::uint32_t cnt = r.u32();
      if (!r.ok()) break;
      if (slot < lo || slot >= hi) bad("link slot outside sender's range");
      if (wire_cnt_[slot] != 0) bad("duplicate link group");
      if (cnt == 0) bad("empty link group");
      wire_cnt_[slot] = cnt;
      wire_off_[slot] = static_cast<std::uint32_t>(wire_cols_.size());
      wire_slots_.push_back(slot);
      Message m;
      for (std::uint32_t j = 0; j < cnt && r.ok(); ++j) {
        m.tag = r.u32();
        m.used = r.u32();
        if (!r.ok()) break;
        if (m.used > Message::kMaxFields) bad("message field count too large");
        for (std::uint32_t t = 0; t < m.used; ++t) {
          m.f[t] = static_cast<std::int64_t>(r.u64());
        }
        for (std::size_t t = m.used; t < Message::kMaxFields; ++t) m.f[t] = 0;
        wire_cols_.push_back(m);
      }
      const NodeId u = link_target_[slot];
      if (!inbox_mark_[u]) {
        inbox_mark_[u] = 1;
        receivers_.push_back(u);
      }
    }
  }
  if (!r.ok()) bad("truncated block");
  if (!r.done()) bad("trailing bytes");
  pool_->parallel_for(receivers_.size(), [&](std::size_t i) {
    gather_inbox_wire(receivers_[i]);
  });
  for (const NodeId u : receivers_) inbox_mark_[u] = 0;
  for (const std::uint32_t slot : wire_slots_) wire_cnt_[slot] = 0;
}

/// gather_inbox over the decoded wire columns instead of the senders'
/// outboxes; same in-link iteration order and the same scramble draw, so a
/// healthy wire round is bit-identical to the direct gather.
void Engine::gather_inbox_wire(NodeId v) {
  auto& in = inbox_[v];
  in.clear();
  const std::size_t end = in_base_[v + 1];
  for (std::size_t i = in_base_[v]; i < end; ++i) {
    const auto& [from, slot] = in_links_[i];
    const std::uint32_t cnt = wire_cnt_[slot];
    if (cnt == 0) continue;
    const std::uint32_t off = wire_off_[slot];
    for (std::uint32_t j = 0; j < cnt; ++j) {
      wire_cols_.append_envelope(off + j, from, in);
    }
  }
  if (options_.scramble_inbox && in.size() > 1) {
    util::Xoshiro256 rng(options_.scramble_seed ^ (v * 0x9e3779b9ULL) ^
                         (round_ << 20));
    for (std::size_t i = in.size(); i > 1; --i) {
      std::swap(in[i - 1], in[rng.below(i)]);
    }
  }
}

/// Replays this round's messages into the trace sink in the dense engine's
/// deterministic order: sender ascending, links in first-touch order, and
/// send order within a link.
void Engine::trace_messages() {
  if (msg_scratch_.empty()) msg_scratch_.resize(1);
  Message& m = msg_scratch_[0];
  for (const NodeId sender : touched_senders_) {
    const Outbox& ob = out_[sender];
    const MessageColumns& src = ob.has_dup ? ob.sorted : ob.msgs;
    for (const std::uint32_t slot : ob.touched) {
      const std::uint32_t off = link_off_[slot];
      const std::uint32_t cnt = link_cnt_[slot];
      for (std::uint32_t j = 0; j < cnt; ++j) {
        src.materialize(off + j, m);
        options_.trace->on_message(round_, sender, link_target_[slot], m);
      }
    }
  }
}

Engine::ClockTp Engine::deliver(DeliverScope scope, ClockTp t0) {
  const NodeId n = graph_.node_count();

  // 0. Deferred inbox clearing: only the previous round's receivers hold
  // envelopes (see the invariant at inbox_'s declaration), so clearing that
  // list restores the all-empty state without touching the other n inboxes.
  // The fault plane clears on first touch in release() instead, and its
  // receive loops never read untouched inboxes.
  if (faults_ == nullptr) {
    for (const NodeId v : receivers_) inbox_[v].clear();
  }

  // 1. Collect this round's senders from the mark bytes (contiguous scan,
  // no outbox-struct probing).  The all-nodes scan yields ascending order;
  // the active-only path sorts so accounting, tracing, and lifetime updates
  // happen in the dense engine's order regardless of how the active set was
  // assembled.
  touched_senders_.clear();
  if (scope == DeliverScope::kAllNodes) {
    for (NodeId v = 0; v < n; ++v) {
      if (sent_mark_[v]) touched_senders_.push_back(v);
    }
  } else {
    for (const NodeId v : active_now_) {
      if (sent_mark_[v]) touched_senders_.push_back(v);
    }
    std::sort(touched_senders_.begin(), touched_senders_.end());
  }

  // 2. Per-sender finalize + accounting partials.  Sender-local except for
  // the link arrays, whose slots are partitioned by sender, so the pass can
  // run on the pool; the reduction below is sequential and order-fixed, so
  // stats are identical at every thread count.
  partials_.resize(touched_senders_.size());
  auto finalize_sender = [&](std::size_t i) {
    const NodeId v = touched_senders_[i];
    Outbox& ob = out_[v];
    if (!ob.has_dup) {
      // Every touched link carries exactly one message: its columns offset
      // is simply the send index.
      for (std::size_t j = 0; j < ob.slots.size(); ++j) {
        link_off_[ob.slots[j]] = static_cast<std::uint32_t>(j);
      }
    } else {
      // Group messages per link, preserving send order: prefix ends over the
      // touched links, a backward pass that rewinds each cursor to assign
      // every send its grouped position, then one columnar scatter.
      std::uint32_t off = 0;
      for (const std::uint32_t s : ob.touched) {
        off += link_cnt_[s];
        link_off_[s] = off;
      }
      ob.pos.resize(ob.slots.size());
      for (std::size_t j = ob.slots.size(); j-- > 0;) {
        ob.pos[j] = --link_off_[ob.slots[j]];
      }
      ob.sorted.assign_permuted(ob.msgs, ob.pos);
    }
    SenderPartial p;
    for (const std::uint32_t s : ob.touched) {
      const std::uint64_t c = link_cnt_[s];
      p.msgs += c;
      p.max_cong = std::max(p.max_cong, c);
      link_lifetime_count_[s] += c;
      p.max_link_total = std::max(p.max_link_total, link_lifetime_count_[s]);
    }
    // Bytes actually moved by delivery: an 8-byte (tag, used) header plus
    // the used payload words per message -- deterministic, unlike the old
    // whole-struct copies whose 72 bytes never showed up in any stat.
    p.bytes = 8 * (ob.msgs.size() + ob.msgs.field_words());
    p.max_fields = ob.msgs.max_used();
    partials_[i] = p;
  };
  if (touched_senders_.size() >= 1024) {
    pool_->parallel_for(touched_senders_.size(), finalize_sender);
  } else {
    for (std::size_t i = 0; i < touched_senders_.size(); ++i) {
      finalize_sender(i);
    }
  }

  // 3. Deterministic reduction.
  round_messages_ = 0;
  std::uint64_t max_cong = 0;
  for (const SenderPartial& p : partials_) {
    round_messages_ += p.msgs;
    stats_.message_bytes += p.bytes;
    max_cong = std::max(max_cong, p.max_cong);
    stats_.max_link_total = std::max(stats_.max_link_total, p.max_link_total);
    stats_.max_message_fields =
        std::max(stats_.max_message_fields, p.max_fields);
  }
  if (round_messages_ > 0) {
    stats_.total_messages += round_messages_;
    stats_.last_message_round = round_;
    if (max_cong > stats_.max_link_congestion) {
      stats_.max_link_congestion = max_cong;
      stats_.max_congestion_round = round_;
    }
  }
  stats_.round_messages_hist.record(round_messages_);
  if (options_.record_per_round) {
    stats_.per_round_messages.push_back(round_messages_);
  }
  if (options_.trace != nullptr) trace_messages();
  if (trace_event_ != nullptr) {
    trace_event_->messages = round_messages_;
    trace_event_->senders =
        static_cast<std::uint32_t>(touched_senders_.size());
    trace_event_->max_link_congestion = max_cong;
    const std::size_t k = recorder_->top_k();
    if (k > 0 && !touched_senders_.empty()) {
      // Top-K most loaded links this round, ties broken by link slot so the
      // leaderboard is deterministic.
      link_scratch_.clear();
      for (const NodeId sender : touched_senders_) {
        for (const std::uint32_t slot : out_[sender].touched) {
          link_scratch_.emplace_back(link_cnt_[slot], slot);
        }
      }
      const auto heavier = [](const auto& a, const auto& b) {
        return a.first > b.first || (a.first == b.first && a.second < b.second);
      };
      if (link_scratch_.size() > k) {
        const auto kth =
            link_scratch_.begin() + static_cast<std::ptrdiff_t>(k);
        std::nth_element(link_scratch_.begin(), kth, link_scratch_.end(),
                         heavier);
        link_scratch_.resize(k);
      }
      std::sort(link_scratch_.begin(), link_scratch_.end(), heavier);
      for (const auto& [cnt, slot] : link_scratch_) {
        // Recover the sender from the slot via link_base_ (slots partition
        // by sender, ascending).
        const auto it = std::upper_bound(link_base_.begin(), link_base_.end(),
                                         static_cast<std::size_t>(slot));
        const auto from =
            static_cast<NodeId>(it - link_base_.begin() - 1);
        trace_event_->top_links.push_back(
            {from, link_target_[slot], cnt});
      }
    }
  }

  // 4. Gather per receiver, in (sender, send order) order -- or, when
  // scrambling, in a deterministic per-(receiver, round) permutation.
  if (plane_remote_) {
    // Remote plane: serialize the round, let the plane replace the block
    // with the authoritative bytes (the coordinator's reassembly of every
    // shard's owned senders), and gather the receive side from the wire
    // image only.  That makes the gather below a function of bytes that
    // actually crossed the transport, never of this replica's own outboxes.
    encode_round_block(wire_block_);
    plane_->exchange(round_, wire_block_);
    decode_and_gather(wire_block_);
  } else if (faults_ != nullptr) {
    // Fault path: the round's sends pass through the fault plane instead of
    // the direct link arrays.  Admission order is (sender ascending, link in
    // first-touch order, send order within a link) -- deterministic because
    // touched_senders_ was sorted above and the fate draws are counter-based
    // -- and release() fills the inboxes from whatever is due this round.
    // Both schedules funnel through this single-threaded path, so sparse,
    // dense, and every thread count see identical faults.
    faults_->begin_round();
    for (const NodeId sender : touched_senders_) {
      const Outbox& ob = out_[sender];
      const MessageColumns& src = ob.has_dup ? ob.sorted : ob.msgs;
      for (const std::uint32_t slot : ob.touched) {
        const std::uint32_t cnt = link_cnt_[slot];
        const std::uint32_t off = link_off_[slot];
        if (msg_scratch_.size() < cnt) msg_scratch_.resize(cnt);
        for (std::uint32_t j = 0; j < cnt; ++j) {
          src.materialize(off + j, msg_scratch_[j]);
        }
        faults_->admit(round_, slot, msg_scratch_.data(), cnt);
      }
    }
    receivers_.clear();
    faults_->release(round_, inbox_, inbox_mark_, receivers_);
    for (const NodeId u : receivers_) inbox_mark_[u] = 0;
    if (options_.scramble_inbox) {
      for (const NodeId v : receivers_) {
        auto& in = inbox_[v];
        if (in.size() <= 1) continue;
        util::Xoshiro256 rng(options_.scramble_seed ^ (v * 0x9e3779b9ULL) ^
                             (round_ << 20));
        for (std::size_t i = in.size(); i > 1; --i) {
          std::swap(in[i - 1], in[rng.below(i)]);
        }
      }
    }
    stats_.faults += faults_->round_stats();
  } else {
    // Both schedules derive the receiver set from the touched links and
    // gather only those inboxes; all other inboxes are empty by the
    // deferred-clear invariant, so the dense oracle's exhaustive receive
    // loop still sees exactly what an all-nodes gather produced.
    receivers_.clear();
    for (const NodeId sender : touched_senders_) {
      for (const std::uint32_t slot : out_[sender].touched) {
        const NodeId u = link_target_[slot];
        if (!inbox_mark_[u]) {
          inbox_mark_[u] = 1;
          receivers_.push_back(u);
        }
      }
    }
    pool_->parallel_for(receivers_.size(), [&](std::size_t i) {
      gather_inbox(receivers_[i]);
    });
    for (const NodeId u : receivers_) inbox_mark_[u] = 0;
  }

  // 5. Retire outboxes (capacity kept -- steady-state rounds allocate
  // nothing).
  for (const NodeId sender : touched_senders_) {
    Outbox& ob = out_[sender];
    for (const std::uint32_t slot : ob.touched) link_cnt_[slot] = 0;
    ob.slots.clear();
    ob.msgs.clear();
    ob.touched.clear();
    ob.has_dup = false;
    sent_mark_[sender] = 0;
  }
  const auto t1 = Clock::now();
  const double dt = seconds_between(t0, t1);
  stats_.deliver_seconds += dt;
  stats_.deliver_ns_hist.record(to_ns(dt));
  if (trace_event_ != nullptr) {
    trace_event_->deliver_s = dt;
    trace_event_->receivers = static_cast<std::uint32_t>(receivers_.size());
    if (faults_ != nullptr) {
      const FaultStats& fs = faults_->round_stats();
      trace_event_->faults_dropped = fs.dropped;
      trace_event_->faults_duplicated = fs.duplicated;
      trace_event_->faults_delayed = fs.delayed;
      trace_event_->faults_deferred = fs.deferred;
      trace_event_->faults_crash_dropped = fs.crash_dropped;
    }
  }
  return t1;
}

// --- rounds ----------------------------------------------------------------

void Engine::run_init_round() {
  const NodeId n = graph_.node_count();
  if (recorder_ != nullptr) {
    trace_event_ = &recorder_->round_slot();
    trace_event_->round = 0;
  }
  const auto t0 = Clock::now();
  pool_->parallel_for(n, [&](std::size_t v) {
    if (faults_ != nullptr && faults_->node_down(static_cast<NodeId>(v), 0)) {
      return;
    }
    contexts_[v].rebind(0, {}, /*may_send=*/true);
    if (profile_) {
      const auto w0 = Clock::now();
      protocols_[v]->init(contexts_[v]);
      profile_node(static_cast<NodeId>(v), to_ns(seconds_since(w0)));
    } else {
      protocols_[v]->init(contexts_[v]);
    }
  });
  const auto ts = Clock::now();
  const double send_dt = seconds_between(t0, ts);
  stats_.send_seconds += send_dt;
  stats_.send_ns_hist.record(to_ns(send_dt));
  const auto td = deliver(DeliverScope::kAllNodes, ts);
  if (faults_ != nullptr) {
    // Only nodes the fault plane actually delivered to run a receive phase
    // (an empty-inbox receive is a no-op by the Protocol contract, and the
    // other inboxes are stale); down receivers never made it into the list.
    pool_->parallel_for(receivers_.size(), [&](std::size_t i) {
      const NodeId v = receivers_[i];
      contexts_[v].rebind(0, inbox_[v], /*may_send=*/false);
      if (profile_) {
        const auto w0 = Clock::now();
        protocols_[v]->receive_phase(contexts_[v]);
        profile_node(v, to_ns(seconds_since(w0)));
      } else {
        protocols_[v]->receive_phase(contexts_[v]);
      }
    });
  } else {
    pool_->parallel_for(n, [&](std::size_t v) {
      contexts_[v].rebind(0, inbox_[v], /*may_send=*/false);
      if (profile_) {
        const auto w0 = Clock::now();
        protocols_[v]->receive_phase(contexts_[v]);
        profile_node(static_cast<NodeId>(v), to_ns(seconds_since(w0)));
      } else {
        protocols_[v]->receive_phase(contexts_[v]);
      }
    });
  }
  const auto te = Clock::now();
  const double recv_dt = seconds_between(td, te);
  last_tick_ = te;
  stats_.receive_seconds += recv_dt;
  stats_.receive_ns_hist.record(to_ns(recv_dt));
  if (track_quiet_) {
    // Every node ran init, so the cache seeds from a full scan.
    nonquiet_ = 0;
    for (NodeId v = 0; v < n; ++v) {
      const bool q = protocols_[v]->quiescent();
      quiet_[v] = q ? 1 : 0;
      nonquiet_ += q ? 0 : 1;
    }
  }
  if (profile_) record_work_items();
  if (trace_event_ != nullptr) {
    trace_event_->send_s = send_dt;
    trace_event_->receive_s = recv_dt;
    recorder_->commit_round(*trace_event_);
    trace_event_ = nullptr;
  }
  if (!dense_) {
    for (NodeId v = 0; v < n; ++v) {
      if (faults_ != nullptr && faults_->node_down(v, 0)) {
        schedule(v, faults_->revive_round(v));
        continue;
      }
      schedule(v, protocols_[v]->next_send_round(0));
    }
  }
  init_done_ = true;
}

std::uint64_t Engine::step() {
  if (!init_done_) {
    run_init_round();
    return round_messages_;
  }
  ++round_;
  stats_.rounds = round_;
  if (recorder_ != nullptr) {
    trace_event_ = &recorder_->round_slot();
    trace_event_->round = round_;
  }

  double send_dt = 0.0;
  double recv_dt = 0.0;
  if (dense_) {
    const NodeId n = graph_.node_count();
    const auto t0 = chain_ticks_ ? last_tick_ : Clock::now();
    pool_->parallel_for(n, [&](std::size_t v) {
      if (faults_ != nullptr &&
          faults_->node_down(static_cast<NodeId>(v), round_)) {
        return;
      }
      contexts_[v].rebind(round_, {}, /*may_send=*/true);
      if (profile_) {
        const auto w0 = Clock::now();
        protocols_[v]->send_phase(contexts_[v]);
        profile_node(static_cast<NodeId>(v), to_ns(seconds_since(w0)));
      } else {
        protocols_[v]->send_phase(contexts_[v]);
      }
    });
    const auto ts = Clock::now();
    send_dt = seconds_between(t0, ts);
    stats_.send_seconds += send_dt;
    stats_.send_ns_hist.record(to_ns(send_dt));
    const auto td = deliver(DeliverScope::kAllNodes, ts);
    if (faults_ != nullptr) {
      pool_->parallel_for(receivers_.size(), [&](std::size_t i) {
        const NodeId v = receivers_[i];
        contexts_[v].rebind(round_, inbox_[v], /*may_send=*/false);
        if (profile_) {
          const auto w0 = Clock::now();
          protocols_[v]->receive_phase(contexts_[v]);
          profile_node(v, to_ns(seconds_since(w0)));
        } else {
          protocols_[v]->receive_phase(contexts_[v]);
        }
      });
    } else {
      pool_->parallel_for(n, [&](std::size_t v) {
        contexts_[v].rebind(round_, inbox_[v], /*may_send=*/false);
        if (profile_) {
          const auto w0 = Clock::now();
          protocols_[v]->receive_phase(contexts_[v]);
          profile_node(static_cast<NodeId>(v), to_ns(seconds_since(w0)));
        } else {
          protocols_[v]->receive_phase(contexts_[v]);
        }
      });
    }
    const auto te = Clock::now();
    recv_dt = seconds_between(td, te);
    last_tick_ = te;
  } else {
    build_active_set();
    const auto t0 = chain_ticks_ ? last_tick_ : Clock::now();
    pool_->parallel_for(active_now_.size(), [&](std::size_t i) {
      const NodeId v = active_now_[i];
      if (faults_ != nullptr && faults_->node_down(v, round_)) return;
      contexts_[v].rebind(round_, {}, /*may_send=*/true);
      if (profile_) {
        const auto w0 = Clock::now();
        protocols_[v]->send_phase(contexts_[v]);
        profile_node(v, to_ns(seconds_since(w0)));
      } else {
        protocols_[v]->send_phase(contexts_[v]);
      }
    });
    reschedule_after_phase(active_now_);
    const auto ts = Clock::now();
    send_dt = seconds_between(t0, ts);
    stats_.send_seconds += send_dt;
    stats_.send_ns_hist.record(to_ns(send_dt));
    const auto td = deliver(DeliverScope::kActiveOnly, ts);
    pool_->parallel_for(receivers_.size(), [&](std::size_t i) {
      const NodeId v = receivers_[i];
      contexts_[v].rebind(round_, inbox_[v], /*may_send=*/false);
      if (profile_) {
        const auto w0 = Clock::now();
        protocols_[v]->receive_phase(contexts_[v]);
        profile_node(v, to_ns(seconds_since(w0)));
      } else {
        protocols_[v]->receive_phase(contexts_[v]);
      }
    });
    reschedule_after_phase(receivers_);
    const auto te = Clock::now();
    recv_dt = seconds_between(td, te);
    last_tick_ = te;
  }
  stats_.receive_seconds += recv_dt;
  stats_.receive_ns_hist.record(to_ns(recv_dt));
  if (track_quiet_) refresh_quiescence();
  if (profile_) record_work_items();
  if (trace_event_ != nullptr) {
    trace_event_->send_s = send_dt;
    trace_event_->receive_s = recv_dt;
    recorder_->commit_round(*trace_event_);
    trace_event_ = nullptr;
  }
  return round_messages_;
}

RunStats Engine::run() {
  run_loop();
  // The plane hook sits outside the loop so every exit path (quiescence,
  // fast-forward stop, round budget) announces the same final stats.
  plane_->end_run(stats_);
  return stats_;
}

void Engine::run_loop() {
  if (!init_done_) {
    run_init_round();
    chain_ticks_ = true;  // last_tick_ was taken moments ago, safe to reuse
  }
  // Chain round-boundary ticks only while this loop is driving: a tick left
  // over from an external step() call could be arbitrarily stale, so the
  // flag stays off until the first step below refreshes it.
  struct ChainGuard {
    bool& flag;
    ~ChainGuard() { flag = false; }
  } guard{chain_ticks_};

  while (round_ < options_.max_rounds) {
    const std::uint64_t sent = step();
    chain_ticks_ = true;
    const bool frames_pending = faults_ != nullptr && faults_->has_pending();
    if (options_.stop_on_quiescence && sent == 0 && !frames_pending &&
        all_quiescent()) {
      return;
    }
    if (!dense_ && active_next_.empty()) {
      // No node may act next round; the gap up to the earliest heap wake is
      // provably silent (hints are sound), so the dense engine would execute
      // it as empty rounds.  Mirror its two possible behaviors exactly:
      // stop after one silent round if everyone is quiescent, otherwise
      // account the whole gap at once.
      Round wake = next_heap_wake();
      if (frames_pending) {
        // A round that releases fault-plane frames is not silent: clamp the
        // fast-forward so the due round executes.  Bandwidth-starved frames
        // are due immediately (ready <= round_), hence the floor at the very
        // next round.
        const Round due = faults_->next_due_round();
        wake = std::min(wake, due > round_ + 1 ? due : round_ + 1);
      }
      const Round target = wake == Protocol::kNeverSends
                               ? options_.max_rounds
                               : std::min(wake - 1, options_.max_rounds);
      if (target > round_) {
        if (options_.stop_on_quiescence && !frames_pending &&
            all_quiescent()) {
          skip_silent_rounds(1);
          return;
        }
        skip_silent_rounds(target - round_);
      }
    }
  }
  // Ran out of budget: only a failure if someone still wanted to talk.
  const bool all_quiet = round_messages_ == 0 && all_quiescent() &&
                         (faults_ == nullptr || !faults_->has_pending());
  stats_.hit_round_limit = !all_quiet;
}

}  // namespace dapsp::congest
