file(REMOVE_RECURSE
  "CMakeFiles/bench_thm23_blocker_apsp.dir/bench_thm23_blocker_apsp.cpp.o"
  "CMakeFiles/bench_thm23_blocker_apsp.dir/bench_thm23_blocker_apsp.cpp.o.d"
  "bench_thm23_blocker_apsp"
  "bench_thm23_blocker_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm23_blocker_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
