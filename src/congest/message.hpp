// CONGEST messages.
//
// In the CONGEST model each message carries O(log n) bits.  We model a
// message as a tag plus up to six 64-bit fields; algorithms only ever store
// O(1) quantities that are poly(n)-bounded (ids, distances, hop counts), so
// each message is a constant number of O(log n)-bit words.  Metrics record
// the field count so the constant is visible.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

#include "graph/graph.hpp"
#include "util/int_math.hpp"

namespace dapsp::congest {

using graph::NodeId;
using graph::Weight;
using Round = std::uint64_t;

struct Message {
  // Room for the largest algorithm payload (5 fields) plus the multiplexer's
  // two-field wrapper; every field is a poly(n)-bounded quantity, so a
  // message stays O(log n) bits.
  static constexpr std::size_t kMaxFields = 8;

  std::uint32_t tag = 0;
  std::uint32_t used = 0;
  std::array<std::int64_t, kMaxFields> f{};

  constexpr Message() = default;
  Message(std::uint32_t tag_, std::initializer_list<std::int64_t> fields)
      : tag(tag_) {
    util::check(fields.size() <= kMaxFields, "Message: too many fields");
    for (const std::int64_t x : fields) f[used++] = x;
  }

  friend bool operator==(const Message&, const Message&) = default;
};

/// A received message together with its sender.
struct Envelope {
  NodeId from = 0;
  Message msg;
};

}  // namespace dapsp::congest
