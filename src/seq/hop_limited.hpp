// Hop-limited shortest path oracle: the ground truth for (h,k)-SSP.
//
// An h-hop shortest path from u to v is a minimum-weight path among paths
// with at most h edges.  Among those, the paper's algorithms prefer fewer
// hops, then smaller parent id; this oracle reproduces that tie-breaking so
// distributed results can be compared field-for-field.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dapsp::seq {

struct HopLimitedResult {
  std::vector<graph::Weight> dist;    ///< h-hop distance, kInfDist if none
  std::vector<std::uint32_t> hops;    ///< hop count of the (d,l)-minimal path
  std::vector<graph::NodeId> parent;  ///< predecessor on that path
};

/// h-hop shortest paths from `source` via dynamic programming over hop count
/// (h rounds of Bellman–Ford with strict per-layer semantics).
HopLimitedResult hop_limited_sssp(const graph::Graph& g, graph::NodeId source,
                                  std::uint32_t h);

/// h-hop shortest paths from each of `sources` ((h,k)-SSP ground truth).
std::vector<HopLimitedResult> hop_limited_ksssp(
    const graph::Graph& g, const std::vector<graph::NodeId>& sources,
    std::uint32_t h);

}  // namespace dapsp::seq
