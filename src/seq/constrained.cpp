#include "seq/constrained.hpp"

#include <algorithm>
#include <vector>

namespace dapsp::seq {

using graph::Edge;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

namespace {

std::uint64_t arc_key(NodeId u, NodeId v) {
  return static_cast<std::uint64_t>(u) << 32 | v;
}

}  // namespace

std::optional<query::Route> constrained_route(const Graph& g, NodeId source,
                                              NodeId target,
                                              const query::RouteConstraints& c) {
  const NodeId n = g.node_count();
  std::vector<char> banned(n, 0);
  for (const NodeId x : c.avoid_nodes) {
    if (x < n) banned[x] = 1;
  }
  if (banned[source] || banned[target]) return std::nullopt;
  if (source == target) return query::Route{0, {source}};

  // Banned arcs as sorted keys; undirected graphs ban both orientations of
  // each listed pair (one physical link).
  std::vector<std::uint64_t> banned_arcs;
  banned_arcs.reserve(c.avoid_edges.size() * (g.directed() ? 1 : 2));
  for (const auto& [a, b] : c.avoid_edges) {
    banned_arcs.push_back(arc_key(a, b));
    if (!g.directed()) banned_arcs.push_back(arc_key(b, a));
  }
  std::sort(banned_arcs.begin(), banned_arcs.end());
  const auto arc_banned = [&](NodeId a, NodeId b) {
    return std::binary_search(banned_arcs.begin(), banned_arcs.end(),
                              arc_key(a, b));
  };

  // Hop budget: a path on n nodes has at most n-1 edges, so larger budgets
  // are vacuous.
  const std::uint32_t cap = n - 1;
  const std::uint32_t h =
      (c.max_hops == 0 || c.max_hops > cap) ? cap : c.max_hops;

  // dist[j][x] = minimum weight of a feasible walk source -> x with exactly
  // j hops; parent[j][x] = smallest-id predecessor achieving it.  The
  // (weight, hops)-minimal answer extracted below is always a simple path:
  // any repeated node could be cut for no extra weight and fewer hops,
  // contradicting minimality.
  const std::size_t layers = static_cast<std::size_t>(h) + 1;
  std::vector<std::vector<Weight>> dist(layers,
                                        std::vector<Weight>(n, kInfDist));
  std::vector<std::vector<NodeId>> parent(layers,
                                          std::vector<NodeId>(n, kNoNode));
  dist[0][source] = 0;
  for (std::size_t j = 1; j < layers; ++j) {
    const auto& prev = dist[j - 1];
    auto& cur = dist[j];
    auto& par = parent[j];
    for (NodeId u = 0; u < n; ++u) {
      if (prev[u] == kInfDist) continue;
      for (const Edge& e : g.out_edges(u)) {
        if (banned[e.to] || arc_banned(u, e.to)) continue;
        const Weight cand = prev[u] + e.weight;
        if (cand < cur[e.to]) {
          cur[e.to] = cand;
          par[e.to] = u;
        } else if (cand == cur[e.to] && u < par[e.to]) {
          par[e.to] = u;
        }
      }
    }
  }

  Weight best = kInfDist;
  std::size_t best_hops = 0;
  for (std::size_t j = 0; j < layers; ++j) {
    if (dist[j][target] < best) {
      best = dist[j][target];
      best_hops = j;  // first (smallest) j achieving the min weight
    }
  }
  if (best == kInfDist) return std::nullopt;

  query::Route route;
  route.weight = best;
  route.nodes.resize(best_hops + 1);
  NodeId x = target;
  for (std::size_t j = best_hops; j > 0; --j) {
    route.nodes[j] = x;
    x = parent[j][x];
  }
  route.nodes[0] = x;
  return route;
}

}  // namespace dapsp::seq
