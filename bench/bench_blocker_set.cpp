// E7 -- blocker set size and update-round costs (Section III-B).
//
// Shape expectations: |Q| tracks (n ln n)/h as h grows; the pipelined score
// initialization finishes in h+k+1 rounds; per-link congestion inside the
// ancestor/descendant update pipelines stays at 1 (Lemmas III.6/III.7's
// collision-freedom, checked empirically).
#include "core/blocker.hpp"
#include "core/bounds.hpp"
#include "core/cssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E7: blocker set (Section III-B)",
                "Greedy blocker set over all-source CSSSP trees: size vs the "
                "(n ln n)/h guarantee, score-init rounds vs h+k+1, and the "
                "update-pipeline congestion.");

  bench::Table table({"n", "h", "|Q|", "size bound", "score-init rounds",
                      "h+k+1", "update phase", "k+h-1 (Lem III.8)",
                      "total rounds", "update congestion",
                      "covers all h-paths"});

  for (const graph::NodeId n : {24u, 36u, 48u}) {
    const graph::Graph g = graph::erdos_renyi(n, 3.0 / n, {0, 5, 0.25},
                                              5150 + n);
    for (const std::uint32_t h : {2u, 4u, 8u}) {
      std::vector<graph::NodeId> sources(n);
      for (graph::NodeId v = 0; v < n; ++v) sources[v] = v;
      const auto cssp = core::build_cssp(
          g, sources, h, graph::max_finite_hop_distance(g, 2 * h));
      const auto res = core::compute_blocker_set(g, cssp);
      table.row({fmt(std::uint64_t{n}), fmt(std::uint64_t{h}),
                 fmt(static_cast<std::uint64_t>(res.blockers.size())),
                 fmt(res.size_bound), fmt(res.score_init_rounds),
                 fmt(static_cast<std::uint64_t>(h) + n + 1),
                 fmt(res.max_update_phase_rounds),
                 fmt(static_cast<std::uint64_t>(h) + n - 1),
                 fmt(res.stats.rounds), fmt(res.update_congestion),
                 core::covers_all_h_paths(cssp, res.blockers) ? "yes" : "NO"});
    }
  }
  table.print();
  std::cout << "\n|Q| shrinking as h grows is the tradeoff Algorithm 3 "
               "balances (Step 2 cost ~ n*q vs Step 1 cost ~ sqrt(h k "
               "Delta)).\n";
  return 0;
}
