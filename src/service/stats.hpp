// Query-side latency/throughput accounting for the distance-oracle service.
//
// Same philosophy as congest/metrics.hpp: the quantities the service exists
// to optimize (queries served, per-type latency, cache effectiveness) are
// first-class results, never debug output.  `ServiceStats` is a plain value
// snapshot -- the query service keeps atomic counters internally and
// materializes one on request -- so snapshots compose with `operator+=`
// (e.g. summing per-shard or per-epoch stats) exactly like RunStats.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace dapsp::service {

enum class QueryType : std::uint8_t {
  kDist,     ///< point lookup: distance u -> v
  kNextHop,  ///< first hop on a shortest path u -> v
  kPath,     ///< full path reconstruction u -> v
};
inline constexpr std::size_t kQueryTypeCount = 3;

inline const char* query_type_name(QueryType t) {
  switch (t) {
    case QueryType::kDist: return "dist";
    case QueryType::kNextHop: return "next";
    case QueryType::kPath: return "path";
  }
  return "?";
}

/// Counters for one query type.
struct QueryTypeStats {
  std::uint64_t count = 0;   ///< queries answered (including unreachable)
  std::uint64_t errors = 0;  ///< malformed / unsupported queries
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns = 0;

  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }

  QueryTypeStats& operator+=(const QueryTypeStats& o) {
    count += o.count;
    errors += o.errors;
    total_ns += o.total_ns;
    min_ns = std::min(min_ns, o.min_ns);
    max_ns = std::max(max_ns, o.max_ns);
    return *this;
  }
};

struct ServiceStats {
  std::array<QueryTypeStats, kQueryTypeCount> per_type;
  std::uint64_t batches = 0;  ///< query_batch calls
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  const QueryTypeStats& of(QueryType t) const {
    return per_type[static_cast<std::size_t>(t)];
  }
  QueryTypeStats& of(QueryType t) {
    return per_type[static_cast<std::size_t>(t)];
  }

  std::uint64_t total_queries() const {
    std::uint64_t n = 0;
    for (const auto& t : per_type) n += t.count;
    return n;
  }
  std::uint64_t total_errors() const {
    std::uint64_t n = 0;
    for (const auto& t : per_type) n += t.errors;
    return n;
  }
  double cache_hit_rate() const {
    const std::uint64_t probes = cache_hits + cache_misses;
    return probes == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(probes);
  }

  ServiceStats& operator+=(const ServiceStats& o) {
    for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
      per_type[i] += o.per_type[i];
    }
    batches += o.batches;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    return *this;
  }

  std::string summary() const {
    std::ostringstream os;
    os << "queries=" << total_queries() << " errors=" << total_errors()
       << " batches=" << batches;
    for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
      const auto& t = per_type[i];
      if (t.count == 0 && t.errors == 0) continue;
      os << " " << query_type_name(static_cast<QueryType>(i)) << "[n="
         << t.count << " mean_ns=" << static_cast<std::uint64_t>(t.mean_ns())
         << " max_ns=" << t.max_ns << "]";
    }
    os << " cache[hits=" << cache_hits << " misses=" << cache_misses
       << " evictions=" << cache_evictions << "]";
    return os.str();
  }
};

}  // namespace dapsp::service
