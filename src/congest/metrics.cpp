#include "congest/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace dapsp::congest {

RunStats& RunStats::operator+=(const RunStats& o) {
  if (o.last_message_round > 0) last_message_round = rounds + o.last_message_round;
  if (o.max_link_congestion > max_link_congestion) {
    max_link_congestion = o.max_link_congestion;
    max_congestion_round = rounds + o.max_congestion_round;
  }
  rounds += o.rounds;
  total_messages += o.total_messages;
  message_bytes += o.message_bytes;
  max_link_total = std::max(max_link_total, o.max_link_total);
  max_message_fields = std::max(max_message_fields, o.max_message_fields);
  hit_round_limit = hit_round_limit || o.hit_round_limit;
  skipped_rounds += o.skipped_rounds;
  faults += o.faults;
  round_messages_hist += o.round_messages_hist;
  send_seconds += o.send_seconds;
  deliver_seconds += o.deliver_seconds;
  receive_seconds += o.receive_seconds;
  send_ns_hist += o.send_ns_hist;
  deliver_ns_hist += o.deliver_ns_hist;
  receive_ns_hist += o.receive_ns_hist;
  if (!per_round_messages.empty() || !o.per_round_messages.empty()) {
    per_round_messages.resize(rounds, 0);
    // o's rounds occupy the tail; copy what was recorded.
    const std::size_t base = rounds - o.rounds;
    for (std::size_t i = 0; i < o.per_round_messages.size(); ++i) {
      per_round_messages[base + i] = o.per_round_messages[i];
    }
  }
  return *this;
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " last_msg_round=" << last_message_round
     << " messages=" << total_messages << " bytes=" << message_bytes
     << " max_congestion=" << max_link_congestion
     << " max_link_total=" << max_link_total;
  if (skipped_rounds > 0) os << " skipped=" << skipped_rounds;
  if (faults.any()) {
    os << " faults{dropped=" << faults.dropped << " dup=" << faults.duplicated
       << " delayed=" << faults.delayed << " deferred=" << faults.deferred
       << " crash_dropped=" << faults.crash_dropped
       << " delivered=" << faults.delivered
       << " max_backlog=" << faults.max_backlog << "}";
  }
  if (hit_round_limit) os << " [HIT ROUND LIMIT]";
  return os.str();
}

std::string RunStats::histogram_summary() const {
  if (round_messages_hist.empty()) return {};
  std::ostringstream os;
  os << "round_msgs[" << round_messages_hist.summary() << "]"
     << " send_ns[" << send_ns_hist.summary() << "]"
     << " deliver_ns[" << deliver_ns_hist.summary() << "]"
     << " receive_ns[" << receive_ns_hist.summary() << "]";
  return os.str();
}

std::string RunStats::timing_summary() const {
  if (send_seconds == 0.0 && deliver_seconds == 0.0 && receive_seconds == 0.0 &&
      skipped_rounds == 0) {
    return {};
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << "send=" << send_seconds
     << "s deliver=" << deliver_seconds << "s receive=" << receive_seconds
     << "s skipped=" << skipped_rounds;
  return os.str();
}

}  // namespace dapsp::congest
