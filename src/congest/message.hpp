// CONGEST messages.
//
// In the CONGEST model each message carries O(log n) bits.  We model a
// message as a tag plus up to six 64-bit fields; algorithms only ever store
// O(1) quantities that are poly(n)-bounded (ids, distances, hop counts), so
// each message is a constant number of O(log n)-bit words.  Metrics record
// the field count so the constant is visible.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/int_math.hpp"

namespace dapsp::congest {

using graph::NodeId;
using graph::Weight;
using Round = std::uint64_t;

struct Message {
  // Room for the largest algorithm payload (5 fields) plus the multiplexer's
  // two-field wrapper; every field is a poly(n)-bounded quantity, so a
  // message stays O(log n) bits.
  static constexpr std::size_t kMaxFields = 8;

  std::uint32_t tag = 0;
  std::uint32_t used = 0;
  std::array<std::int64_t, kMaxFields> f{};

  constexpr Message() = default;
  Message(std::uint32_t tag_, std::initializer_list<std::int64_t> fields)
      : tag(tag_) {
    util::check(fields.size() <= kMaxFields, "Message: too many fields");
    for (const std::int64_t x : fields) f[used++] = x;
  }

  friend bool operator==(const Message&, const Message&) = default;
};

/// A received message together with its sender.
struct Envelope {
  NodeId from = 0;
  Message msg;
};

/// Struct-of-arrays storage for one sender's round of messages.
///
/// The per-round arena used to hold Message structs (72 B each), so every
/// append and every delivery copy moved all kMaxFields words even though
/// algorithm payloads use 3-5.  Columns store the tag stream and a packed
/// payload stream holding only the used prefix of each message, so the
/// delivery path reads and writes contiguous, fully-live memory.
///
/// Fast lane: while every message appended since the last clear() shares one
/// payload width (the common case -- a protocol's messages are uniform), the
/// per-message end offsets are implicit (i*width) and the `ends_` column
/// stays empty.  The first mixed-width append backfills `ends_` and switches
/// to explicit offsets.  All buffers are grow-only across clear() calls, so
/// steady-state rounds allocate nothing (asserted by tests via
/// capacity_bytes()).
///
/// Reconstruction relies on the Message invariant that fields at and beyond
/// `used` are zero (the constructor and every producer only write
/// f[0..used)), so storing the used prefix loses nothing.
class MessageColumns {
 public:
  std::size_t size() const noexcept { return tags_.size(); }
  bool empty() const noexcept { return tags_.empty(); }
  /// Total payload words stored (== sum of `used` over all messages).
  std::size_t field_words() const noexcept { return fields_.size(); }
  /// Largest `used` over all messages; 0 when empty.
  std::uint32_t max_used() const noexcept { return max_used_; }

  void clear() noexcept {
    tags_.clear();
    ends_.clear();
    fields_.clear();
    uniform_ = true;
    width_ = kNoWidth;
    max_used_ = 0;
  }

  void push_back(const Message& m) {
    if (uniform_) {
      if (width_ == kNoWidth) {
        width_ = m.used;
        max_used_ = m.used;
      } else if (m.used != width_) {
        de_uniform();
        max_used_ = std::max(max_used_, m.used);
      }
    } else {
      max_used_ = std::max(max_used_, m.used);
    }
    tags_.push_back(m.tag);
    fields_.insert(fields_.end(), m.f.begin(), m.f.begin() + m.used);
    if (!uniform_) ends_.push_back(static_cast<std::uint32_t>(fields_.size()));
  }

  std::uint32_t tag(std::size_t i) const noexcept { return tags_[i]; }
  std::uint32_t used(std::size_t i) const noexcept {
    return uniform_ ? width_ : ends_[i] - (i == 0 ? 0 : ends_[i - 1]);
  }
  const std::int64_t* fields(std::size_t i) const noexcept {
    return fields_.data() +
           (uniform_ ? i * width_ : (i == 0 ? 0 : ends_[i - 1]));
  }

  /// Reconstructs message i in full, zero-padding the unused tail (for
  /// consumers that need a whole Message: the fault plane, trace sinks).
  void materialize(std::size_t i, Message& out) const noexcept {
    const std::uint32_t w = used(i);
    out.tag = tags_[i];
    out.used = w;
    const std::int64_t* f = fields(i);
    for (std::uint32_t j = 0; j < w; ++j) out.f[j] = f[j];
    for (std::uint32_t j = w; j < Message::kMaxFields; ++j) out.f[j] = 0;
  }

  /// Appends message i as an Envelope to `in`.  The freshly constructed
  /// envelope's payload is value-initialized (all zero), so only the used
  /// prefix needs writing.
  void append_envelope(std::size_t i, NodeId from,
                       std::vector<Envelope>& in) const {
    in.emplace_back();
    Envelope& e = in.back();
    e.from = from;
    e.msg.tag = tags_[i];
    const std::uint32_t w = used(i);
    e.msg.used = w;
    const std::int64_t* f = fields(i);
    for (std::uint32_t j = 0; j < w; ++j) e.msg.f[j] = f[j];
  }

  /// Rebuilds this container as a permutation of `src`: message j of `src`
  /// lands at position `pos[j]`.  `pos` must be a permutation of [0, n).
  /// Used by the per-link grouping scatter when some link carries more than
  /// one message.
  void assign_permuted(const MessageColumns& src,
                       std::span<const std::uint32_t> pos) {
    const std::size_t n = src.size();
    clear();
    tags_.resize(n);
    fields_.resize(src.fields_.size());
    uniform_ = src.uniform_;
    width_ = src.width_;
    max_used_ = src.max_used_;
    if (src.uniform_) {
      const std::uint32_t w = src.width_ == kNoWidth ? 0 : src.width_;
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t p = pos[j];
        tags_[p] = src.tags_[j];
        const std::int64_t* f = src.fields_.data() + j * w;
        std::int64_t* out = fields_.data() + p * w;
        for (std::uint32_t t = 0; t < w; ++t) out[t] = f[t];
      }
      return;
    }
    // Mixed widths: lay out the permuted end offsets first, then scatter.
    ends_.resize(n);
    for (std::size_t j = 0; j < n; ++j) ends_[pos[j]] = src.used(j);
    std::uint32_t off = 0;
    for (std::size_t p = 0; p < n; ++p) {
      off += ends_[p];
      ends_[p] = off;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t p = pos[j];
      tags_[p] = src.tags_[j];
      const std::uint32_t w = src.used(j);
      const std::int64_t* f = src.fields(j);
      std::int64_t* out = fields_.data() + ends_[p] - w;
      for (std::uint32_t t = 0; t < w; ++t) out[t] = f[t];
    }
  }

  /// Bytes of heap capacity currently held (grow-only; steady-state rounds
  /// keep this constant -- the zero-allocation proof tests assert on it).
  std::size_t capacity_bytes() const noexcept {
    return tags_.capacity() * sizeof(std::uint32_t) +
           ends_.capacity() * sizeof(std::uint32_t) +
           fields_.capacity() * sizeof(std::int64_t);
  }

 private:
  static constexpr std::uint32_t kNoWidth = 0xffffffffu;

  /// First mixed-width append: materialize the implicit uniform offsets.
  void de_uniform() {
    ends_.resize(tags_.size());
    std::uint32_t off = 0;
    for (std::size_t i = 0; i < tags_.size(); ++i) {
      off += width_;
      ends_[i] = off;
    }
    uniform_ = false;
  }

  std::vector<std::uint32_t> tags_;
  std::vector<std::uint32_t> ends_;  ///< payload end offset per message
  std::vector<std::int64_t> fields_;  ///< packed used-prefix payloads
  bool uniform_ = true;
  std::uint32_t width_ = kNoWidth;
  std::uint32_t max_used_ = 0;
};

}  // namespace dapsp::congest
