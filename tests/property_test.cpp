// Property-based differential harness: every solver against sequential
// Dijkstra, across seeded graph families.
//
// Each (family, solver) pair sweeps several sizes x seeds, so the suite
// covers well over a hundred generated cases.  For exact solvers the
// properties are strict equality of every distance plus a full validity
// check of every reconstructed path (each hop is a real edge, the weight
// sum equals the reported distance); for the approximate solver the
// distance must land in the [d, (1+eps)d] sandwich and zero-distance pairs
// must be exact.  On failure the offending graph is printed as a
// `read_graph` payload, so any red case can be replayed with
// `dapsp_cli --graph FILE` without re-deriving the generator arguments.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "seq/dijkstra.hpp"
#include "service/oracle.hpp"

namespace dapsp::service {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;
using graph::Weight;

enum class Family { kPath, kStar, kGrid, kRandom, kZeroCycle };

const char* family_name(Family f) {
  switch (f) {
    case Family::kPath: return "path";
    case Family::kStar: return "star";
    case Family::kGrid: return "grid";
    case Family::kRandom: return "random";
    case Family::kZeroCycle: return "zero_cycle";
  }
  return "?";
}

/// One generated instance.  `n` is a size knob, not always the exact node
/// count (grid rounds to rows x cols).
Graph make_family(Family f, NodeId n, std::uint64_t seed) {
  switch (f) {
    case Family::kPath:
      return graph::path(n, {0, 6, 0.2}, seed, /*directed=*/false);
    case Family::kStar:
      return graph::star(n, {1, 9, 0.0}, seed);
    case Family::kGrid:
      return graph::grid(3, (n + 2) / 3, {0, 4, 0.1}, seed);
    case Family::kRandom:
      return graph::erdos_renyi(n, 0.35, {0, 5, 0.25}, seed,
                                /*directed=*/(seed % 2) == 1);
    case Family::kZeroCycle:
      // Zero-heavy cycle: long zero-weight plateaus stress tie-breaking and
      // hop accounting in every solver.
      return graph::cycle(n, {0, 1, 0.7}, seed, /*directed=*/false);
  }
  throw std::logic_error("unknown family");
}

/// The failing graph, replayable: paste into a file and run
/// `dapsp_cli <cmd> --graph FILE` or feed to graph::read_graph.
std::string replay_payload(const Graph& g, const std::string& where) {
  std::ostringstream os;
  os << where << "; replay payload (graph::read_graph / --graph):\n";
  graph::write_graph(os, g);
  return os.str();
}

/// Weight of the cheapest u->v arc; kInfDist when absent.
Weight arc_weight(const Graph& g, NodeId u, NodeId v) {
  Weight best = kInfDist;
  for (const auto& e : g.out_edges(u)) {
    if (e.to == v && e.weight < best) best = e.weight;
  }
  return best;
}

/// Checks one reconstructed path: endpoints, real edges, weight sum.
void check_path(const Graph& g, const DistanceOracle& o, NodeId u, NodeId v,
                Weight want, const std::string& ctx) {
  const auto p = o.path(u, v);
  if (want == kInfDist) {
    EXPECT_FALSE(p.has_value()) << ctx;
    return;
  }
  ASSERT_TRUE(p.has_value()) << ctx;
  ASSERT_GE(p->size(), 1u) << ctx;
  EXPECT_EQ(p->front(), u) << ctx;
  EXPECT_EQ(p->back(), v) << ctx;
  Weight sum = 0;
  for (std::size_t i = 0; i + 1 < p->size(); ++i) {
    const Weight w = arc_weight(g, (*p)[i], (*p)[i + 1]);
    ASSERT_NE(w, kInfDist)
        << ctx << ": path hop " << (*p)[i] << "->" << (*p)[i + 1]
        << " is not an edge";
    sum += w;
  }
  EXPECT_EQ(sum, want) << ctx << ": path weight sum != distance";
}

struct Case {
  Family family;
  Solver solver;
};

class SolverProperty : public ::testing::TestWithParam<Case> {};

TEST_P(SolverProperty, MatchesDijkstraOnSeededSweep) {
  const Case& c = GetParam();
  OracleBuildOptions opts;
  opts.solver = c.solver;
  opts.eps = 0.5;
  std::uint64_t cases = 0;
  for (NodeId n = 5; n <= 13; n += 4) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Graph g = make_family(c.family, n, seed * 37 + n);
      const DistanceOracle o = build_oracle(g, opts);
      ++cases;
      std::ostringstream tag;
      tag << family_name(c.family) << "/" << solver_name(c.solver)
          << " n=" << n << " seed=" << seed;
      const std::string ctx = replay_payload(g, tag.str());
      const NodeId nn = g.node_count();
      ASSERT_EQ(o.node_count(), nn) << ctx;
      for (NodeId s = 0; s < nn; ++s) {
        const auto dj = seq::dijkstra(g, s);
        for (NodeId v = 0; v < nn; ++v) {
          const Weight want = dj.dist[v];
          const Weight got = o.dist(s, v);
          if (o.exact()) {
            ASSERT_EQ(got, want) << ctx << " pair " << s << "->" << v;
          } else if (want == kInfDist) {
            ASSERT_EQ(got, kInfDist) << ctx << " pair " << s << "->" << v;
          } else {
            ASSERT_GE(got, want) << ctx << " pair " << s << "->" << v;
            if (want == 0) {
              ASSERT_EQ(got, 0) << ctx << " pair " << s << "->" << v;
            } else {
              ASSERT_LE(static_cast<double>(got),
                        (1.0 + opts.eps) * static_cast<double>(want))
                  << ctx << " pair " << s << "->" << v;
            }
          }
          if (o.has_paths()) {
            check_path(g, o, s, v, want,
                       ctx + " path " + std::to_string(s) + "->" +
                           std::to_string(v));
          }
        }
      }
    }
  }
  // 3 sizes x 4 seeds per (family, solver); the full suite of 25 params
  // exercises 300 generated graphs.
  EXPECT_GE(cases, 12u);
}

std::vector<Case> all_cases() {
  std::vector<Case> out;
  for (const Family f : {Family::kPath, Family::kStar, Family::kGrid,
                         Family::kRandom, Family::kZeroCycle}) {
    for (const Solver s : {Solver::kPipelined, Solver::kBlocker,
                           Solver::kScaled, Solver::kApprox,
                           Solver::kReference}) {
      out.push_back({f, s});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Families, SolverProperty, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::string(family_name(param_info.param.family)) + "_" +
             solver_name(param_info.param.solver);
    });

TEST(SolverPropertyReplay, PayloadRoundTrips) {
  // The failure message's replay payload must parse back to the same graph,
  // otherwise a red case cannot actually be replayed.
  const Graph g = make_family(Family::kRandom, 9, 42);
  std::ostringstream os;
  graph::write_graph(os, g);
  std::istringstream is(os.str());
  const Graph back = graph::read_graph(is);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto a = g.out_edges(v);
    const auto b = back.out_edges(v);
    ASSERT_EQ(a.size(), b.size()) << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to) << v;
      EXPECT_EQ(a[i].weight, b[i].weight) << v;
    }
  }
}

}  // namespace
}  // namespace dapsp::service
