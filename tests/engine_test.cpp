#include <gtest/gtest.h>

#include <numeric>

#include "baseline/bf_apsp.hpp"
#include "congest/engine.hpp"
#include "congest/primitives.hpp"
#include "core/approx_apsp.hpp"
#include "core/blocker_apsp.hpp"
#include "core/pipelined_ssp.hpp"
#include "core/scaled_apsp.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace dapsp::congest {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

constexpr std::uint32_t kPing = 100;

/// Floods a counter: node 0 starts, everyone forwards value+1 once.
class FloodProtocol final : public Protocol {
 public:
  explicit FloodProtocol(NodeId self) : self_(self) {}

  void init(Context& ctx) override {
    if (self_ == 0) {
      value_ = 0;
      pending_ = true;
      ctx.broadcast(Message(kPing, {0}));
      pending_ = false;
      sent_ = true;
    }
  }

  void send_phase(Context& ctx) override {
    if (pending_ && !sent_) {
      ctx.broadcast(Message(kPing, {value_}));
      sent_ = true;
      pending_ = false;
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag == kPing && value_ < 0) {
        value_ = env.msg.f[0] + 1;
        pending_ = !sent_;
      }
      ++received_;
    }
  }

  bool quiescent() const override { return !pending_; }

  std::int64_t value() const { return value_; }
  int received() const { return received_; }

 private:
  NodeId self_;
  std::int64_t value_ = -1;
  bool pending_ = false;
  bool sent_ = false;
  int received_ = 0;
};

std::vector<std::unique_ptr<Protocol>> make_flood(const Graph& g) {
  std::vector<std::unique_ptr<Protocol>> procs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    procs.push_back(std::make_unique<FloodProtocol>(v));
  }
  return procs;
}

TEST(Engine, FloodReachesAllWithBfsDepths) {
  const Graph g = graph::grid(4, 5, {1, 1, 0.0}, 1);
  Engine engine(g, make_flood(g));
  const RunStats stats = engine.run();
  EXPECT_FALSE(stats.hit_round_limit);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& p = static_cast<const FloodProtocol&>(engine.protocol(v));
    EXPECT_GE(p.value(), 0) << "node " << v << " never reached";
  }
  // Node 0's value is 0; the far corner (3,4) is 7 hops away.
  EXPECT_EQ(static_cast<const FloodProtocol&>(engine.protocol(19)).value(), 7);
}

TEST(Engine, StopsAtQuiescence) {
  const Graph g = graph::path(10, {1, 1, 0.0}, 2);
  Engine engine(g, make_flood(g));
  const RunStats stats = engine.run();
  // Flood over a 10-path finishes in ~9 rounds, far below the default cap.
  EXPECT_LE(stats.rounds, 12u);
  EXPECT_FALSE(stats.hit_round_limit);
}

TEST(Engine, RoundLimitReportedWhenWorkRemains) {
  const Graph g = graph::path(30, {1, 1, 0.0}, 3);
  EngineOptions opt;
  opt.max_rounds = 3;  // flood cannot finish
  Engine engine(g, make_flood(g), opt);
  const RunStats stats = engine.run();
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(stats.rounds, 3u);
}

TEST(Engine, MessageAccounting) {
  const Graph g = graph::star(5, {1, 1, 0.0}, 4);
  Engine engine(g, make_flood(g));
  const RunStats stats = engine.run();
  // Center (node 0) broadcasts 4 messages in init; each leaf sends 4... no:
  // each leaf broadcasts over its single link -> 1 message each.
  EXPECT_EQ(stats.total_messages, 4u + 4u);
  EXPECT_EQ(stats.max_link_congestion, 1u);
}

TEST(Engine, SendToNonNeighborThrows) {
  class BadProtocol final : public Protocol {
   public:
    void init(Context& ctx) override {
      if (ctx.self() == 0) ctx.send(2, Message(kPing, {1}));
    }
    void send_phase(Context&) override {}
  };
  const Graph g = graph::path(3, {1, 1, 0.0}, 5);  // 0-1-2: 0 and 2 not adjacent
  std::vector<std::unique_ptr<Protocol>> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(std::make_unique<BadProtocol>());
  Engine engine(g, std::move(procs));
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Engine, SendInReceivePhaseThrows) {
  class Chatty final : public Protocol {
   public:
    void init(Context& ctx) override { ctx.broadcast(Message(kPing, {0})); }
    void receive_phase(Context& ctx) override {
      if (!ctx.inbox().empty()) ctx.broadcast(Message(kPing, {1}));
    }
  };
  const Graph g = graph::path(2, {1, 1, 0.0}, 6);
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.push_back(std::make_unique<Chatty>());
  procs.push_back(std::make_unique<Chatty>());
  Engine engine(g, std::move(procs));
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Engine, ProtocolCountMismatchThrows) {
  const Graph g = graph::path(3, {1, 1, 0.0}, 7);
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.push_back(std::make_unique<FloodProtocol>(0));
  EXPECT_THROW(Engine(g, std::move(procs)), std::logic_error);
}

TEST(Engine, InboxOrderedBySender) {
  class Recorder final : public Protocol {
   public:
    void init(Context& ctx) override {
      if (ctx.self() != 0) ctx.send(0, Message(kPing, {ctx.self()}));
    }
    void receive_phase(Context& ctx) override {
      for (const Envelope& env : ctx.inbox()) senders.push_back(env.from);
    }
    std::vector<NodeId> senders;
  };
  const Graph g = graph::star(6, {1, 1, 0.0}, 8);
  std::vector<std::unique_ptr<Protocol>> procs;
  for (int i = 0; i < 6; ++i) procs.push_back(std::make_unique<Recorder>());
  Engine engine(g, std::move(procs));
  engine.run();
  const auto& center = static_cast<const Recorder&>(engine.protocol(0));
  ASSERT_EQ(center.senders.size(), 5u);
  EXPECT_TRUE(std::is_sorted(center.senders.begin(), center.senders.end()));
}

TEST(Engine, CongestionTracked) {
  // Two messages on the same link in the same round.
  class DoubleSend final : public Protocol {
   public:
    void init(Context& ctx) override {
      if (ctx.self() == 0) {
        ctx.send(1, Message(kPing, {1}));
        ctx.send(1, Message(kPing, {2}));
      }
    }
  };
  const Graph g = graph::path(2, {1, 1, 0.0}, 9);
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.push_back(std::make_unique<DoubleSend>());
  procs.push_back(std::make_unique<DoubleSend>());
  Engine engine(g, std::move(procs));
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.max_link_congestion, 2u);
  EXPECT_EQ(stats.total_messages, 2u);
  EXPECT_EQ(stats.max_link_total, 2u);
}

TEST(Engine, StepByStep) {
  const Graph g = graph::path(4, {1, 1, 0.0}, 10);
  Engine engine(g, make_flood(g));
  EXPECT_EQ(engine.step(), 1u);  // init: node 0 -> node 1
  EXPECT_EQ(engine.step(), 2u);  // node 1 forwards to 0 and 2
  EXPECT_EQ(engine.current_round(), 1u);
}

TEST(Engine, ThreadCountDoesNotChangeResults) {
  // Same flood with a per-engine 4-thread pool vs the (single-core) global
  // pool: bit-identical outcomes.
  const Graph g = graph::erdos_renyi(40, 0.12, {1, 5, 0.0}, 60);
  const auto run = [&](std::size_t threads) {
    std::vector<std::unique_ptr<Protocol>> procs = make_flood(g);
    EngineOptions opt;
    opt.threads = threads;
    Engine engine(g, std::move(procs), opt);
    const RunStats stats = engine.run();
    std::vector<std::int64_t> values;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      values.push_back(static_cast<const FloodProtocol&>(engine.protocol(v)).value());
    }
    return std::make_tuple(values, stats.total_messages, stats.rounds);
  };
  EXPECT_EQ(run(0), run(4));
  EXPECT_EQ(run(2), run(4));
}

TEST(Engine, PerRoundRecording) {
  const Graph g = graph::path(6, {1, 1, 0.0}, 61);
  std::vector<std::unique_ptr<Protocol>> procs = make_flood(g);
  EngineOptions opt;
  opt.record_per_round = true;
  Engine engine(g, std::move(procs), opt);
  const RunStats stats = engine.run();
  ASSERT_FALSE(stats.per_round_messages.empty());
  std::uint64_t sum = 0;
  for (const auto m : stats.per_round_messages) sum += m;
  EXPECT_EQ(sum, stats.total_messages);
}

TEST(Engine, TraceSinkSeesEveryMessage) {
  const Graph g = graph::star(5, {1, 1, 0.0}, 62);
  MessageLog log;
  EngineOptions opt;
  opt.trace = &log;
  Engine engine(g, make_flood(g), opt);
  const RunStats stats = engine.run();
  EXPECT_EQ(log.total(), stats.total_messages);
  EXPECT_FALSE(log.truncated());
  // First event: center (0) flooding in round 0.
  ASSERT_FALSE(log.events().empty());
  EXPECT_EQ(log.events()[0].round, 0u);
  EXPECT_EQ(log.events()[0].from, 0u);
  for (const auto& e : log.events()) {
    EXPECT_EQ(e.msg.tag, kPing);
    EXPECT_NE(e.from, e.to);
  }
}

TEST(Engine, TraceLogHonorsLimit) {
  const Graph g = graph::grid(4, 4, {1, 1, 0.0}, 63);
  MessageLog log(3);
  EngineOptions opt;
  opt.trace = &log;
  Engine engine(g, make_flood(g), opt);
  engine.run();
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_TRUE(log.truncated());
  EXPECT_GT(log.total(), 3u);
}

TEST(RunStats, SummaryMentionsKeyNumbers) {
  RunStats s;
  s.rounds = 12;
  s.total_messages = 34;
  s.max_link_congestion = 2;
  const std::string text = s.summary();
  EXPECT_NE(text.find("rounds=12"), std::string::npos);
  EXPECT_NE(text.find("messages=34"), std::string::npos);
  EXPECT_EQ(text.find("HIT ROUND LIMIT"), std::string::npos);
  s.hit_round_limit = true;
  EXPECT_NE(s.summary().find("HIT ROUND LIMIT"), std::string::npos);
}

TEST(RunStats, SequentialComposition) {
  RunStats a;
  a.rounds = 10;
  a.total_messages = 5;
  a.max_link_congestion = 2;
  a.last_message_round = 9;
  RunStats b;
  b.rounds = 7;
  b.total_messages = 3;
  b.max_link_congestion = 4;
  b.max_congestion_round = 3;
  b.last_message_round = 6;
  a += b;
  EXPECT_EQ(a.rounds, 17u);
  EXPECT_EQ(a.total_messages, 8u);
  EXPECT_EQ(a.max_link_congestion, 4u);
  EXPECT_EQ(a.max_congestion_round, 13u);
  EXPECT_EQ(a.last_message_round, 16u);
}

TEST(Primitives, BfsTreeDepthsMatchBfs) {
  const Graph g = graph::grid(5, 5, {1, 1, 0.0}, 11);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(g, 0, &stats);
  EXPECT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.depth[24], 8u);  // opposite corner
  EXPECT_EQ(tree.height, 8u);
  EXPECT_LE(stats.rounds, 12u);
  // Parent depths decrease by one.
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ASSERT_TRUE(tree.reached(v));
    EXPECT_EQ(tree.depth[v], tree.depth[tree.parent[v]] + 1);
  }
  // children lists are consistent with parents.
  std::size_t child_links = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) child_links += tree.children[v].size();
  EXPECT_EQ(child_links, g.node_count() - 1u);
}

TEST(Primitives, BfsTreeDisconnected) {
  GraphBuilder b(4, false);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  const Graph g = std::move(b).build();
  const BfsTree tree = build_bfs_tree(g, 0);
  EXPECT_TRUE(tree.reached(1));
  EXPECT_FALSE(tree.reached(2));
  EXPECT_FALSE(tree.reached(3));
}

TEST(Primitives, BroadcastDeliversAllValues) {
  const Graph g = graph::random_tree(20, {1, 1, 0.0}, 12);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(g, 0, &stats);
  std::vector<std::int64_t> values{5, -3, 42, 0, 7};
  const auto copies = broadcast_values(g, tree, values, &stats);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(copies[v], values) << "node " << v;
  }
  // Pipelined: |values| + height + O(1) rounds for the broadcast phase.
}

TEST(Primitives, BroadcastEmpty) {
  const Graph g = graph::path(4, {1, 1, 0.0}, 13);
  const BfsTree tree = build_bfs_tree(g, 0);
  const auto copies = broadcast_values(g, tree, {});
  for (const auto& c : copies) EXPECT_TRUE(c.empty());
}

TEST(Primitives, ConvergeMaxFindsArgmax) {
  const Graph g = graph::grid(4, 4, {1, 1, 0.0}, 14);
  const BfsTree tree = build_bfs_tree(g, 0);
  std::vector<std::int64_t> vals(g.node_count(), 1);
  vals[11] = 99;
  const auto [best, arg] = converge_max(g, tree, vals);
  EXPECT_EQ(best, 99);
  EXPECT_EQ(arg, 11u);
}

TEST(Primitives, ConvergeMaxTieBreaksToSmallerId) {
  const Graph g = graph::path(6, {1, 1, 0.0}, 15);
  const BfsTree tree = build_bfs_tree(g, 2);
  std::vector<std::int64_t> vals{7, 3, 7, 3, 7, 3};
  const auto [best, arg] = converge_max(g, tree, vals);
  EXPECT_EQ(best, 7);
  EXPECT_EQ(arg, 0u);
}

TEST(Primitives, GatherToAllCollectsEverything) {
  const Graph g = graph::grid(3, 3, {1, 1, 0.0}, 16);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(g, 4, &stats);
  std::vector<std::vector<GatherItem>> items(g.node_count());
  items[0].push_back({0, 10, 100});
  items[8].push_back({8, 20, 200});
  items[8].push_back({8, 21, 201});
  items[4].push_back({4, 30, 300});  // the root itself
  const auto all = gather_to_all(g, tree, items, &stats);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], (GatherItem{0, 10, 100}));
  EXPECT_EQ(all[1], (GatherItem{4, 30, 300}));
  EXPECT_EQ(all[2], (GatherItem{8, 20, 200}));
  EXPECT_EQ(all[3], (GatherItem{8, 21, 201}));
}

TEST(Primitives, GatherToAllEmpty) {
  const Graph g = graph::path(5, {1, 1, 0.0}, 17);
  const BfsTree tree = build_bfs_tree(g, 0);
  const auto all =
      gather_to_all(g, tree, std::vector<std::vector<GatherItem>>(5));
  EXPECT_TRUE(all.empty());
}

// ---------------------------------------------------------------------------
// Sparse/dense equivalence: the active-set scheduler must be invisible in
// every deterministic quantity.  Each solver is run once on the dense
// fallback (the correctness oracle) and then sparse across thread counts;
// stats and outputs must be bit-identical.  Wall-clock timers and
// skipped_rounds are host observability, not CONGEST accounting, and are
// deliberately excluded.
// ---------------------------------------------------------------------------

/// The deterministic subset of RunStats (wall-clock histograms excluded,
/// round_messages_hist included: it must be bit-identical like
/// per_round_messages).
struct DetStats {
  Round rounds;
  Round last_message_round;
  std::uint64_t total_messages;
  std::uint64_t max_link_congestion;
  Round max_congestion_round;
  std::uint64_t max_link_total;
  std::uint32_t max_message_fields;
  std::uint64_t message_bytes;
  bool hit_round_limit;
  std::vector<std::uint64_t> per_round_messages;
  obs::Histogram round_messages_hist;

  friend bool operator==(const DetStats&, const DetStats&) = default;
};

DetStats det(const RunStats& s) {
  return {s.rounds,
          s.last_message_round,
          s.total_messages,
          s.max_link_congestion,
          s.max_congestion_round,
          s.max_link_total,
          s.max_message_fields,
          s.message_bytes,
          s.hit_round_limit,
          s.per_round_messages,
          s.round_messages_hist};
}

/// Restores the process-wide engine overrides on scope exit.
struct EngineOverrideGuard {
  ~EngineOverrideGuard() {
    Engine::set_force_dense(false);
    Engine::set_force_threads(Engine::kNoThreadOverride);
  }
};

using SolverRun = std::pair<RunStats, std::vector<std::vector<Weight>>>;

/// Runs `solve` dense single-threaded, then sparse with 1 thread and with
/// the shared pool; everything deterministic must match exactly.
template <typename Solver>
void expect_sparse_matches_dense(const Solver& solve, const char* label) {
  EngineOverrideGuard guard;
  Engine::set_force_dense(true);
  Engine::set_force_threads(1);
  const SolverRun dense = solve();
  EXPECT_EQ(dense.first.skipped_rounds, 0u) << label << ": dense skipped";

  Engine::set_force_dense(false);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
    Engine::set_force_threads(threads);
    const SolverRun sparse = solve();
    EXPECT_EQ(det(sparse.first), det(dense.first))
        << label << ": stats diverge at threads=" << threads;
    EXPECT_EQ(sparse.second, dense.second)
        << label << ": outputs diverge at threads=" << threads;
  }
}

TEST(SparseDense, PipelinedApsp) {
  const Graph g = graph::erdos_renyi(16, 0.25, {1, 6, 0.0}, 9100);
  const Weight delta = graph::max_finite_distance(g);
  expect_sparse_matches_dense(
      [&] {
        const auto res = core::pipelined_apsp(g, delta);
        return SolverRun{res.stats, res.dist};
      },
      "pipelined_apsp");
}

TEST(SparseDense, PipelinedKsspScrambledInbox) {
  const Graph g = graph::erdos_renyi(14, 0.3, {1, 5, 0.2}, 9150);
  core::PipelinedParams p;
  p.sources = {0, 3, 7};
  p.h = g.node_count() - 1;
  p.delta = graph::max_finite_distance(g);
  p.scramble_inbox = true;
  p.record_per_round = true;
  expect_sparse_matches_dense(
      [&] {
        const auto res = core::pipelined_kssp(g, p);
        return SolverRun{res.stats, res.dist};
      },
      "pipelined_kssp+scramble");
}

TEST(SparseDense, BellmanFordApsp) {
  const Graph g = graph::erdos_renyi(15, 0.25, {1, 7, 0.0}, 9200);
  expect_sparse_matches_dense(
      [&] {
        const auto res = baseline::bf_apsp(g);
        return SolverRun{res.stats, res.dist};
      },
      "bf_apsp");
}

TEST(SparseDense, BlockerApsp) {
  const Graph g = graph::erdos_renyi(12, 0.35, {1, 5, 0.0}, 9300);
  expect_sparse_matches_dense(
      [&] {
        const auto res = core::blocker_apsp(g, {});
        return SolverRun{res.stats, res.dist};
      },
      "blocker_apsp");
}

TEST(SparseDense, ScaledHhopApsp) {
  const Graph g = graph::erdos_renyi(12, 0.3, {0, 5, 0.3}, 9400);
  core::ScaledApspParams p;
  p.h = g.node_count() - 1;
  p.delta = graph::max_finite_distance(g);
  expect_sparse_matches_dense(
      [&] {
        const auto res = core::scaled_hhop_apsp(g, p);
        return SolverRun{res.stats, res.dist};
      },
      "scaled_hhop_apsp");
}

TEST(SparseDense, ApproxApsp) {
  const Graph g = graph::erdos_renyi(14, 0.25, {0, 6, 0.4}, 9500);
  core::ApproxApspParams p;
  p.eps = 0.5;
  expect_sparse_matches_dense(
      [&] {
        const auto res = core::approx_apsp(g, p);
        return SolverRun{res.stats, res.dist};
      },
      "approx_apsp");
}

/// Node 0 stays silent until round `fire`, then broadcasts once.  Its
/// next_send_round hint lets the sparse engine fast-forward the gap.
class TimerProtocol final : public Protocol {
 public:
  TimerProtocol(NodeId self, Round fire) : self_(self), fire_(fire) {}

  void send_phase(Context& ctx) override {
    if (self_ == 0 && ctx.round() == fire_) {
      ctx.broadcast(Message(kPing, {42}));
      fired_ = true;
    }
  }

  void receive_phase(Context& ctx) override {
    got_ += static_cast<int>(ctx.inbox().size());
  }

  bool quiescent() const override { return self_ != 0 || fired_; }

  Round next_send_round(Round now) const override {
    if (self_ != 0 || now >= fire_) return kNeverSends;
    return fire_;
  }

  int got() const { return got_; }

 private:
  NodeId self_;
  Round fire_;
  bool fired_ = false;
  int got_ = 0;
};

TEST(SparseDense, FastForwardSkipsSilentGapBitIdentically) {
  const Graph g = graph::path(8, {1, 1, 0.0}, 9600);
  constexpr Round kFire = 40;
  const auto make = [&] {
    std::vector<std::unique_ptr<Protocol>> procs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      procs.push_back(std::make_unique<TimerProtocol>(v, kFire));
    }
    return procs;
  };
  EngineOptions opt;
  opt.record_per_round = true;

  EngineOverrideGuard guard;
  Engine::set_force_dense(true);
  Engine dense(g, make(), opt);
  const RunStats ds = dense.run();
  Engine::set_force_dense(false);
  Engine sparse(g, make(), opt);
  const RunStats ss = sparse.run();

  EXPECT_EQ(det(ss), det(ds));
  EXPECT_EQ(ds.skipped_rounds, 0u);
  EXPECT_GT(ss.skipped_rounds, 30u);  // the silent 2..39 gap never executed
  EXPECT_EQ(ss.last_message_round, kFire);
  ASSERT_EQ(ss.per_round_messages.size(), ds.per_round_messages.size());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& dp = static_cast<const TimerProtocol&>(dense.protocol(v));
    const auto& sp = static_cast<const TimerProtocol&>(sparse.protocol(v));
    EXPECT_EQ(sp.got(), dp.got()) << "node " << v;
  }
}

// ---------------------------------------------------------------------------
// Delivery plane (struct-of-arrays message columns): differential across
// schedulers and thread counts, exact payload reconstruction including mixed
// widths and duplicate sends on one link, byte accounting, and the
// steady-state zero-allocation guarantee.
// ---------------------------------------------------------------------------

/// Runs `solve` once as the dense single-threaded oracle, then under both
/// schedulers at 1, 4, and 8 worker threads; every deterministic stat
/// (including message_bytes) and every output must be bit-identical.
template <typename Solver>
void expect_plane_invariant(const Solver& solve, const char* label) {
  EngineOverrideGuard guard;
  Engine::set_force_dense(true);
  Engine::set_force_threads(1);
  const SolverRun oracle = solve();
  for (const bool dense : {false, true}) {
    Engine::set_force_dense(dense);
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      Engine::set_force_threads(threads);
      const SolverRun run = solve();
      EXPECT_EQ(det(run.first), det(oracle.first))
          << label << ": stats diverge, dense=" << dense
          << " threads=" << threads;
      EXPECT_EQ(run.second, oracle.second)
          << label << ": outputs diverge, dense=" << dense
          << " threads=" << threads;
    }
  }
}

TEST(DeliveryPlane, PipelinedKsspInvariant) {
  const Graph g = graph::erdos_renyi(14, 0.3, {1, 5, 0.2}, 7100);
  core::PipelinedParams p;
  p.sources = {0, 3, 7};
  p.h = g.node_count() - 1;
  p.delta = graph::max_finite_distance(g);
  p.record_per_round = true;
  expect_plane_invariant(
      [&] {
        const auto res = core::pipelined_kssp(g, p);
        return SolverRun{res.stats, res.dist};
      },
      "pipelined_kssp");
}

TEST(DeliveryPlane, BellmanFordApspInvariant) {
  const Graph g = graph::erdos_renyi(15, 0.25, {1, 7, 0.0}, 7200);
  expect_plane_invariant(
      [&] {
        const auto res = baseline::bf_apsp(g);
        return SolverRun{res.stats, res.dist};
      },
      "bf_apsp");
}

TEST(DeliveryPlane, BlockerApspInvariant) {
  const Graph g = graph::erdos_renyi(12, 0.35, {1, 5, 0.0}, 7300);
  expect_plane_invariant(
      [&] {
        const auto res = core::blocker_apsp(g, {});
        return SolverRun{res.stats, res.dist};
      },
      "blocker_apsp");
}

TEST(DeliveryPlane, ScaledHhopApspInvariant) {
  const Graph g = graph::erdos_renyi(12, 0.3, {0, 5, 0.3}, 7400);
  core::ScaledApspParams p;
  p.h = g.node_count() - 1;
  p.delta = graph::max_finite_distance(g);
  expect_plane_invariant(
      [&] {
        const auto res = core::scaled_hhop_apsp(g, p);
        return SolverRun{res.stats, res.dist};
      },
      "scaled_hhop_apsp");
}

TEST(DeliveryPlane, ApproxApspInvariant) {
  const Graph g = graph::erdos_renyi(14, 0.25, {0, 6, 0.4}, 7500);
  core::ApproxApspParams p;
  p.eps = 0.5;
  expect_plane_invariant(
      [&] {
        const auto res = core::approx_apsp(g, p);
        return SolverRun{res.stats, res.dist};
      },
      "approx_apsp");
}

/// Sends a deliberately awkward mix every round until `rounds_` rounds have
/// fired: node 0 sends three messages to its first neighbor (widths 1, 3,
/// then 0) plus a width-2 broadcast -- duplicate link sends and mixed
/// payload widths in a single outbox, the two paths that force the message
/// columns off their uniform fast lane.
class ChatterProtocol final : public Protocol {
 public:
  ChatterProtocol(NodeId self, Round rounds) : self_(self), rounds_(rounds) {}

  void send_phase(Context& ctx) override {
    if (sent_rounds_ >= rounds_) return;
    if (self_ == 0) {
      const NodeId to = ctx.neighbors().front();
      ctx.send(to, Message(kPing, {1}));
      ctx.send(to, Message(kPing + 1, {2, 3, 4}));
      ctx.send(to, Message(kPing + 2, {}));
    }
    ctx.broadcast(Message(kPing + 3, {static_cast<std::int64_t>(self_), 7}));
    ++sent_rounds_;
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      received_.push_back(env);
    }
  }

  bool quiescent() const override { return sent_rounds_ >= rounds_; }

  const std::vector<Envelope>& received() const { return received_; }

 private:
  NodeId self_;
  Round rounds_;
  Round sent_rounds_ = 0;
  std::vector<Envelope> received_;
};

std::vector<std::unique_ptr<Protocol>> make_chatter(const Graph& g,
                                                    Round rounds) {
  std::vector<std::unique_ptr<Protocol>> procs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    procs.push_back(std::make_unique<ChatterProtocol>(v, rounds));
  }
  return procs;
}

TEST(DeliveryPlane, MixedWidthAndDuplicateSendsArriveExactly) {
  // Node 1 on a 3-path receives node 0's three targeted messages (in send
  // order) and both neighbors' broadcasts, sender-ascending.
  const Graph g = graph::path(3, {1, 1, 0.0}, 7600);
  Engine engine(g, make_chatter(g, 1));
  engine.run();
  const auto& p1 = static_cast<const ChatterProtocol&>(engine.protocol(1));
  const auto& in = p1.received();
  ASSERT_EQ(in.size(), 5u);
  EXPECT_EQ(in[0].from, 0u);
  EXPECT_EQ(in[0].msg, Message(kPing, {1}));
  EXPECT_EQ(in[1].msg, Message(kPing + 1, {2, 3, 4}));
  EXPECT_EQ(in[2].msg, Message(kPing + 2, {}));
  EXPECT_EQ(in[3].msg, Message(kPing + 3, {0, 7}));
  ASSERT_EQ(in[4].from, 2u);
  EXPECT_EQ(in[4].msg, Message(kPing + 3, {2, 7}));
  // Reconstructed envelopes zero their unused payload tail, exactly like
  // the old whole-struct copies did.
  EXPECT_EQ(in[0].msg.f[1], 0);
  EXPECT_EQ(in[2].msg.used, 0u);
}

TEST(DeliveryPlane, MessageBytesAccounting) {
  // Star flood: 4 init messages from the hub + 4 leaf replies, each with one
  // used payload word -> 8 * (1 header + 1 field) words... in bytes:
  // 8 messages * (8 + 8*1) = 128.
  const Graph g = graph::star(5, {1, 1, 0.0}, 4);
  Engine engine(g, make_flood(g));
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_messages, 8u);
  EXPECT_EQ(stats.message_bytes, 8u * 16u);
}

TEST(DeliveryPlane, SteadyStateRoundsAllocateNothing) {
  // After a warm-up round has sized every buffer, the plane's held capacity
  // must stay exactly constant across further rounds -- the grow-only
  // guarantee that makes steady-state delivery allocation-free.
  const Graph g = graph::cycle(16, {1, 1, 0.0}, 7700);
  for (const bool dense : {false, true}) {
    EngineOverrideGuard guard;
    Engine::set_force_dense(dense);
    Engine engine(g, make_chatter(g, 64));
    engine.step();  // init round
    engine.step();  // first steady-state round sizes the reuse buffers
    engine.step();  // second: mixed-width ends_ columns exist everywhere
    const std::size_t warm = engine.plane_capacity_bytes();
    EXPECT_GT(warm, 0u);
    for (int i = 0; i < 40; ++i) {
      engine.step();
      ASSERT_EQ(engine.plane_capacity_bytes(), warm)
          << "allocation in steady-state round " << i << " dense=" << dense;
    }
  }
}

// ---------------------------------------------------------------------------
// Trace recorder: observing a run must not change it, and what it records
// must agree exactly with the engine's own accounting.
// ---------------------------------------------------------------------------

TEST(EngineTrace, RoundEventsMatchPerRoundMessages) {
  const Graph g = graph::erdos_renyi(20, 0.2, {1, 4, 0.0}, 9800);
  obs::TraceRecorder rec;
  EngineOptions opt;
  opt.record_per_round = true;
  opt.recorder = &rec;
  Engine engine(g, make_flood(g), opt);
  const RunStats stats = engine.run();

  // Expand the recorded events (rounds + gaps) back into a per-round
  // message vector; it must equal per_round_messages sample for sample
  // (both cover rounds 0..rounds, init round included).
  std::vector<std::uint64_t> from_trace;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const obs::TraceEvent& e = rec.event(i);
    if (e.kind == obs::TraceEvent::Kind::kGap) {
      from_trace.insert(from_trace.end(), e.rounds, 0);
    } else {
      from_trace.push_back(e.messages);
    }
  }
  EXPECT_EQ(from_trace, stats.per_round_messages);
  EXPECT_EQ(rec.total_messages(), stats.total_messages);
  EXPECT_EQ(rec.rounds_seen(), stats.rounds + 1u);  // + init round 0
  EXPECT_EQ(rec.skipped_rounds(), stats.skipped_rounds);
  EXPECT_EQ(rec.dropped_events(), 0u);
  ASSERT_EQ(rec.runs().size(), 1u);
  EXPECT_EQ(rec.runs()[0].nodes, g.node_count());
}

TEST(EngineTrace, RecorderDoesNotPerturbDeterministicStats) {
  const Graph g = graph::erdos_renyi(16, 0.25, {1, 6, 0.0}, 9850);
  const auto run = [&](obs::TraceRecorder* rec) {
    EngineOptions opt;
    opt.record_per_round = true;
    opt.recorder = rec;
    Engine engine(g, make_flood(g), opt);
    const RunStats stats = engine.run();
    std::vector<std::int64_t> values;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      values.push_back(
          static_cast<const FloodProtocol&>(engine.protocol(v)).value());
    }
    return std::make_pair(det(stats), values);
  };
  obs::TraceRecorder rec;
  const auto with = run(&rec);
  const auto without = run(nullptr);
  EXPECT_EQ(with.first, without.first);
  EXPECT_EQ(with.second, without.second);
  EXPECT_GT(rec.rounds_seen(), 0u);
}

TEST(EngineTrace, GapEventsCoverFastForwardedRounds) {
  const Graph g = graph::path(8, {1, 1, 0.0}, 9860);
  constexpr Round kFire = 40;
  std::vector<std::unique_ptr<Protocol>> procs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    procs.push_back(std::make_unique<TimerProtocol>(v, kFire));
  }
  obs::TraceRecorder rec;
  EngineOptions opt;
  opt.recorder = &rec;
  Engine engine(g, std::move(procs), opt);
  const RunStats stats = engine.run();
  ASSERT_GT(stats.skipped_rounds, 0u);
  EXPECT_EQ(rec.skipped_rounds(), stats.skipped_rounds);
  std::uint64_t gap_rounds = 0;
  bool saw_gap = false;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const obs::TraceEvent& e = rec.event(i);
    if (e.kind != obs::TraceEvent::Kind::kGap) continue;
    saw_gap = true;
    gap_rounds += e.rounds;
    EXPECT_GT(e.round, 0u);
    EXPECT_LE(e.round + e.rounds - 1, stats.rounds);
  }
  EXPECT_TRUE(saw_gap);
  EXPECT_EQ(gap_rounds, stats.skipped_rounds);
}

TEST(EngineTrace, RoundMessagesHistogramMatchesPerRoundVector) {
  const Graph g = graph::erdos_renyi(18, 0.2, {1, 5, 0.0}, 9870);
  EngineOptions opt;
  opt.record_per_round = true;
  Engine engine(g, make_flood(g), opt);
  const RunStats stats = engine.run();
  obs::Histogram expect;
  for (const auto m : stats.per_round_messages) expect.record(m);
  EXPECT_EQ(stats.round_messages_hist, expect);
  EXPECT_EQ(stats.round_messages_hist.sum(), stats.total_messages);
  EXPECT_EQ(stats.round_messages_hist.count(), stats.rounds + 1u);
}

TEST(SparseDense, StepInterleavedWithRunMatches) {
  const Graph g = graph::grid(4, 4, {1, 3, 0.0}, 9700);
  EngineOptions opt;
  opt.record_per_round = true;

  EngineOverrideGuard guard;
  Engine::set_force_dense(true);
  Engine dense(g, make_flood(g), opt);
  const RunStats ds = dense.run();
  Engine::set_force_dense(false);

  // step() is contractually "exactly one round" (no fast-forward); finishing
  // with run() must land on the same deterministic stats regardless of the
  // split point.
  Engine stepped(g, make_flood(g), opt);
  stepped.step();
  stepped.step();
  stepped.step();
  const RunStats ss = stepped.run();

  EXPECT_EQ(det(ss), det(ds));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& dp = static_cast<const FloodProtocol&>(dense.protocol(v));
    const auto& sp = static_cast<const FloodProtocol&>(stepped.protocol(v));
    EXPECT_EQ(sp.value(), dp.value());
    EXPECT_EQ(sp.received(), dp.received());
  }
}

}  // namespace
}  // namespace dapsp::congest
