// Differential tests for the sharded serving-tier oracle: for every solver
// and shard count, a ShardedOracle must answer bit-identically to the flat
// DistanceOracle built from the same graph -- distances, next hops, and full
// reconstructed paths.  Sharding is a representation change, never a
// semantics change.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "serve/sharded_oracle.hpp"
#include "service/snapshot.hpp"

namespace dapsp::serve {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

const std::size_t kShardCounts[] = {1, 2, 4, 8};

void expect_identical(const service::DistanceOracle& flat,
                      const service::OracleSnapshot& sharded) {
  const NodeId n = flat.node_count();
  ASSERT_EQ(sharded.node_count(), n);
  EXPECT_EQ(sharded.exact(), flat.exact());
  EXPECT_EQ(sharded.has_paths(), flat.has_paths());
  EXPECT_EQ(sharded.solver_label(), flat.solver_label());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(sharded.dist(u, v), flat.dist(u, v)) << u << "->" << v;
      ASSERT_EQ(sharded.next_hop(u, v), flat.next_hop(u, v))
          << u << "->" << v;
      const auto pf = flat.path(u, v);
      const auto ps = sharded.path(u, v);
      ASSERT_EQ(ps.has_value(), pf.has_value()) << u << "->" << v;
      if (pf) {
        ASSERT_EQ(*ps, *pf) << u << "->" << v;
      }
    }
  }
}

/// Shard ranges must partition [0, n) in order with no gaps or overlaps,
/// and byte counts must sum to the reported total.
void expect_valid_layout(const service::OracleSnapshot& snap) {
  const auto layout = snap.shard_layout();
  ASSERT_FALSE(layout.empty());
  std::uint32_t expect_begin = 0;
  std::size_t bytes = 0;
  for (const service::ShardInfo& s : layout) {
    EXPECT_EQ(s.row_begin, expect_begin);
    EXPECT_LT(s.row_begin, s.row_end);
    expect_begin = s.row_end;
    bytes += s.bytes;
  }
  EXPECT_EQ(expect_begin, snap.node_count());
  EXPECT_EQ(bytes, snap.memory_bytes());
}

TEST(ShardedOracle, BitIdenticalToFlatAcrossSolversAndShardCounts) {
  const Graph g = graph::erdos_renyi(18, 0.2, {0, 7, 0.3}, 901);
  for (const service::Solver s :
       {service::Solver::kPipelined, service::Solver::kBlocker,
        service::Solver::kScaled, service::Solver::kApprox,
        service::Solver::kReference}) {
    const service::OracleBuildOptions opts{s, 0, 0.5};
    const service::DistanceOracle flat = service::build_oracle(g, opts);
    for (const std::size_t shards : kShardCounts) {
      SCOPED_TRACE(std::string("solver=") + service::solver_name(s) +
                   " shards=" + std::to_string(shards));
      const auto sharded = build_sharded_oracle(g, opts, shards);
      expect_identical(flat, *sharded);
      expect_valid_layout(*sharded);
      // Equal rows-per-shard partitioning: ceil(n / ceil(n/S)) shards.
      const std::size_t n = g.node_count();
      const std::size_t rows =
          (n + std::min(shards, n) - 1) / std::min(shards, n);
      EXPECT_EQ(sharded->shard_count(), (n + rows - 1) / rows);
    }
  }
}

TEST(ShardedOracle, FromFlatMatchesDirectBuild) {
  const Graph g = graph::erdos_renyi(20, 0.25, {1, 9, 0.0}, 902);
  const service::DistanceOracle flat = service::build_oracle(
      g, {service::Solver::kReference, 0, 0.5});
  for (const std::size_t shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto repartitioned = ShardedOracle::from_flat(flat, shards);
    expect_identical(flat, *repartitioned);
    expect_valid_layout(*repartitioned);
  }
}

TEST(ShardedOracle, ShardCountClampedToNodeCount) {
  const Graph g = graph::path(3, {1, 4, 0.0}, 903);
  const auto snap = build_sharded_oracle(
      g, {service::Solver::kReference, 0, 0.5}, 64);
  EXPECT_EQ(snap->shard_count(), 3u);
  expect_valid_layout(*snap);
}

TEST(ShardedOracle, SingleNodeGraph) {
  const Graph g = graph::path(1, {1, 1, 0.0}, 904);
  const auto snap = build_sharded_oracle(
      g, {service::Solver::kReference, 0, 0.5}, 4);
  EXPECT_EQ(snap->shard_count(), 1u);
  EXPECT_EQ(snap->dist(0, 0), 0);
  const auto p = snap->path(0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, std::vector<NodeId>{0});
}

TEST(ShardedOracle, UnevenLastShard) {
  // n = 10, shards = 4 -> rows-per-shard 3 and a final shard of one row;
  // every row must still be owned exactly once.
  const Graph g = graph::erdos_renyi(10, 0.3, {0, 5, 0.2}, 905);
  const service::OracleBuildOptions opts{service::Solver::kReference, 0, 0.5};
  const service::DistanceOracle flat = service::build_oracle(g, opts);
  const auto snap = build_sharded_oracle(g, opts, 4);
  EXPECT_EQ(snap->shard_count(), 4u);
  EXPECT_EQ(snap->shard_info(3).row_end - snap->shard_info(3).row_begin, 1u);
  expect_identical(flat, *snap);
  expect_valid_layout(*snap);
}

TEST(ShardedOracle, ApproxShardsAreDistanceOnly) {
  const Graph g = graph::erdos_renyi(14, 0.3, {1, 6, 0.0}, 906);
  const auto snap = build_sharded_oracle(
      g, {service::Solver::kApprox, 0, 0.5}, 4);
  EXPECT_FALSE(snap->has_paths());
  EXPECT_FALSE(snap->exact());
  EXPECT_EQ(snap->next_hop(0, 1), kNoNode);
  EXPECT_FALSE(snap->path(0, 1).has_value());
}

TEST(FlatSnapshot, ReportsOneShardCoveringEveryRow) {
  const Graph g = graph::erdos_renyi(12, 0.3, {0, 6, 0.2}, 907);
  service::DistanceOracle flat = service::build_oracle(
      g, {service::Solver::kReference, 0, 0.5});
  const std::size_t bytes = flat.memory_bytes();
  const auto snap = service::make_flat_snapshot(std::move(flat));
  EXPECT_EQ(snap->shard_count(), 1u);
  EXPECT_EQ(snap->shard_info(0).row_begin, 0u);
  EXPECT_EQ(snap->shard_info(0).row_end, 12u);
  EXPECT_EQ(snap->shard_info(0).bytes, bytes);
  expect_valid_layout(*snap);
}

}  // namespace
}  // namespace dapsp::serve
