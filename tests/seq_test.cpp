#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "seq/bellman_ford.hpp"
#include "seq/dijkstra.hpp"
#include "seq/hop_limited.hpp"
#include "seq/zero_reach.hpp"

namespace dapsp::seq {
namespace {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

Graph diamond() {
  // 0 -> 1 -> 3 (weight 1+1) and 0 -> 2 -> 3 (weight 0+0), plus 0 -> 3 (5).
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1, 1).add_edge(1, 3, 1);
  b.add_edge(0, 2, 0).add_edge(2, 3, 0);
  b.add_edge(0, 3, 5);
  return std::move(b).build();
}

TEST(Dijkstra, ZeroWeightPathPreferred) {
  const auto r = dijkstra(diamond(), 0);
  EXPECT_EQ(r.dist[3], 0);
  EXPECT_EQ(r.hops[3], 2u);
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(Dijkstra, UnreachableIsInf) {
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1, 2);
  const auto r = dijkstra(std::move(b).build(), 0);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_EQ(r.parent[2], kNoNode);
}

TEST(Dijkstra, HopTieBreaking) {
  // Two zero-weight routes 0->3: via 1 (2 hops) and via 1->2 (3 hops).
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1, 0).add_edge(1, 3, 0);
  b.add_edge(1, 2, 0).add_edge(2, 3, 0);
  const auto r = dijkstra(std::move(b).build(), 0);
  EXPECT_EQ(r.dist[3], 0);
  EXPECT_EQ(r.hops[3], 2u);
}

TEST(Dijkstra, ReverseMatchesForwardOnReversedGraph) {
  const Graph g = graph::erdos_renyi(25, 0.15, {0, 6, 0.2}, 31,
                                     /*directed=*/true);
  for (NodeId t = 0; t < 5; ++t) {
    const auto rev = dijkstra_reverse(g, t);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto fwd = dijkstra(g, v);
      EXPECT_EQ(rev.dist[v], fwd.dist[t]) << "v=" << v << " t=" << t;
    }
  }
}

TEST(BellmanFord, AgreesWithDijkstraRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = graph::erdos_renyi(30, 0.12, {0, 9, 0.25}, 100 + seed,
                                       seed % 2 == 0);
    for (NodeId s = 0; s < 4; ++s) {
      const auto bf = bellman_ford(g, s);
      const auto dj = dijkstra(g, s);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(bf.dist[v], dj.dist[v]) << "seed=" << seed << " v=" << v;
        EXPECT_EQ(bf.hops[v], dj.hops[v]) << "seed=" << seed << " v=" << v;
      }
    }
  }
}

TEST(HopLimited, RespectsHopBudget) {
  const Graph g = graph::path(6, {1, 1, 0.0}, 3);
  const auto r2 = hop_limited_sssp(g, 0, 2);
  EXPECT_EQ(r2.dist[2], 2);
  EXPECT_EQ(r2.dist[3], kInfDist);
  const auto r5 = hop_limited_sssp(g, 0, 5);
  EXPECT_EQ(r5.dist[5], 5);
}

TEST(HopLimited, TradeoffBetweenHopsAndWeight) {
  // 0->1->2 has weight 0 but 2 hops; 0->2 direct costs 7.
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1, 0).add_edge(1, 2, 0).add_edge(0, 2, 7);
  const Graph g = std::move(b).build();
  EXPECT_EQ(hop_limited_sssp(g, 0, 1).dist[2], 7);
  EXPECT_EQ(hop_limited_sssp(g, 0, 2).dist[2], 0);
}

TEST(HopLimited, FullBudgetMatchesDijkstra) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::erdos_renyi(24, 0.15, {0, 7, 0.3}, 200 + seed,
                                       seed % 2 == 1);
    const auto h = static_cast<std::uint32_t>(g.node_count() - 1);
    for (NodeId s = 0; s < 3; ++s) {
      const auto hl = hop_limited_sssp(g, s, h);
      const auto dj = dijkstra(g, s);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(hl.dist[v], dj.dist[v]);
        if (hl.dist[v] != kInfDist) {
          EXPECT_EQ(hl.hops[v], dj.hops[v]);
        }
      }
    }
  }
}

TEST(HopLimited, MonotoneInHops) {
  const Graph g = graph::erdos_renyi(20, 0.2, {0, 5, 0.3}, 300);
  const NodeId s = 0;
  auto prev = hop_limited_sssp(g, s, 1);
  for (std::uint32_t h = 2; h <= 8; ++h) {
    const auto cur = hop_limited_sssp(g, s, h);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_LE(cur.dist[v], prev.dist[v]);
    }
    prev = cur;
  }
}

TEST(HopLimited, KsspRunsAllSources) {
  const Graph g = graph::cycle(8, {1, 1, 0.0}, 4);
  const auto rs = hop_limited_ksssp(g, {0, 3, 5}, 3);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0].dist[3], 3);
  EXPECT_EQ(rs[1].dist[0], 3);
}

TEST(ZeroReach, FindsZeroPathsOnly) {
  GraphBuilder b(5, /*directed=*/true);
  b.add_edge(0, 1, 0).add_edge(1, 2, 0).add_edge(2, 3, 1).add_edge(3, 4, 0);
  const auto reach = zero_reachability(std::move(b).build());
  EXPECT_TRUE(reach[0][0]);
  EXPECT_TRUE(reach[0][2]);
  EXPECT_FALSE(reach[0][3]);
  EXPECT_TRUE(reach[3][4]);
  EXPECT_FALSE(reach[1][0]);
}

TEST(ZeroReach, MatchesDijkstraZeroDistance) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = graph::erdos_renyi(22, 0.15, {0, 4, 0.4}, 400 + seed,
                                       /*directed=*/true);
    const auto reach = zero_reachability(g);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const auto dj = dijkstra(g, s);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(reach[s][v], dj.dist[v] == 0) << s << "->" << v;
      }
    }
  }
}

}  // namespace
}  // namespace dapsp::seq
