// Command execution for dapsp_cli: builds/loads the graph, runs the chosen
// algorithm in the CONGEST simulator, and renders results as a text table or
// JSON.  Returns a process exit code; all output goes to the given streams.
#pragma once

#include <iosfwd>

#include "cli/options.hpp"

namespace dapsp::cli {

int run_command(const Options& opt, std::ostream& out, std::ostream& err);

/// Builds the input graph from `opt` (file or generator); exposed for tests.
graph::Graph make_input_graph(const Options& opt);

}  // namespace dapsp::cli
