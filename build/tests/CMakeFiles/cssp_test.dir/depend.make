# Empty dependencies file for cssp_test.
# This may be replaced when dependencies are built.
