// Sequential reference for constrained routes: the exact minimum-weight
// path under avoid-node / avoid-edge sets and an optional hop budget.
//
// Semantics (shared with query::Analytics, which must produce bit-identical
// answers -- see docs/QUERY.md): among feasible paths the minimum weight
// wins, then the minimum hop count, then the unique path obtained by
// picking the smallest-id predecessor at every node -- the same
// (d, l, parent) tie-breaking the paper's algorithms and seq::dijkstra use.
// Implemented as hop-layered dynamic programming (exact-j-hop Bellman-Ford
// layers, like seq::hop_limited_sssp) over the filtered graph: obviously
// correct, deliberately independent from the closure-accelerated engine it
// anchors in the differential tests.
#pragma once

#include <optional>

#include "graph/graph.hpp"
#include "query/types.hpp"

namespace dapsp::seq {

/// Exact canonical constrained shortest path from `source` to `target`, or
/// nullopt when no feasible route exists (unreachable, all routes hit an
/// avoided node/edge or exceed max_hops, or source/target are themselves
/// avoided).  Ids must be < g.node_count().
std::optional<query::Route> constrained_route(const graph::Graph& g,
                                              graph::NodeId source,
                                              graph::NodeId target,
                                              const query::RouteConstraints& c);

}  // namespace dapsp::seq
