// Tests for the deterministic multi-instance scheduler and the Section II-C
// scaled h-hop APSP built on it.
#include <gtest/gtest.h>

#include "congest/multiplex.hpp"
#include "core/scaled_apsp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "seq/dijkstra.hpp"
#include "seq/hop_limited.hpp"

namespace dapsp {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;

/// Trivial instance: the instance's designated node floods one token.
class OneShot final : public congest::Protocol {
 public:
  OneShot(NodeId self, NodeId origin) : self_(self), origin_(origin) {}
  void init(congest::Context& ctx) override {
    if (self_ == origin_) {
      ctx.broadcast(congest::Message(7, {static_cast<std::int64_t>(origin_)}));
    }
  }
  void receive_phase(congest::Context& ctx) override {
    for (const auto& env : ctx.inbox()) {
      if (env.msg.tag == 7) heard_ = true;
      EXPECT_EQ(env.msg.f[0], static_cast<std::int64_t>(origin_))
          << "cross-instance message leak";
    }
  }
  bool heard() const { return heard_; }

 private:
  NodeId self_;
  NodeId origin_;
  bool heard_ = false;
};

TEST(Multiplex, InstancesAreIsolated) {
  const Graph g = graph::star(6, {1, 1, 0.0}, 8000);
  std::vector<std::vector<bool>> heard(6, std::vector<bool>(6, false));
  const auto res = congest::run_multiplexed(
      g, 6,
      [](std::size_t instance, NodeId node) {
        return std::make_unique<OneShot>(node, static_cast<NodeId>(instance));
      },
      100,
      [&](NodeId v, congest::MultiplexProtocol& mux) {
        for (std::size_t i = 0; i < 6; ++i) {
          heard[v][i] =
              static_cast<const OneShot&>(mux.instance(i)).heard();
        }
      });
  EXPECT_FALSE(res.stats.hit_round_limit);
  // Every non-origin neighbor hears exactly its instance's token; the star
  // center hears all leaf instances.
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_TRUE(heard[0][i]);
  }
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    EXPECT_TRUE(heard[leaf][0]);  // center's token reaches each leaf
  }
}

TEST(Multiplex, BudgetOneWrappedMessagePerLinkPerRound) {
  // Many simultaneous instances on a path: FIFO draining must keep physical
  // congestion at 1 and queue depth > 1 must appear.
  const Graph g = graph::path(4, {1, 1, 0.0}, 8001);
  const auto res = congest::run_multiplexed(
      g, 8,
      [](std::size_t instance, NodeId node) {
        return std::make_unique<OneShot>(
            node, static_cast<NodeId>(instance % 4));
      },
      200);
  EXPECT_EQ(res.stats.max_link_congestion, 1u);
  EXPECT_GT(res.max_queue_depth, 1u);
}

TEST(ScaledApsp, MatchesOracleInScope) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(14, 0.25, {0, 4, 0.3}, 8100 + seed,
                                       seed % 2 == 0);
    const std::uint32_t h = 3;
    core::ScaledApspParams p;
    p.h = h;
    p.delta = graph::max_finite_hop_distance(g, h);
    const auto res = core::scaled_hhop_apsp(g, p);
    EXPECT_FALSE(res.stats.hit_round_limit);
    // The II-C form is a shape comparison; the run gets 2x engine slack and
    // typically stays within ~2x of the clean bound.
    EXPECT_LE(res.stats.rounds, 2 * res.theoretical_bound + 8);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const auto dj = seq::dijkstra(g, s);
      const auto hop = seq::hop_limited_sssp(g, s, h);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (dj.dist[v] != kInfDist && dj.hops[v] <= h) {
          EXPECT_EQ(res.dist[s][v], dj.dist[v])
              << "seed " << seed << " " << s << "->" << v;
        } else {
          EXPECT_TRUE(res.dist[s][v] == kInfDist ||
                      res.dist[s][v] >= hop.dist[v]);
        }
      }
    }
  }
}

TEST(ScaledApsp, FullHopBudgetIsExactApsp) {
  const Graph g = graph::erdos_renyi(12, 0.3, {0, 5, 0.3}, 8200);
  core::ScaledApspParams p;
  p.h = g.node_count() - 1;
  p.delta = graph::max_finite_distance(g);
  const auto res = core::scaled_hhop_apsp(g, p);
  const auto exact = seq::apsp(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(res.dist[s][v], exact[s][v]);
    }
  }
}

TEST(ScaledApsp, RejectsZeroH) {
  const Graph g = graph::path(4, {1, 1, 0.0}, 8300);
  core::ScaledApspParams p;
  EXPECT_THROW(core::scaled_hhop_apsp(g, p), std::logic_error);
}

}  // namespace
}  // namespace dapsp
