// All-sources h-hop APSP by running one single-source short-range
// (Algorithm 2) instance per node through the deterministic multiplexer
// (Section II-C's construction, with FIFO scheduling standing in for the
// randomized framework [10] the paper cites).
//
// Round cost is dilation + queueing delay: O(Delta*sqrt(h) + n*sqrt(h)).
// Algorithm 1 exists precisely to beat this one-instance-per-source shape
// with a single pipelined execution; the E10 bench puts the two head to
// head.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "core/key.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

struct ScaledApspParams {
  std::uint32_t h = 0;  ///< hop budget per source
  Weight delta = 0;     ///< distance bound (for the budget formula)
  /// Per-instance key schedule; default sqrt(h) as in Algorithm 2.
  GammaSq gamma{0, 0};
};

struct ScaledApspResult {
  std::vector<std::vector<Weight>> dist;  ///< dist[s][v]
  std::vector<std::vector<std::uint32_t>> hops;
  congest::RunStats stats;
  /// Largest per-link FIFO backlog observed (the scheduling congestion).
  std::size_t max_queue_depth = 0;
  /// Dilation + n * per-instance-congestion budget (the II-C shape).
  std::uint64_t theoretical_bound = 0;
};

ScaledApspResult scaled_hhop_apsp(const graph::Graph& g,
                                  ScaledApspParams params);

}  // namespace dapsp::core
