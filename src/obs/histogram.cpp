#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace dapsp::obs {

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // rank: smallest r >= 1 such that r/count >= q.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The bucket's upper bound, clamped by the exact extrema.
      return std::clamp(bucket_upper(i), min(), max());
    }
  }
  return max();
}

Histogram& Histogram::operator+=(const Histogram& o) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  count_ += o.count_;
  sum_ += o.sum_;
  max_ = std::max(max_, o.max_);
  min_seen_ = std::min(min_seen_, o.min_seen_);
  return *this;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << static_cast<std::uint64_t>(mean())
     << " p50=" << p50() << " p90=" << p90() << " p99=" << p99()
     << " max=" << max();
  return os.str();
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object()
      .field("count", count_)
      .field("sum", sum_)
      .field("min", min())
      .field("max", max())
      .field("mean", mean())
      .field("p50", p50())
      .field("p90", p90())
      .field("p99", p99())
      .end_object();
}

}  // namespace dapsp::obs
