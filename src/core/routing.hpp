// Next-hop routing tables from APSP results, plus a forwarding simulator.
//
// The CONGEST APSP output leaves every node v with dist(s, v) for each
// source s and the last edge of a shortest path.  On an undirected network
// that is enough to build classic hop-by-hop routing: to forward a packet
// toward destination t, a node u picks the neighbor w minimizing
// w(u,w) + dist(t, w) (valid because dist(t, w) = dist(w, t) undirected).
// The builder performs that selection from the node-local data the
// algorithms already produce; `route` then walks a packet through the
// tables so tests and examples can verify end-to-end delivery at the exact
// shortest-path cost.
#pragma once

#include <optional>
#include <vector>

#include "core/pipelined_ssp.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

class RoutingTables {
 public:
  /// next_hop(u, t): neighbor u forwards to for destination t, or kNoNode
  /// when t == u or t is unreachable.
  graph::NodeId next_hop(graph::NodeId u, graph::NodeId t) const {
    return next_[u][t];
  }

  /// dist(u, t) as known at u (kInfDist when unreachable).
  graph::Weight distance(graph::NodeId u, graph::NodeId t) const {
    return dist_[t][u];
  }

  graph::NodeId node_count() const {
    return static_cast<graph::NodeId>(next_.size());
  }

 private:
  friend RoutingTables build_routing_tables(const graph::Graph& g,
                                            const KsspResult& apsp);
  std::vector<std::vector<graph::NodeId>> next_;  // [u][t]
  std::vector<std::vector<graph::Weight>> dist_;  // [t][u] (APSP layout)
};

/// Builds routing tables from a full APSP result on an *undirected* graph
/// (throws on directed graphs: dist(t, w) would not equal dist(w, t)).
/// Ties prefer fewer remaining hops, then the smaller neighbor id, so routes
/// terminate even across zero-weight plateaus.
RoutingTables build_routing_tables(const graph::Graph& g,
                                   const KsspResult& apsp);

struct RouteResult {
  std::vector<graph::NodeId> path;  ///< s ... t
  graph::Weight cost = 0;
};

/// Forwards a packet from s to t one hop at a time; nullopt when t is
/// unreachable or the tables are inconsistent (loop guard).
std::optional<RouteResult> route(const graph::Graph& g,
                                 const RoutingTables& tables,
                                 graph::NodeId s, graph::NodeId t);

}  // namespace dapsp::core
