// Thin entry point for the dapsp command-line tool; all logic lives in
// src/cli/ so it is unit-testable.  Covers graph generation, the paper's
// APSP/k-SSP algorithms, and the distance-oracle service (`serve` reads
// query lines from stdin, `query` runs a one-shot batch).
#include <iostream>
#include <vector>

#include "cli/commands.hpp"
#include "cli/options.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const dapsp::cli::Options opt = dapsp::cli::parse_options(args);
    return dapsp::cli::run_command(opt, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
