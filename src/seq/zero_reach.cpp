#include "seq/zero_reach.hpp"

#include <vector>

namespace dapsp::seq {

using graph::Graph;
using graph::NodeId;

std::vector<std::vector<bool>> zero_reachability(const Graph& g) {
  const NodeId n = g.node_count();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (NodeId s = 0; s < n; ++s) {
    // DFS over zero-weight arcs only.
    std::vector<NodeId> stack{s};
    reach[s][s] = true;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const auto& e : g.out_edges(u)) {
        if (e.weight == 0 && !reach[s][e.to]) {
          reach[s][e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
  }
  return reach;
}

}  // namespace dapsp::seq
