#include "core/pipelined_ssp.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "core/bounds.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using congest::Context;
using congest::Engine;
using congest::EngineOptions;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using congest::Round;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

namespace {

constexpr std::uint32_t kTagEntry = 10;  // {x, d, l, nu, flag}

/// Run-wide read-only configuration shared by all node protocols.
struct SharedConfig {
  const Graph* g = nullptr;
  std::uint32_t h = 0;
  Weight delta = 0;
  GammaSq gamma;
  KappaKernel kernel;  // batched/fast-path kappa arithmetic for this gamma
  ListPolicy policy = ListPolicy::kDominance;
  std::vector<NodeId> sources;
  std::vector<std::int32_t> source_index;  // node -> index in sources, or -1
};

/// One list entry Z (Table II of the paper).
struct Entry {
  Key key;                  // (d, l)
  NodeId source = 0;        // x
  NodeId parent = kNoNode;  // sender that delivered the underlying path
  bool sp = false;          // flag-d*
  std::uint64_t ck = 0;     // cached ceil(kappa); send round = ck + pos
  /// Schedule value (ck + pos) at the last firing; 0 = never fired.  An
  /// entry is due when its current schedule is <= the round and differs
  /// from this value: list churn can move an entry to a position whose
  /// schedule already passed, and the literal "fire on equality" rule would
  /// silently drop it (observed on directed zero-weight graphs).
  std::uint64_t fired_sched = 0;
};

class PipelinedProtocol final : public Protocol {
 public:
  PipelinedProtocol(const SharedConfig& cfg, NodeId self)
      : cfg_(cfg), self_(self) {
    const auto k = cfg.sources.size();
    best_d_.assign(k, kInfDist);
    best_l_.assign(k, 0);
    best_p_.assign(k, kNoNode);
    sends_per_source_.assign(k, 0);
    // Incoming arc weights keyed by sender (directed graphs: a neighbor may
    // be connected only by an outgoing arc, in which case its messages do
    // not extend any path into this node).
    for (const auto& e : cfg.g->in_edges(self)) {
      in_weight_.emplace_back(e.from, e.weight);
    }
    // in_edges is sorted by (from); keep the min-weight arc per sender.
    in_weight_.erase(
        std::unique(in_weight_.begin(), in_weight_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        in_weight_.end());
  }

  void init(Context& /*ctx*/) override {
    const std::int32_t idx = cfg_.source_index[self_];
    if (idx >= 0) {
      const auto si = static_cast<std::size_t>(idx);
      best_d_[si] = 0;
      best_l_[si] = 0;
      best_p_[si] = kNoNode;
      Entry z;
      z.key = Key{0, 0};
      z.source = self_;
      z.sp = true;
      z.ck = cfg_.kernel.ceil_kappa(z.key);
      list_.push_back(z);
    }
  }

  bool quiescent() const override {
    if (list_.empty()) return true;
    // Future work pending?  The last entry holds the max schedule.
    if (list_.back().ck + list_.size() > last_round_seen_) return false;
    // Past-due but unfired entries still owe a send.
    for (std::size_t i = scan_floor_; i < list_.size(); ++i) {
      if (list_[i].fired_sched != list_[i].ck + i + 1) return false;
    }
    return true;
  }

  /// Sparse-engine hint: the schedule of the first entry send_phase would
  /// fire (schedules ck_i + (i+1) increase strictly along the list, so the
  /// first unsettled entry at or past scan_floor_ is the next to act; if its
  /// schedule already passed -- list churn moved it -- it fires next round).
  Round next_send_round(Round now) const override {
    for (std::size_t i = scan_floor_; i < list_.size(); ++i) {
      const std::uint64_t sched = list_[i].ck + i + 1;
      if (list_[i].fired_sched != sched) {
        return sched <= now ? now + 1 : static_cast<Round>(sched);
      }
    }
    return kNeverSends;
  }

  // --- results ---
  const std::vector<Weight>& best_d() const { return best_d_; }
  const std::vector<std::uint32_t>& best_l() const { return best_l_; }
  const std::vector<NodeId>& best_p() const { return best_p_; }
  Round settle_round() const { return settle_round_; }
  std::uint64_t max_entries_per_source() const { return max_per_source_; }
  std::uint64_t max_list_size() const { return max_list_; }
  std::uint64_t late_fires() const { return late_fires_; }
  std::uint64_t sends() const { return sends_; }
  /// Max messages this node emitted for any single source (the per-source
  /// congestion Algorithm 1 keeps low: at most the per-source list
  /// occupancy plus schedule-shift refires).
  std::uint64_t max_sends_one_source() const {
    std::uint64_t m = 0;
    for (const auto c : sends_per_source_) m = std::max(m, c);
    return m;
  }

  void send_phase(Context& ctx) override {
    last_round_seen_ = ctx.round();
    const Round r = ctx.round();
    // Schedules ck_i + (i+1) increase strictly along the list, so entries
    // with schedule <= r form a prefix.  Fire the first due entry (schedule
    // reached and not already fired at this exact schedule); scan_floor_
    // skips the settled part of the prefix and resets on list mutation.
    std::size_t i = scan_floor_;
    while (i < list_.size()) {
      const std::uint64_t sched = list_[i].ck + i + 1;
      if (sched > r) break;
      if (list_[i].fired_sched != sched) {
        if (sched < r) ++late_fires_;
        fire(ctx, i, sched);
        return;
      }
      scan_floor_ = ++i;
    }
  }

  void fire(Context& ctx, std::size_t idx, std::uint64_t sched) {
    Entry& z = list_[idx];
    z.fired_sched = sched;
    const std::int32_t si = cfg_.source_index[z.source];
    if (si >= 0) ++sends_per_source_[static_cast<std::size_t>(si)];
    // Z.nu: entries for Z's source at or below Z.
    std::int64_t nu = 0;
    for (std::size_t i = 0; i <= idx; ++i) {
      if (list_[i].source == z.source) ++nu;
    }
    ctx.broadcast(Message(kTagEntry, {static_cast<std::int64_t>(z.source),
                                      z.key.d, z.key.l, nu,
                                      z.sp ? 1 : 0}));
    ++sends_;
  }

  void receive_phase(Context& ctx) override {
    // Parse-then-batch: the admission filters (tag, arc, source, hop
    // budget) and the ceil(kappa) of each surviving candidate depend only
    // on message content, so they run first and the kappa ceilings go
    // through the kernel's span routine in one pass.  List examination
    // stays in arrival order below, exactly as before.
    pending_.clear();
    pkeys_.clear();
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagEntry) continue;
      const auto w = arc_weight_from(env.from);
      if (!w) continue;  // no directed arc sender -> self
      const auto x = static_cast<NodeId>(env.msg.f[0]);
      const std::int32_t sidx = cfg_.source_index[x];
      if (sidx < 0) continue;
      const Weight d = env.msg.f[1] + *w;
      const auto l = static_cast<std::uint32_t>(env.msg.f[2]) + 1;
      if (l > cfg_.h) continue;  // hop budget exhausted
      pending_.push_back(Pending{
          env.from, x, sidx, static_cast<std::uint64_t>(env.msg.f[3])});
      pkeys_.push_back(Key{d, l});
    }
    pck_.resize(pkeys_.size());
    cfg_.kernel.ceil_kappa_span(pkeys_, pck_);

    for (std::size_t pi = 0; pi < pending_.size(); ++pi) {
      const Pending& pd = pending_[pi];
      const NodeId x = pd.source;
      const Weight d = pkeys_[pi].d;
      const std::uint32_t l = pkeys_[pi].l;
      const std::uint64_t nu = pd.nu;

      Entry z;
      z.key = pkeys_[pi];
      z.source = x;
      z.parent = pd.from;
      z.ck = pck_[pi];

      const auto si = static_cast<std::size_t>(pd.sidx);
      if (d == best_d_[si] && l == best_l_[si] && pd.from < best_p_[si]) {
        // Step 9's parent tie-break: same (d, l), smaller sender id.  The
        // key is identical to the current SP entry's, so update the parent
        // in place instead of inserting a twin.
        best_p_[si] = pd.from;
        settle_round_ = ctx.round();
        for (Entry& e : list_) {
          if (e.source == x && e.sp) e.parent = pd.from;
        }
        continue;
      }
      // An entry dominated by existing information (some entry with both
      // distance and hops no worse) can never improve any downstream h-hop
      // distance; dropping it is always delivery-safe and keeps duplicate
      // churn from evicting hop-efficient entries.
      if (cfg_.policy == ListPolicy::kDominance && dominated(z)) continue;
      const bool better =
          d < best_d_[si] || (d == best_d_[si] && l < best_l_[si]);
      if (better) {
        best_d_[si] = d;
        best_l_[si] = l;
        best_p_[si] = pd.from;
        settle_round_ = ctx.round();
        z.sp = true;
        const std::size_t at = insert_entry(z);
        for (std::size_t i = 0; i < list_.size(); ++i) {
          if (i != at && list_[i].source == x && list_[i].sp) {
            list_[i].sp = false;
          }
        }
      } else {
        // Step 13: insert the non-SP entry only if fewer than nu entries for
        // x have key <= Z's key (Observation II.4's accounting; the counts
        // are load-bearing for Lemma II.6's position argument).  The literal
        // policy compares with strict <, as printed in the paper.
        std::uint64_t gate_count = 0;
        for (const Entry& e : list_) {
          if (e.source != x) continue;
          const int c = cfg_.kernel.compare(e.key, z.key);
          if (c < 0 || (c == 0 && cfg_.policy == ListPolicy::kDominance)) {
            ++gate_count;
          }
        }
        if (gate_count < nu) insert_entry(z);
      }
    }
  }

 private:
  std::optional<Weight> arc_weight_from(NodeId y) const {
    const auto it = std::lower_bound(
        in_weight_.begin(), in_weight_.end(), y,
        [](const auto& p, NodeId v) { return p.first < v; });
    if (it == in_weight_.end() || it->first != y) return std::nullopt;
    return it->second;
  }

  /// True if some listed entry for z.source matches or beats z in both
  /// distance and hops.
  bool dominated(const Entry& z) const {
    return std::any_of(list_.begin(), list_.end(), [&](const Entry& e) {
      return e.source == z.source && e.key.d <= z.key.d && e.key.l <= z.key.l;
    });
  }

  /// INSERT procedure; returns the index Z landed at (stable under the
  /// removal step, which only erases above it).
  ///
  /// Deviation from the conference listing (documented in DESIGN.md): the
  /// removal step drops entries for x that Z *dominates* (distance and hops
  /// both no better) rather than unconditionally the closest non-SP entry
  /// above Z.  Unconditional removal can evict a dethroned SP entry whose
  /// fewer-hops path is the only way some h-hop shortest distance reaches a
  /// later node; dominance-based removal is delivery-safe by construction
  /// and the Lemma II.14 round bound is asserted by tests/benches instead.
  std::size_t insert_entry(const Entry& z) {
    // Position by (kappa, d, x); equal keys keep insertion order stable.
    auto it = std::lower_bound(
        list_.begin(), list_.end(), z, [&](const Entry& a, const Entry& b) {
          return list_order(a.key, a.source, b.key, b.source, cfg_.kernel) < 0;
        });
    it = list_.insert(it, z);
    const auto pos = static_cast<std::size_t>(it - list_.begin());
    scan_floor_ = std::min(scan_floor_, pos);

    if (cfg_.policy == ListPolicy::kDominance) {
      // Remove every non-SP entry for x that Z dominates (all sit at or
      // above Z's key, so positions below Z are untouched).
      for (std::size_t i = list_.size(); i-- > pos + 1;) {
        if (list_[i].source == z.source && z.key.d <= list_[i].key.d &&
            z.key.l <= list_[i].key.l && !list_[i].sp) {
          list_.erase(list_.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    } else {
      // Literal INSERT steps 2-4: drop the closest non-SP entry for x above
      // Z, whatever it holds.
      for (std::size_t i = pos + 1; i < list_.size(); ++i) {
        if (list_[i].source == z.source && !list_[i].sp) {
          list_.erase(list_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }

    max_list_ = std::max(max_list_, static_cast<std::uint64_t>(list_.size()));
    std::uint64_t cnt = 0;
    for (const Entry& e : list_) {
      if (e.source == z.source) ++cnt;
    }
    max_per_source_ = std::max(max_per_source_, cnt);
    return pos;
  }

  /// One inbox envelope that survived the cheap filters, staged so the
  /// kappa ceilings of a whole round's arrivals are computed in one
  /// batched kernel pass before list maintenance touches any of them.
  struct Pending {
    NodeId from;
    NodeId source;
    std::int32_t sidx;
    std::uint64_t nu;
  };

  const SharedConfig& cfg_;
  NodeId self_;
  std::vector<Entry> list_;
  std::vector<Pending> pending_;        // per-round scratch, grow-only
  std::vector<Key> pkeys_;              // keys of pending_ (same order)
  std::vector<std::uint64_t> pck_;      // batched ceil_kappa of pkeys_
  std::vector<std::pair<NodeId, Weight>> in_weight_;  // sorted by sender
  std::vector<Weight> best_d_;
  std::vector<std::uint32_t> best_l_;
  std::vector<NodeId> best_p_;
  Round settle_round_ = 0;
  Round last_round_seen_ = 0;
  std::size_t scan_floor_ = 0;
  std::uint64_t max_per_source_ = 0;
  std::uint64_t max_list_ = 0;
  std::uint64_t late_fires_ = 0;
  std::uint64_t sends_ = 0;
  std::vector<std::uint64_t> sends_per_source_;
};

}  // namespace

void PipelinedParams::finalize(const Graph& g) {
  util::check(!sources.empty(), "PipelinedParams: need at least one source");
  util::check(h >= 1, "PipelinedParams: need h >= 1");
  util::check(delta >= 0, "PipelinedParams: delta must be non-negative");
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  util::check(sources.back() < g.node_count(),
              "PipelinedParams: source id out of range");
  if (gamma.num == 0 && gamma.den == 0) {
    gamma = GammaSq::paper(sources.size(), h,
                           static_cast<std::uint64_t>(delta));
  }
}

KsspResult pipelined_kssp(const Graph& g, PipelinedParams params) {
  params.finalize(g);
  const NodeId n = g.node_count();
  const std::uint64_t k = params.sources.size();

  SharedConfig cfg;
  cfg.g = &g;
  cfg.h = params.h;
  cfg.delta = params.delta;
  cfg.gamma = params.gamma;
  cfg.kernel = KappaKernel(cfg.gamma);
  cfg.policy = params.policy;
  cfg.sources = params.sources;
  cfg.source_index.assign(n, -1);
  for (std::size_t i = 0; i < cfg.sources.size(); ++i) {
    cfg.source_index[cfg.sources[i]] = static_cast<std::int32_t>(i);
  }

  const std::uint64_t bound = bounds::hk_ssp_custom_gamma(
      params.h, k, static_cast<std::uint64_t>(params.delta), params.gamma);

  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<PipelinedProtocol>(cfg, v));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(
      static_cast<double>(bound) * std::max(1.0, params.round_budget_factor));
  opt.scramble_inbox = params.scramble_inbox;
  opt.record_per_round = params.record_per_round;
  Engine engine(g, std::move(procs), opt);

  KsspResult res;
  res.stats = engine.run();
  res.sources = cfg.sources;
  res.theoretical_bound = bound;
  res.dist.assign(k, std::vector<Weight>(n, kInfDist));
  res.hops.assign(k, std::vector<std::uint32_t>(n, 0));
  res.parent.assign(k, std::vector<NodeId>(n, kNoNode));
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const PipelinedProtocol&>(engine.protocol(v));
    for (std::size_t i = 0; i < k; ++i) {
      res.dist[i][v] = p.best_d()[i];
      res.hops[i][v] = p.best_l()[i];
      res.parent[i][v] = p.best_p()[i];
    }
    res.max_entries_per_source =
        std::max(res.max_entries_per_source, p.max_entries_per_source());
    res.max_list_size = std::max(res.max_list_size, p.max_list_size());
    res.settle_round = std::max(res.settle_round, p.settle_round());
    res.late_fires += p.late_fires();
    res.total_sends += p.sends();
    res.max_sends_per_source =
        std::max(res.max_sends_per_source, p.max_sends_one_source());
  }
  return res;
}

KsspResult pipelined_apsp(const Graph& g, Weight delta) {
  PipelinedParams params;
  params.sources.resize(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) params.sources[v] = v;
  params.h = g.node_count() > 1 ? g.node_count() - 1 : 1;
  params.delta = delta;
  return pipelined_kssp(g, std::move(params));
}

KsspResult pipelined_kssp_full(const Graph& g, std::vector<NodeId> sources,
                               Weight delta) {
  PipelinedParams params;
  params.sources = std::move(sources);
  params.h = g.node_count() > 1 ? g.node_count() - 1 : 1;
  params.delta = delta;
  return pipelined_kssp(g, std::move(params));
}

}  // namespace dapsp::core
