// Exact integer arithmetic helpers used by the pipelined-key comparisons.
//
// The pipelined (h,k)-SSP algorithm keys a path by kappa = d * gamma + l with
// gamma = sqrt(k*h/Delta), which is irrational in general.  All comparisons
// and ceilings on kappa are carried out exactly over 128-bit integers so that
// the simulation is deterministic across platforms and optimization levels.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace dapsp::util {

__extension__ typedef unsigned __int128 u128;
__extension__ typedef __int128 i128;

/// Throwing precondition check (used instead of assert so release builds keep
/// validating simulator invariants; the checks are off hot paths).
inline void check(bool cond, const char* msg) {
  if (!cond) throw std::logic_error(msg);
}

/// Integer square root: largest r with r*r <= x.
constexpr std::uint64_t isqrt_u128(u128 x) noexcept {
  if (x == 0) return 0;
  // Newton iteration seeded from a power-of-two estimate.
  int bits = 0;
  for (u128 t = x; t > 0; t >>= 1) ++bits;
  u128 r = u128{1} << ((bits + 1) / 2);
  while (true) {
    const u128 next = (r + x / r) / 2;
    if (next >= r) break;
    r = next;
  }
  return static_cast<std::uint64_t>(r);
}

/// Smallest r with r*r >= x (ceiling square root).
constexpr std::uint64_t isqrt_ceil_u128(u128 x) noexcept {
  const std::uint64_t r = isqrt_u128(x);
  return (u128{r} * r == x) ? r : r + 1;
}

constexpr std::uint64_t isqrt(std::uint64_t x) noexcept { return isqrt_u128(x); }
constexpr std::uint64_t isqrt_ceil(std::uint64_t x) noexcept {
  return isqrt_ceil_u128(x);
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// ceil(d * sqrt(num/den)) computed exactly: smallest m with
/// m*m*den >= d*d*num.  Requires den > 0 and d*d*num to fit in 128 bits
/// (d <= 2^32 and num <= 2^63 suffice, which the simulator enforces).
constexpr std::uint64_t ceil_mul_sqrt(std::uint64_t d, std::uint64_t num,
                                      std::uint64_t den) noexcept {
  if (d == 0 || num == 0) return 0;
  // m = ceil(sqrt(d*d*num/den)): smallest m with m*m*den >= d*d*num.
  const u128 prod = u128{d} * d * num;
  const u128 q = prod / den;
  std::uint64_t m = isqrt_u128(q);
  // Adjust: want the smallest m with m*m*den >= prod.
  while (u128{m} * m * den < prod) ++m;
  while (m > 0 && u128{m - 1} * (m - 1) * den >= prod) --m;
  return m;
}

/// Compare a*sqrt(num/den) against b exactly (a may be negative, b may be
/// negative).  Returns -1, 0, +1 for <, ==, >.  num/den is the square of the
/// scaling factor gamma.
constexpr int cmp_mul_sqrt(std::int64_t a, std::uint64_t num, std::uint64_t den,
                           std::int64_t b) noexcept {
  // Handle sign cases first: a*g vs b with g = sqrt(num/den) >= 0.
  if (num == 0) {  // g == 0
    return (0 < b) ? -1 : (0 > b ? 1 : 0);
  }
  const bool lneg = a < 0;
  const bool rneg = b < 0;
  if (lneg != rneg) return lneg ? -1 : 1;
  // Same sign: compare squares, flipping for the negative branch.
  const u128 aa = [&] {
    const u128 mag = lneg ? u128(-(a + 1)) + 1 : u128(a);
    return mag * mag * num;
  }();
  const u128 bb = [&] {
    const u128 mag = rneg ? u128(-(b + 1)) + 1 : u128(b);
    return mag * mag * den;
  }();
  const int raw = (aa < bb) ? -1 : (aa > bb ? 1 : 0);
  return lneg ? -raw : raw;
}

/// to_string for 128-bit values (iostreams lack support).
inline std::string to_string_u128(u128 x) {
  if (x == 0) return "0";
  std::string s;
  while (x > 0) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(x % 10)));
    x /= 10;
  }
  return s;
}

}  // namespace dapsp::util
