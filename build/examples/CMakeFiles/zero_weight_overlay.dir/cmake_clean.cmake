file(REMOVE_RECURSE
  "CMakeFiles/zero_weight_overlay.dir/zero_weight_overlay.cpp.o"
  "CMakeFiles/zero_weight_overlay.dir/zero_weight_overlay.cpp.o.d"
  "zero_weight_overlay"
  "zero_weight_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_weight_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
