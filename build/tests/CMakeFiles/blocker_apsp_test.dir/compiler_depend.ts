# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for blocker_apsp_test.
