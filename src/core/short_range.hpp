// Algorithm 2: the simplified short-range algorithm of Section II-C and its
// short-range-extension variant.
//
// Single-source streamlining of Algorithm 1: each node keeps only its
// current best (d*, l*) pair for the source and sends it in round
// ceil(d* * gamma + l*).  With the paper's gamma = sqrt(h) each node sends
// at most sqrt(h)+1 messages over the whole execution (the congestion of
// Lemma II.15) and every h-hop shortest distance arrives within
// ceil(Delta*gamma) + h rounds (the dilation).
//
// The extension variant seeds non-source nodes with already-known distances
// (e.g. from a previous phase) and extends them by up to h further hops.
// A multi-source variant applies the same schedule with the Algorithm-1
// gamma = sqrt(h*k/Delta), as sketched at the end of Section II-C.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "core/key.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

struct ShortRangeParams {
  std::vector<NodeId> sources;  ///< k >= 1 sources
  std::uint32_t h = 0;          ///< extension hop budget
  Weight delta = 0;             ///< bound on resulting distances
  /// Key schedule; default at finalize(): paper's sqrt(h) when k == 1,
  /// sqrt(h*k/Delta) otherwise.
  GammaSq gamma{0, 0};
  /// Optional extension seeds: initial[i][v] is the already-known distance
  /// from sources[i] at node v (kInfDist = unknown).  Empty means the plain
  /// short-range initialization (0 at the source only).
  std::vector<std::vector<Weight>> initial;
  double round_budget_factor = 1.0;

  void finalize(const graph::Graph& g);
};

struct ShortRangeResult {
  std::vector<NodeId> sources;
  std::vector<std::vector<Weight>> dist;
  std::vector<std::vector<std::uint32_t>> hops;  ///< extension hops used
  std::vector<std::vector<NodeId>> parent;
  congest::RunStats stats;
  congest::Round settle_round = 0;
  std::uint64_t dilation_bound = 0;    ///< ceil(Delta*gamma) + h
  std::uint64_t congestion_bound = 0;  ///< per-source ceil(h/gamma) + 1
  std::uint64_t max_sends_per_node = 0;
  /// Sends that fired later than their scheduled round (should be 0; the
  /// Lemma II.12-style invariant is validated by tests through this count).
  std::uint64_t late_sends = 0;
};

ShortRangeResult short_range(const graph::Graph& g, ShortRangeParams params);

}  // namespace dapsp::core
