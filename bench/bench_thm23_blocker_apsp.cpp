// E5 -- Theorems I.2/I.3 and Corollary I.4: Algorithm 3 vs Algorithm 1 vs
// the [3]-style n^{3/2} bound as the weight bound W (resp. Delta) varies.
//
// Shape expectation (Cor. I.4): for small W the blocker-based Algorithm 3's
// bound W^{1/4} n^{5/4} log^{1/2} n undercuts both the pipelined
// 2n*sqrt(Delta)+2n curve and the n^{3/2} row; as W grows, h shrinks and the
// advantage erodes -- the crossover is the quantity of interest, not the
// absolute constants.
#include <cmath>

#include "core/blocker_apsp.hpp"
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E5: Theorems I.2/I.3 + Corollary I.4 (Algorithm 3)",
                "W sweep at fixed n: measured rounds for Alg 3 vs Alg 1, "
                "with the paper's bound columns and the [3] comparison row.");

  const graph::NodeId n = 56;
  {
    bench::Table table({"W", "Delta", "h (Thm I.2)", "q", "Alg3 rounds",
                        "Alg3 bound", "Alg1 rounds", "Alg1 bound",
                        "W^.25 n^1.25 sqrt(log n)", "[3] n^1.5"});
    for (const graph::Weight w : {1, 4, 16, 64, 256}) {
      graph::WeightSpec spec;
      spec.min_weight = 0;
      spec.max_weight = w;
      spec.zero_fraction = 0.15;
      const graph::Graph g = graph::erdos_renyi(n, 3.2 / n, spec, 4242);
      const graph::Weight delta = graph::max_finite_distance(g);

      core::BlockerApspParams bp;  // auto h
      const auto alg3 = core::blocker_apsp(g, bp);
      const auto alg1 = core::pipelined_apsp(g, delta);

      const double thm12 =
          std::pow(static_cast<double>(std::max<graph::Weight>(w, 1)), 0.25) *
          std::pow(static_cast<double>(n), 1.25) *
          std::sqrt(static_cast<double>(core::bounds::ceil_log2(n)));
      table.row({fmt(std::int64_t{w}),
                 fmt(static_cast<std::uint64_t>(delta)),
                 fmt(std::uint64_t{alg3.h}),
                 fmt(static_cast<std::uint64_t>(alg3.blockers.size())),
                 fmt(alg3.stats.rounds), fmt(alg3.theoretical_bound),
                 fmt(alg1.settle_round),
                 fmt(core::bounds::apsp_pipelined(
                     n, static_cast<std::uint64_t>(delta))),
                 fmt(static_cast<std::uint64_t>(thm12)),
                 fmt(core::bounds::agarwal_n32(n))});
    }
    table.print();
  }

  {
    std::cout << "\n-- Delta sweep (Theorem I.3 h choice) --\n";
    bench::Table table({"target Delta", "Delta", "h (Thm I.3)", "q",
                        "Alg3 rounds", "Alg1 rounds", "n(Delta log^2 n)^{1/3}"});
    for (const graph::Weight target : {8, 64, 512}) {
      const graph::Graph g =
          graph::bounded_distance_graph(n, 0.12, target, 909);
      const graph::Weight delta = graph::max_finite_distance(g);
      core::BlockerApspParams bp;
      bp.delta_for_h = std::max<graph::Weight>(delta, 1);  // Thm I.3 balance
      const auto alg3 = core::blocker_apsp(g, bp);
      const auto alg1 = core::pipelined_apsp(g, delta);
      const double thm13 =
          static_cast<double>(n) *
          std::cbrt(static_cast<double>(std::max<graph::Weight>(delta, 1)) *
                    static_cast<double>(core::bounds::ceil_log2(n)) *
                    static_cast<double>(core::bounds::ceil_log2(n)));
      table.row({fmt(std::int64_t{target}),
                 fmt(static_cast<std::uint64_t>(delta)),
                 fmt(std::uint64_t{alg3.h}),
                 fmt(static_cast<std::uint64_t>(alg3.blockers.size())),
                 fmt(alg3.stats.rounds), fmt(alg1.settle_round),
                 fmt(static_cast<std::uint64_t>(thm13))});
    }
    table.print();
  }
  std::cout << "\nCrossover reading: compare the Alg3 and Alg1 measured "
               "columns down the W sweep -- Alg 3 wins while W stays "
               "moderate, exactly the Corollary I.4 regime.\n";
  return 0;
}
