#include "obs/critpath.hpp"

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dapsp::obs {

namespace {

std::uint64_t to_ns(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

/// Chain steps emitted per run in the JSON block; the full length is always
/// reported in `chain_len`, so a capped emission is visible, never silent.
constexpr std::size_t kMaxJsonChainSteps = 512;

/// Per-node DP state, keyed by round numbers -- never by buffer index, so
/// an edge into overwritten history fails to match instead of dangling.
struct NodeState {
  bool has_last = false;    ///< a previous activation's full depth is known
  std::uint64_t last_round = 0;
  std::uint64_t last_depth = 0;
  std::ptrdiff_t last_idx = -1;
  bool has_send = false;    ///< the node's most recent send depth is known
  std::uint64_t send_round = 0;
  std::uint64_t send_depth = 0;
  std::ptrdiff_t send_idx = -1;
};

/// Per-item DP scratch, parallel to one run's item slice.
struct ItemDp {
  std::uint64_t depth = 0;
  std::ptrdiff_t pred = -1;
  bool via_wake = false;
  bool unresolved = false;  ///< a predecessor edge existed but failed to match
};

/// Executed rounds of one run, sorted by round, with prefix-summed
/// wall-clock so segment attribution can range-sum in O(log).
struct RoundIndex {
  std::vector<std::uint64_t> round;
  std::vector<std::uint64_t> full_ns;     // send + deliver + receive
  std::vector<std::uint64_t> deliver_ns;  // delivery phase alone
  std::vector<std::uint64_t> prefix_ns;   // exclusive prefix of full_ns

  void finish() {
    prefix_ns.resize(round.size() + 1, 0);
    for (std::size_t i = 0; i < round.size(); ++i) {
      prefix_ns[i + 1] = prefix_ns[i] + full_ns[i];
    }
  }
  /// Sum of full_ns over executed rounds r with lo < r <= hi.
  std::uint64_t range_sum(std::uint64_t lo, std::uint64_t hi) const {
    const auto a = std::upper_bound(round.begin(), round.end(), lo);
    const auto b = std::upper_bound(round.begin(), round.end(), hi);
    return prefix_ns[static_cast<std::size_t>(b - round.begin())] -
           prefix_ns[static_cast<std::size_t>(a - round.begin())];
  }
};

}  // namespace

CritPathReport analyze_critical_path(const TraceRecorder& rec,
                                     CritPathOptions opt) {
  CritPathReport rep;
  if (!rec.records_work_items()) return rep;
  rep.items_seen = rec.work_items_seen();
  rep.items_dropped = rec.dropped_work_items();
  const std::size_t m = rec.work_item_count();
  if (m == 0) return rep;

  // Items arrive from the engine in (run asc, round asc, node asc) order
  // and the ring keeps the newest suffix, so the retained sequence is
  // still sorted; runs are contiguous slices.
  std::vector<ChainSegment> segments;
  std::size_t begin = 0;
  while (begin < m) {
    const std::uint32_t run = rec.work_item(begin).run;
    std::size_t end = begin;
    std::uint32_t max_node = 0;
    while (end < m && rec.work_item(end).run == run) {
      max_node = std::max(max_node, rec.work_item(end).node);
      ++end;
    }
    const std::size_t cnt = end - begin;

    std::vector<NodeState> state(static_cast<std::size_t>(max_node) + 1);
    std::vector<ItemDp> dp(cnt);
    std::vector<std::uint64_t> send_depth(cnt);
    std::vector<std::ptrdiff_t> prev_idx(cnt);
    std::vector<std::uint64_t> prev_depth(cnt);

    // Round-grouped two-pass DP (see header: send depths depend only on
    // cross-round prev edges, so same-round wake edges cannot cycle).
    std::size_t i = 0;
    while (i < cnt) {
      const std::uint64_t round = rec.work_item(begin + i).round;
      std::size_t j = i;
      while (j < cnt && rec.work_item(begin + j).round == round) ++j;

      // Pass 1: resolve prev edges, compute send depths.
      for (std::size_t k = i; k < j; ++k) {
        const WorkItem& it = rec.work_item(begin + k);
        prev_idx[k] = -1;
        prev_depth[k] = 0;
        if (it.prev_round != WorkItem::kNoRound) {
          const NodeState& st = state[it.node];
          if (st.has_last && st.last_round == it.prev_round) {
            prev_idx[k] = st.last_idx;
            prev_depth[k] = st.last_depth;
          } else {
            dp[k].unresolved = true;  // predecessor fell off the ring
          }
        }
        send_depth[k] = prev_depth[k] + 1 + it.msgs_out;
      }
      // Commit send depths so same-round receivers can inherit them.
      for (std::size_t k = i; k < j; ++k) {
        const WorkItem& it = rec.work_item(begin + k);
        if (it.msgs_out == 0) continue;
        NodeState& st = state[it.node];
        st.has_send = true;
        st.send_round = round;
        st.send_depth = send_depth[k];
        st.send_idx = static_cast<std::ptrdiff_t>(k);
      }
      // Pass 2: full depths via max(prev, wake).
      for (std::size_t k = i; k < j; ++k) {
        const WorkItem& it = rec.work_item(begin + k);
        std::uint64_t wake_depth = 0;
        std::ptrdiff_t wake_idx = -1;
        if (it.wake_from != WorkItem::kNoWake &&
            it.wake_from <= max_node) {
          const NodeState& st = state[it.wake_from];
          if (st.has_send && st.send_round == it.wake_round &&
              st.send_idx != static_cast<std::ptrdiff_t>(k)) {
            wake_depth = st.send_depth;
            wake_idx = st.send_idx;
          } else {
            dp[k].unresolved = true;
          }
        }
        // Ties keep the same-node prev edge (state continuity reads best).
        if (wake_idx >= 0 && wake_depth > prev_depth[k]) {
          dp[k].depth = wake_depth;
          dp[k].pred = wake_idx;
          dp[k].via_wake = true;
        } else {
          dp[k].depth = prev_depth[k];
          dp[k].pred = prev_idx[k];
        }
        dp[k].depth += 1 + it.msgs_in + it.msgs_out;
      }
      // Commit full depths for the next rounds' prev edges.
      for (std::size_t k = i; k < j; ++k) {
        const WorkItem& it = rec.work_item(begin + k);
        NodeState& st = state[it.node];
        st.has_last = true;
        st.last_round = round;
        st.last_depth = dp[k].depth;
        st.last_idx = static_cast<std::ptrdiff_t>(k);
      }
      i = j;
    }

    // Deepest item, first in (round, node) order on ties.
    std::size_t best = 0;
    for (std::size_t k = 1; k < cnt; ++k) {
      if (dp[k].depth > dp[best].depth) best = k;
    }

    RunCritPath rc;
    rc.run = run;
    if (run < rec.runs().size()) rc.label = rec.runs()[run].label;
    rc.items = cnt;
    rc.total_cost = dp[best].depth;
    // Backward walk.  An item reached over a wake edge participates only
    // through its send state, so the walk must continue from that state's
    // pass-1 predecessor (prev_idx) -- following dp[].pred there could step
    // onto another same-round wake edge and cycle (two nodes exchanging
    // messages in one round point at each other).  A prev hop strictly
    // decreases the round and a wake hop is always followed by a prev hop,
    // so this walk terminates and never revisits an item.
    std::ptrdiff_t cur = static_cast<std::ptrdiff_t>(best);
    bool as_send = false;  // current item reached via a wake edge
    while (cur >= 0) {
      const std::size_t k = static_cast<std::size_t>(cur);
      const WorkItem& it = rec.work_item(begin + k);
      ChainStep s;
      s.round = it.round;
      s.node = it.node;
      s.msgs_in = it.msgs_in;
      s.msgs_out = it.msgs_out;
      s.cost = 1 + it.msgs_in + it.msgs_out;
      s.compute_ns = it.compute_ns;
      s.via_wake = !as_send && dp[k].via_wake;
      s.wake_from = it.wake_from;
      rc.chain.push_back(s);
      const std::ptrdiff_t nxt = as_send ? prev_idx[k] : dp[k].pred;
      if (nxt < 0) {
        // The chain's origin: if a predecessor edge existed here but items
        // were overwritten, the true chain extends past the ring.
        rc.truncated = dp[k].unresolved && rep.items_dropped > 0;
      }
      as_send = as_send ? false : dp[k].via_wake;
      cur = nxt;
    }
    std::reverse(rc.chain.begin(), rc.chain.end());
    rc.chain.front().via_wake = false;
    for (const ItemDp& d : dp) rc.unresolved_edges += d.unresolved ? 1 : 0;

    // --- wall-clock attribution over the chain's round span ---
    const std::uint64_t span_lo = rc.chain.front().round;
    const std::uint64_t span_hi = rc.chain.back().round;
    rc.span_rounds = span_hi - span_lo + 1;
    std::map<std::uint64_t, std::uint64_t> chain_compute;  // round -> ns
    for (const ChainStep& s : rc.chain) chain_compute[s.round] += s.compute_ns;

    RoundIndex rounds;
    for (std::size_t e = 0; e < rec.size(); ++e) {
      const TraceEvent& ev = rec.event(e);
      if (ev.run != run) continue;
      if (ev.kind == TraceEvent::Kind::kGap) {
        const std::uint64_t lo = std::max(ev.round, span_lo);
        const std::uint64_t hi = std::min(ev.round + ev.rounds - 1, span_hi);
        if (lo <= hi) rc.wait_rounds += hi - lo + 1;
        continue;
      }
      const std::uint64_t phase_ns[3] = {to_ns(ev.send_s), to_ns(ev.deliver_s),
                                         to_ns(ev.receive_s)};
      rc.max_phase_ns = std::max(
          {rc.max_phase_ns, phase_ns[0], phase_ns[1], phase_ns[2]});
      if (ev.round < span_lo || ev.round > span_hi) continue;
      rounds.round.push_back(ev.round);
      rounds.full_ns.push_back(phase_ns[0] + phase_ns[1] + phase_ns[2]);
      rounds.deliver_ns.push_back(phase_ns[1]);
      const std::uint64_t work_ns = phase_ns[0] + phase_ns[2];
      const auto it = chain_compute.find(ev.round);
      if (it != chain_compute.end()) {
        // Per-node clocks run in parallel workers; clamp to the round's
        // measured phase time so compute can never exceed wall-clock.
        const std::uint64_t comp = std::min(it->second, work_ns);
        rc.compute_ns += comp;
        rc.deliver_ns += phase_ns[1];
        rc.wait_ns += work_ns - comp;
      } else {
        rc.wait_ns += rounds.full_ns.back();
      }
    }
    rounds.finish();
    rc.total_ns = rc.compute_ns + rc.deliver_ns + rc.wait_ns;

    // --- chain segments (edges) with attributed wall-clock ---
    for (std::size_t k = 1; k < rc.chain.size(); ++k) {
      const ChainStep& a = rc.chain[k - 1];
      const ChainStep& b = rc.chain[k];
      ChainSegment seg;
      seg.run = run;
      seg.from_round = a.round;
      seg.from_node = a.node;
      seg.to_round = b.round;
      seg.to_node = b.node;
      seg.via_wake = b.via_wake;
      if (b.round > a.round) {
        seg.ns = rounds.range_sum(a.round, b.round);
      } else {
        // Same-round wake edge: the crossing is the delivery phase.
        const auto e = std::lower_bound(rounds.round.begin(),
                                        rounds.round.end(), b.round);
        if (e != rounds.round.end() && *e == b.round) {
          seg.ns = rounds.deliver_ns[static_cast<std::size_t>(
              e - rounds.round.begin())];
        }
      }
      segments.push_back(seg);
    }

    rep.chain_len += rc.chain.size();
    rep.total_cost += rc.total_cost;
    rep.compute_ns += rc.compute_ns;
    rep.deliver_ns += rc.deliver_ns;
    rep.wait_ns += rc.wait_ns;
    rep.total_ns += rc.total_ns;
    rep.max_phase_ns = std::max(rep.max_phase_ns, rc.max_phase_ns);
    rep.truncated = rep.truncated || rc.truncated;
    rep.runs.push_back(std::move(rc));
    begin = end;
  }

  std::sort(segments.begin(), segments.end(),
            [](const ChainSegment& a, const ChainSegment& b) {
              if (a.ns != b.ns) return a.ns > b.ns;
              if (a.run != b.run) return a.run < b.run;
              if (a.to_round != b.to_round) return a.to_round < b.to_round;
              return a.to_node < b.to_node;
            });
  if (segments.size() > opt.top_k_segments) {
    segments.resize(opt.top_k_segments);
  }
  rep.top_segments = std::move(segments);
  return rep;
}

CritPathSummary& CritPathSummary::operator+=(const CritPathSummary& o) {
  runs += o.runs;
  chain_len += o.chain_len;
  total_cost += o.total_cost;
  compute_ns += o.compute_ns;
  deliver_ns += o.deliver_ns;
  wait_ns += o.wait_ns;
  total_ns += o.total_ns;
  items_seen += o.items_seen;
  items_dropped += o.items_dropped;
  truncated = truncated || o.truncated;
  return *this;
}

CritPathSummary summarize(const CritPathReport& rep) {
  CritPathSummary s;
  s.runs = rep.runs.size();
  s.chain_len = rep.chain_len;
  s.total_cost = rep.total_cost;
  s.compute_ns = rep.compute_ns;
  s.deliver_ns = rep.deliver_ns;
  s.wait_ns = rep.wait_ns;
  s.total_ns = rep.total_ns;
  s.items_seen = rep.items_seen;
  s.items_dropped = rep.items_dropped;
  s.truncated = rep.truncated;
  return s;
}

void CritPathSummary::write_json(JsonWriter& w) const {
  w.begin_object()
      .field("runs", runs)
      .field("chain_len", chain_len)
      .field("total_cost", total_cost)
      .field("compute_ns", compute_ns)
      .field("deliver_ns", deliver_ns)
      .field("wait_ns", wait_ns)
      .field("total_ns", total_ns)
      .field("items_seen", items_seen)
      .field("items_dropped", items_dropped)
      .field("truncated", truncated)
      .end_object();
}

void write_critpath_json(const CritPathReport& rep, JsonWriter& w) {
  w.begin_object()
      .field("items_seen", rep.items_seen)
      .field("items_dropped", rep.items_dropped)
      .field("chain_len", rep.chain_len)
      .field("total_cost", rep.total_cost)
      .field("compute_ns", rep.compute_ns)
      .field("deliver_ns", rep.deliver_ns)
      .field("wait_ns", rep.wait_ns)
      .field("total_ns", rep.total_ns)
      .field("max_phase_ns", rep.max_phase_ns)
      .field("truncated", rep.truncated)
      .field("complete", rep.complete());
  w.key("runs").begin_array();
  for (const RunCritPath& rc : rep.runs) {
    w.begin_object()
        .field("run", static_cast<std::uint64_t>(rc.run))
        .field("label", rc.label)
        .field("items", rc.items)
        .field("chain_len", static_cast<std::uint64_t>(rc.chain.size()))
        .field("total_cost", rc.total_cost)
        .field("compute_ns", rc.compute_ns)
        .field("deliver_ns", rc.deliver_ns)
        .field("wait_ns", rc.wait_ns)
        .field("total_ns", rc.total_ns)
        .field("span_rounds", rc.span_rounds)
        .field("wait_rounds", rc.wait_rounds)
        .field("max_phase_ns", rc.max_phase_ns)
        .field("truncated", rc.truncated)
        .field("unresolved_edges", rc.unresolved_edges);
    const std::size_t emit = std::min(rc.chain.size(), kMaxJsonChainSteps);
    w.field("chain_emitted", static_cast<std::uint64_t>(emit));
    w.key("chain").begin_array();
    for (std::size_t i = 0; i < emit; ++i) {
      const ChainStep& s = rc.chain[i];
      w.begin_object()
          .field("round", s.round)
          .field("node", static_cast<std::uint64_t>(s.node))
          .field("in", static_cast<std::uint64_t>(s.msgs_in))
          .field("out", static_cast<std::uint64_t>(s.msgs_out))
          .field("cost", s.cost)
          .field("compute_ns", s.compute_ns)
          .field("edge", i == 0 ? "start" : (s.via_wake ? "wake" : "prev"));
      if (i != 0 && s.via_wake) {
        w.field("wake_from", static_cast<std::uint64_t>(s.wake_from));
      }
      w.end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();
  w.key("top_segments").begin_array();
  for (const ChainSegment& s : rep.top_segments) {
    w.begin_object()
        .field("run", static_cast<std::uint64_t>(s.run))
        .field("from_round", s.from_round)
        .field("from_node", static_cast<std::uint64_t>(s.from_node))
        .field("to_round", s.to_round)
        .field("to_node", static_cast<std::uint64_t>(s.to_node))
        .field("edge", s.via_wake ? "wake" : "prev")
        .field("ns", s.ns)
        .end_object();
  }
  w.end_array().end_object();
}

void write_critpath_record_line(const CritPathReport& rep, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object().field("type", "critpath");
  w.key("critpath");
  write_critpath_json(rep, w);
  w.end_object();
  os << "\n";
}

namespace {

std::string fmt_ms(std::uint64_t ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << static_cast<double>(ns) / 1e6
     << " ms";
  return os.str();
}

int pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0 : static_cast<int>(100.0 * static_cast<double>(part) /
                                           static_cast<double>(whole));
}

void write_chain_row(const ChainStep& s, bool first, std::ostream& os) {
  os << "    " << std::setw(8) << s.round << "  " << std::setw(6) << s.node
     << "  " << std::setw(4) << s.msgs_in << "  " << std::setw(4) << s.msgs_out
     << "  " << std::setw(5) << s.cost << "  " << std::setw(5)
     << (first ? "start" : (s.via_wake ? "wake" : "prev"));
  if (!first && s.via_wake) {
    os << "  from " << s.wake_from;
  }
  os << "\n";
}

}  // namespace

void write_critpath_table(const CritPathReport& rep, std::ostream& os) {
  if (rep.runs.empty()) {
    os << "critical path: no work items recorded\n";
    return;
  }
  os << "critical path: " << rep.runs.size() << " run"
     << (rep.runs.size() == 1 ? "" : "s") << ", chain " << rep.chain_len
     << " steps, cost " << rep.total_cost << ", items " << rep.items_seen;
  if (rep.items_dropped > 0) {
    os << " (" << rep.items_dropped << " dropped";
    if (rep.truncated) os << ", chain truncated";
    os << ")";
  }
  os << "\n";
  os << "  total " << fmt_ms(rep.total_ns) << " = compute "
     << fmt_ms(rep.compute_ns) << " (" << pct(rep.compute_ns, rep.total_ns)
     << "%) + deliver " << fmt_ms(rep.deliver_ns) << " ("
     << pct(rep.deliver_ns, rep.total_ns) << "%) + wait "
     << fmt_ms(rep.wait_ns) << " (" << pct(rep.wait_ns, rep.total_ns)
     << "%)\n";
  for (const RunCritPath& rc : rep.runs) {
    os << "  [run " << rc.run << "] " << rc.label << ": chain "
       << rc.chain.size() << " steps, cost " << rc.total_cost << ", span "
       << rc.span_rounds << " rounds (" << rc.wait_rounds
       << " fast-forwarded), " << fmt_ms(rc.total_ns);
    if (rc.truncated) os << ", TRUNCATED";
    if (rc.unresolved_edges > 0) {
      os << ", " << rc.unresolved_edges << " unresolved edges";
    }
    os << "\n";
    os << "       round    node    in   out   cost   edge\n";
    // Long chains print head and tail; the elision is announced, and the
    // full chain is always in the JSON export.
    constexpr std::size_t kHead = 12;
    constexpr std::size_t kTail = 4;
    if (rc.chain.size() <= kHead + kTail + 1) {
      for (std::size_t i = 0; i < rc.chain.size(); ++i) {
        write_chain_row(rc.chain[i], i == 0, os);
      }
    } else {
      for (std::size_t i = 0; i < kHead; ++i) {
        write_chain_row(rc.chain[i], i == 0, os);
      }
      os << "    ... " << (rc.chain.size() - kHead - kTail)
         << " steps elided ...\n";
      for (std::size_t i = rc.chain.size() - kTail; i < rc.chain.size();
           ++i) {
        write_chain_row(rc.chain[i], false, os);
      }
    }
  }
  if (!rep.top_segments.empty()) {
    os << "  top segments:\n";
    for (const ChainSegment& s : rep.top_segments) {
      os << "    run " << s.run << "  (r" << s.from_round << " n"
         << s.from_node << ") -> (r" << s.to_round << " n" << s.to_node
         << ")  " << (s.via_wake ? "wake" : "prev") << "  " << fmt_ms(s.ns)
         << "\n";
    }
  }
}

}  // namespace dapsp::obs
