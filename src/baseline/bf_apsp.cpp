#include "baseline/bf_apsp.hpp"

#include <algorithm>
#include <optional>

#include "congest/engine.hpp"

namespace dapsp::baseline {

using congest::Context;
using congest::Engine;
using congest::EngineOptions;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using congest::Round;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

namespace {

constexpr std::uint32_t kTagDist = 50;  // {d, l}

class BellmanFordProtocol final : public Protocol {
 public:
  BellmanFordProtocol(const Graph& g, NodeId self, NodeId source, bool reverse)
      : self_(self) {
    // In reverse mode a neighbor y's label extends along the arc self -> y,
    // so the relevant weight is w(self, y); forward mode uses w(y, self).
    const auto edges = reverse ? g.out_edges(self) : g.in_edges(self);
    for (const auto& e : edges) {
      const NodeId nbr = reverse ? e.to : e.from;
      nbr_weight_.emplace_back(nbr, e.weight);
    }
    std::sort(nbr_weight_.begin(), nbr_weight_.end());
    nbr_weight_.erase(
        std::unique(nbr_weight_.begin(), nbr_weight_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        nbr_weight_.end());
    if (self == source) {
      d_ = 0;
      l_ = 0;
      dirty_ = true;
    }
  }

  void init(Context& ctx) override {
    if (dirty_) {
      dirty_ = false;
      ctx.broadcast(Message(kTagDist, {d_, l_}));
    }
  }

  void send_phase(Context& ctx) override {
    if (dirty_) {
      dirty_ = false;
      ctx.broadcast(Message(kTagDist, {d_, l_}));
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagDist) continue;
      const auto it = std::lower_bound(
          nbr_weight_.begin(), nbr_weight_.end(), env.from,
          [](const auto& p, NodeId v) { return p.first < v; });
      if (it == nbr_weight_.end() || it->first != env.from) continue;
      const Weight nd = env.msg.f[0] + it->second;
      const auto nl = env.msg.f[1] + 1;
      if (nd < d_ || (nd == d_ && nl < l_)) {
        d_ = nd;
        l_ = nl;
        p_ = env.from;
        dirty_ = true;
        settle_round_ = ctx.round();
      }
    }
  }

  bool quiescent() const override { return !dirty_; }

  Round next_send_round(Round now) const override {
    return dirty_ ? now + 1 : kNeverSends;
  }

  Weight dist() const { return d_; }
  std::int64_t hops() const { return l_; }
  NodeId parent() const { return p_; }
  Round settle_round() const { return settle_round_; }

 private:
  NodeId self_;
  std::vector<std::pair<NodeId, Weight>> nbr_weight_;
  Weight d_ = kInfDist;
  std::int64_t l_ = 0;
  NodeId p_ = kNoNode;
  bool dirty_ = false;
  Round settle_round_ = 0;
};

}  // namespace

BfSsspResult bf_sssp(const Graph& g, NodeId source, bool reverse,
                     congest::Round max_rounds) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<BellmanFordProtocol>(g, v, source, reverse));
  }
  EngineOptions opt;
  opt.max_rounds = max_rounds == 0 ? static_cast<Round>(n) + 2 : max_rounds;
  Engine engine(g, std::move(procs), opt);

  BfSsspResult res;
  res.stats = engine.run();
  res.dist.resize(n);
  res.hops.resize(n);
  res.parent.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const BellmanFordProtocol&>(engine.protocol(v));
    res.dist[v] = p.dist();
    res.hops[v] = static_cast<std::uint32_t>(p.hops());
    res.parent[v] = p.parent();
    res.settle_round = std::max(res.settle_round, p.settle_round());
  }
  return res;
}

BfApspResult bf_apsp(const Graph& g) {
  BfApspResult res;
  res.dist.reserve(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    BfSsspResult one = bf_sssp(g, s);
    res.stats += one.stats;
    res.dist.push_back(std::move(one.dist));
  }
  return res;
}

}  // namespace dapsp::baseline
