// E11 -- rounds vs loss rate for reliable Bellman-Ford over a faulty plane.
//
// The paper's round bounds assume a flawless synchronous network.  This
// sweep measures what reliability costs when the network is not flawless:
// the same SSSP is run over drop rates {0, 0.05, 0.1, 0.2, 0.3} behind the
// ack/retransmit transport (congest/reliable.hpp), on a grid and on an
// Erdos-Renyi graph.  Columns: measured rounds (the reliability tax --
// expected to grow roughly like 1/(1-p) from retransmission round trips),
// transport frames/retransmits, and a correctness check against sequential
// Dijkstra -- every row must end "ok", or the transport is broken, not slow.
// A second table sweeps seeds at fixed 10% loss to show the spread.
#include <memory>
#include <vector>

#include "congest/engine.hpp"
#include "congest/faults.hpp"
#include "congest/reliable.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "harness.hpp"
#include "seq/dijkstra.hpp"

namespace {

using namespace dapsp;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

constexpr std::uint32_t kTag = 880;

/// Monotone Bellman-Ford SSSP (rebroadcast on improvement) -- safe under
/// the transport's stretched delivery timing.
class BfNode final : public congest::Protocol {
 public:
  BfNode(const Graph& g, NodeId self, NodeId source)
      : g_(g), self_(self), source_(source) {}

  void init(congest::Context& ctx) override {
    if (self_ == source_) {
      dist_ = 0;
      ctx.broadcast(congest::Message(kTag, {0}));
    }
  }
  void send_phase(congest::Context& ctx) override {
    if (improved_) {
      ctx.broadcast(congest::Message(kTag, {dist_}));
      improved_ = false;
    }
  }
  void receive_phase(congest::Context& ctx) override {
    for (const congest::Envelope& env : ctx.inbox()) {
      Weight w = graph::kInfDist;
      for (const auto& e : g_.out_edges(self_)) {
        if (e.to == env.from && e.weight < w) w = e.weight;
      }
      const Weight cand = env.msg.f[0] + w;
      if (dist_ == graph::kInfDist || cand < dist_) {
        dist_ = cand;
        improved_ = true;
      }
    }
  }
  bool quiescent() const override { return !improved_; }
  Weight dist() const { return dist_; }

 private:
  const Graph& g_;
  NodeId self_;
  NodeId source_;
  Weight dist_ = graph::kInfDist;
  bool improved_ = false;
};

struct SweepRow {
  congest::ReliableResult res;
  bool exact = false;
};

SweepRow run_one(const Graph& g, double drop, std::uint64_t seed) {
  congest::FaultPlan plan;
  plan.drop_prob = drop;
  plan.seed = seed;
  congest::EngineOptions opt;
  if (plan.enabled()) opt.faults = &plan;
  opt.max_rounds = 200000;
  std::vector<Weight> dists(g.node_count(), graph::kInfDist);
  SweepRow row;
  row.res = congest::run_reliable(
      g, [&](NodeId v) { return std::make_unique<BfNode>(g, v, 0); }, opt, {},
      [&](NodeId v, congest::ReliableTransport& t) {
        dists[v] = static_cast<const BfNode&>(t.inner()).dist();
      });
  row.exact = dists == seq::dijkstra(g, 0).dist;
  return row;
}

void sweep_graph(const char* label, const Graph& g) {
  using bench::fmt;
  bench::Table table({"graph", "drop", "rounds", "messages", "data frames",
                      "retransmits", "pure acks", "dup drops", "exact"});
  const SweepRow base = run_one(g, 0.0, 1);
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const SweepRow row = run_one(g, drop, 1);
    table.row({label, fmt(drop, 2),
               fmt(std::uint64_t{row.res.stats.rounds}) + " (x" +
                   fmt(static_cast<double>(row.res.stats.rounds) /
                           static_cast<double>(base.res.stats.rounds),
                       2) +
                   ")",
               fmt(row.res.stats.total_messages),
               fmt(row.res.transport.data_frames),
               fmt(row.res.transport.retransmits),
               fmt(row.res.transport.pure_acks),
               fmt(row.res.transport.duplicates_dropped),
               row.exact ? "ok" : "WRONG"});
  }
  table.print();
}

}  // namespace

int main() {
  using bench::fmt;
  bench::banner("E11: rounds vs loss rate (reliable transport)",
                "Reliable Bellman-Ford SSSP over seeded drop planes; the "
                "rounds column is the price of reliability, the exact "
                "column the proof it was bought.");

  sweep_graph("grid 6x8", graph::grid(6, 8, {1, 6, 0.0}, 7001));
  sweep_graph("er n=48 p=0.12", graph::erdos_renyi(48, 0.12, {1, 8, 0.0}, 7002));

  std::cout << "\nSeed spread at drop=0.1 (grid 6x8):\n";
  bench::Table spread({"seed", "rounds", "retransmits", "exact"});
  const Graph g = graph::grid(6, 8, {1, 6, 0.0}, 7001);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SweepRow row = run_one(g, 0.1, seed);
    spread.row({fmt(seed), fmt(std::uint64_t{row.res.stats.rounds}),
                fmt(row.res.transport.retransmits),
                row.exact ? "ok" : "WRONG"});
  }
  spread.print();
  return 0;
}
