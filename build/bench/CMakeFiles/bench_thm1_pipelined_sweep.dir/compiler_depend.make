# Empty compiler generated dependencies file for bench_thm1_pipelined_sweep.
# This may be replaced when dependencies are built.
