file(REMOVE_RECURSE
  "libdapsp.a"
)
