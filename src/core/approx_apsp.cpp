#include "core/approx_apsp.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/unweighted_apsp.hpp"
#include "core/bounds.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;

ApproxApspResult approx_apsp(const Graph& g, ApproxApspParams params) {
  const NodeId n = g.node_count();
  util::check(params.eps > 0, "approx_apsp: eps must be positive");
  ApproxApspResult res;
  res.paper_bound = bounds::approx_apsp(n, params.eps);

  // Step 1: zero-weight reachability (exact distance 0 for those pairs).
  const auto zero = baseline::zero_reach_congest(g, &res.stats);

  // Step 2: lifted weights w' (computed locally by each node; no rounds).
  const auto n2 = static_cast<Weight>(n) * n;
  const auto lifted = [n2](Weight w) { return w == 0 ? Weight{1} : n2 * w; };

  // Step 3: per-scale rounding.  K ~ 3n/eps so that n rounding errors of
  // one rounded unit each cost at most (eps/3) * 2^i <= (eps/3) * delta'.
  const auto K = static_cast<Weight>(std::ceil(3.0 * n / params.eps));
  Weight max_lifted = 0;
  for (const auto& e : g.edges()) max_lifted = std::max(max_lifted, lifted(e.weight));
  const util::u128 max_dist =
      util::u128(max_lifted) * (n > 1 ? n - 1 : 1);  // longest simple path
  std::uint32_t scales = 1;
  while ((util::u128{1} << scales) < max_dist) ++scales;
  res.scales = scales;
  res.implementation_bound =
      (static_cast<std::uint64_t>(scales) + 1) *
          (2 * static_cast<std::uint64_t>(K) + 2ULL * n + 8) +
      2ULL * n + 8;  // + the zero-reachability phase

  std::vector<std::vector<Weight>> best(n, std::vector<Weight>(n, kInfDist));
  for (std::uint32_t i = 0; i < scales; ++i) {
    const Weight pow2 = Weight{1} << i;
    baseline::PositiveApspParams pa;
    pa.weight_of = [&lifted, K, pow2](const graph::Edge& e)
        -> std::optional<Weight> {
      // ceil(w' * K / 2^i) >= 1 because w' >= 1.
      const util::u128 num = util::u128(lifted(e.weight)) * util::u128(K);
      const util::u128 r = (num + util::u128(pow2) - 1) / util::u128(pow2);
      if (r > util::u128(Weight{1} << 62)) return std::nullopt;  // hopeless arc
      return static_cast<Weight>(r);
    };
    // Paths of lifted weight <= 2^{i+1} have rounded weight <= 2K + n.
    pa.distance_cap = 2 * K + n;
    const auto run = baseline::positive_apsp(g, std::move(pa));
    res.stats += run.stats;

    for (NodeId s = 0; s < n; ++s) {
      for (NodeId v = 0; v < n; ++v) {
        if (run.dist[s][v] == kInfDist) continue;
        // Scale back: floor(rounded * 2^i / K) never dips below delta'.
        const util::u128 back = util::u128(run.dist[s][v]) * util::u128(pow2) /
                                util::u128(K);
        const auto est = static_cast<Weight>(back);
        best[s][v] = std::min(best[s][v], est);
      }
    }
  }

  // Step 4: fold in zero-reachability and undo the n^2 lift.
  res.dist.assign(n, std::vector<Weight>(n, kInfDist));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId v = 0; v < n; ++v) {
      if (zero[s][v]) {
        res.dist[s][v] = 0;
      } else if (best[s][v] != kInfDist) {
        res.dist[s][v] = best[s][v] / n2;
      }
    }
  }
  return res;
}

}  // namespace dapsp::core
