// Tests for the blocker set machinery (Section III-B): pipelined score
// initialization, the greedy selection loop with Algorithm-4 descendant
// updates, the covering property of Definition III.1, and the size bound.
#include <gtest/gtest.h>

#include "core/blocker.hpp"
#include "core/cssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace dapsp::core {
namespace {

using graph::Graph;
using graph::NodeId;

CsspCollection make_cssp(const Graph& g, std::uint32_t h, NodeId stride) {
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.node_count(); v += stride) sources.push_back(v);
  return build_cssp(g, sources, h, graph::max_finite_hop_distance(g, 2 * h));
}

TEST(BlockerScores, DistributedMatchesSequential) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::erdos_renyi(18, 0.2, {0, 4, 0.3}, 2000 + seed,
                                       seed % 2 == 0);
    const auto cssp = make_cssp(g, 3, 2);
    congest::RunStats stats;
    const ScoreMatrix dist = init_scores_distributed(g, cssp, &stats);
    const ScoreMatrix ref = init_scores_sequential(cssp);
    ASSERT_EQ(dist.size(), ref.size());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(dist[v], ref[v]) << "node " << v << " seed " << seed;
    }
    // Phase bound: h + k + 1 rounds.
    EXPECT_LE(stats.rounds, cssp.h + cssp.sources.size() + 2);
  }
}

TEST(BlockerScores, RootScoreCountsAllLeaves) {
  const Graph g = graph::path(7, {1, 1, 0.0}, 2100);
  const auto cssp = make_cssp(g, 2, 7);  // single source: node 0
  const ScoreMatrix scores = init_scores_sequential(cssp);
  // Tree from 0 on a path: node 2 is the unique depth-2 leaf.
  EXPECT_EQ(scores[0][0], 1u);
  EXPECT_EQ(scores[2][0], 1u);
  EXPECT_EQ(scores[3][0], 0u);
}

TEST(BlockerSet, CoversEveryHPath) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::erdos_renyi(16, 0.22, {0, 4, 0.3}, 2200 + seed,
                                       seed % 2 == 1);
    const auto cssp = make_cssp(g, 3, 1);  // all sources
    const auto res = compute_blocker_set(g, cssp);
    EXPECT_TRUE(covers_all_h_paths(cssp, res.blockers)) << "seed " << seed;
    EXPECT_LE(res.blockers.size(), res.size_bound) << "seed " << seed;
  }
}

TEST(BlockerSet, ZeroHeavyGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(14, 0.25, {0, 2, 0.7}, 2300 + seed);
    const auto cssp = make_cssp(g, 2, 1);
    const auto res = compute_blocker_set(g, cssp);
    EXPECT_TRUE(covers_all_h_paths(cssp, res.blockers));
  }
}

TEST(BlockerSet, UpdatePhasesStayLowCongestion) {
  // The CSSSP staggering lemmas (III.6/III.7) predict collision-free
  // pipelines; measured per-link congestion in the update phases is the
  // empirical check.
  const Graph g = graph::erdos_renyi(18, 0.2, {0, 4, 0.3}, 2400);
  const auto cssp = make_cssp(g, 3, 1);
  const auto res = compute_blocker_set(g, cssp);
  EXPECT_TRUE(covers_all_h_paths(cssp, res.blockers));
  EXPECT_LE(res.update_congestion, 2u);
}

TEST(BlockerSet, EmptyWhenNoHPaths) {
  // Star graph with h=2: every root-to-leaf path has 1 or 2 hops; pick h
  // large enough that no depth-h leaves exist in any tree.
  const Graph g = graph::star(8, {1, 1, 0.0}, 2500);
  const auto cssp = make_cssp(g, 5, 1);
  const auto res = compute_blocker_set(g, cssp);
  EXPECT_TRUE(res.blockers.empty());
  EXPECT_TRUE(covers_all_h_paths(cssp, res.blockers));
}

TEST(BlockerSet, PathGraphPicksCenterFirst) {
  // On a path with every node a source and h=2, middle nodes lie on the
  // most depth-2 root paths, so the greedy picks one of them first.
  const Graph g = graph::path(9, {1, 1, 0.0}, 2600);
  const auto cssp = make_cssp(g, 2, 1);
  const auto res = compute_blocker_set(g, cssp);
  ASSERT_FALSE(res.blockers.empty());
  EXPECT_GT(res.blockers[0], 1u);
  EXPECT_LT(res.blockers[0], 7u);
  EXPECT_TRUE(covers_all_h_paths(cssp, res.blockers));
}

TEST(BlockerSet, GreedyNeverRepeats) {
  const Graph g = graph::grid(4, 4, {0, 3, 0.3}, 2700);
  const auto cssp = make_cssp(g, 2, 1);
  const auto res = compute_blocker_set(g, cssp);
  auto sorted = res.blockers;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

TEST(BlockerSet, UpdatePhasesWithinLemmaIII8) {
  // Lemma III.8: each pipelined update phase delivers everything within
  // k + h - 1 rounds (our schedule starts at round 1, so k + h here).
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(16, 0.22, {0, 4, 0.3}, 2900 + seed);
    const auto cssp = make_cssp(g, 3, 1);
    const auto res = compute_blocker_set(g, cssp);
    EXPECT_LE(res.max_update_phase_rounds, cssp.sources.size() + cssp.h + 1)
        << "seed " << seed;
  }
}

TEST(BlockerSet, DescendantUpdateRoundBound) {
  // Lemma III.8: each update phase takes at most k + h + small rounds; with
  // q blockers and the O(D) select/broadcast steps the total stays linear in
  // q * (k + h + D).
  const Graph g = graph::erdos_renyi(16, 0.2, {0, 4, 0.2}, 2800);
  const auto cssp = make_cssp(g, 3, 1);
  const auto res = compute_blocker_set(g, cssp);
  const std::uint64_t q = res.blockers.size();
  const std::uint64_t k = cssp.sources.size();
  const std::uint64_t per_iter =
      2 * (k + cssp.h + 4) +  // two update phases
      2 * (static_cast<std::uint64_t>(graph::comm_diameter(g)) + 8) + 4;
  EXPECT_LE(res.stats.rounds,
            res.score_init_rounds + g.node_count() +  // init + BFS tree
                (q + 1) * per_iter + 8);
}

}  // namespace
}  // namespace dapsp::core
