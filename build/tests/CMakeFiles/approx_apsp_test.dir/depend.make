# Empty dependencies file for approx_apsp_test.
# This may be replaced when dependencies are built.
