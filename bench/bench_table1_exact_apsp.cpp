// E1 -- Table I (exact weighted APSP comparison).
//
// The paper's Table I compares round complexities of exact weighted APSP
// algorithms.  We regenerate it as measured rounds for the algorithms we
// implement (this paper's Algorithm 1 and Algorithm 3, and the classic
// Bellman-Ford baseline) next to the bound formulas for the rows we cite
// ([3] deterministic, [13] randomized, [8]/[5]).  Shape expectation: the
// pipelined algorithms trail their bound curves and undercut the baseline /
// [3]-bound for moderate W.
#include <cmath>

#include "baseline/bf_apsp.hpp"
#include "core/blocker_apsp.hpp"
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E1: Table I (exact weighted APSP)",
                "Measured CONGEST rounds per algorithm; comparison-row bound "
                "formulas for algorithms the paper cites.");

  bench::Table table({"n", "W", "Delta", "BF baseline", "Alg1 (measured)",
                      "Alg1 bound", "Alg3 (measured)", "Alg3 bound",
                      "[3] ~n^1.5", "[13] ~n^1.25 (rand)", "[5] ~n (rand)"});

  for (const graph::NodeId n : {24u, 32u, 48u, 64u}) {
    for (const graph::Weight w : {4, 32}) {
      graph::WeightSpec spec;
      spec.min_weight = 0;
      spec.max_weight = w;
      spec.zero_fraction = 0.2;
      const graph::Graph g = graph::erdos_renyi(n, 3.0 / n, spec, 42 + n);
      const graph::Weight delta = graph::max_finite_distance(g);

      const auto bf = baseline::bf_apsp(g);
      const auto alg1 = core::pipelined_apsp(g, delta);
      core::BlockerApspParams bp;  // h auto-chosen by Theorem I.2
      const auto alg3 = core::blocker_apsp(g, bp);

      const auto du = static_cast<std::uint64_t>(delta);
      table.row({fmt(std::uint64_t{n}), fmt(std::int64_t{w}), fmt(du),
                 fmt(bf.stats.rounds), fmt(alg1.settle_round),
                 fmt(core::bounds::apsp_pipelined(n, du)),
                 fmt(alg3.stats.rounds), fmt(alg3.theoretical_bound),
                 fmt(core::bounds::agarwal_n32(n)),
                 fmt(static_cast<std::uint64_t>(
                     std::pow(static_cast<double>(n), 1.25))),
                 fmt(std::uint64_t{n})});
    }
  }
  table.print();

  // Topology variety: the same comparison on structured networks.
  bench::Table topo({"topology", "n", "Delta", "BF baseline",
                     "Alg1 (measured)", "Alg1 bound"});
  const auto run_topo = [&](const std::string& name, const graph::Graph& g) {
    const graph::Weight delta = graph::max_finite_distance(g);
    const auto bf = baseline::bf_apsp(g);
    const auto alg1 = core::pipelined_apsp(g, delta);
    topo.row({name, fmt(std::uint64_t{g.node_count()}),
              fmt(static_cast<std::uint64_t>(delta)), fmt(bf.stats.rounds),
              fmt(alg1.settle_round),
              fmt(core::bounds::apsp_pipelined(
                  g.node_count(), static_cast<std::uint64_t>(delta)))});
  };
  run_topo("grid 6x8", graph::grid(6, 8, {0, 8, 0.2}, 77));
  run_topo("scale-free (BA)", graph::barabasi_albert(48, 2, {0, 8, 0.2}, 78));
  run_topo("cycle", graph::cycle(48, {0, 8, 0.2}, 79));
  run_topo("random tree", graph::random_tree(48, {0, 8, 0.2}, 80));
  run_topo("ISP (6 PoPs x 8)", graph::isp_topology(6, 8, 10, 40, 0.5, 81));
  std::cout << "\n-- structured topologies --\n";
  topo.print();

  std::cout << "\nNotes: BF baseline = n sequential Bellman-Ford SSSPs "
               "(O(n^2) rounds).\n[13]/[5] are randomized and not "
               "implementable deterministically; their columns are bound "
               "formulas only, as in the paper's Table I.\n";
  return 0;
}
