#include "core/blocker.hpp"

#include <algorithm>
#include <deque>

#include "congest/engine.hpp"
#include "core/bounds.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using congest::BfsTree;
using congest::Context;
using congest::Engine;
using congest::EngineOptions;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using congest::Round;
using congest::RunStats;
using graph::Graph;
using graph::kNoNode;
using graph::NodeId;

namespace {

constexpr std::uint32_t kTagScoreUp = 40;   // {tree, count}
constexpr std::uint32_t kTagAncestor = 41;  // {tree, score_c}
constexpr std::uint32_t kTagDescend = 42;   // {tree}

/// Phase A: pipelined convergecast of depth-h descendant counts.  A node at
/// depth j in tree i sends its subtree count to its tree parent in round
/// (h - j) + i + 1; children (depth j+1) fire one round earlier, so every
/// count is complete when sent.  Zero counts are skipped.
class ScoreInitProtocol final : public Protocol {
 public:
  ScoreInitProtocol(const CsspCollection& cssp, NodeId self)
      : cssp_(cssp), self_(self) {
    const std::size_t k = cssp.sources.size();
    count_.assign(k, 0);
    for (std::size_t i = 0; i < k; ++i) {
      if (cssp.in_tree(i, self) && cssp.depth[i][self] == cssp.h) {
        count_[i] = 1;  // this node is a depth-h leaf of tree i
      }
    }
  }

  void send_phase(Context& ctx) override {
    const Round r = ctx.round();
    last_round_ = r;
    if (r == 0) return;
    const std::size_t k = cssp_.sources.size();
    // Trees i with (h - depth) + i + 1 == r, i.e. i == r - 1 - (h - depth).
    // Depth varies per tree, so scan the candidate range: for tree i the
    // depth is fixed, giving at most one send per tree; across trees the
    // schedule guarantees i is determined by depth, so scan all trees whose
    // schedule matches (cheap: one subtraction per tree).
    for (std::size_t i = 0; i < k; ++i) {
      if (!cssp_.in_tree(i, self_)) continue;
      if (self_ == cssp_.sources[i]) continue;  // roots keep their count
      const std::uint64_t due =
          static_cast<std::uint64_t>(cssp_.h - cssp_.depth[i][self_]) + i + 1;
      if (due != r) continue;
      if (count_[i] == 0) continue;
      ctx.send(cssp_.parent[i][self_],
               Message(kTagScoreUp, {static_cast<std::int64_t>(i),
                                     static_cast<std::int64_t>(count_[i])}));
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagScoreUp) continue;
      const auto i = static_cast<std::size_t>(env.msg.f[0]);
      count_[i] += static_cast<std::uint64_t>(env.msg.f[1]);
    }
  }

  bool quiescent() const override {
    return last_round_ >= cssp_.h + cssp_.sources.size() + 1;
  }

  const std::vector<std::uint64_t>& counts() const { return count_; }

 private:
  const CsspCollection& cssp_;
  NodeId self_;
  std::vector<std::uint64_t> count_;
  Round last_round_ = 0;
};

/// Ancestor updates: the chosen blocker c streams (tree, score_c(tree))
/// pairs toward the roots along tree parent pointers; every node on the way
/// subtracts.  By Lemma III.7 the paths from c to all roots form a tree, so
/// pipelined messages never collide.
class AncestorUpdateProtocol final : public Protocol {
 public:
  AncestorUpdateProtocol(const CsspCollection& cssp, NodeId self, NodeId chosen,
                         const std::vector<std::pair<std::size_t, std::uint64_t>>*
                             chosen_entries,
                         std::vector<std::uint64_t>* scores)
      : cssp_(cssp), self_(self), scores_(scores) {
    if (self == chosen && chosen_entries != nullptr) {
      for (const auto& [tree, s] : *chosen_entries) {
        if (cssp.sources[tree] != self) {  // roots have no ancestors
          outgoing_.push_back(Message(
              kTagAncestor,
              {static_cast<std::int64_t>(tree), static_cast<std::int64_t>(s)}));
        }
      }
    }
  }

  void send_phase(Context& ctx) override {
    if (!outgoing_.empty()) {
      const Message m = outgoing_.front();
      outgoing_.pop_front();
      const auto tree = static_cast<std::size_t>(m.f[0]);
      ctx.send(cssp_.parent[tree][self_], m);
    }
    // Forward everything that arrived last round (distinct trees may have
    // distinct parents; the CSSSP in-tree property keeps per-link load at 1).
    for (const Message& m : pending_) {
      const auto tree = static_cast<std::size_t>(m.f[0]);
      if (cssp_.sources[tree] == self_) continue;  // reached the root
      ctx.send(cssp_.parent[tree][self_], m);
    }
    pending_.clear();
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagAncestor) continue;
      const auto tree = static_cast<std::size_t>(env.msg.f[0]);
      // Accept only from a child in this tree: the message must be climbing
      // the very tree it talks about.
      if (cssp_.parent[tree][env.from] != self_) continue;
      (*scores_)[tree] -= static_cast<std::uint64_t>(env.msg.f[1]);
      pending_.push_back(env.msg);
    }
  }

  bool quiescent() const override { return outgoing_.empty() && pending_.empty(); }

 private:
  const CsspCollection& cssp_;
  NodeId self_;
  std::vector<std::uint64_t>* scores_;
  std::deque<Message> outgoing_;  // only at the chosen blocker
  std::vector<Message> pending_;  // relays buffered for next round
};

/// Algorithm 4: descendant updates.  c streams tree ids down the (shared,
/// by Lemma III.6) subtrees; every descendant zeroes its score for that tree
/// and forwards to its children in the same tree.
class DescendantUpdateProtocol final : public Protocol {
 public:
  DescendantUpdateProtocol(const CsspCollection& cssp, NodeId self,
                           NodeId chosen,
                           const std::vector<std::pair<std::size_t, std::uint64_t>>*
                               chosen_entries,
                           std::vector<std::uint64_t>* scores)
      : cssp_(cssp), self_(self), scores_(scores) {
    if (self == chosen && chosen_entries != nullptr) {
      for (const auto& [tree, s] : *chosen_entries) {
        (void)s;
        pending_.push_back(static_cast<std::int64_t>(tree));
      }
      is_chosen_ = true;
    }
  }

  void send_phase(Context& ctx) override {
    if (is_chosen_) {
      // Line 2 of Algorithm 4: round i sends the i-th entry of list_c.
      if (next_ < pending_.size()) {
        const auto tree = static_cast<std::size_t>(pending_[next_]);
        ++next_;
        for (const NodeId child : cssp_.children[tree][self_]) {
          ctx.send(child, Message(kTagDescend, {static_cast<std::int64_t>(tree)}));
        }
      }
      return;
    }
    for (const std::int64_t t : forward_) {
      const auto tree = static_cast<std::size_t>(t);
      for (const NodeId child : cssp_.children[tree][self_]) {
        ctx.send(child, Message(kTagDescend, {t}));
      }
    }
    forward_.clear();
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagDescend) continue;
      const auto tree = static_cast<std::size_t>(env.msg.f[0]);
      // Lines 5-6: only react when the message came down this very tree.
      if (cssp_.parent[tree][self_] != env.from) continue;
      (*scores_)[tree] = 0;
      forward_.push_back(env.msg.f[0]);
    }
  }

  bool quiescent() const override {
    if (is_chosen_) return next_ >= pending_.size();
    return forward_.empty();
  }

 private:
  const CsspCollection& cssp_;
  NodeId self_;
  std::vector<std::uint64_t>* scores_;
  std::vector<std::int64_t> pending_;  // tree ids (only at c)
  std::vector<std::int64_t> forward_;
  std::size_t next_ = 0;
  bool is_chosen_ = false;
};

}  // namespace

ScoreMatrix init_scores_sequential(const CsspCollection& cssp) {
  const std::size_t k = cssp.sources.size();
  const auto n = static_cast<NodeId>(cssp.parent.empty()
                                         ? 0
                                         : cssp.parent[0].size());
  ScoreMatrix scores(n, std::vector<std::uint64_t>(k, 0));
  for (std::size_t i = 0; i < k; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      if (!cssp.in_tree(i, v) || cssp.depth[i][v] != cssp.h) continue;
      // Credit every ancestor of this depth-h leaf (and the leaf itself).
      NodeId u = v;
      while (u != kNoNode) {
        ++scores[u][i];
        u = cssp.parent[i][u];
      }
    }
  }
  return scores;
}

ScoreMatrix init_scores_distributed(const Graph& g, const CsspCollection& cssp,
                                    RunStats* stats) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<ScoreInitProtocol>(cssp, v));
  }
  EngineOptions opt;
  opt.max_rounds = cssp.h + cssp.sources.size() + 2;
  Engine engine(g, std::move(procs), opt);
  const RunStats phase = engine.run();
  if (stats != nullptr) *stats += phase;

  ScoreMatrix scores(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const ScoreInitProtocol&>(engine.protocol(v));
    scores[v] = p.counts();
  }
  return scores;
}

BlockerSetResult compute_blocker_set(const Graph& g,
                                     const CsspCollection& cssp) {
  const NodeId n = g.node_count();
  const std::size_t k = cssp.sources.size();
  BlockerSetResult res;
  res.size_bound = bounds::blocker_set_size(n, cssp.h);

  ScoreMatrix scores = init_scores_distributed(g, cssp, &res.stats);
  res.score_init_rounds = res.stats.rounds;

  const BfsTree tree = congest::build_bfs_tree(g, 0, &res.stats);

  while (true) {
    // Select the node covering the most uncovered h-paths.
    std::vector<std::int64_t> totals(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t t = 0;
      for (std::size_t i = 0; i < k; ++i) t += scores[v][i];
      totals[v] = static_cast<std::int64_t>(t);
    }
    const auto [best, c] = congest::converge_max(g, tree, totals, &res.stats);
    if (best == 0) break;
    congest::broadcast_values(g, tree, {static_cast<std::int64_t>(c)},
                              &res.stats);
    res.blockers.push_back(c);

    // Snapshot c's nonzero per-tree scores; both update phases consume it.
    std::vector<std::pair<std::size_t, std::uint64_t>> entries;
    for (std::size_t i = 0; i < k; ++i) {
      if (scores[c][i] > 0) entries.emplace_back(i, scores[c][i]);
    }

    const Round phase_rounds = static_cast<Round>(k) + cssp.h + 4;
    {  // Ancestor updates.
      std::vector<std::unique_ptr<Protocol>> procs;
      procs.reserve(n);
      for (NodeId v = 0; v < n; ++v) {
        procs.push_back(std::make_unique<AncestorUpdateProtocol>(
            cssp, v, c, &entries, &scores[v]));
      }
      EngineOptions opt;
      opt.max_rounds = phase_rounds;
      Engine engine(g, std::move(procs), opt);
      const RunStats phase = engine.run();
      res.update_congestion =
          std::max(res.update_congestion, phase.max_link_congestion);
      res.max_update_phase_rounds =
          std::max(res.max_update_phase_rounds, phase.last_message_round);
      res.stats += phase;
    }
    {  // Descendant updates (Algorithm 4).
      std::vector<std::unique_ptr<Protocol>> procs;
      procs.reserve(n);
      for (NodeId v = 0; v < n; ++v) {
        procs.push_back(std::make_unique<DescendantUpdateProtocol>(
            cssp, v, c, &entries, &scores[v]));
      }
      EngineOptions opt;
      opt.max_rounds = phase_rounds;
      Engine engine(g, std::move(procs), opt);
      const RunStats phase = engine.run();
      res.update_congestion =
          std::max(res.update_congestion, phase.max_link_congestion);
      res.max_update_phase_rounds =
          std::max(res.max_update_phase_rounds, phase.last_message_round);
      res.stats += phase;
    }
    // c zeroes its own scores (local step, Algorithm 4 line 1).
    for (std::size_t i = 0; i < k; ++i) scores[c][i] = 0;
  }
  return res;
}

bool covers_all_h_paths(const CsspCollection& cssp,
                        const std::vector<NodeId>& blockers) {
  std::vector<bool> in_q(cssp.parent.empty() ? 0 : cssp.parent[0].size(),
                         false);
  for (const NodeId b : blockers) in_q[b] = true;
  for (std::size_t i = 0; i < cssp.sources.size(); ++i) {
    const auto& parent = cssp.parent[i];
    for (NodeId v = 0; v < static_cast<NodeId>(parent.size()); ++v) {
      if (!cssp.in_tree(i, v) || cssp.depth[i][v] != cssp.h) continue;
      bool covered = false;
      for (NodeId u = v; u != kNoNode; u = parent[u]) {
        if (in_q[u]) {
          covered = true;
          break;
        }
      }
      if (in_q[cssp.sources[i]]) covered = true;
      if (!covered) return false;
    }
  }
  return true;
}

}  // namespace dapsp::core
