#!/usr/bin/env sh
# Builds and runs the engine microbenchmarks, writing the google-benchmark
# JSON to BENCH_ENGINE.json at the repo root.  The Sparse/Dense benchmark
# pairs measure the active-set scheduler against the exhaustive dense
# fallback on the same workloads (bit-identical stats, see docs/PERF.md);
# compare their real_time entries to read off the speedup.
#
# Engine scenarios also carry critical-path counters (critpath_ns,
# critpath_len, critpath_pct -- longest causal dependence chain, its step
# count, and its share of the engine phase wall-clock; see docs/PERF.md,
# "Critical-path profiling").  A per-scenario table is printed after the run.
#
# Extra arguments are forwarded to the bench binary, e.g.:
#   scripts/bench_engine.sh --benchmark_min_time=0.01s
#
# --compare OLD.json NEW.json skips the run and instead diffs two previously
# captured benchmark JSON files via scripts/bench_compare.py (per-scenario
# real_time and critpath_ns deltas; exits non-zero on a >5% real_time
# regression -- tune with --threshold PCT placed after the two files).
set -e
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--compare" ]; then
  shift
  exec python3 scripts/bench_compare.py "$@"
fi

if [ -f build/build.ninja ]; then
  cmake --build build --target bench_engine_micro
else
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build --target bench_engine_micro -j
fi

./build/bench/bench_engine_micro \
  --benchmark_out=BENCH_ENGINE.json --benchmark_out_format=json "$@"

echo "wrote $(pwd)/BENCH_ENGINE.json"

# Critical-path summary per scenario, read back from the benchmark JSON.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_ENGINE.json") as f:
    doc = json.load(f)
rows = [b for b in doc.get("benchmarks", []) if "critpath_ns" in b]
if rows:
    print()
    print("critical path per scenario (deterministic chain; docs/PERF.md):")
    for b in rows:
        print("  %-32s chain %6d steps  %10.3f ms  %5.1f%% of engine wall"
              % (b["name"], int(b["critpath_len"]),
                 b["critpath_ns"] / 1e6, b["critpath_pct"]))
EOF
fi
