// Path reconstruction from last-edge (parent) matrices.
//
// Every shortest-path result in this library reports, per (source, node),
// the last edge of a shortest path (the CONGEST model's required output).
// Walking those pointers backwards reconstructs a full path; this header
// provides that walk with cycle/validity guards, plus a checker used by
// tests and examples.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dapsp::core {

/// Reconstructs the node sequence source -> ... -> target by following
/// `parent` (parent[v] = predecessor of v, kNoNode at the source).
/// Returns nullopt if the pointers do not reach the source within
/// `max_hops` steps (cycle or dangling pointer) or if the target is
/// unreachable.
std::optional<std::vector<graph::NodeId>> extract_path(
    std::span<const graph::NodeId> parent, graph::NodeId source,
    graph::NodeId target,
    std::size_t max_hops = static_cast<std::size_t>(-1));

/// Total weight of a node sequence in g; nullopt if some arc is missing.
std::optional<graph::Weight> path_weight(
    const graph::Graph& g, std::span<const graph::NodeId> path);

/// True iff `parent` reconstructs, for every reachable target, a real path
/// of weight dist[target] (the standard routing-table soundness check).
bool parents_realize_distances(const graph::Graph& g, graph::NodeId source,
                               std::span<const graph::Weight> dist,
                               std::span<const graph::NodeId> parent);

}  // namespace dapsp::core
