// Deterministic, seedable random number generation for workload generators.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution because
// the distribution's output is not specified portably; benchmarks and tests
// must generate identical graphs on every platform.
#pragma once

#include <cstdint>
#include <limits>

#include "util/int_math.hpp"

namespace dapsp::util {

/// SplitMix64: used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), a fast high-quality PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = (*this)();
      const u128 m = u128{x} * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dapsp::util
