// Swappable oracle snapshots: the abstraction that turns "query a matrix"
// into "operate a serving tier".
//
// `OracleSnapshot` is the read-side interface the query service executes
// against.  A snapshot is immutable once published: any number of reader
// threads may call dist/next_hop/path concurrently with no synchronization,
// and the service swaps entire snapshots atomically (epoch + shared_ptr)
// under live traffic instead of ever mutating one in place.  Implementations:
//
//   * `FlatSnapshot` (here)             -- wraps the classic single-matrix
//     DistanceOracle; reports itself as one shard covering every row.
//   * `serve::ShardedOracle`            -- partitions the dist/next-hop
//     closure across S vertex-range shards (src/serve/sharded_oracle.hpp).
//
// The epoch is assigned by the query service at publication time and stamps
// every cache entry derived from the snapshot, so nothing computed against
// an old snapshot can be served after a swap.  `set_epoch` may only be
// called while the snapshot is exclusively owned (before the atomic store
// publishes it); after publication the snapshot is logically const.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/oracle.hpp"
#include "service/stats.hpp"

namespace dapsp::service {

class OracleSnapshot {
 public:
  virtual ~OracleSnapshot() = default;

  virtual NodeId node_count() const noexcept = 0;
  /// False when distances are (1+eps)-approximate.
  virtual bool exact() const noexcept = 0;
  /// True when a next-hop table exists (approx oracles are distance-only).
  virtual bool has_paths() const noexcept = 0;
  virtual const std::string& solver_label() const noexcept = 0;
  /// Stats of the run that produced the matrices (zeroed for kReference).
  virtual const congest::RunStats& build_stats() const noexcept = 0;
  /// Critical-path summary of the producing build; nullptr when the build
  /// was not profiled (OracleBuildOptions::critpath off, reference solver,
  /// or a process-global recorder owned the observation).
  virtual const obs::CritPathSummary* build_critpath() const noexcept {
    return nullptr;
  }
  /// Bytes held by the distance + next-hop tables across all shards.
  virtual std::size_t memory_bytes() const noexcept = 0;

  /// Distance u -> v (kInfDist when unreachable).  Unchecked hot path: ids
  /// must be < node_count(); the query service validates untrusted input.
  virtual Weight dist(NodeId u, NodeId v) const noexcept = 0;
  /// First hop on a shortest path u -> v; kNoNode when u == v, v is
  /// unreachable, or the snapshot is distance-only.  Unchecked ids.
  virtual NodeId next_hop(NodeId u, NodeId v) const noexcept = 0;

  /// Shard layout for occupancy reporting; ranges partition [0, n).
  virtual std::size_t shard_count() const noexcept = 0;
  virtual ShardInfo shard_info(std::size_t shard) const noexcept = 0;

  /// Full node sequence u ... v following next hops; nullopt when v is
  /// unreachable, the snapshot is distance-only, or ids are out of range.
  /// For u == v returns {u}.  Identical semantics (and bit-identical output)
  /// to DistanceOracle::path for every implementation.
  std::optional<std::vector<NodeId>> path(NodeId u, NodeId v) const;

  /// Publication epoch; 0 until the query service assigns one at swap time.
  std::uint64_t epoch() const noexcept { return epoch_; }
  /// Pre-publication only: the service stamps the epoch while it still holds
  /// the sole reference, then releases the snapshot to readers.
  void set_epoch(std::uint64_t e) noexcept { epoch_ = e; }

  std::vector<ShardInfo> shard_layout() const {
    std::vector<ShardInfo> out(shard_count());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = shard_info(i);
    return out;
  }

 private:
  std::uint64_t epoch_ = 0;
};

/// The single-matrix snapshot: a DistanceOracle behind the swappable
/// interface, reported as one shard spanning every source row.
class FlatSnapshot final : public OracleSnapshot {
 public:
  explicit FlatSnapshot(DistanceOracle oracle) : oracle_(std::move(oracle)) {}

  const DistanceOracle& oracle() const noexcept { return oracle_; }

  NodeId node_count() const noexcept override { return oracle_.node_count(); }
  bool exact() const noexcept override { return oracle_.exact(); }
  bool has_paths() const noexcept override { return oracle_.has_paths(); }
  const std::string& solver_label() const noexcept override {
    return oracle_.solver_label();
  }
  const congest::RunStats& build_stats() const noexcept override {
    return oracle_.build_stats();
  }
  const obs::CritPathSummary* build_critpath() const noexcept override {
    return oracle_.meta().critpath.empty() ? nullptr
                                           : &oracle_.meta().critpath;
  }
  std::size_t memory_bytes() const noexcept override {
    return oracle_.memory_bytes();
  }
  Weight dist(NodeId u, NodeId v) const noexcept override {
    return oracle_.dist(u, v);
  }
  NodeId next_hop(NodeId u, NodeId v) const noexcept override {
    return oracle_.next_hop(u, v);
  }
  std::size_t shard_count() const noexcept override { return 1; }
  ShardInfo shard_info(std::size_t) const noexcept override {
    return {0, oracle_.node_count(), oracle_.memory_bytes()};
  }

 private:
  DistanceOracle oracle_;
};

/// Convenience: build a flat snapshot from a finished oracle.
inline std::shared_ptr<FlatSnapshot> make_flat_snapshot(DistanceOracle o) {
  return std::make_shared<FlatSnapshot>(std::move(o));
}

}  // namespace dapsp::service
