#include "serve/sharded_oracle.hpp"

#include <algorithm>

#include "seq/dijkstra.hpp"
#include "util/int_math.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::serve {

using graph::kNoNode;

ShardedOracle::ShardedOracle(NodeId n, std::size_t shards) : n_(n) {
  const std::size_t s =
      std::clamp<std::size_t>(shards, 1, static_cast<std::size_t>(n));
  rows_per_shard_ = static_cast<NodeId>((n + s - 1) / s);
  // ceil(n / rows_per_shard) shards cover [0, n); the last may be short.
  const std::size_t count = (n + rows_per_shard_ - 1) / rows_per_shard_;
  shards_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_[i].row_begin = static_cast<NodeId>(i * rows_per_shard_);
    shards_[i].row_end = static_cast<NodeId>(
        std::min<std::size_t>(n, (i + 1) * rows_per_shard_));
  }
}

std::size_t ShardedOracle::memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    total += s.dist.size() * sizeof(Weight) + s.next.size() * sizeof(NodeId);
  }
  return total;
}

ShardInfo ShardedOracle::shard_info(std::size_t shard) const noexcept {
  const Shard& s = shards_[shard];
  return {s.row_begin, s.row_end,
          s.dist.size() * sizeof(Weight) + s.next.size() * sizeof(NodeId)};
}

std::shared_ptr<ShardedOracle> ShardedOracle::from_flat(
    const service::DistanceOracle& oracle, std::size_t shards) {
  const NodeId n = oracle.node_count();
  util::check(n > 0, "ShardedOracle::from_flat: empty oracle");
  auto out = std::shared_ptr<ShardedOracle>(new ShardedOracle(n, shards));
  out->exact_ = oracle.exact();
  out->has_paths_ = oracle.has_paths();
  out->label_ = oracle.solver_label();
  out->stats_ = oracle.build_stats();
  out->critpath_ = oracle.meta().critpath;
  for (Shard& s : out->shards_) {
    const std::size_t rows = s.row_end - s.row_begin;
    s.dist.reserve(rows * n);
    if (out->has_paths_) s.next.reserve(rows * n);
    for (NodeId u = s.row_begin; u < s.row_end; ++u) {
      const auto drow = oracle.dist_row(u);
      s.dist.insert(s.dist.end(), drow.begin(), drow.end());
      if (out->has_paths_) {
        const auto nrow = oracle.next_row(u);
        s.next.insert(s.next.end(), nrow.begin(), nrow.end());
      }
    }
  }
  return out;
}

std::shared_ptr<ShardedOracle> build_sharded_oracle(
    const graph::Graph& g, const service::OracleBuildOptions& opts,
    std::size_t shards) {
  util::check(g.node_count() > 0, "build_sharded_oracle: empty graph");
  if (opts.solver != service::Solver::kReference) {
    // The CONGEST solvers return the full closure in one piece (and the
    // fault-partition cross-check in build_oracle must see it whole);
    // partition the finished oracle row-by-row.
    return ShardedOracle::from_flat(service::build_oracle(g, opts), shards);
  }
  // Reference solver: fill each shard row directly from its source's
  // Dijkstra run -- no flat n x n matrix ever exists, so peak memory is the
  // sharded result itself.  Rows are computed by the same per-source
  // routine the flat builder uses, so the output is bit-identical to
  // from_flat(build_oracle(g, kReference)).
  const NodeId n = g.node_count();
  auto out = std::shared_ptr<ShardedOracle>(new ShardedOracle(n, shards));
  out->exact_ = true;
  out->has_paths_ = true;
  out->label_ = "reference (sequential Dijkstra sweep)";
  for (auto& s : out->shards_) {
    const std::size_t rows = s.row_end - s.row_begin;
    s.dist.assign(rows * n, 0);
    s.next.assign(rows * n, kNoNode);
  }
  util::ThreadPool::global().parallel_for(n, [&](std::size_t src) {
    const NodeId u = static_cast<NodeId>(src);
    auto& s = out->shards_[u / out->rows_per_shard_];
    const std::size_t off =
        static_cast<std::size_t>(u - s.row_begin) * n;
    auto r = seq::dijkstra(g, u);
    std::copy(r.dist.begin(), r.dist.end(), s.dist.data() + off);
    service::next_hops_from_parents(u, n, r.dist, r.parent,
                                    s.next.data() + off);
  });
  return out;
}

}  // namespace dapsp::serve
