// Sequential reference for k-shortest loopless paths (Yen's algorithm).
//
// Returns the k minimum-weight simple paths in (weight, hops, lexicographic
// node sequence) order -- query::route_less -- with every spur path
// computed by the canonical constrained reference (seq/constrained.hpp), so
// the output is a deterministic function of the graph alone.  The
// closure-accelerated engine (query::Analytics::k_shortest) implements the
// same contract and must match it path-for-path in the differential suite.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "query/types.hpp"

namespace dapsp::seq {

/// Up to `k` shortest loopless paths from `source` to `target`, sorted by
/// query::route_less; fewer (possibly zero) when the graph holds fewer
/// distinct simple paths.  Ids must be < g.node_count().
std::vector<query::Route> k_shortest_paths(const graph::Graph& g,
                                           graph::NodeId source,
                                           graph::NodeId target,
                                           std::uint32_t k);

}  // namespace dapsp::seq
