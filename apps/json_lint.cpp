// Strict JSON / JSONL validator for CI and scripts.
//
// Reads stdin.  Default mode treats the input as JSONL: every non-empty line
// must be a complete, valid JSON value (RFC 8259).  `--doc` validates the
// whole input as one JSON document instead (for files like
// BENCH_SUMMARY.json or a Chrome trace).  Exit 0 when valid; exit 1 and
// report offending line numbers otherwise.  No third-party dependencies:
// the validator is the same obs::json_valid the tests use.

#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

int usage() {
  std::cerr << "usage: json_lint [--doc] < input\n"
               "  validates stdin as JSONL (one JSON value per line);\n"
               "  --doc validates stdin as a single JSON document\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool doc = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--doc") {
      doc = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else {
      std::cerr << "json_lint: unknown argument '" << arg << "'\n";
      return usage();
    }
  }

  std::ostringstream buf;
  buf << std::cin.rdbuf();
  const std::string input = buf.str();

  if (doc) {
    if (dapsp::obs::json_valid(input)) {
      std::cout << "ok: valid JSON document\n";
      return 0;
    }
    std::cerr << "json_lint: invalid JSON document\n";
    return 1;
  }

  const auto bad = dapsp::obs::jsonl_invalid_lines(input);
  std::size_t lines = 0;
  {
    std::istringstream in(input);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) ++lines;
    }
  }
  if (bad.empty()) {
    std::cout << "ok: " << lines << " JSONL line(s)\n";
    return 0;
  }
  for (const std::size_t ln : bad) {
    std::cerr << "json_lint: invalid JSON on line " << ln << "\n";
  }
  return 1;
}
