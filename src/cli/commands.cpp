#include "cli/commands.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "baseline/bf_apsp.hpp"
#include "congest/engine.hpp"
#include "congest/faults.hpp"
#include "core/approx_apsp.hpp"
#include "core/blocker_apsp.hpp"
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "net/coordinator.hpp"
#include "net/worker.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "serve/sharded_oracle.hpp"
#include "serve/snapshot_manager.hpp"
#include "serve/wire.hpp"
#include "service/query_service.hpp"

namespace dapsp::cli {

namespace {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;
using graph::Weight;

/// Distance matrix + provenance shared by all APSP-ish commands.
struct DistOutput {
  std::vector<NodeId> sources;
  std::vector<std::vector<Weight>> dist;
  congest::RunStats stats;
  std::uint64_t bound = 0;
  std::string algo;
};

void write_table(const DistOutput& r, bool quiet, std::ostream& out) {
  out << "algorithm: " << r.algo << "\n"
      << "rounds: " << r.stats.rounds << " (bound " << r.bound << ")\n"
      << "messages: " << r.stats.total_messages
      << "  bytes: " << r.stats.message_bytes
      << "  max-link-congestion: " << r.stats.max_link_congestion << "\n"
      << "round-msgs: " << r.stats.round_messages_hist.summary() << "\n";
  if (r.stats.faults.any()) {
    const congest::FaultStats& f = r.stats.faults;
    out << "faults: dropped=" << f.dropped << " dup=" << f.duplicated
        << " delayed=" << f.delayed << " deferred=" << f.deferred
        << " crash-dropped=" << f.crash_dropped
        << " delivered=" << f.delivered << " max-backlog=" << f.max_backlog
        << "\n";
  }
  if (quiet) return;
  const std::size_t n = r.dist.empty() ? 0 : r.dist[0].size();
  out << "dist:\n     ";
  for (std::size_t v = 0; v < n; ++v) out << std::setw(5) << v;
  out << "\n";
  for (std::size_t i = 0; i < r.dist.size(); ++i) {
    out << std::setw(4) << r.sources[i] << " ";
    for (std::size_t v = 0; v < n; ++v) {
      if (r.dist[i][v] == kInfDist) {
        out << std::setw(5) << "inf";
      } else {
        out << std::setw(5) << r.dist[i][v];
      }
    }
    out << "\n";
  }
}

void write_json(const DistOutput& r, bool quiet, std::ostream& out) {
  // Through obs::JsonWriter so the algorithm label (which carries commas,
  // parens, and whatever a future solver puts in its name) is escaped and
  // the document always parses.
  obs::JsonWriter w(out);
  w.begin_object()
      .field("algorithm", r.algo)
      .field("rounds", static_cast<std::uint64_t>(r.stats.rounds))
      .field("bound", r.bound)
      .field("messages", r.stats.total_messages)
      .field("message_bytes", r.stats.message_bytes)
      .field("max_link_congestion", r.stats.max_link_congestion)
      .field("max_link_total", r.stats.max_link_total)
      .field("skipped_rounds", static_cast<std::uint64_t>(r.stats.skipped_rounds));
  w.key("round_messages");
  r.stats.round_messages_hist.write_json(w);
  if (r.stats.faults.any()) {
    const congest::FaultStats& f = r.stats.faults;
    w.key("faults")
        .begin_object()
        .field("dropped", f.dropped)
        .field("duplicated", f.duplicated)
        .field("delayed", f.delayed)
        .field("deferred", f.deferred)
        .field("crash_dropped", f.crash_dropped)
        .field("delivered", f.delivered)
        .field("max_backlog", f.max_backlog)
        .end_object();
  }
  if (!quiet) {
    w.key("sources").begin_array();
    for (const NodeId s : r.sources) w.value(static_cast<std::uint64_t>(s));
    w.end_array();
    w.key("dist").begin_array();
    for (const auto& row : r.dist) {
      w.begin_array();
      for (const Weight d : row) {
        if (d == kInfDist) {
          w.null();
        } else {
          w.value(static_cast<std::int64_t>(d));
        }
      }
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();
  out << "\n";
}

void write_csv(const DistOutput& r, std::ostream& out) {
  // Header comment rows, then source,target,dist rows (inf omitted).
  out << "# algorithm," << r.algo << "\n# rounds," << r.stats.rounds
      << "\n# messages," << r.stats.total_messages << "\n";
  out << "source,target,dist\n";
  for (std::size_t i = 0; i < r.dist.size(); ++i) {
    for (std::size_t v = 0; v < r.dist[i].size(); ++v) {
      if (r.dist[i][v] == kInfDist) continue;
      out << r.sources[i] << ',' << v << ',' << r.dist[i][v] << "\n";
    }
  }
}

void emit(const Options& opt, const DistOutput& r, std::ostream& out) {
  std::ostringstream buffer;
  if (opt.format == Format::kJson) {
    write_json(r, opt.quiet, buffer);
  } else if (opt.format == Format::kCsv) {
    write_csv(r, buffer);
  } else {
    write_table(r, opt.quiet, buffer);
  }
  if (opt.out_file) {
    std::ofstream file(*opt.out_file);
    if (!file) throw std::runtime_error("cannot open " + *opt.out_file);
    file << buffer.str();
  } else {
    out << buffer.str();
  }
}

DistOutput run_apsp(const Options& opt, const Graph& g) {
  DistOutput r;
  r.sources.resize(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) r.sources[v] = v;
  switch (opt.algo) {
    case Algo::kPipelined: {
      const Weight delta = graph::max_finite_distance(g);
      auto res = core::pipelined_apsp(g, delta);
      r.dist = std::move(res.dist);
      r.stats = res.stats;
      r.bound = res.theoretical_bound;
      r.algo = "pipelined (Algorithm 1, Thm I.1 ii)";
      break;
    }
    case Algo::kBlocker: {
      core::BlockerApspParams p;
      p.h = opt.h;
      auto res = core::blocker_apsp(g, p);
      r.dist = std::move(res.dist);
      r.stats = res.stats;
      r.bound = res.theoretical_bound;
      r.algo = "blocker (Algorithm 3, Thm I.2, h=" + std::to_string(res.h) + ")";
      break;
    }
    case Algo::kBellmanFord: {
      auto res = baseline::bf_apsp(g);
      r.dist = std::move(res.dist);
      r.stats = res.stats;
      r.bound = static_cast<std::uint64_t>(g.node_count()) *
                (g.node_count() + 2ULL);
      r.algo = "bellman-ford baseline (n sequential SSSPs)";
      break;
    }
  }
  return r;
}

DistOutput run_kssp(const Options& opt, const Graph& g) {
  DistOutput r;
  const Weight delta = graph::max_finite_distance(g);
  if (opt.algo == Algo::kBlocker) {
    core::BlockerApspParams p;
    p.sources = opt.sources;
    p.h = opt.h;
    auto res = core::blocker_apsp(g, p);
    r.sources = res.sources;
    r.dist = std::move(res.dist);
    r.stats = res.stats;
    r.bound = res.theoretical_bound;
    r.algo = "blocker k-SSP (Algorithm 3)";
  } else {
    auto res = core::pipelined_kssp_full(g, opt.sources, delta);
    r.sources = res.sources;
    r.dist = std::move(res.dist);
    r.stats = res.stats;
    r.bound = res.theoretical_bound;
    r.algo = "pipelined k-SSP (Thm I.1 iii)";
  }
  return r;
}

DistOutput run_approx(const Options& opt, const Graph& g) {
  core::ApproxApspParams p;
  p.eps = opt.eps;
  auto res = core::approx_apsp(g, p);
  DistOutput r;
  r.sources.resize(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) r.sources[v] = v;
  r.dist = std::move(res.dist);
  r.stats = res.stats;
  r.bound = res.implementation_bound;
  std::ostringstream name;
  name << "approx APSP (Thm I.5, eps=" << opt.eps << ", " << res.scales
       << " scales)";
  r.algo = name.str();
  return r;
}

int cmd_info(const Options& opt, const Graph& g, std::ostream& out) {
  const Weight delta = graph::max_finite_distance(g);
  out << "nodes: " << g.node_count() << "\n"
      << "edges: " << g.comm_edge_count()
      << (g.directed() ? " (directed arcs: " + std::to_string(g.edge_count()) + ")"
                       : "")
      << "\n"
      << "max weight W: " << g.max_weight() << "\n"
      << "max finite distance Delta: " << delta << "\n"
      << "comm diameter: " << graph::comm_diameter(g) << "\n"
      << "strongly connected: "
      << (graph::strongly_connected(g) ? "yes" : "no") << "\n"
      << "Thm I.1(ii) APSP bound: "
      << core::bounds::apsp_pipelined(g.node_count(),
                                      static_cast<std::uint64_t>(delta))
      << " rounds\n";
  if (opt.dot_file) {
    std::ofstream dot(*opt.dot_file);
    if (!dot) throw std::runtime_error("cannot open " + *opt.dot_file);
    graph::write_dot(dot, g);
  }
  return 0;
}

int cmd_gen(const Options& opt, const Graph& g, std::ostream& out) {
  if (opt.out_file) {
    graph::save_graph(*opt.out_file, g);
  } else {
    graph::write_graph(out, g);
  }
  if (opt.dot_file) {
    std::ofstream dot(*opt.dot_file);
    if (!dot) throw std::runtime_error("cannot open " + *opt.dot_file);
    graph::write_dot(dot, g);
  }
  return 0;
}

service::OracleBuildOptions make_build_options(const Options& opt) {
  service::OracleBuildOptions b;
  b.solver = service::parse_solver(opt.solver);
  b.h = opt.h;
  b.eps = opt.eps;
  // With --critpath but no trace/profile recorder of its own, the build
  // profiles itself and the summary surfaces through the stats paths (text
  // `stats`, binary STATS opcode).  When a TraceScope recorder is active it
  // owns the observation and build_oracle skips this (see oracle.hpp).
  b.critpath = opt.critpath;
  return b;
}

/// Builds the oracle snapshot + query service for serve/query from the
/// options.  --shards > 1 partitions the closure into vertex-range shards
/// (bit-identical answers either way); the human-readable header is
/// suppressed by --quiet and for json (machine-readable stream) and binary
/// (framed stream) output.
service::QueryService make_service(const Options& opt, const Graph& g,
                                   std::ostream& out, double* build_ms) {
  const service::OracleBuildOptions b = make_build_options(opt);
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<service::OracleSnapshot> snap;
  if (opt.backend == "socket") {
    // Multi-process build: the coordinator spawns `dapsp worker` children
    // and reassembles a bit-identical oracle from their owned rows.  The
    // parser already rejected --shards/--faults/--critpath combinations.
    net::SocketBackendOptions sopt;
    sopt.workers = opt.workers;
    sopt.tcp = opt.transport == "tcp";
    sopt.timeout_ms = opt.net_timeout_ms;
    snap = service::make_flat_snapshot(net::socket_build_oracle(g, b, sopt));
  } else if (opt.shards <= 1) {
    snap = service::make_flat_snapshot(service::build_oracle(g, b));
  } else {
    snap = serve::build_sharded_oracle(g, b, opt.shards);
  }
  *build_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  if (!opt.quiet &&
      (opt.format == Format::kTable || opt.format == Format::kCsv)) {
    out << "oracle: n=" << snap->node_count() << " solver=["
        << snap->solver_label() << "]"
        << " exact=" << (snap->exact() ? "yes" : "no")
        << " paths=" << (snap->has_paths() ? "yes" : "no")
        << " shards=" << snap->shard_count()
        << " mem=" << (snap->memory_bytes() / 1024) << "KiB"
        << " build=" << std::fixed << std::setprecision(1) << *build_ms
        << "ms rounds=" << snap->build_stats().rounds << "\n";
    out.unsetf(std::ios::fixed);
  }
  service::QueryServiceConfig cfg;
  cfg.threads = opt.threads;
  cfg.path_cache_capacity = opt.cache_capacity;
  cfg.max_batch = opt.max_batch;
  return service::QueryService(std::move(snap), cfg);
}

int cmd_serve(const Options& opt, const Graph& g, std::ostream& out) {
  double build_ms = 0;
  service::QueryService svc = make_service(opt, g, out, &build_ms);
  // Attach the input graph so the analytics families (kpath/route/report/bc)
  // answer instead of erroring.  Non-owning alias: `g` outlives the service
  // (both live in run_command's scope).
  svc.enable_analytics(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>{}, &g));
  // The manager gives the session's "rebuild" directive a real hot swap:
  // same graph + build options, fresh snapshot, published atomically under
  // whatever traffic the serve loop is carrying.
  serve::SnapshotManager manager(svc, g, make_build_options(opt),
                                 std::max<std::size_t>(opt.shards, 1));
  service::ServeOptions serve_opts;
  serve_opts.json = opt.format == Format::kJson;
  serve_opts.on_rebuild = [&manager] { return manager.rebuild_now(); };
  std::ifstream file;
  if (opt.queries_file) {
    const auto mode = opt.format == Format::kBinary
                          ? std::ios::in | std::ios::binary
                          : std::ios::in;
    file.open(*opt.queries_file, mode);
    if (!file) throw std::runtime_error("cannot open " + *opt.queries_file);
  }
  std::istream& in = opt.queries_file ? static_cast<std::istream&>(file)
                                      : std::cin;
  const int malformed =
      opt.format == Format::kBinary
          ? serve::wire::serve_binary(svc, in, out, serve_opts)
          : svc.serve_stream(in, out, serve_opts);
  if (!opt.quiet && opt.format == Format::kTable) {
    out << svc.stats().summary() << "\n";
  }
  return malformed == 0 ? 0 : 1;
}

int cmd_query(const Options& opt, const Graph& g, std::ostream& out) {
  double build_ms = 0;
  service::QueryService svc = make_service(opt, g, out, &build_ms);
  svc.enable_analytics(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>{}, &g));
  // Collect the batch: every --q, then every line of --queries.
  std::vector<std::string> lines = opt.query_strings;
  if (opt.queries_file) {
    std::ifstream file(*opt.queries_file);
    if (!file) throw std::runtime_error("cannot open " + *opt.queries_file);
    std::string line;
    while (std::getline(file, line)) {
      if (line.empty() || line[0] == '#') continue;
      lines.push_back(line);
    }
  }
  std::vector<service::Query> batch;
  batch.reserve(lines.size());
  for (const std::string& line : lines) {
    std::string error;
    const auto q = service::QueryService::parse_query(line, &error);
    if (!q) throw std::invalid_argument("bad query '" + line + "': " + error);
    batch.push_back(*q);
  }
  const auto results = svc.query_batch(batch);
  for (const auto& r : results) {
    if (opt.format == Format::kJson) {
      service::QueryService::write_result_json(r, out);
    } else {
      service::QueryService::write_result_text(r, out);
    }
  }
  if (!opt.quiet && opt.format != Format::kJson) {
    out << svc.stats().summary() << "\n";
  }
  return 0;
}

/// Process-wide trace recording for the duration of one command.  The
/// recorder is installed via Engine::set_global_recorder so it reaches the
/// engines the solvers construct internally (including oracle builds for
/// serve/query); RAII guarantees the global pointer never outlives the
/// recorder, even when the command throws.  File export is an explicit step
/// so open failures surface as command errors, not silent destructor noise.
///
/// --critpath (and the profile command, which implies it) additionally
/// turns on work-item recording so the recorder can feed the critical-path
/// analyzer; --trace-capacity overrides both ring capacities, which is how
/// the overflow warning below becomes testable on small runs.
class TraceScope {
 public:
  explicit TraceScope(const Options& opt) : opt_(opt) {
    const bool wants_items =
        opt_.critpath || opt_.command == Command::kProfile;
    // --critpath alone (no trace files, not the profile command) installs
    // nothing here: the oracle builder then profiles its own build and the
    // summary reaches the serve/query stats paths instead.
    if (opt_.trace_file || opt_.trace_jsonl_file ||
        opt_.command == Command::kProfile) {
      obs::TraceRecorder::Options ropt;
      if (opt_.trace_capacity) ropt.capacity = *opt_.trace_capacity;
      if (wants_items) {
        ropt.work_item_capacity =
            opt_.trace_capacity.value_or(std::size_t{1} << 20);
      }
      recorder_ = std::make_unique<obs::TraceRecorder>(ropt);
      congest::Engine::set_global_recorder(recorder_.get());
    }
  }
  ~TraceScope() {
    if (recorder_) congest::Engine::set_global_recorder(nullptr);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  const obs::TraceRecorder* recorder() const { return recorder_.get(); }

  void export_files() const {
    if (!recorder_) return;
    if (opt_.trace_file) {
      std::ofstream f(*opt_.trace_file);
      if (!f) throw std::runtime_error("cannot open " + *opt_.trace_file);
      recorder_->write_chrome_trace(f);
    }
    if (opt_.trace_jsonl_file) {
      std::ofstream f(*opt_.trace_jsonl_file);
      if (!f) throw std::runtime_error("cannot open " + *opt_.trace_jsonl_file);
      recorder_->write_run_record(f);
    }
  }

  /// Ring overflow is a first-class warning, not a buried counter: a
  /// silently truncated trace reads exactly like a complete one.  The same
  /// counts are stamped into the run-record meta line; this is the
  /// human-facing copy.
  void warn_drops(std::ostream& err) const {
    if (!recorder_) return;
    const std::uint64_t ev = recorder_->dropped_events();
    const std::uint64_t wi = recorder_->dropped_work_items();
    if (ev == 0 && wi == 0) return;
    err << "warning: trace ring overflow: " << ev << " round events and "
        << wi
        << " work items overwritten; the record is incomplete (raise "
           "--trace-capacity)\n";
  }

 private:
  const Options& opt_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

/// `dapsp profile`: run a solver under the critical-path profiler and
/// report where its wall-clock went.  With --sources the target is a k-SSP
/// run (respecting --algo); otherwise an oracle build for --solver -- the
/// same builds serve/query time, now explained.  The two check lines are
/// the analyzer's self-consistency invariants (chain-span wall-clock can
/// never exceed the command's wall-clock, and a real critical path must
/// cover at least the largest single phase); CI's profile-smoke step
/// asserts them from the json form.
int cmd_profile(const Options& opt, const Graph& g,
                const obs::TraceRecorder& rec, std::ostream& out) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string target;
  congest::RunStats run_stats;
  if (!opt.sources.empty()) {
    DistOutput r = run_kssp(opt, g);
    target = std::move(r.algo);
    run_stats = std::move(r.stats);
  } else {
    const auto oracle = service::build_oracle(g, make_build_options(opt));
    target = oracle.solver_label();
    run_stats = oracle.build_stats();
  }
  const auto wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  obs::CritPathOptions copt;
  copt.top_k_segments = opt.top_k;
  const obs::CritPathReport rep = obs::analyze_critical_path(rec, copt);
  const bool chain_le_wall = rep.total_ns <= wall_ns;
  const bool chain_ge_max_phase = rep.total_ns >= rep.max_phase_ns;

  std::ostringstream buffer;
  if (opt.format == Format::kJson) {
    obs::JsonWriter w(buffer);
    w.begin_object()
        .field("type", "profile")
        .field("target", target)
        .field("n", static_cast<std::uint64_t>(g.node_count()))
        .field("m", static_cast<std::uint64_t>(g.comm_edge_count()))
        .field("wall_ns", wall_ns)
        .field("messages", run_stats.total_messages)
        .field("message_bytes", run_stats.message_bytes)
        .field("deliver_s", run_stats.deliver_seconds)
        .field("chain_le_wall", chain_le_wall)
        .field("chain_ge_max_phase", chain_ge_max_phase);
    w.key("critpath");
    obs::write_critpath_json(rep, w);
    w.end_object();
    buffer << "\n";
  } else {
    buffer << "profile: " << target << "\n"
           << "graph: n=" << g.node_count() << " m=" << g.comm_edge_count()
           << "\n"
           << "wall: " << std::fixed << std::setprecision(2)
           << (static_cast<double>(wall_ns) / 1e6) << "ms\n"
           << "deliver: messages=" << run_stats.total_messages
           << " bytes=" << run_stats.message_bytes << " ("
           << (run_stats.deliver_seconds * 1e3) << "ms)\n";
    buffer.unsetf(std::ios::fixed);
    obs::write_critpath_table(rep, buffer);
    buffer << "check: chain<=wall " << (chain_le_wall ? "yes" : "NO")
           << "  chain>=max-phase " << (chain_ge_max_phase ? "yes" : "NO")
           << "\n";
  }
  if (opt.out_file) {
    std::ofstream file(*opt.out_file);
    if (!file) throw std::runtime_error("cannot open " + *opt.out_file);
    file << buffer.str();
  } else {
    out << buffer.str();
  }
  return chain_le_wall ? 0 : 1;
}

/// Process-wide fault injection for the duration of one command.  Parses
/// --faults into a FaultPlan (applying the --fault-seed override) and
/// installs it via Engine::set_global_fault_plan so every engine the
/// command constructs -- including oracle builds for serve/query -- runs
/// under the same plan.  RAII clears the global even when the command
/// throws, so a failed faulted run cannot leak faults into a later one.
class FaultScope {
 public:
  explicit FaultScope(const Options& opt) {
    if (!opt.faults_spec) return;
    plan_ = congest::FaultPlan::parse(*opt.faults_spec);
    if (opt.fault_seed) plan_.seed = *opt.fault_seed;
    congest::Engine::set_global_fault_plan(&plan_);
    installed_ = true;
  }
  ~FaultScope() {
    if (installed_) congest::Engine::set_global_fault_plan(nullptr);
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  congest::FaultPlan plan_;
  bool installed_ = false;
};

/// Process-wide worker pinning for the duration of one command (--pin):
/// every engine the command constructs pins its resolved pool's workers.
/// RAII clears the override so library callers never inherit it.
class PinScope {
 public:
  explicit PinScope(const Options& opt) : installed_(opt.pin) {
    if (installed_) congest::Engine::set_force_pin(true);
  }
  ~PinScope() {
    if (installed_) congest::Engine::set_force_pin(false);
  }
  PinScope(const PinScope&) = delete;
  PinScope& operator=(const PinScope&) = delete;

 private:
  bool installed_;
};

}  // namespace

Graph make_input_graph(const Options& opt) {
  if (opt.graph_file) return graph::load_graph(*opt.graph_file);
  const graph::WeightSpec w{opt.wmin, opt.wmax, opt.zero_fraction};
  if (opt.gen == "erdos_renyi") {
    return graph::erdos_renyi(opt.n, opt.p, w, opt.seed, opt.directed);
  }
  if (opt.gen == "grid") {
    const auto side = static_cast<NodeId>(std::max<NodeId>(
        2, static_cast<NodeId>(std::sqrt(static_cast<double>(opt.n)))));
    return graph::grid(side, (opt.n + side - 1) / side, w, opt.seed);
  }
  if (opt.gen == "cycle") return graph::cycle(opt.n, w, opt.seed, opt.directed);
  if (opt.gen == "path") return graph::path(opt.n, w, opt.seed, opt.directed);
  if (opt.gen == "tree") return graph::random_tree(opt.n, w, opt.seed);
  if (opt.gen == "ba") return graph::barabasi_albert(opt.n, 2, w, opt.seed);
  if (opt.gen == "rmat") {
    return graph::rmat(opt.scale, opt.edgefactor, w, opt.seed, opt.directed,
                       /*connect=*/true, opt.threads);
  }
  throw std::invalid_argument("unknown generator '" + opt.gen + "'");
}

int run_command(const Options& opt, std::ostream& out, std::ostream& err) {
  try {
    if (opt.command == Command::kHelp) {
      out << usage();
      return 0;
    }
    if (opt.command == Command::kWorker) {
      // Shard process: no input graph of its own -- the job (graph + solver
      // options) arrives over the socket from the coordinator that spawned
      // us.  Dispatched before make_input_graph for exactly that reason.
      return net::worker_main({opt.connect, opt.rank, opt.net_timeout_ms});
    }
    const Graph g = make_input_graph(opt);
    const TraceScope trace(opt);
    const FaultScope faults(opt);
    const PinScope pin(opt);
    int rc = 0;
    switch (opt.command) {
      case Command::kGen:
        rc = cmd_gen(opt, g, out);
        break;
      case Command::kInfo:
        rc = cmd_info(opt, g, out);
        break;
      case Command::kApsp:
        emit(opt, run_apsp(opt, g), out);
        break;
      case Command::kKssp:
        emit(opt, run_kssp(opt, g), out);
        break;
      case Command::kApprox:
        emit(opt, run_approx(opt, g), out);
        break;
      case Command::kServe:
        rc = cmd_serve(opt, g, out);
        break;
      case Command::kQuery:
        rc = cmd_query(opt, g, out);
        break;
      case Command::kProfile:
        rc = cmd_profile(opt, g, *trace.recorder(), out);
        break;
      case Command::kWorker:
      case Command::kHelp:
        break;
    }
    trace.export_files();
    trace.warn_drops(err);
    return rc;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dapsp::cli
