// Closure-backed analytics engine: the four query families the serving tier
// answers on top of the APSP distance/next-hop closure.
//
//  * k_shortest      -- Yen's loopless k-shortest paths, with every spur
//                       search answered through `constrained_route` (below),
//                       so the common case reads one closure walk instead of
//                       running a graph search.
//  * constrained_route -- canonical shortest path under avoid-node /
//                       avoid-edge sets and a hop budget.  Fast path: the
//                       closure's canonical path is re-walked against the
//                       constraints (O(path) from dist row + next-hop); only
//                       when it is infeasible does the engine fall back to a
//                       filtered search, still pruned by closure
//                       reachability (a node that cannot reach the target
//                       unconstrained can never appear on a feasible route).
//  * report          -- eccentricity / radius / diameter / farness from row
//                       scans of the served dist matrix, parallelized over
//                       the snapshot's source rows (shard-local reads on the
//                       sharded tier).
//  * betweenness     -- Brandes accumulation over the canonical
//                       shortest-path DAG reconstructed per source from the
//                       served dist row: tight arcs (d[u] + w = d[v])
//                       filtered to hop-minimal ones via a BFS that recovers
//                       l(s, .), which keeps the DAG acyclic under
//                       zero-weight edges.
//
// All answers follow the canonical (weight, hops, min-parent-id) contract of
// query/types.hpp; tests/property_test.cpp holds them bit-equal (betweenness:
// numerically equal) to the sequential references in src/seq/.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "query/types.hpp"
#include "service/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::query {

class Analytics {
 public:
  /// The graph must be the one the served snapshots were built from; every
  /// method checks node_count agreement and the snapshot's capabilities
  /// (next-hop table present, exact distances) before answering.
  explicit Analytics(std::shared_ptr<const graph::Graph> g);

  const graph::Graph& graph() const noexcept { return *g_; }

  /// Up to k shortest loopless paths source->target in route_less order.
  /// Requires snap.has_paths().  Empty when target is unreachable.
  std::vector<Route> k_shortest(const service::OracleSnapshot& snap, NodeId u,
                                NodeId v, std::uint32_t k) const;

  /// Canonical constrained shortest path, or nullopt when infeasible.
  /// Requires snap.has_paths().
  std::optional<Route> constrained_route(const service::OracleSnapshot& snap,
                                         NodeId u, NodeId v,
                                         const RouteConstraints& c) const;

  /// Whole-graph distance report; row scans run on `pool`.  Requires
  /// snap.exact().
  GraphReport report(const service::OracleSnapshot& snap,
                     util::ThreadPool& pool) const;

  /// Betweenness centrality over betweenness_sources(n, samples).  Sources
  /// are processed in fixed-size chunks whose partial scores are reduced in
  /// chunk order, so the result is bit-identical for every thread count.
  /// Requires snap.exact() (the tight-arc test needs exact distances).
  std::vector<double> betweenness(const service::OracleSnapshot& snap,
                                  std::uint32_t samples,
                                  util::ThreadPool& pool) const;

 private:
  std::optional<Route> constrained_search(const service::OracleSnapshot& snap,
                                          NodeId u, NodeId v,
                                          const RouteConstraints& c) const;

  std::shared_ptr<const graph::Graph> g_;
};

}  // namespace dapsp::query
