// Distributed Bellman-Ford (the classic CONGEST SSSP/APSP comparator, and
// the SSSP building block of Algorithm 3's Steps 3-4).
//
// One SSSP takes at most n rounds: every node rebroadcasts its label when it
// improves.  Reverse mode computes distances *into* the root (dist(v, root))
// using the bidirectional communication links of the CONGEST model.
// The APSP baseline runs the n SSSPs back-to-back, which is the classic
// O(n^2)-round deterministic approach Table I improves upon.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::baseline {

using graph::NodeId;
using graph::Weight;

struct BfSsspResult {
  std::vector<Weight> dist;
  std::vector<std::uint32_t> hops;
  std::vector<NodeId> parent;
  congest::RunStats stats;
  congest::Round settle_round = 0;
};

/// Forward SSSP from `source`; `reverse` computes dist(v, source) instead.
/// `max_rounds` of 0 means n + 2.
BfSsspResult bf_sssp(const graph::Graph& g, NodeId source, bool reverse = false,
                     congest::Round max_rounds = 0);

struct BfApspResult {
  std::vector<std::vector<Weight>> dist;  ///< dist[s][v]
  congest::RunStats stats;                ///< n sequential SSSP phases
};

/// n sequential Bellman-Ford SSSPs (the O(n^2)-round baseline).
BfApspResult bf_apsp(const graph::Graph& g);

}  // namespace dapsp::baseline
