// Unit tests for congest::RunStats sequential composition (operator+=) and
// summary() formatting.  Composition is how multi-phase algorithms (CSSSP +
// blocker + SSSP trees + combine) report one round total, so the offset
// arithmetic here is load-bearing for every Table-1 number.
#include <gtest/gtest.h>

#include "congest/metrics.hpp"

namespace dapsp::congest {
namespace {

RunStats phase(Round rounds, std::uint64_t messages,
               std::uint64_t congestion, Round congestion_round,
               Round last_msg_round) {
  RunStats s;
  s.rounds = rounds;
  s.total_messages = messages;
  s.max_link_congestion = congestion;
  s.max_congestion_round = congestion_round;
  s.last_message_round = last_msg_round;
  s.max_link_total = congestion;  // one busy link, single phase
  return s;
}

TEST(RunStats, ComposeAddsRoundsAndMessages) {
  RunStats a = phase(10, 100, 2, 4, 9);
  const RunStats b = phase(5, 30, 1, 2, 5);
  a += b;
  EXPECT_EQ(a.rounds, 15u);
  EXPECT_EQ(a.total_messages, 130u);
}

TEST(RunStats, ComposeOffsetsSecondPhaseRounds) {
  // Rounds of the second phase happen after the first, so b's round-indexed
  // fields shift by a.rounds.
  RunStats a = phase(10, 100, 2, 4, 9);
  const RunStats b = phase(5, 30, 7, 2, 5);
  a += b;
  // b's congestion peak (7 > 2) wins and lands at round 10 + 2.
  EXPECT_EQ(a.max_link_congestion, 7u);
  EXPECT_EQ(a.max_congestion_round, 12u);
  // b sent its last message in its round 5 -> global round 15.
  EXPECT_EQ(a.last_message_round, 15u);
}

TEST(RunStats, ComposeKeepsFirstPhasePeakOnTie) {
  RunStats a = phase(10, 100, 3, 4, 9);
  const RunStats b = phase(5, 30, 3, 2, 5);
  a += b;
  EXPECT_EQ(a.max_link_congestion, 3u);
  EXPECT_EQ(a.max_congestion_round, 4u);  // first occurrence, not offset
}

TEST(RunStats, ComposeWithSilentSecondPhase) {
  // A phase that sent nothing must not clobber last_message_round.
  RunStats a = phase(10, 100, 2, 4, 9);
  RunStats b;
  b.rounds = 3;
  a += b;
  EXPECT_EQ(a.rounds, 13u);
  EXPECT_EQ(a.last_message_round, 9u);
  EXPECT_EQ(a.max_congestion_round, 4u);
}

TEST(RunStats, ComposeMaximaAndFlags) {
  RunStats a = phase(2, 5, 1, 1, 2);
  a.max_message_fields = 2;
  RunStats b = phase(2, 5, 1, 1, 2);
  b.max_link_total = 40;
  b.max_message_fields = 3;
  b.hit_round_limit = true;
  a += b;
  EXPECT_EQ(a.max_link_total, 40u);
  EXPECT_EQ(a.max_message_fields, 3u);
  EXPECT_TRUE(a.hit_round_limit);
  // OR is sticky in the other direction too.
  RunStats c;
  a += c;
  EXPECT_TRUE(a.hit_round_limit);
}

TEST(RunStats, ComposePerRoundHistogramOccupiesTail) {
  RunStats a = phase(3, 6, 1, 1, 3);
  a.per_round_messages = {1, 2, 3};
  RunStats b = phase(2, 9, 1, 1, 2);
  b.per_round_messages = {4, 5};
  a += b;
  ASSERT_EQ(a.per_round_messages.size(), 5u);
  EXPECT_EQ(a.per_round_messages, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));

  // One side unrecorded: the other still lands at the right offset.
  RunStats c;
  c.rounds = 2;
  RunStats d = phase(1, 7, 1, 1, 1);
  d.per_round_messages = {7};
  c += d;
  EXPECT_EQ(c.per_round_messages, (std::vector<std::uint64_t>{0, 0, 7}));
}

TEST(RunStats, ComposeIsAssociativeOnTotals) {
  const RunStats p1 = phase(4, 10, 2, 3, 4);
  const RunStats p2 = phase(6, 20, 5, 1, 6);
  const RunStats p3 = phase(2, 5, 4, 2, 1);
  RunStats left = p1;
  left += p2;
  left += p3;
  RunStats right = p2;
  right += p3;
  RunStats total = p1;
  total += right;
  EXPECT_EQ(left.rounds, total.rounds);
  EXPECT_EQ(left.total_messages, total.total_messages);
  EXPECT_EQ(left.max_link_congestion, total.max_link_congestion);
  EXPECT_EQ(left.max_congestion_round, total.max_congestion_round);
  EXPECT_EQ(left.last_message_round, total.last_message_round);
}

TEST(RunStats, SummaryFormat) {
  RunStats s = phase(15, 130, 7, 12, 15);
  s.max_link_total = 42;
  s.message_bytes = 130 * 40;
  EXPECT_EQ(s.summary(),
            "rounds=15 last_msg_round=15 messages=130 bytes=5200 "
            "max_congestion=7 max_link_total=42");
  s.hit_round_limit = true;
  EXPECT_EQ(s.summary(),
            "rounds=15 last_msg_round=15 messages=130 bytes=5200 "
            "max_congestion=7 max_link_total=42 [HIT ROUND LIMIT]");
  EXPECT_EQ(RunStats{}.summary(),
            "rounds=0 last_msg_round=0 messages=0 bytes=0 max_congestion=0 "
            "max_link_total=0");
}

TEST(FaultStatsTest, AnyAndCompose) {
  FaultStats a;
  EXPECT_FALSE(a.any());
  a.dropped = 3;
  a.max_backlog = 7;
  EXPECT_TRUE(a.any());
  FaultStats b;
  b.duplicated = 2;
  b.delivered = 10;
  b.max_backlog = 4;
  a += b;
  EXPECT_EQ(a.dropped, 3u);
  EXPECT_EQ(a.duplicated, 2u);
  EXPECT_EQ(a.delivered, 10u);
  // Backlogs are peaks, not totals: composing phases keeps the max.
  EXPECT_EQ(a.max_backlog, 7u);
  FaultStats only_delivered;
  only_delivered.delivered = 1;
  EXPECT_TRUE(only_delivered.any());
}

TEST(RunStats, SummaryIncludesFaultsOnlyWhenAny) {
  RunStats s = phase(5, 10, 2, 3, 5);
  EXPECT_EQ(s.summary().find("faults{"), std::string::npos);
  s.faults.dropped = 4;
  s.faults.delivered = 6;
  s.faults.max_backlog = 2;
  const std::string sum = s.summary();
  EXPECT_NE(sum.find("faults{dropped=4"), std::string::npos) << sum;
  EXPECT_NE(sum.find("delivered=6"), std::string::npos) << sum;
  EXPECT_NE(sum.find("max_backlog=2"), std::string::npos) << sum;
  // Fault counters fold into += like every other accumulated stat.
  RunStats t = phase(3, 4, 1, 1, 2);
  t.faults.dropped = 1;
  t.faults.max_backlog = 9;
  s += t;
  EXPECT_EQ(s.faults.dropped, 5u);
  EXPECT_EQ(s.faults.max_backlog, 9u);
}

}  // namespace
}  // namespace dapsp::congest
