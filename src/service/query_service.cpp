#include "service/query_service.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <limits>
#include <list>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace dapsp::service {

using graph::kInfDist;
using graph::kNoNode;

// ---------------------------------------------------------------------------
// Sharded LRU cache for reconstructed paths.

class QueryService::PathCache {
 public:
  PathCache(std::size_t capacity, std::size_t shards)
      : shards_(std::max<std::size_t>(1, shards)),
        per_shard_capacity_(std::max<std::size_t>(
            1, (capacity + shards_.size() - 1) / shards_.size())) {}

  bool lookup(std::uint64_t key, std::vector<NodeId>* out) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
    *out = it->second->second;
    ++s.hits;
    return true;
  }

  void insert(std::uint64_t key, const std::vector<NodeId>& path) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {  // raced with another miss; refresh recency
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.emplace_front(key, path);
    s.map.emplace(key, s.lru.begin());
    if (s.map.size() > per_shard_capacity_) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      ++s.evictions;
    }
  }

  void account(ServiceStats* st) const {
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      st->cache_hits += s.hits;
      st->cache_misses += s.misses;
      st->cache_evictions += s.evictions;
    }
  }

  void reset() {
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      s.hits = s.misses = s.evictions = 0;
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<std::uint64_t, std::vector<NodeId>>> lru;
    std::unordered_map<std::uint64_t,
                       decltype(lru)::iterator> map;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& shard(std::uint64_t key) {
    // splitmix64 finalizer: adjacent (u,v) keys land in different shards.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return shards_[(x ^ (x >> 31)) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_;
};

// ---------------------------------------------------------------------------
// Lock-free counters; materialized into ServiceStats on demand.
//
// Successful queries feed per-bucket atomic counters mirroring
// obs::Histogram's log-bucket layout, so a snapshot can rebuild a full
// histogram via Histogram::from_raw.  Failed queries only bump errors /
// error_ns: their wall-clock must not distort latency quantiles, and an
// all-error snapshot must render min=0, not a UINT64_MAX sentinel.

struct QueryService::Recorder {
  struct PerType {
    std::array<std::atomic<std::uint64_t>, obs::Histogram::kBuckets>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> min_ns{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> error_ns{0};
  };
  std::array<PerType, kQueryTypeCount> types;
  std::atomic<std::uint64_t> batches{0};

  void record(QueryType type, std::uint64_t ns, bool ok) {
    PerType& t = types[static_cast<std::size_t>(type)];
    if (!ok) {
      t.errors.fetch_add(1, std::memory_order_relaxed);
      t.error_ns.fetch_add(ns, std::memory_order_relaxed);
      return;
    }
    t.buckets[obs::Histogram::bucket_index(ns)].fetch_add(
        1, std::memory_order_relaxed);
    t.count.fetch_add(1, std::memory_order_relaxed);
    t.total_ns.fetch_add(ns, std::memory_order_relaxed);
    update_min(t.min_ns, ns);
    update_max(t.max_ns, ns);
  }

  QueryTypeStats snapshot(std::size_t i) const {
    const PerType& t = types[i];
    std::array<std::uint64_t, obs::Histogram::kBuckets> raw;
    for (std::size_t b = 0; b < raw.size(); ++b) {
      raw[b] = t.buckets[b].load(std::memory_order_relaxed);
    }
    QueryTypeStats out;
    out.latency = obs::Histogram::from_raw(
        raw, t.count.load(std::memory_order_relaxed),
        t.total_ns.load(std::memory_order_relaxed),
        t.min_ns.load(std::memory_order_relaxed),
        t.max_ns.load(std::memory_order_relaxed));
    out.errors = t.errors.load(std::memory_order_relaxed);
    out.error_ns = t.error_ns.load(std::memory_order_relaxed);
    return out;
  }

  void reset() {
    for (PerType& t : types) {
      for (auto& b : t.buckets) b = 0;
      t.count = 0;
      t.total_ns = 0;
      t.min_ns = std::numeric_limits<std::uint64_t>::max();
      t.max_ns = 0;
      t.errors = 0;
      t.error_ns = 0;
    }
    batches = 0;
  }

  static void update_min(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v < cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v > cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
};

// ---------------------------------------------------------------------------

QueryService::QueryService(DistanceOracle oracle, QueryServiceConfig cfg)
    : oracle_(std::move(oracle)),
      cfg_(cfg),
      recorder_(std::make_unique<Recorder>()),
      pool_(std::make_unique<util::ThreadPool>(cfg.threads)) {
  if (cfg_.path_cache_capacity > 0) {
    cache_ = std::make_unique<PathCache>(cfg_.path_cache_capacity,
                                         cfg_.cache_shards);
  }
}

QueryService::~QueryService() = default;

QueryResult QueryService::execute(const Query& q) const {
  QueryResult r;
  r.type = q.type;
  r.u = q.u;
  r.v = q.v;
  const NodeId n = oracle_.node_count();
  if (q.u >= n || q.v >= n) {
    r.error = "node id out of range (n=" + std::to_string(n) + ")";
    return r;
  }
  switch (q.type) {
    case QueryType::kDist:
      r.ok = true;
      r.dist = oracle_.dist(q.u, q.v);
      break;
    case QueryType::kNextHop:
      if (!oracle_.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      r.ok = true;
      r.dist = oracle_.dist(q.u, q.v);
      r.next_hop = oracle_.next_hop(q.u, q.v);
      break;
    case QueryType::kPath: {
      if (!oracle_.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      r.ok = true;
      r.dist = oracle_.dist(q.u, q.v);
      if (r.dist == kInfDist) break;  // unreachable: valid, empty path
      const std::uint64_t key =
          static_cast<std::uint64_t>(q.u) * n + q.v;
      if (cache_ && cache_->lookup(key, &r.path)) break;
      auto p = oracle_.path(q.u, q.v);
      // dist is finite and the oracle has a next-hop table, so
      // reconstruction can only fail on a corrupt table.
      if (!p) {
        r.ok = false;
        r.error = "path reconstruction failed (corrupt next-hop table)";
        return r;
      }
      r.path = std::move(*p);
      if (cache_) cache_->insert(key, r.path);
      break;
    }
  }
  return r;
}

QueryResult QueryService::timed_execute(const Query& q) const {
  const auto t0 = std::chrono::steady_clock::now();
  QueryResult r = execute(q);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  recorder_->record(q.type, ns, r.ok);
  return r;
}

QueryResult QueryService::query(const Query& q) const {
  return timed_execute(q);
}

std::vector<QueryResult> QueryService::query_batch(
    std::span<const Query> queries) const {
  std::vector<QueryResult> results(queries.size());
  pool_->parallel_for(queries.size(), [&](std::size_t i) {
    results[i] = timed_execute(queries[i]);
  });
  recorder_->batches.fetch_add(1, std::memory_order_relaxed);
  return results;
}

ServiceStats QueryService::stats() const {
  ServiceStats st;
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    st.per_type[i] = recorder_->snapshot(i);
  }
  st.batches = recorder_->batches.load();
  if (cache_) cache_->account(&st);
  return st;
}

void QueryService::reset_stats() {
  recorder_->reset();
  if (cache_) cache_->reset();
}

// ---------------------------------------------------------------------------
// Text protocol.

namespace {

std::optional<NodeId> parse_node(std::string_view tok) {
  std::uint32_t out = 0;
  const auto* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, out);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return out;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

}  // namespace

std::optional<Query> QueryService::parse_query(std::string_view line,
                                               std::string* error) {
  const auto toks = split_ws(line);
  if (toks.size() != 3) {
    if (error) *error = "expected '<dist|next|path> U V'";
    return std::nullopt;
  }
  Query q;
  if (toks[0] == "dist") {
    q.type = QueryType::kDist;
  } else if (toks[0] == "next") {
    q.type = QueryType::kNextHop;
  } else if (toks[0] == "path") {
    q.type = QueryType::kPath;
  } else {
    if (error) {
      *error = "unknown query type '" + std::string(toks[0]) +
               "' (dist|next|path)";
    }
    return std::nullopt;
  }
  const auto u = parse_node(toks[1]);
  const auto v = parse_node(toks[2]);
  if (!u || !v) {
    if (error) *error = "node ids must be non-negative integers";
    return std::nullopt;
  }
  q.u = *u;
  q.v = *v;
  return q;
}

void QueryService::write_result_text(const QueryResult& r, std::ostream& out) {
  if (!r.ok) {
    out << "error: " << r.error << "\n";
    return;
  }
  out << query_type_name(r.type) << " " << r.u << " " << r.v << " = ";
  if (r.dist == kInfDist) {
    out << "unreachable\n";
    return;
  }
  switch (r.type) {
    case QueryType::kDist:
      out << r.dist;
      break;
    case QueryType::kNextHop:
      out << (r.next_hop == kNoNode ? std::string("-")
                                    : std::to_string(r.next_hop))
          << " (dist " << r.dist << ")";
      break;
    case QueryType::kPath:
      for (std::size_t i = 0; i < r.path.size(); ++i) {
        out << (i ? " " : "") << r.path[i];
      }
      out << " (dist " << r.dist << ", " << (r.path.size() - 1) << " hops)";
      break;
  }
  out << "\n";
}

void QueryService::write_result_json(const QueryResult& r, std::ostream& out) {
  out << "{\"type\":\"" << query_type_name(r.type) << "\",\"u\":" << r.u
      << ",\"v\":" << r.v << ",\"ok\":" << (r.ok ? "true" : "false");
  if (!r.ok) {
    // r.error embeds caller-controlled text (e.g. the unknown query token);
    // escape it or a quote in the input corrupts the JSONL stream.
    out << ",\"error\":";
    obs::write_json_string(out, r.error);
    out << "}\n";
    return;
  }
  out << ",\"dist\":";
  if (r.dist == kInfDist) {
    out << "null";
  } else {
    out << r.dist;
  }
  if (r.type == QueryType::kNextHop && r.next_hop != kNoNode) {
    out << ",\"next\":" << r.next_hop;
  }
  if (r.type == QueryType::kPath && r.dist != kInfDist) {
    out << ",\"path\":[";
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      out << (i ? "," : "") << r.path[i];
    }
    out << "]";
  }
  out << "}\n";
}

int QueryService::serve_stream(std::istream& in, std::ostream& out,
                               bool json) const {
  int malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0].front() == '#') continue;
    if (toks[0] == "quit" || toks[0] == "exit") break;
    if (toks[0] == "stats") {
      const ServiceStats st = stats();
      if (json) {
        obs::JsonWriter w(out);
        w.begin_object().key("stats");
        st.write_json(w);
        w.end_object();
        out << "\n";
      } else {
        out << st.summary() << "\n";
      }
      continue;
    }
    std::string error;
    const auto q = parse_query(line, &error);
    if (!q) {
      ++malformed;
      if (json) {
        // The error message quotes the offending token verbatim; escape it.
        out << "{\"ok\":false,\"error\":";
        obs::write_json_string(out, error);
        out << "}\n";
      } else {
        out << "error: " << error << "\n";
      }
      continue;
    }
    const QueryResult r = query(*q);
    if (json) {
      write_result_json(r, out);
    } else {
      write_result_text(r, out);
    }
  }
  return malformed;
}

}  // namespace dapsp::service
