// Exact pipelined keys (Section II-A of the paper).
//
// Algorithm 1 keys a path of weighted distance d and hop length l by
//   kappa = d * gamma + l,   gamma = sqrt(k*h / Delta),
// and schedules the send of a list entry at round ceil(kappa + pos).
// gamma is irrational in general; to keep the simulation deterministic we
// never materialize kappa as a float.  A key is the (d, l) pair and gamma is
// carried as its square num/den; comparisons and ceilings reduce to exact
// 128-bit integer arithmetic:
//   kappa1 < kappa2  <=>  (d1-d2)*sqrt(num/den) < l2-l1
//   ceil(kappa + p)  =    ceil(d*sqrt(num/den)) + l + p     (p, l integers)
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using graph::NodeId;
using graph::Weight;

/// gamma^2 as the exact rational num/den.
struct GammaSq {
  std::uint64_t num = 1;
  std::uint64_t den = 1;

  /// The paper's choice gamma = sqrt(k*h/Delta); Delta=0 (all distances
  /// zero) degrades to gamma = sqrt(k*h) to keep keys ordered by hops.
  static GammaSq paper(std::uint64_t k, std::uint64_t h, std::uint64_t delta) {
    return {k * h, delta == 0 ? 1 : delta};
  }
  /// Ablation: gamma = 1, i.e. kappa = d + l.
  static GammaSq unit() { return {1, 1}; }
  /// Ablation: gamma = 0, i.e. kappa = l (hop-only scheduling).
  static GammaSq hop_only() { return {0, 1}; }

  /// ceil(gamma) -- used in round-bound formulas.
  std::uint64_t ceil_gamma() const {
    return util::ceil_mul_sqrt(1, num, den);
  }
};

/// A path key: weighted distance plus hop length.
struct Key {
  Weight d = 0;
  std::uint32_t l = 0;

  friend bool operator==(const Key&, const Key&) = default;

  /// Exact three-way comparison of kappa values under gamma.
  int compare(const Key& o, const GammaSq& g) const {
    return util::cmp_mul_sqrt(d - o.d, g.num, g.den,
                              static_cast<std::int64_t>(o.l) -
                                  static_cast<std::int64_t>(l));
  }

  /// ceil(kappa) = ceil(d*gamma) + l, exact.
  std::uint64_t ceil_kappa(const GammaSq& g) const {
    return util::ceil_mul_sqrt(static_cast<std::uint64_t>(d), g.num, g.den) +
           l;
  }

  /// Scheduled send round for list position pos (1-based): ceil(kappa + pos).
  std::uint64_t send_round(const GammaSq& g, std::uint64_t pos) const {
    return ceil_kappa(g) + pos;
  }
};

/// Total order used for list placement: (kappa, d, source id) ascending.
/// Returns <0, 0, >0.
int list_order(const Key& a, NodeId xa, const Key& b, NodeId xb,
               const GammaSq& g);

/// Batched kappa arithmetic under one fixed gamma.
///
/// The solvers' list maintenance evaluates ceil(d*gamma)+l and kappa
/// comparisons in tight loops with gamma constant for the whole run.  The
/// scalar routines re-derive everything from GammaSq per call and always
/// take the 128-bit route; this kernel hoists the gamma reduction and the
/// overflow thresholds once, then runs each element through a u64 fast path
/// (one 64-bit divide + a hardware sqrt with integer fixup), falling back to
/// the exact 128-bit arithmetic only when the squared products could exceed
/// the precomputed bounds.  Results are bit-identical to Key::ceil_kappa /
/// Key::compare for every input (tested exhaustively and at the overflow
/// boundary).
class KappaKernel {
 public:
  KappaKernel() : KappaKernel(GammaSq{}) {}
  explicit KappaKernel(const GammaSq& g) : num_(g.num), den_(g.den) {
    // Fast-path bound for ceil: d*d*num <= 2^60 keeps the integer fixup's
    // products (m*m*den ~= d*d*num plus a few sqrt-sized correction terms)
    // below 2^63.
    d_fast_ = num_ == 0 ? std::uint64_t(-1)
                        : util::isqrt_u128(u128_pow2(60) / num_);
    // Fast-path bounds for compare: |a|^2*num and |b|^2*den must fit u64.
    a_fast_ = num_ == 0 ? 0 : util::isqrt_u128((u128_pow2(64) - 1) / num_);
    b_fast_ = util::isqrt_u128((u128_pow2(64) - 1) / den_);
  }

  /// == Key{d, l}.ceil_kappa(g).
  std::uint64_t ceil_kappa(const Key& k) const {
    return ceil_mul_sqrt(static_cast<std::uint64_t>(k.d)) + k.l;
  }

  /// out[i] = keys[i].ceil_kappa(g); spans must have equal size.
  void ceil_kappa_span(std::span<const Key> keys,
                       std::span<std::uint64_t> out) const;

  /// == a.compare(b, g): sign of kappa(a) - kappa(b).
  int compare(const Key& a, const Key& b) const {
    const std::int64_t ad = a.d - b.d;
    const std::int64_t bl =
        static_cast<std::int64_t>(b.l) - static_cast<std::int64_t>(a.l);
    if (num_ == 0) return (0 < bl) ? -1 : (0 > bl ? 1 : 0);
    const bool lneg = ad < 0;
    const bool rneg = bl < 0;
    if (lneg != rneg) return lneg ? -1 : 1;
    const std::uint64_t am =
        lneg ? std::uint64_t(-(ad + 1)) + 1 : std::uint64_t(ad);
    const std::uint64_t bm =
        rneg ? std::uint64_t(-(bl + 1)) + 1 : std::uint64_t(bl);
    if (am <= a_fast_ && bm <= b_fast_) {
      const std::uint64_t aa = am * am * num_;
      const std::uint64_t bb = bm * bm * den_;
      const int raw = (aa < bb) ? -1 : (aa > bb ? 1 : 0);
      return lneg ? -raw : raw;
    }
    return util::cmp_mul_sqrt(ad, num_, den_, bl);
  }

  /// out[i] = compare(keys[i], probe); spans must have equal size.
  void compare_span(const Key& probe, std::span<const Key> keys,
                    std::span<int> out) const;

  std::uint64_t num() const noexcept { return num_; }
  std::uint64_t den() const noexcept { return den_; }

 private:
  static util::u128 u128_pow2(unsigned bits) { return util::u128{1} << bits; }

  std::uint64_t ceil_mul_sqrt(std::uint64_t d) const {
    if (d == 0 || num_ == 0) return 0;
    if (d <= d_fast_) {
      const std::uint64_t prod = d * d * num_;  // <= 2^60 by construction
      const std::uint64_t q = prod / den_;
      // Hardware sqrt lands within a couple of ulps of isqrt(q); the fixup
      // loops settle on the exact smallest m with m*m*den >= prod.  All
      // products stay below 2^63 (q <= 2^60, so m is within 2 of sqrt(q)
      // and m*m*den <= prod + O(sqrt(prod*den)) < 2^63).
      std::uint64_t m =
          static_cast<std::uint64_t>(std::sqrt(static_cast<double>(q)));
      while (m * m * den_ < prod) ++m;
      while (m > 0 && (m - 1) * (m - 1) * den_ >= prod) --m;
      return m;
    }
    return util::ceil_mul_sqrt(d, num_, den_);
  }

  std::uint64_t num_;
  std::uint64_t den_;
  std::uint64_t d_fast_;  ///< largest d whose ceil stays on the u64 path
  std::uint64_t a_fast_;  ///< largest |a| with a*a*num representable in u64
  std::uint64_t b_fast_;  ///< largest |b| with b*b*den representable in u64
};

/// list_order under a prebuilt kernel (same result as the GammaSq overload).
int list_order(const Key& a, NodeId xa, const Key& b, NodeId xb,
               const KappaKernel& kernel);

}  // namespace dapsp::core
