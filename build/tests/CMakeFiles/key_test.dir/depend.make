# Empty dependencies file for key_test.
# This may be replaced when dependencies are built.
