// E9 -- design-choice ablations for Algorithm 1.
//
// (a) Key schedule gamma: the paper's sqrt(hk/Delta) against gamma = 1
//     (kappa = d + l) and gamma = 0 (hop-only keys).  All compute the same
//     distances; the paper's choice balances the key range (Delta*gamma)
//     against the list capacity (k*(h/gamma + 1)), minimizing the bound --
//     visible in the settle-round and occupancy columns.
// (b) List maintenance policy: the delivery-safe dominance rules (library
//     default) vs the word-for-word INSERT transcription.
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E9: ablations (key schedule gamma, list policy)",
                "Same workload, different design choices; distances are "
                "verified identical by the test suite.");

  const graph::NodeId n = 36;
  const std::uint32_t h = 9;
  const graph::Graph g = graph::erdos_renyi(n, 0.12, {0, 8, 0.25}, 2024);
  core::PipelinedParams base;
  for (graph::NodeId v = 0; v < n; v += 2) base.sources.push_back(v);
  base.h = h;
  base.delta = graph::max_finite_hop_distance(g, h);
  const auto k = static_cast<std::uint64_t>(base.sources.size());
  const auto du = static_cast<std::uint64_t>(base.delta);

  {
    bench::Table table({"gamma^2", "settle", "bound", "messages",
                        "max list", "per-source occupancy"});
    struct Case {
      const char* name;
      core::GammaSq gamma;
    };
    const Case cases[] = {
        {"hk/Delta (paper)", core::GammaSq::paper(k, h, du)},
        {"1 (kappa=d+l)", core::GammaSq::unit()},
        {"0 (hop-only)", core::GammaSq::hop_only()},
        {"4 (over-weighted d)", core::GammaSq{4, 1}},
    };
    for (const Case& c : cases) {
      core::PipelinedParams p = base;
      p.gamma = c.gamma;
      const auto res = core::pipelined_kssp(g, p);
      table.row({c.name, fmt(res.settle_round),
                 fmt(core::bounds::hk_ssp_custom_gamma(h, k, du, c.gamma)),
                 fmt(res.stats.total_messages), fmt(res.max_list_size),
                 fmt(res.max_entries_per_source)});
    }
    std::cout << "-- key schedule --\n";
    table.print();
  }

  {
    bench::Table table({"policy", "settle", "messages", "max list",
                        "per-source occupancy", "late fires"});
    for (const auto policy :
         {core::ListPolicy::kDominance, core::ListPolicy::kLiteral}) {
      core::PipelinedParams p = base;
      p.policy = policy;
      const auto res = core::pipelined_kssp(g, p);
      table.row({policy == core::ListPolicy::kDominance ? "dominance (default)"
                                                        : "literal INSERT",
                 fmt(res.settle_round), fmt(res.stats.total_messages),
                 fmt(res.max_list_size), fmt(res.max_entries_per_source),
                 fmt(res.late_fires)});
    }
    std::cout << "\n-- list maintenance policy --\n";
    table.print();
  }
  return 0;
}
