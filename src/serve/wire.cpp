#include "serve/wire.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace dapsp::serve::wire {

namespace {

constexpr char kReqMagic0 = 'D';
constexpr char kReqMagic1 = 'Q';
constexpr char kRespMagic0 = 'D';
constexpr char kRespMagic1 = 'R';
constexpr std::uint8_t kVersion = 1;

constexpr std::uint8_t kOpBatch = 0x01;
constexpr std::uint8_t kOpStats = 0x02;
constexpr std::uint8_t kOpQuit = 0x03;
constexpr std::uint8_t kOpRebuild = 0x04;
constexpr std::uint8_t kOpBatchResp = 0x81;
constexpr std::uint8_t kOpStatsResp = 0x82;
constexpr std::uint8_t kOpRebuildResp = 0x83;
constexpr std::uint8_t kOpError = 0xEE;

// Per-query wire size inside a batch request: qtype + u + v.
constexpr std::size_t kQueryWireBytes = 1 + 4 + 4;

// --- little-endian primitives ---------------------------------------------

void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xFF));
  buf.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_i64(std::string& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over one frame payload.  `ok` latches false on the
/// first short read so callers can decode optimistically and test once.
struct Reader {
  const unsigned char* p;
  std::size_t len;
  std::size_t pos = 0;
  bool ok = true;

  explicit Reader(std::string_view payload)
      : p(reinterpret_cast<const unsigned char*>(payload.data())),
        len(payload.size()) {}

  bool need(std::size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p[pos]) |
                      static_cast<std::uint16_t>(p[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = v << 8 | p[pos + static_cast<std::size_t>(i)];
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = v << 8 | p[pos + static_cast<std::size_t>(i)];
    }
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string bytes(std::size_t n) {
    if (!need(n)) return {};
    std::string out(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return out;
  }
};

void frame_and_write(std::ostream& out, const std::string& payload) {
  std::string prefix;
  put_u32(prefix, static_cast<std::uint32_t>(payload.size()));
  out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
}

void begin_request(std::string& buf, std::uint8_t opcode) {
  buf.push_back(kReqMagic0);
  buf.push_back(kReqMagic1);
  buf.push_back(static_cast<char>(kVersion));
  buf.push_back(static_cast<char>(opcode));
}

std::string make_error_payload(ErrorCode code, std::string_view msg) {
  std::string p;
  p.push_back(kRespMagic0);
  p.push_back(kRespMagic1);
  p.push_back(static_cast<char>(kVersion));
  p.push_back(static_cast<char>(kOpError));
  put_u16(p, static_cast<std::uint16_t>(code));
  put_u32(p, static_cast<std::uint32_t>(msg.size()));
  p.append(msg);
  return p;
}

void append_result(std::string& p, const service::QueryResult& r) {
  p.push_back(static_cast<char>(r.type));
  if (!r.ok) {
    p.push_back('\0');
    put_u32(p, static_cast<std::uint32_t>(r.error.size()));
    p.append(r.error);
    return;
  }
  p.push_back('\1');
  put_i64(p, r.dist);
  put_u32(p, r.next_hop);
  put_u32(p, static_cast<std::uint32_t>(r.path.size()));
  for (const graph::NodeId v : r.path) put_u32(p, v);
}

/// Reads exactly `want` payload bytes after a complete length prefix.
/// Returns false on EOF mid-payload (unrecoverable truncation).
bool read_exact(std::istream& in, std::string& buf, std::size_t want) {
  buf.resize(want);
  in.read(buf.data(), static_cast<std::streamsize>(want));
  return static_cast<std::size_t>(in.gcount()) == want;
}

}  // namespace

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kBadOpcode: return "bad_opcode";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kBatchTooLarge: return "batch_too_large";
    case ErrorCode::kBadQueryType: return "bad_query_type";
  }
  return "?";
}

void append_batch_request(std::string& buf,
                          std::span<const service::Query> queries) {
  std::string p;
  begin_request(p, kOpBatch);
  put_u32(p, static_cast<std::uint32_t>(queries.size()));
  for (const service::Query& q : queries) {
    p.push_back(static_cast<char>(q.type));
    put_u32(p, q.u);
    put_u32(p, q.v);
  }
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_stats_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpStats);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_quit_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpQuit);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_rebuild_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpRebuild);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

std::optional<Response> read_response(std::istream& in) {
  std::string lenbuf(4, '\0');
  in.read(lenbuf.data(), 4);
  if (in.gcount() == 0) return std::nullopt;  // clean EOF between frames
  if (in.gcount() != 4) throw std::runtime_error("wire: truncated length");
  Reader lr(lenbuf);
  const std::uint32_t len = lr.u32();
  if (len > kMaxFrameBytes) throw std::runtime_error("wire: response too big");
  std::string payload;
  if (!read_exact(in, payload, len)) {
    throw std::runtime_error("wire: truncated response payload");
  }
  Reader r(payload);
  const char m0 = static_cast<char>(r.u8());
  const char m1 = static_cast<char>(r.u8());
  const std::uint8_t ver = r.u8();
  const std::uint8_t op = r.u8();
  if (!r.ok || m0 != kRespMagic0 || m1 != kRespMagic1 || ver != kVersion) {
    throw std::runtime_error("wire: bad response header");
  }
  Response resp;
  switch (op) {
    case kOpBatchResp: {
      resp.kind = Response::Kind::kBatch;
      const std::uint32_t count = r.u32();
      resp.results.reserve(count);
      for (std::uint32_t i = 0; r.ok && i < count; ++i) {
        service::QueryResult qr;
        qr.type = static_cast<service::QueryType>(r.u8());
        const std::uint8_t ok = r.u8();
        if (ok == 0) {
          const std::uint32_t mlen = r.u32();
          qr.error = r.bytes(mlen);
          qr.ok = false;
        } else {
          qr.ok = true;
          qr.dist = r.i64();
          qr.next_hop = r.u32();
          const std::uint32_t plen = r.u32();
          qr.path.reserve(plen);
          for (std::uint32_t j = 0; r.ok && j < plen; ++j) {
            qr.path.push_back(r.u32());
          }
        }
        resp.results.push_back(std::move(qr));
      }
      break;
    }
    case kOpStatsResp: {
      resp.kind = Response::Kind::kStats;
      const std::uint32_t jlen = r.u32();
      resp.stats_json = r.bytes(jlen);
      break;
    }
    case kOpRebuildResp: {
      resp.kind = Response::Kind::kRebuild;
      resp.epoch = r.u64();
      resp.build_ns = r.u64();
      break;
    }
    case kOpError: {
      resp.kind = Response::Kind::kError;
      resp.code = static_cast<ErrorCode>(r.u16());
      const std::uint32_t mlen = r.u32();
      resp.message = r.bytes(mlen);
      break;
    }
    default:
      throw std::runtime_error("wire: unknown response opcode");
  }
  if (!r.ok) throw std::runtime_error("wire: short response body");
  return resp;
}

int serve_binary(const service::QueryService& svc, std::istream& in,
                 std::ostream& out, const service::ServeOptions& opts) {
  int errors = 0;
  const auto fail = [&](ErrorCode code, const std::string& msg) {
    ++errors;
    frame_and_write(out, make_error_payload(code, msg));
  };
  for (;;) {
    std::string lenbuf(4, '\0');
    in.read(lenbuf.data(), 4);
    if (in.gcount() == 0) return errors;  // clean EOF at a frame boundary
    if (in.gcount() != 4) {
      fail(ErrorCode::kTruncated, "stream ended inside a length prefix");
      return errors;
    }
    Reader lr(lenbuf);
    const std::uint32_t len = lr.u32();
    if (len > kMaxFrameBytes) {
      // The declared payload may not even exist; resync is impossible.
      fail(ErrorCode::kFrameTooLarge,
           "frame of " + std::to_string(len) + " bytes exceeds limit of " +
               std::to_string(kMaxFrameBytes));
      return errors;
    }
    std::string payload;
    if (!read_exact(in, payload, len)) {
      fail(ErrorCode::kTruncated, "stream ended inside a frame payload");
      return errors;
    }
    // From here every error is recoverable: the bad frame is fully consumed,
    // so answer with an ERROR frame and keep serving.
    Reader r(payload);
    const char m0 = static_cast<char>(r.u8());
    const char m1 = static_cast<char>(r.u8());
    if (!r.ok || m0 != kReqMagic0 || m1 != kReqMagic1) {
      fail(ErrorCode::kBadMagic, "request does not start with 'DQ'");
      continue;
    }
    const std::uint8_t ver = r.u8();
    if (!r.ok || ver != kVersion) {
      fail(ErrorCode::kBadVersion,
           "unsupported protocol version " + std::to_string(ver));
      continue;
    }
    const std::uint8_t op = r.u8();
    if (!r.ok) {
      fail(ErrorCode::kTruncated, "request header shorter than 4 bytes");
      continue;
    }
    switch (op) {
      case kOpQuit:
        return errors;
      case kOpStats: {
        std::ostringstream json;
        obs::JsonWriter w(json);
        svc.stats().write_json(w);
        std::string p;
        p.push_back(kRespMagic0);
        p.push_back(kRespMagic1);
        p.push_back(static_cast<char>(kVersion));
        p.push_back(static_cast<char>(kOpStatsResp));
        const std::string doc = json.str();
        put_u32(p, static_cast<std::uint32_t>(doc.size()));
        p.append(doc);
        frame_and_write(out, p);
        break;
      }
      case kOpRebuild: {
        if (!opts.on_rebuild) {
          fail(ErrorCode::kBadOpcode,
               "rebuild is not available on this session");
          break;
        }
        const service::RebuildOutcome rb = opts.on_rebuild();
        if (!rb.ok) {
          // A failed rebuild is a server-side condition, not a protocol
          // error: report it without counting toward the malformed total.
          frame_and_write(out, make_error_payload(ErrorCode::kBadOpcode,
                                                  "rebuild failed: " +
                                                      rb.error));
          break;
        }
        std::string p;
        p.push_back(kRespMagic0);
        p.push_back(kRespMagic1);
        p.push_back(static_cast<char>(kVersion));
        p.push_back(static_cast<char>(kOpRebuildResp));
        put_u64(p, rb.epoch);
        put_u64(p, rb.build_ns);
        frame_and_write(out, p);
        break;
      }
      case kOpBatch: {
        const std::uint32_t count = r.u32();
        if (!r.ok) {
          fail(ErrorCode::kTruncated, "batch frame missing its count");
          break;
        }
        if (count > svc.config().max_batch) {
          fail(ErrorCode::kBatchTooLarge,
               "batch of " + std::to_string(count) +
                   " queries exceeds max_batch=" +
                   std::to_string(svc.config().max_batch));
          break;
        }
        if (payload.size() - r.pos != count * kQueryWireBytes) {
          fail(ErrorCode::kTruncated,
               "batch body holds " +
                   std::to_string((payload.size() - r.pos) / kQueryWireBytes) +
                   " queries but declares " + std::to_string(count));
          break;
        }
        std::vector<service::Query> queries;
        queries.reserve(count);
        bool bad_type = false;
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t t = r.u8();
          service::Query q;
          q.u = r.u32();
          q.v = r.u32();
          if (t >= service::kQueryTypeCount) {
            bad_type = true;
            break;
          }
          q.type = static_cast<service::QueryType>(t);
          queries.push_back(q);
        }
        if (bad_type) {
          // Reject the whole batch: partial answers would desynchronize the
          // caller's results[i] <-> queries[i] pairing.
          fail(ErrorCode::kBadQueryType,
               "batch contains a query type outside dist/next/path");
          break;
        }
        const std::vector<service::QueryResult> results =
            svc.query_batch(queries);
        std::string p;
        p.push_back(kRespMagic0);
        p.push_back(kRespMagic1);
        p.push_back(static_cast<char>(kVersion));
        p.push_back(static_cast<char>(kOpBatchResp));
        put_u32(p, static_cast<std::uint32_t>(results.size()));
        for (const service::QueryResult& qr : results) append_result(p, qr);
        frame_and_write(out, p);
        break;
      }
      default:
        fail(ErrorCode::kBadOpcode,
             "unknown request opcode " + std::to_string(op));
        break;
    }
  }
}

}  // namespace dapsp::serve::wire
