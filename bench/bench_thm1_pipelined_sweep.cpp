// E4 -- Theorem I.1 / Lemma II.14 round-bound sweeps for Algorithm 1.
//
// Measured settle rounds vs the 2*sqrt(h*k*Delta) + h + k bound while
// sweeping Delta (at fixed n, k, h), then k, then h.  Shape expectations:
// settle grows ~sqrt(Delta) and ~sqrt(k); the bound column always
// dominates; Invariant-2 occupancy stays below h/gamma + 1.
#include "core/bounds.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"
#include "util/int_math.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E4: Theorem I.1 sweeps (Algorithm 1)",
                "Measured settle round vs the Lemma II.14 bound under "
                "Delta / k / h sweeps.");

  {
    bench::Table table({"Delta<=", "measured Delta", "settle", "bound",
                        "ratio", "inv2 occupancy", "inv2 cap", "late fires"});
    const graph::NodeId n = 56;
    const std::uint32_t h = 10;
    for (const graph::Weight target : {8, 32, 128, 512}) {
      const graph::Graph g =
          graph::bounded_distance_graph(n, 0.12, target, 999);
      core::PipelinedParams p;
      for (graph::NodeId v = 0; v < n; v += 2) p.sources.push_back(v);
      p.h = h;
      p.delta = graph::max_finite_hop_distance(g, h);
      const auto k = static_cast<std::uint64_t>(p.sources.size());
      const auto du = static_cast<std::uint64_t>(p.delta);
      const auto res = core::pipelined_kssp(g, p);
      const std::uint64_t bound = core::bounds::hk_ssp(h, k, du);
      const std::uint64_t cap =
          util::ceil_mul_sqrt(h, du == 0 ? 1 : du, k * h) + 1;
      table.row({fmt(std::int64_t{target}), fmt(du), fmt(res.settle_round),
                 fmt(bound),
                 fmt(static_cast<double>(res.settle_round) /
                         static_cast<double>(bound),
                     2),
                 fmt(res.max_entries_per_source), fmt(cap),
                 fmt(res.late_fires)});
    }
    std::cout << "-- Delta sweep (n=56, k=28, h=10) --\n";
    table.print();
  }

  {
    bench::Table table({"k", "settle", "bound", "ratio", "messages"});
    const graph::NodeId n = 56;
    const std::uint32_t h = 10;
    const graph::Graph g =
        graph::erdos_renyi(n, 0.12, {0, 8, 0.25}, 1001);
    for (const std::uint32_t k : {2u, 7u, 14u, 28u, 56u}) {
      core::PipelinedParams p;
      for (std::uint32_t i = 0; i < k; ++i) {
        p.sources.push_back((i * 13) % n);
      }
      p.h = h;
      p.delta = graph::max_finite_hop_distance(g, h);
      const auto res = core::pipelined_kssp(g, p);
      const std::uint64_t bound = core::bounds::hk_ssp(
          h, res.sources.size(), static_cast<std::uint64_t>(p.delta));
      table.row({fmt(std::uint64_t{k}), fmt(res.settle_round), fmt(bound),
                 fmt(static_cast<double>(res.settle_round) /
                         static_cast<double>(bound),
                     2),
                 fmt(res.stats.total_messages)});
    }
    std::cout << "\n-- k sweep (n=56, h=10) --\n";
    table.print();
  }

  {
    bench::Table table({"h", "settle", "bound", "ratio", "inv2 occupancy",
                        "max sends/source"});
    const graph::NodeId n = 56;
    const graph::Graph g =
        graph::erdos_renyi(n, 0.12, {0, 8, 0.25}, 1002);
    for (const std::uint32_t h : {2u, 5u, 10u, 25u, 55u}) {
      core::PipelinedParams p;
      for (graph::NodeId v = 0; v < n; v += 4) p.sources.push_back(v);
      p.h = h;
      p.delta = graph::max_finite_hop_distance(g, h);
      const auto res = core::pipelined_kssp(g, p);
      const std::uint64_t bound = core::bounds::hk_ssp(
          h, res.sources.size(), static_cast<std::uint64_t>(p.delta));
      table.row({fmt(std::uint64_t{h}), fmt(res.settle_round), fmt(bound),
                 fmt(static_cast<double>(res.settle_round) /
                         static_cast<double>(bound),
                     2),
                 fmt(res.max_entries_per_source),
                 fmt(res.max_sends_per_source)});
    }
    std::cout << "\n-- h sweep (n=56, k=14) --\n";
    table.print();
  }

  {
    // The pipeline "wave": per-round traffic for an APSP run, bucketed into
    // deciles of the execution.  The sustained plateau is the pipelining --
    // entries of many sources in flight at once, one message per node per
    // round -- rather than a per-source burst pattern.
    const graph::NodeId n = 48;
    const graph::Graph g = graph::erdos_renyi(n, 0.1, {0, 8, 0.25}, 1003);
    core::PipelinedParams p;
    for (graph::NodeId v = 0; v < n; ++v) p.sources.push_back(v);
    p.h = n - 1;
    p.delta = graph::max_finite_distance(g);
    p.record_per_round = true;
    const auto res = core::pipelined_kssp(g, p);
    const auto& wave = res.stats.per_round_messages;
    bench::Table table({"decile", "rounds", "messages", "avg msgs/round"});
    const std::size_t buckets = 10;
    const std::size_t width = std::max<std::size_t>(1, wave.size() / buckets);
    for (std::size_t b = 0; b < buckets && b * width < wave.size(); ++b) {
      const std::size_t lo = b * width;
      const std::size_t hi =
          b + 1 == buckets ? wave.size() : std::min(wave.size(), lo + width);
      std::uint64_t sum = 0;
      for (std::size_t i = lo; i < hi; ++i) sum += wave[i];
      table.row({fmt(static_cast<std::uint64_t>(b + 1)),
                 fmt(static_cast<std::uint64_t>(hi - lo)), fmt(sum),
                 fmt(static_cast<double>(sum) /
                         static_cast<double>(std::max<std::size_t>(hi - lo, 1)),
                     1)});
    }
    std::cout << "\n-- APSP pipeline wave (n=48, per-round traffic) --\n";
    table.print();
  }
  return 0;
}
