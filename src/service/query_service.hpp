// Thread-safe query front-end over an immutable DistanceOracle.
//
// The service answers three query types (dist, next-hop, full path) for
// untrusted callers: ids are validated, unsupported queries are reported as
// errors instead of UB, and every query is counted in service/stats.hpp.
// Batched queries fan out over a private util::ThreadPool; results land at
// the caller's indices, so multi-threaded batch output is bit-identical to
// single-threaded execution.  Reconstructed paths go through a sharded LRU
// cache (point lookups never touch it -- a flat-matrix read is cheaper than
// any cache).  A line-oriented text protocol ("dist 0 5", "path 2 7", ...)
// with text or JSONL responses makes the service scriptable from the CLI.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "service/oracle.hpp"
#include "service/stats.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::service {

struct Query {
  QueryType type = QueryType::kDist;
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Query&, const Query&) = default;
};

struct QueryResult {
  QueryType type = QueryType::kDist;
  NodeId u = 0;
  NodeId v = 0;
  bool ok = false;            ///< false = invalid ids / unsupported query
  std::string error;          ///< set when !ok
  Weight dist = graph::kInfDist;  ///< kInfDist when unreachable
  NodeId next_hop = graph::kNoNode;
  std::vector<NodeId> path;   ///< filled for kPath when reachable

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

struct QueryServiceConfig {
  /// Worker threads for query_batch; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Total reconstructed paths kept across all cache shards; 0 disables the
  /// cache entirely (every path query reconstructs).
  std::size_t path_cache_capacity = 4096;
  /// Shards for the path cache (each shard has its own lock); clamped to at
  /// least 1.
  std::size_t cache_shards = 8;
};

class QueryService {
 public:
  explicit QueryService(DistanceOracle oracle, QueryServiceConfig cfg = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  const DistanceOracle& oracle() const noexcept { return oracle_; }
  const QueryServiceConfig& config() const noexcept { return cfg_; }

  /// Executes one query.  Thread-safe; any number of callers may query
  /// concurrently.
  QueryResult query(const Query& q) const;

  /// Executes a batch on the service's thread pool.  results[i] always
  /// answers queries[i]; output is bit-identical regardless of thread count.
  std::vector<QueryResult> query_batch(std::span<const Query> queries) const;

  /// Snapshot of the counters accumulated since construction / last reset.
  ServiceStats stats() const;
  void reset_stats();

  /// Parses one protocol line: "dist U V" | "next U V" | "path U V".
  /// Returns nullopt and fills *error on malformed input.
  static std::optional<Query> parse_query(std::string_view line,
                                          std::string* error);

  static void write_result_text(const QueryResult& r, std::ostream& out);
  /// One JSON object per result (JSONL); kInfDist renders as null.
  static void write_result_json(const QueryResult& r, std::ostream& out);

  /// Reads protocol lines from `in` until EOF or "quit", answering each on
  /// `out` (text or JSONL).  Blank lines and '#' comments are skipped; the
  /// "stats" directive prints a summary snapshot.  Returns the number of
  /// malformed lines (the CLI turns nonzero into a nonzero exit code).
  int serve_stream(std::istream& in, std::ostream& out, bool json) const;

 private:
  class PathCache;
  struct Recorder;

  QueryResult execute(const Query& q) const;
  QueryResult timed_execute(const Query& q) const;

  DistanceOracle oracle_;
  QueryServiceConfig cfg_;
  std::unique_ptr<PathCache> cache_;          // null when capacity == 0
  std::unique_ptr<Recorder> recorder_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace dapsp::service
