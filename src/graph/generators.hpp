// Workload generators.
//
// The paper has no released inputs; these generators produce the graph
// families its theorems are parameterized over: bounded weight W, bounded
// shortest-path distance Delta, and graphs with many zero-weight edges (the
// case prior deterministic algorithms could not handle).  All generators are
// deterministic given the seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace dapsp::graph {

/// How edge weights are drawn.
struct WeightSpec {
  Weight min_weight = 0;  ///< inclusive
  Weight max_weight = 8;  ///< inclusive
  /// Probability that an edge weight is forced to zero (applied before the
  /// uniform draw); lets workloads stress the zero-weight code paths even
  /// when min_weight > 0.
  double zero_fraction = 0.0;
};

/// Uniform weight in [min,max] with an extra zero-weight coin flip.
Weight draw_weight(const WeightSpec& spec, std::uint64_t seed,
                   std::uint64_t edge_index);

/// G(n, p) Erdős–Rényi graph.  When `connect` is true a random Hamiltonian
/// backbone path is added first so every node can reach every other
/// (in both directions for directed graphs, via a cycle).
Graph erdos_renyi(NodeId n, double p, const WeightSpec& spec,
                  std::uint64_t seed, bool directed = false,
                  bool connect = true);

/// Simple path 0-1-...-(n-1).
Graph path(NodeId n, const WeightSpec& spec, std::uint64_t seed,
           bool directed = false);

/// Cycle 0-1-...-(n-1)-0.
Graph cycle(NodeId n, const WeightSpec& spec, std::uint64_t seed,
            bool directed = false);

/// rows x cols 2D grid (undirected), the canonical "network mesh" topology.
Graph grid(NodeId rows, NodeId cols, const WeightSpec& spec,
           std::uint64_t seed);

/// Star with node 0 at the center.
Graph star(NodeId n, const WeightSpec& spec, std::uint64_t seed);

/// Complete graph K_n.
Graph complete(NodeId n, const WeightSpec& spec, std::uint64_t seed,
               bool directed = false);

/// Uniformly random spanning tree (random attachment).
Graph random_tree(NodeId n, const WeightSpec& spec, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new node wires to
/// `attach` existing nodes with probability proportional to their degree.
/// Produces the hub-heavy topologies of real networks (undirected).
Graph barabasi_albert(NodeId n, NodeId attach, const WeightSpec& spec,
                      std::uint64_t seed);

/// Layered graph: `layers` layers of `width` nodes; every node of layer i is
/// wired to `fanout` random nodes of layer i+1.  Source-friendly DAG-ish
/// topology whose h-hop structure is easy to reason about.
Graph layered(NodeId layers, NodeId width, NodeId fanout,
              const WeightSpec& spec, std::uint64_t seed,
              bool directed = true);

/// Hierarchical ISP-style network: `pops` points of presence on a weighted
/// backbone ring, each with a random access tree of `pop_size` routers.
/// Intra-PoP links are zero-weight with probability `zero_fraction` (the
/// co-located-router case the paper's zero-weight support models); backbone
/// links carry weights in [backbone_min, backbone_max].
Graph isp_topology(NodeId pops, NodeId pop_size, Weight backbone_min,
                   Weight backbone_max, double zero_fraction,
                   std::uint64_t seed);

/// The Figure-1 gadget from the paper: a graph on which the parent pointers
/// of h-hop shortest paths form a "tree" of height > h, because the prefix of
/// an h-hop shortest path need not be an h-hop shortest path.
///
/// Construction (parameterized by h >= 2): a source s, a cheap long path of
/// h zero/low-weight hops to a node z, an expensive 1-hop shortcut s->z, and
/// a tail hanging off z.  With hop budget h, z's best h-hop path uses the
/// cheap long route, while tail nodes must take the shortcut; their parent
/// chains then have more than h edges.
Graph fig1_gadget(NodeId h);

/// Random connected graph whose shortest path distances are all <= delta,
/// built by scaling an Erdős–Rényi graph's weights down until the property
/// holds.  Useful for Theorem I.3 sweeps.
Graph bounded_distance_graph(NodeId n, double p, Weight delta,
                             std::uint64_t seed, bool directed = false);

/// Graph500-style RMAT (recursive matrix) generator: n = 2^scale nodes,
/// `edgefactor * n` candidate edges drawn by recursive quadrant descent with
/// the classic (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) partition, giving the
/// skewed degree distribution of real networks (hubs grow with scale).
///
/// Determinism contract: each candidate edge is drawn from an RNG seeded by
/// (seed, edge_index) alone -- like draw_weight -- so the output is
/// bit-identical for a fixed seed regardless of how many threads generate
/// (pass `threads` > 1 to parallelize candidate generation; 0/1 = serial).
/// Self-loops and duplicate arcs are skipped, so the built graph usually has
/// fewer than edgefactor*n edges -- the standard Graph500 behavior.  When
/// `connect` is true a random backbone (path, or cycle when directed) makes
/// the graph strongly connected first, as in erdos_renyi.
Graph rmat(std::uint32_t scale, NodeId edgefactor, const WeightSpec& spec,
           std::uint64_t seed, bool directed = false, bool connect = true,
           std::size_t threads = 0);

}  // namespace dapsp::graph
