// Focused tests for the distributed primitives (BFS tree, broadcast,
// convergecast, gather) beyond the smoke coverage in engine_test.cpp, plus
// Message and RunStats edge cases.
#include <gtest/gtest.h>

#include "congest/message.hpp"
#include "congest/primitives.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"

namespace dapsp::congest {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Message, FieldCapacityEnforced) {
  EXPECT_NO_THROW(Message(1, {1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_THROW(Message(1, {1, 2, 3, 4, 5, 6, 7, 8, 9}), std::logic_error);
  const Message m(3, {10, 20});
  EXPECT_EQ(m.used, 2u);
  EXPECT_EQ(m.f[0], 10);
  EXPECT_EQ(m.f[1], 20);
  EXPECT_EQ(m, Message(3, {10, 20}));
  EXPECT_FALSE(m == Message(3, {10, 21}));
}

TEST(BfsTree, NonZeroRoot) {
  const Graph g = graph::grid(3, 4, {1, 1, 0.0}, 10000);
  const BfsTree tree = build_bfs_tree(g, 7);
  EXPECT_EQ(tree.root, 7u);
  EXPECT_EQ(tree.depth[7], 0u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(tree.reached(v));
  }
}

TEST(BfsTree, SingleNodeGraph) {
  GraphBuilder b(1, false);
  const Graph g = std::move(b).build();
  const BfsTree tree = build_bfs_tree(g, 0);
  EXPECT_EQ(tree.height, 0u);
  EXPECT_TRUE(tree.reached(0));
  // Downstream primitives degrade gracefully on a single node.
  const auto copies = broadcast_values(g, tree, {42});
  EXPECT_EQ(copies[0], (std::vector<std::int64_t>{42}));
  const auto [best, arg] = converge_max(g, tree, {17});
  EXPECT_EQ(best, 17);
  EXPECT_EQ(arg, 0u);
}

TEST(BfsTree, MinIdParentSelection) {
  // Default delivery order is sender-ascending, so among equal-depth
  // candidates the smallest id becomes the parent.
  const Graph g = graph::complete(5, {1, 1, 0.0}, 10001);
  const BfsTree tree = build_bfs_tree(g, 2);
  for (NodeId v = 0; v < 5; ++v) {
    if (v == 2) continue;
    EXPECT_EQ(tree.parent[v], 2u);  // direct neighbor of the root
    EXPECT_EQ(tree.depth[v], 1u);
  }
}

TEST(Broadcast, LongValueListPipelines) {
  const Graph g = graph::path(8, {1, 1, 0.0}, 10002);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(g, 0, &stats);
  std::vector<std::int64_t> values(50);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::int64_t>(i * i);
  }
  RunStats bstats;
  const auto copies = broadcast_values(g, tree, values, &bstats);
  for (const auto& c : copies) EXPECT_EQ(c, values);
  // Pipelined: |values| + height + O(1), not |values| * height.
  EXPECT_LE(bstats.rounds, values.size() + tree.height + 4);
  EXPECT_EQ(bstats.max_link_congestion, 1u);
}

TEST(Broadcast, NegativeValuesSurvive) {
  const Graph g = graph::star(5, {1, 1, 0.0}, 10003);
  const BfsTree tree = build_bfs_tree(g, 0);
  const std::vector<std::int64_t> values{-5, 0, 123456789012345};
  const auto copies = broadcast_values(g, tree, values);
  EXPECT_EQ(copies[4], values);
}

TEST(ConvergeMax, NegativeAndEqualValues) {
  const Graph g = graph::path(5, {1, 1, 0.0}, 10004);
  const BfsTree tree = build_bfs_tree(g, 0);
  const auto [best, arg] = converge_max(g, tree, {-7, -3, -3, -9, -10});
  EXPECT_EQ(best, -3);
  EXPECT_EQ(arg, 1u);  // smaller id wins the tie
}

TEST(ConvergeMax, DeepTreeRoundCount) {
  const Graph g = graph::path(20, {1, 1, 0.0}, 10005);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(g, 0, &stats);
  RunStats cstats;
  std::vector<std::int64_t> vals(20, 1);
  vals[19] = 9;
  const auto [best, arg] = converge_max(g, tree, vals, &cstats);
  EXPECT_EQ(best, 9);
  EXPECT_EQ(arg, 19u);
  EXPECT_LE(cstats.rounds, tree.height + 3u);
}

TEST(Gather, RootOnlyItems) {
  const Graph g = graph::path(5, {1, 1, 0.0}, 10006);
  const BfsTree tree = build_bfs_tree(g, 2);
  std::vector<std::vector<GatherItem>> items(5);
  items[2].push_back({2, 1, 2});
  const auto all = gather_to_all(g, tree, items);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].origin, 2u);
}

TEST(Gather, ManyItemsPerNodeSorted) {
  const Graph g = graph::grid(3, 3, {1, 1, 0.0}, 10007);
  const BfsTree tree = build_bfs_tree(g, 0);
  std::vector<std::vector<GatherItem>> items(9);
  std::size_t total = 0;
  for (NodeId v = 0; v < 9; ++v) {
    for (std::int64_t j = 0; j < 3; ++j) {
      items[v].push_back({v, j, static_cast<std::int64_t>(v) * 10 + j});
      ++total;
    }
  }
  RunStats stats;
  const auto all = gather_to_all(g, tree, items, &stats);
  ASSERT_EQ(all.size(), total);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  // Pipelined: items + heights dominate, far below items * height.
  EXPECT_LE(stats.rounds, 4 * total + 4 * tree.height + 12);
}

TEST(RunStats, PerRoundMergeAcrossPhases) {
  RunStats a;
  a.rounds = 2;
  a.per_round_messages = {3, 4};
  a.total_messages = 7;
  RunStats b;
  b.rounds = 3;
  b.per_round_messages = {1, 0, 2};
  b.total_messages = 3;
  a += b;
  EXPECT_EQ(a.rounds, 5u);
  ASSERT_EQ(a.per_round_messages.size(), 5u);
  EXPECT_EQ(a.per_round_messages[0], 3u);
  EXPECT_EQ(a.per_round_messages[2], 1u);
  EXPECT_EQ(a.per_round_messages[4], 2u);
}

TEST(RunStats, MaxMessageFieldsPropagates) {
  RunStats a;
  a.max_message_fields = 2;
  RunStats b;
  b.max_message_fields = 5;
  a += b;
  EXPECT_EQ(a.max_message_fields, 5u);
}

}  // namespace
}  // namespace dapsp::congest
