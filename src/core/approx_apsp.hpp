// (1+eps)-approximate APSP for non-negative integer weights with zero-weight
// edges allowed (Section IV, Theorem I.5).
//
// Zero edges break the classic positive-weight approximation (which replaces
// a weight-d edge by d unit edges).  The paper's fix:
//   1. Compute all-pairs zero-weight reachability (unweighted APSP over the
//      zero-weight subgraph, O(n) rounds); those pairs have exact distance 0.
//   2. Lift to G' with w'(e) = 1 for zero edges, n^2 * w(e) otherwise; every
//      remaining pair has delta'(u,v) >= 1 and
//      n^2*delta <= delta' <= n^2*delta + n.
//   3. Run a (1+eps/3)-approximation on the positive graph G' via per-scale
//      weight rounding: for each scale 2^i, round weights up to multiples of
//      eps*2^i/(3n) and run the pipelined positive-weight APSP with a capped
//      distance (O(n/eps) rounds per scale, O(log (n W)) scales).
//   4. Scale back, divide by n^2, and use 0 for zero-reachable pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

using graph::NodeId;
using graph::Weight;

struct ApproxApspParams {
  double eps = 0.5;  ///< must satisfy eps > 3/n for the paper's guarantee
};

struct ApproxApspResult {
  /// dist[s][v]: estimate with delta <= dist <= (1+eps)*delta
  /// (exact 0 for zero-weight-reachable pairs, kInfDist when unreachable).
  std::vector<std::vector<Weight>> dist;
  congest::RunStats stats;
  std::uint32_t scales = 0;
  /// Theorem I.5's O((n/eps^2) log n) form (no constants) -- the asymptotic
  /// comparison row printed by the bench.
  std::uint64_t paper_bound = 0;
  /// This implementation's explicit budget: scales * (2*ceil(3n/eps) + n +
  /// k + slack) rounds, which is O((n/eps) log(nW)) -- inside the theorem's
  /// envelope with room to spare.  Tests assert measured <= this.
  std::uint64_t implementation_bound = 0;
};

ApproxApspResult approx_apsp(const graph::Graph& g, ApproxApspParams params);

}  // namespace dapsp::core
