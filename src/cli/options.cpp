#include "cli/options.hpp"

#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dapsp::cli {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument(msg + " (try --help)");
}

std::int64_t parse_int(const std::string& flag, const std::string& value) {
  std::int64_t out = 0;
  const auto* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    fail("bad integer for " + flag + ": '" + value + "'");
  }
  return out;
}

/// Unsigned flag values parse through here so "--n -1" is a loud error, not
/// a 4-billion-node graph: from_chars into uint64 rejects any sign, and the
/// per-flag `max` keeps the value inside the field it lands in (NodeId,
/// uint32, ...) instead of wrapping in a static_cast.
std::uint64_t parse_unsigned(const std::string& flag, const std::string& value,
                             std::uint64_t max) {
  std::uint64_t out = 0;
  const auto* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec == std::errc::result_out_of_range) {
    fail(flag + " out of range (max " + std::to_string(max) + "): '" + value +
         "'");
  }
  if (ec != std::errc{} || ptr != end) {
    fail("bad unsigned integer for " + flag + ": '" + value + "'");
  }
  if (out > max) {
    fail(flag + " out of range (max " + std::to_string(max) + "): '" + value +
         "'");
  }
  return out;
}

double parse_double(const std::string& flag, const std::string& value) {
  std::size_t used = 0;
  double out = 0;
  try {
    out = std::stod(value, &used);
  } catch (const std::exception&) {
    fail("bad number for " + flag + ": '" + value + "'");
  }
  if (used != value.size() || !std::isfinite(out)) {
    fail("bad number for " + flag + ": '" + value + "'");
  }
  return out;
}

/// parse_double plus a closed-interval domain check -- probabilities and
/// fractions ("--p 1.5" used to sail through and produce a complete graph).
double parse_fraction(const std::string& flag, const std::string& value) {
  const double out = parse_double(flag, value);
  if (out < 0.0 || out > 1.0) {
    fail(flag + " must be in [0, 1]: '" + value + "'");
  }
  return out;
}

std::vector<graph::NodeId> parse_id_list(const std::string& flag,
                                         const std::string& value) {
  std::vector<graph::NodeId> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) fail("empty id in " + flag);
    out.push_back(static_cast<graph::NodeId>(
        parse_unsigned(flag, item, graph::kNoNode - 1)));
  }
  if (out.empty()) fail(flag + " needs at least one id");
  return out;
}

Command parse_command(const std::string& word) {
  if (word == "gen") return Command::kGen;
  if (word == "info") return Command::kInfo;
  if (word == "apsp") return Command::kApsp;
  if (word == "kssp") return Command::kKssp;
  if (word == "approx") return Command::kApprox;
  if (word == "serve") return Command::kServe;
  if (word == "query") return Command::kQuery;
  if (word == "profile") return Command::kProfile;
  if (word == "worker") return Command::kWorker;
  if (word == "help" || word == "--help" || word == "-h") return Command::kHelp;
  fail("unknown command '" + word + "'");
}

}  // namespace

Options parse_options(const std::vector<std::string>& args) {
  Options opt;
  if (args.empty()) return opt;  // kHelp
  opt.command = parse_command(args[0]);

  std::size_t i = 1;
  const auto next_value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) fail(flag + " needs a value");
    return args[++i];
  };

  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--graph") {
      opt.graph_file = next_value(a);
    } else if (a == "--gen" || a == "--family") {
      opt.gen = next_value(a);
    } else if (a == "--scale") {
      opt.scale = static_cast<std::uint32_t>(
          parse_unsigned(a, next_value(a), 26));
    } else if (a == "--edgefactor") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 1) fail("--edgefactor must be >= 1");
      opt.edgefactor = static_cast<graph::NodeId>(v);
    } else if (a == "--n") {
      opt.n = static_cast<graph::NodeId>(
          parse_unsigned(a, next_value(a), graph::kNoNode - 1));
    } else if (a == "--p") {
      opt.p = parse_fraction(a, next_value(a));
    } else if (a == "--wmin") {
      opt.wmin = parse_int(a, next_value(a));
    } else if (a == "--wmax") {
      opt.wmax = parse_int(a, next_value(a));
    } else if (a == "--zero") {
      opt.zero_fraction = parse_fraction(a, next_value(a));
    } else if (a == "--seed") {
      opt.seed = parse_unsigned(a, next_value(a),
                                std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--directed") {
      opt.directed = true;
    } else if (a == "--algo") {
      const std::string v = next_value(a);
      if (v == "pipelined") {
        opt.algo = Algo::kPipelined;
      } else if (v == "blocker") {
        opt.algo = Algo::kBlocker;
      } else if (v == "bf") {
        opt.algo = Algo::kBellmanFord;
      } else {
        fail("unknown --algo '" + v + "' (pipelined|blocker|bf)");
      }
    } else if (a == "--sources") {
      opt.sources = parse_id_list(a, next_value(a));
    } else if (a == "--h") {
      opt.h = static_cast<std::uint32_t>(parse_unsigned(
          a, next_value(a), std::numeric_limits<std::uint32_t>::max()));
    } else if (a == "--eps") {
      opt.eps = parse_double(a, next_value(a));
    } else if (a == "--solver") {
      opt.solver = next_value(a);
    } else if (a == "--queries") {
      opt.queries_file = next_value(a);
    } else if (a == "--q") {
      opt.query_strings.push_back(next_value(a));
    } else if (a == "--threads") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 0) fail("--threads must be >= 0");
      opt.threads = static_cast<std::size_t>(v);
    } else if (a == "--pin") {
      opt.pin = true;
    } else if (a == "--cache") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 0) fail("--cache must be >= 0");
      opt.cache_capacity = static_cast<std::size_t>(v);
    } else if (a == "--shards") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 1) fail("--shards must be >= 1");
      opt.shards = static_cast<std::size_t>(v);
    } else if (a == "--max-batch") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 1) fail("--max-batch must be >= 1");
      opt.max_batch = static_cast<std::size_t>(v);
    } else if (a == "--format") {
      const std::string v = next_value(a);
      if (v == "table") {
        opt.format = Format::kTable;
      } else if (v == "json") {
        opt.format = Format::kJson;
      } else if (v == "csv") {
        opt.format = Format::kCsv;
      } else if (v == "binary") {
        opt.format = Format::kBinary;
      } else {
        fail("unknown --format '" + v + "' (table|json|csv|binary)");
      }
    } else if (a == "--out") {
      opt.out_file = next_value(a);
    } else if (a == "--dot") {
      opt.dot_file = next_value(a);
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "--trace") {
      opt.trace_file = next_value(a);
    } else if (a == "--trace-jsonl") {
      opt.trace_jsonl_file = next_value(a);
    } else if (a == "--critpath") {
      opt.critpath = true;
    } else if (a == "--top") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 1) fail("--top must be >= 1");
      opt.top_k = static_cast<std::size_t>(v);
    } else if (a == "--trace-capacity") {
      const std::int64_t v = parse_int(a, next_value(a));
      if (v < 1) fail("--trace-capacity must be >= 1");
      opt.trace_capacity = static_cast<std::size_t>(v);
    } else if (a == "--faults") {
      opt.faults_spec = next_value(a);
    } else if (a == "--fault-seed") {
      opt.fault_seed = parse_unsigned(
          a, next_value(a), std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--backend") {
      opt.backend = next_value(a);
      if (opt.backend != "inproc" && opt.backend != "socket") {
        fail("unknown --backend '" + opt.backend + "' (inproc|socket)");
      }
    } else if (a == "--workers") {
      opt.workers =
          static_cast<std::uint32_t>(parse_unsigned(a, next_value(a), 256));
      if (opt.workers < 1) fail("--workers must be >= 1");
    } else if (a == "--transport") {
      opt.transport = next_value(a);
      if (opt.transport != "unix" && opt.transport != "tcp") {
        fail("unknown --transport '" + opt.transport + "' (unix|tcp)");
      }
    } else if (a == "--net-timeout-ms") {
      opt.net_timeout_ms = static_cast<std::uint32_t>(parse_unsigned(
          a, next_value(a), std::numeric_limits<std::uint32_t>::max()));
      if (opt.net_timeout_ms < 1) fail("--net-timeout-ms must be >= 1");
    } else if (a == "--connect") {
      opt.connect = next_value(a);
    } else if (a == "--rank") {
      opt.rank =
          static_cast<std::uint32_t>(parse_unsigned(a, next_value(a), 255));
    } else {
      fail("unknown flag '" + a + "'");
    }
  }

  if (opt.command == Command::kKssp && opt.sources.empty()) {
    fail("kssp needs --sources");
  }
  if (opt.command == Command::kQuery && opt.query_strings.empty() &&
      !opt.queries_file) {
    fail("query needs --q and/or --queries");
  }
  if (opt.eps <= 0) fail("--eps must be positive");
  if (opt.wmin < 0 || opt.wmax < opt.wmin) fail("bad weight range");
  if (opt.format == Format::kBinary && opt.command != Command::kServe) {
    fail("--format binary is only supported by the serve command");
  }
  if (opt.command == Command::kProfile &&
      (opt.format == Format::kCsv || opt.format == Format::kBinary)) {
    fail("profile supports --format table|json");
  }
  if (opt.command == Command::kWorker && opt.connect.empty()) {
    fail("worker needs --connect");
  }
  if (opt.backend == "socket") {
    if (opt.command != Command::kServe && opt.command != Command::kQuery) {
      fail("--backend socket is only supported by serve and query");
    }
    if (opt.shards > 1) {
      fail("--backend socket does not combine with --shards");
    }
    if (opt.faults_spec) {
      fail("--backend socket does not combine with --faults (the remote "
           "plane carries real messages, not simulated faults)");
    }
    if (opt.critpath) {
      fail("--backend socket does not combine with --critpath (the build "
           "runs in worker processes)");
    }
  }
  return opt;
}

std::string usage() {
  return R"(dapsp_cli -- distributed weighted APSP (CONGEST) toolbox

usage: dapsp_cli <command> [flags]

commands:
  gen      generate a graph (write with --out / --dot)
  info     print graph statistics (n, m, W, Delta, diameter)
  apsp     exact all-pairs shortest paths
  kssp     exact k-source shortest paths (needs --sources)
  approx   (1+eps)-approximate APSP
  serve    build a distance oracle, then answer query lines from stdin
           (or --queries FILE) until EOF/quit; "stats" prints counters,
           "batch N" pipelines the next N lines, "rebuild" hot-swaps a
           freshly built snapshot; --format binary speaks the framed
           batch protocol (see docs/SERVICE.md) instead of text lines
  query    build a distance oracle, run a one-shot query batch (--q/--queries)
  profile  run a solver under the critical-path profiler and print the
           longest causal chain through the round engine (table or
           --format json); with --sources profiles a k-SSP run, otherwise
           an oracle build for --solver
  worker   socket-backend shard process; spawned by the coordinator, not
           meant to be run by hand (needs --connect, --rank)
  help     this text

input (choose one):
  --graph FILE             load a dapsp edge-list file
  --gen KIND               erdos_renyi|grid|cycle|path|tree|ba|rmat
                           (--family is an alias)                [erdos_renyi]
  --n N --p P              generator size / density              [32, 0.1]
  --scale S                rmat: n = 2^S (max 26)                [10]
  --edgefactor E           rmat: m = E * n edge candidates       [8]
  --wmin W --wmax W        weight range                          [0, 8]
  --zero F                 fraction of zero-weight edges         [0]
  --seed S --directed      determinism / directedness

algorithm:
  --algo pipelined|blocker|bf   APSP engine                      [pipelined]
  --sources 0,3,5               k-SSP sources
  --h H                         hop parameter for blocker        [auto]
  --eps E                       approximation quality            [0.5]

service (serve/query; query lines are "dist U V" | "next U V" | "path U V"):
  --solver S               pipelined|blocker|scaled|approx|reference
                           oracle build algorithm                 [pipelined]
  --q "path 0 5"           add one query (repeatable)
  --queries FILE           read query lines from FILE
  --threads N              batch query workers (0 = hardware)     [0]
  --pin                    pin engine worker threads to CPUs (Linux)
  --cache N                path-cache capacity (0 disables)       [4096]
  --shards N               vertex-range oracle shards             [1]
  --max-batch N            largest accepted batch                 [65536]

backend (serve/query oracle builds; see docs/BACKENDS.md):
  --backend inproc|socket  build in-process, or across worker
                           processes over local sockets           [inproc]
  --workers N              socket backend: shard processes (1-256) [2]
  --transport unix|tcp     socket backend: unix-domain or loopback
                           TCP sockets                            [unix]
  --net-timeout-ms MS      per-frame deadline, both sides         [120000]
  --connect SPEC           worker only: coordinator endpoint
                           ("unix:/path" | "tcp:127.0.0.1:PORT")
  --rank R                 worker only: shard index

output:
  --format table|json|csv  result format                         [table]
  --format binary          framed binary protocol (serve only)
  --out FILE               write results / generated graph to FILE
  --dot FILE               write graphviz DOT of the graph
  --quiet                  stats only, no distance matrix

observability (records every engine round of the command):
  --trace FILE             Chrome trace_event JSON (chrome://tracing,
                           ui.perfetto.dev)
  --trace-jsonl FILE       compact JSONL run record (meta + per-round lines)
  --critpath               also record per-(node,round) work items; adds a
                           critpath block to --trace-jsonl and a critpath
                           lane to --trace (implied by the profile command)
  --top K                  segments listed in critical-path reports    [8]
  --trace-capacity N       ring capacity for round events + work items
                           (drops beyond it are counted and warned about)

fault injection (applies to every engine run of the command; deterministic
per seed -- see docs/TESTING.md for the grammar):
  --faults SPEC            e.g. "drop=0.1,dup=0.05,delay=0.2:3,bw=2,
                           crash=4@10..20,seed=99"
  --fault-seed S           override the spec's seed (for sweeps)
)";
}

}  // namespace dapsp::cli
