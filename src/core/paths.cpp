#include "core/paths.hpp"

#include <algorithm>

namespace dapsp::core {

using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

std::optional<std::vector<NodeId>> extract_path(
    std::span<const NodeId> parent, NodeId source, NodeId target,
    std::size_t max_hops) {
  std::vector<NodeId> rev{target};
  NodeId u = target;
  const std::size_t limit = std::min(max_hops, parent.size());
  while (u != source) {
    if (rev.size() > limit + 1) return std::nullopt;  // cycle or too long
    const NodeId p = parent[u];
    if (p == kNoNode || p >= parent.size()) return std::nullopt;
    rev.push_back(p);
    u = p;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::optional<Weight> path_weight(const graph::Graph& g,
                                  std::span<const NodeId> path) {
  Weight total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto w = g.arc_weight(path[i], path[i + 1]);
    if (!w) return std::nullopt;
    total += *w;
  }
  return total;
}

bool parents_realize_distances(const graph::Graph& g, NodeId source,
                               std::span<const Weight> dist,
                               std::span<const NodeId> parent) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dist[v] == kInfDist || v == source) continue;
    const auto path = extract_path(parent, source, v);
    if (!path) return false;
    const auto w = path_weight(g, *path);
    if (!w || *w != dist[v]) return false;
  }
  return true;
}

}  // namespace dapsp::core
