// Tests for path reconstruction from last-edge tables.
#include <gtest/gtest.h>

#include "baseline/bf_apsp.hpp"
#include "core/paths.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "seq/dijkstra.hpp"

namespace dapsp::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;

TEST(Paths, ExtractSimpleChain) {
  // parents along a path 0 <- 1 <- 2 <- 3.
  const std::vector<NodeId> parent{kNoNode, 0, 1, 2};
  const auto p = extract_path(parent, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<NodeId>{0, 1, 2, 3}));
  const auto self = extract_path(parent, 0, 0);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->size(), 1u);
}

TEST(Paths, DetectsCycleAndDangling) {
  const std::vector<NodeId> cyclic{kNoNode, 2, 1, 2};
  EXPECT_FALSE(extract_path(cyclic, 0, 1).has_value());
  const std::vector<NodeId> dangling{kNoNode, kNoNode, 1};
  EXPECT_FALSE(extract_path(dangling, 0, 2).has_value());
}

TEST(Paths, WeightOfRealPath) {
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1, 2).add_edge(1, 2, 0).add_edge(2, 3, 5);
  const Graph g = std::move(b).build();
  const std::vector<NodeId> path{0, 1, 2, 3};
  EXPECT_EQ(path_weight(g, path), 7);
  const std::vector<NodeId> broken{0, 2};
  EXPECT_FALSE(path_weight(g, broken).has_value());
}

TEST(Paths, DijkstraParentsRealizeDistances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::erdos_renyi(24, 0.15, {0, 7, 0.3}, 6000 + seed,
                                       seed % 2 == 0);
    for (NodeId s = 0; s < 4; ++s) {
      const auto dj = seq::dijkstra(g, s);
      EXPECT_TRUE(parents_realize_distances(g, s, dj.dist, dj.parent))
          << "seed " << seed << " source " << s;
    }
  }
}

TEST(Paths, BellmanFordParentsRealizeDistances) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(20, 0.18, {0, 5, 0.4}, 6100 + seed);
    const auto bf = baseline::bf_sssp(g, 0);
    EXPECT_TRUE(parents_realize_distances(g, 0, bf.dist, bf.parent));
  }
}

TEST(Paths, PipelinedApspParentsRealizeDistances) {
  // With h = n-1 every pair is in scope, so Algorithm 1's parent chains are
  // final-consistent and must telescope to the exact distances.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(16, 0.2, {0, 5, 0.3}, 6200 + seed);
    const auto res = pipelined_apsp(g, graph::max_finite_distance(g));
    for (std::size_t i = 0; i < res.sources.size(); ++i) {
      EXPECT_TRUE(parents_realize_distances(g, res.sources[i], res.dist[i],
                                            res.parent[i]))
          << "seed " << seed << " source " << res.sources[i];
    }
  }
}

}  // namespace
}  // namespace dapsp::core
