file(REMOVE_RECURSE
  "CMakeFiles/short_range_test.dir/short_range_test.cpp.o"
  "CMakeFiles/short_range_test.dir/short_range_test.cpp.o.d"
  "short_range_test"
  "short_range_test.pdb"
  "short_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
