// Tests for CSSSP construction (Section III-A): tree shape, the consistency
// property of Definition III.3, and the Figure-1 phenomenon it fixes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "seq/dijkstra.hpp"

namespace dapsp::core {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;

CsspCollection build(const Graph& g, const std::vector<NodeId>& sources,
                     std::uint32_t h) {
  const Weight delta2h = graph::max_finite_hop_distance(g, 2 * h);
  return build_cssp(g, sources, h, delta2h);
}

/// Walks v's tree path up to the root; fails on cycles or broken parents.
std::vector<NodeId> root_path(const CsspCollection& c, std::size_t i,
                              NodeId v) {
  std::vector<NodeId> path{v};
  NodeId u = v;
  while (c.parent[i][u] != kNoNode) {
    u = c.parent[i][u];
    path.push_back(u);
    EXPECT_LE(path.size(), static_cast<std::size_t>(c.h) + 2) << "cycle?";
    if (path.size() > c.h + 2) break;
  }
  return path;  // v ... root
}

void check_tree_shape(const Graph& g, const CsspCollection& c) {
  for (std::size_t i = 0; i < c.sources.size(); ++i) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!c.in_tree(i, v)) continue;
      if (v == c.sources[i]) {
        EXPECT_EQ(c.depth[i][v], 0u);
        continue;
      }
      // Height bounded by h (the whole point of CSSSP, cf. Figure 1).
      EXPECT_LE(c.depth[i][v], c.h);
      const auto path = root_path(c, i, v);
      EXPECT_EQ(path.back(), c.sources[i]);
      EXPECT_EQ(path.size(), c.depth[i][v] + 1);
      // Parent depth decreases by one; tree distances telescope along arcs.
      const NodeId p = c.parent[i][v];
      EXPECT_EQ(c.depth[i][p] + 1, c.depth[i][v]);
      const auto w = g.arc_weight(p, v);
      ASSERT_TRUE(w.has_value());
      EXPECT_EQ(c.dist[i][p] + *w, c.dist[i][v]);
    }
  }
}

void check_membership_and_distances(const Graph& g, const CsspCollection& c) {
  // Definition III.3: T_u contains every v whose true distance is achieved
  // by a path with at most h hops, at that true distance.
  for (std::size_t i = 0; i < c.sources.size(); ++i) {
    const auto dj = seq::dijkstra(g, c.sources[i]);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dj.dist[v] != kInfDist && dj.hops[v] <= c.h) {
        ASSERT_TRUE(c.in_tree(i, v))
            << "tree " << c.sources[i] << " missing node " << v;
        EXPECT_EQ(c.dist[i][v], dj.dist[v]);
        EXPECT_EQ(c.depth[i][v], dj.hops[v]);
      }
      if (c.in_tree(i, v)) {
        EXPECT_GE(c.dist[i][v], dj.dist[v]);  // tree paths are real paths
      }
    }
  }
}

void check_consistency(const Graph& g, const CsspCollection& c) {
  // Definition III.3: for every u, v the u->v path is identical in every
  // tree in which u is an ancestor of v.  So whenever some u appears on v's
  // root paths in two trees, the segments from u down to v must coincide.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::size_t a = 0; a < c.sources.size(); ++a) {
      if (!c.in_tree(a, v) || v == c.sources[a]) continue;
      for (std::size_t b = a + 1; b < c.sources.size(); ++b) {
        if (!c.in_tree(b, v) || v == c.sources[b]) continue;
        const auto pa = root_path(c, a, v);  // v ... root_a
        const auto pb = root_path(c, b, v);  // v ... root_b
        for (std::size_t ja = 1; ja < pa.size(); ++ja) {
          const auto it = std::find(pb.begin(), pb.end(), pa[ja]);
          if (it == pb.end()) continue;  // u not an ancestor in T_b
          const auto jb = static_cast<std::size_t>(it - pb.begin());
          // Compare the u -> v segments hop by hop.
          const bool same_len = ja == jb;
          EXPECT_TRUE(same_len)
              << "common ancestor " << pa[ja] << " of node " << v
              << " at different depths-below in trees " << c.sources[a]
              << " and " << c.sources[b];
          if (!same_len) continue;
          for (std::size_t t = 0; t < ja; ++t) {
            EXPECT_EQ(pa[t], pb[t])
                << "trees " << c.sources[a] << " and " << c.sources[b]
                << " route " << pa[ja] << " -> " << v << " differently";
          }
        }
      }
    }
  }
}

void check_children(const Graph& g, const CsspCollection& c) {
  for (std::size_t i = 0; i < c.sources.size(); ++i) {
    std::size_t links = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const NodeId child : c.children[i][v]) {
        EXPECT_EQ(c.parent[i][child], v);
        ++links;
      }
    }
    std::size_t members = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      members += c.in_tree(i, v) && v != c.sources[i];
    }
    EXPECT_EQ(links, members);  // every non-root member is someone's child
  }
}

TEST(Cssp, RandomGraphSweep) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = graph::erdos_renyi(20, 0.18, {0, 5, 0.3}, 1200 + seed,
                                       seed % 2 == 0);
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < g.node_count(); v += 2) sources.push_back(v);
    const auto c = build(g, sources, 4);
    check_tree_shape(g, c);
    check_membership_and_distances(g, c);
    check_consistency(g, c);
    check_children(g, c);
  }
}

TEST(Cssp, ZeroHeavySweep) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = graph::erdos_renyi(18, 0.22, {0, 2, 0.7}, 1300 + seed);
    std::vector<NodeId> sources{0, 3, 6, 9, 12, 15};
    const auto c = build(g, sources, 3);
    check_tree_shape(g, c);
    check_membership_and_distances(g, c);
    check_consistency(g, c);
    check_children(g, c);
  }
}

TEST(Cssp, Fig1GadgetTruncationNeeded) {
  // On the Figure-1 gadget, the 2h-hop run reaches the tail nodes with more
  // than h hops from the source; the truncated tree must exclude them while
  // the 2h data still records them.
  const std::uint32_t h = 3;
  const Graph g = graph::fig1_gadget(h);  // nodes: 0=s, chain 1..3, tail 4..6
  const auto c = build(g, {0}, h);
  // z = node 3 at depth 3 via the zero chain.
  EXPECT_TRUE(c.in_tree(0, 3));
  EXPECT_EQ(c.dist[0][3], 0);
  EXPECT_EQ(c.depth[0][3], 3u);
  // First tail node (4) needs 4 hops for distance 0 -> outside the h-hop
  // tree, but present in the 2h-hop data.
  EXPECT_FALSE(c.in_tree(0, 4));
  EXPECT_EQ(c.dist2h[0][4], 0);
  EXPECT_EQ(c.hops2h[0][4], 4u);
}

TEST(Cssp, AllSourcesGrid) {
  const Graph g = graph::grid(3, 4, {0, 4, 0.3}, 1400);
  std::vector<NodeId> sources(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) sources[v] = v;
  const auto c = build(g, sources, 3);
  check_tree_shape(g, c);
  check_membership_and_distances(g, c);
  check_consistency(g, c);
  check_children(g, c);
}

TEST(Cssp, StatsAccumulateAcrossPhases) {
  const Graph g = graph::cycle(10, {1, 2, 0.0}, 1500);
  const auto c = build(g, {0, 5}, 2);
  // Alg-1 run plus k rounds of child notification.
  EXPECT_GT(c.stats.rounds, 2u);
  EXPECT_GT(c.stats.total_messages, 0u);
}

}  // namespace
}  // namespace dapsp::core
