#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace dapsp::graph {
namespace {

TEST(GraphBuilder, UndirectedAddsBothArcs) {
  GraphBuilder b(3, /*directed=*/false);
  b.add_edge(0, 1, 5);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.arc_weight(0, 1), 5);
  EXPECT_EQ(g.arc_weight(1, 0), 5);
  EXPECT_FALSE(g.arc_weight(0, 2).has_value());
}

TEST(GraphBuilder, DirectedSingleArc) {
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1, 5);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.arc_weight(0, 1), 5);
  EXPECT_FALSE(g.arc_weight(1, 0).has_value());
  // ... but the communication link is bidirectional.
  ASSERT_EQ(g.comm_neighbors(1).size(), 1u);
  EXPECT_EQ(g.comm_neighbors(1)[0], 0u);
}

TEST(GraphBuilder, RejectsBadInput) {
  GraphBuilder b(3, false);
  EXPECT_THROW(b.add_edge(0, 3, 1), std::logic_error);
  EXPECT_THROW(b.add_edge(1, 1, 1), std::logic_error);
  EXPECT_THROW(b.add_edge(0, 1, -2), std::logic_error);
}

TEST(GraphBuilder, HasArcTracksBothDirectionsWhenUndirected) {
  GraphBuilder b(4, false);
  b.add_edge(0, 1, 1);
  EXPECT_TRUE(b.has_arc(0, 1));
  EXPECT_TRUE(b.has_arc(1, 0));
  EXPECT_FALSE(b.has_arc(0, 2));
}

TEST(Graph, InEdgesMirrorOutEdges) {
  GraphBuilder b(4, true);
  b.add_edge(0, 2, 3).add_edge(1, 2, 4).add_edge(2, 3, 5);
  Graph g = std::move(b).build();
  ASSERT_EQ(g.in_edges(2).size(), 2u);
  EXPECT_EQ(g.in_edges(2)[0].from, 0u);
  EXPECT_EQ(g.in_edges(2)[1].from, 1u);
  EXPECT_EQ(g.out_edges(2).size(), 1u);
  EXPECT_EQ(g.max_weight(), 5);
}

TEST(Graph, CommNeighborsSortedAndDeduped) {
  GraphBuilder b(4, true);
  b.add_edge(0, 1, 1).add_edge(1, 0, 2).add_edge(3, 1, 1);
  Graph g = std::move(b).build();
  const auto nbrs = g.comm_neighbors(1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(g.comm_edge_count(), 2u);
}

TEST(Generators, PathProperties) {
  const Graph g = path(5, {1, 1, 0.0}, 1);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 8u);  // 4 undirected edges
  EXPECT_EQ(max_finite_distance(g), 4);
  EXPECT_EQ(comm_diameter(g), 4);
}

TEST(Generators, CycleConnected) {
  const Graph g = cycle(6, {1, 1, 0.0}, 2);
  EXPECT_TRUE(strongly_connected(g));
  EXPECT_EQ(comm_diameter(g), 3);
}

TEST(Generators, DirectedCycleStronglyConnected) {
  const Graph g = cycle(5, {1, 3, 0.0}, 3, /*directed=*/true);
  EXPECT_TRUE(strongly_connected(g));
}

TEST(Generators, GridShape) {
  const Graph g = grid(3, 4, {1, 1, 0.0}, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.comm_edge_count(), 3u * 3 + 4u * 2);  // 17 grid edges
  EXPECT_TRUE(comm_connected(g));
}

TEST(Generators, StarDiameterTwo) {
  const Graph g = star(8, {1, 1, 0.0}, 5);
  EXPECT_EQ(comm_diameter(g), 2);
  EXPECT_EQ(g.comm_degree(0), 7u);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = complete(6, {0, 4, 0.0}, 6);
  EXPECT_EQ(g.comm_edge_count(), 15u);
}

TEST(Generators, RandomTreeIsConnectedAcyclic) {
  const Graph g = random_tree(40, {0, 9, 0.2}, 7);
  EXPECT_EQ(g.comm_edge_count(), 39u);
  EXPECT_TRUE(comm_connected(g));
}

TEST(Generators, ErdosRenyiConnectBackbone) {
  const Graph g = erdos_renyi(30, 0.02, {0, 5, 0.1}, 8);
  EXPECT_TRUE(comm_connected(g));
  EXPECT_TRUE(strongly_connected(g));  // undirected + connected
}

TEST(Generators, ErdosRenyiDeterministicInSeed) {
  const Graph a = erdos_renyi(20, 0.2, {0, 9, 0.1}, 11);
  const Graph b = erdos_renyi(20, 0.2, {0, 9, 0.1}, 11);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
  }
  const Graph c = erdos_renyi(20, 0.2, {0, 9, 0.1}, 12);
  bool differs = a.edge_count() != c.edge_count();
  for (std::size_t i = 0; !differs && i < a.edge_count(); ++i) {
    differs = !(a.edges()[i] == c.edges()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, ZeroFractionProducesZeroEdges) {
  const Graph g = erdos_renyi(30, 0.3, {1, 9, 0.5}, 13);
  std::size_t zeros = 0;
  for (const Edge& e : g.edges()) zeros += e.weight == 0;
  EXPECT_GT(zeros, 0u);
}

TEST(Generators, BarabasiAlbertConnectedAndHubby) {
  const Graph g = barabasi_albert(60, 2, {1, 5, 0.0}, 30);
  EXPECT_TRUE(comm_connected(g));
  // Preferential attachment: max degree well above the attach parameter.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    max_deg = std::max(max_deg, g.comm_degree(v));
  }
  EXPECT_GE(max_deg, 6u);
  EXPECT_THROW(barabasi_albert(10, 0, {1, 1, 0.0}, 1), std::logic_error);
}

TEST(Generators, BarabasiAlbertDeterministic) {
  const Graph a = barabasi_albert(30, 2, {0, 4, 0.2}, 31);
  const Graph b = barabasi_albert(30, 2, {0, 4, 0.2}, 31);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
  }
}

TEST(Generators, IspTopologyShape) {
  const Graph g = isp_topology(4, 6, 10, 30, 0.5, 33);
  EXPECT_EQ(g.node_count(), 24u);
  EXPECT_TRUE(comm_connected(g));
  // Ring (4 links) + 4 trees of 5 links each.
  EXPECT_EQ(g.comm_edge_count(), 4u + 4u * 5u);
  // Backbone weights are >= 10; some intra-PoP links are zero.
  bool saw_backbone = false, saw_zero = false;
  for (const Edge& e : g.edges()) {
    saw_backbone = saw_backbone || e.weight >= 10;
    saw_zero = saw_zero || e.weight == 0;
  }
  EXPECT_TRUE(saw_backbone);
  EXPECT_TRUE(saw_zero);
  EXPECT_THROW(isp_topology(2, 4, 1, 2, 0.0, 1), std::logic_error);
}

TEST(Generators, LayeredReachability) {
  const Graph g = layered(4, 5, 2, {1, 3, 0.0}, 14);
  EXPECT_EQ(g.node_count(), 20u);
  // Every layer-0 node reaches some layer-3 node through directed edges.
  EXPECT_TRUE(g.directed());
}

TEST(Generators, Fig1GadgetShape) {
  const Graph g = fig1_gadget(4);
  EXPECT_EQ(g.node_count(), 9u);
  // Cheap chain end ("z") is node 4, shortcut from 0 with weight 1.
  EXPECT_EQ(g.arc_weight(0, 4), 1);
  EXPECT_EQ(g.arc_weight(0, 1), 0);
  // The zero-weight chain makes every node reachable at distance 0.
  EXPECT_EQ(max_finite_distance(g), 0);
}

TEST(Generators, BoundedDistanceGraphRespectsDelta) {
  const Graph g = bounded_distance_graph(24, 0.15, 12, 15);
  EXPECT_LE(max_finite_distance(g), 12);
  EXPECT_TRUE(comm_connected(g));
}

TEST(Io, RoundTripUndirected) {
  const Graph g = erdos_renyi(15, 0.2, {0, 7, 0.2}, 21);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    EXPECT_EQ(h.edges()[i], g.edges()[i]);
  }
}

TEST(Io, RoundTripDirected) {
  const Graph g = layered(3, 3, 2, {0, 5, 0.3}, 22);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_TRUE(h.directed());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    EXPECT_EQ(h.edges()[i], g.edges()[i]);
  }
}

TEST(Io, CommentsAndBadHeader) {
  std::stringstream ok("# comment\ndapsp undirected 2 1\n0 1 7\n");
  const Graph g = read_graph(ok);
  EXPECT_EQ(g.arc_weight(0, 1), 7);

  std::stringstream bad("wrong undirected 2 1\n0 1 7\n");
  EXPECT_THROW(read_graph(bad), std::runtime_error);
  std::stringstream truncated("dapsp undirected 2 2\n0 1 7\n");
  EXPECT_THROW(read_graph(truncated), std::runtime_error);
}

TEST(Io, TruncatedHeaderThrowsInsteadOfEmptyGraph) {
  // Regression: the header extraction was never checked, so "dapsp directed"
  // with no counts parsed as a valid 0-node graph and silently discarded
  // every edge line that followed.
  for (const char* text : {
           "dapsp directed\n0 1 7\n",
           "dapsp undirected\n",
           "dapsp\n",
           "dapsp directed four 2\n0 1 7\n",
           "dapsp directed 4\n0 1 7\n",
       }) {
    std::stringstream in(text);
    EXPECT_THROW(read_graph(in), std::runtime_error) << text;
  }
}

TEST(Io, RoundTripZeroWeightAndIsolatedNodes) {
  // Zero weights and trailing isolated nodes must survive a round trip.
  GraphBuilder b(6, /*directed=*/false);
  b.add_edge(0, 1, 0).add_edge(1, 2, 5).add_edge(2, 0, 0);
  const Graph g = std::move(b).build();
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.node_count(), 6u);
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    EXPECT_EQ(h.edges()[i], g.edges()[i]);
  }
}

TEST(Io, RoundTripPropertyAcrossRandomGraphs) {
  // Property test: write/read is the identity on edges for both
  // orientations across a spread of random graphs.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (const bool directed : {false, true}) {
      const Graph g = directed
                          ? layered(4, 3, 2, {0, 9, 0.3}, 500 + seed)
                          : erdos_renyi(12, 0.3, {0, 9, 0.3}, 600 + seed);
      std::stringstream ss;
      write_graph(ss, g);
      const Graph h = read_graph(ss);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " directed=" + std::to_string(directed));
      EXPECT_EQ(h.directed(), g.directed());
      EXPECT_EQ(h.node_count(), g.node_count());
      ASSERT_EQ(h.edge_count(), g.edge_count());
      for (std::size_t i = 0; i < g.edge_count(); ++i) {
        EXPECT_EQ(h.edges()[i], g.edges()[i]);
      }
    }
  }
}

TEST(Io, SelfLoopInputFailsLoudly) {
  // GraphBuilder rejects self-loops by design (zero-weight loops would break
  // next-hop routing); a file containing one must fail loudly on read, never
  // load-then-silently-drop on the next write.
  std::stringstream in("dapsp undirected 3 2\n0 1 4\n2 2 0\n");
  EXPECT_THROW(read_graph(in), std::logic_error);
}

TEST(Io, DotExportUndirected) {
  GraphBuilder b(3, /*directed=*/false);
  b.add_edge(0, 1, 4).add_edge(1, 2, 0);
  const Graph g = std::move(b).build();
  std::stringstream ss;
  write_dot(ss, g);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph dapsp"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1 [label=\"4\"]"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2 [label=\"0\"]"), std::string::npos);
  // Each undirected edge appears once.
  EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);
}

TEST(Io, DotExportTree) {
  GraphBuilder b(4, /*directed=*/true);
  b.add_edge(0, 1, 2).add_edge(1, 2, 3).add_edge(0, 3, 1);
  const Graph g = std::move(b).build();
  const std::vector<NodeId> parent{kNoNode, 0, 1, 0};
  std::stringstream ss;
  write_tree_dot(ss, g, parent, 0);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("0 [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1 [label=\"2\"]"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 2 [label=\"3\"]"), std::string::npos);
}

TEST(Properties, MaxHopDistance) {
  // Path with weights 1: h-hop distance from end to end needs 4 hops.
  const Graph g = path(5, {1, 1, 0.0}, 1);
  EXPECT_EQ(max_finite_hop_distance(g, 4), 4);
  EXPECT_EQ(max_finite_hop_distance(g, 2), 2);  // only nearer pairs reachable
}

TEST(Properties, DisconnectedDiameterInfinite) {
  GraphBuilder b(4, false);
  b.add_edge(0, 1, 1).add_edge(2, 3, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(comm_diameter(g), kInfDist);
  EXPECT_FALSE(comm_connected(g));
  EXPECT_FALSE(strongly_connected(g));
}

}  // namespace
}  // namespace dapsp::graph
