#include "serve/snapshot_manager.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "serve/sharded_oracle.hpp"

namespace dapsp::serve {

SnapshotManager::SnapshotManager(service::QueryService& svc, graph::Graph g,
                                 service::OracleBuildOptions opts,
                                 std::size_t shards)
    : svc_(svc),
      opts_(opts),
      shards_(shards),
      graph_(std::move(g)),
      worker_([this] { worker_loop(); }) {}

SnapshotManager::~SnapshotManager() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void SnapshotManager::set_graph(graph::Graph g) {
  std::lock_guard lock(mu_);
  graph_ = std::move(g);
}

void SnapshotManager::rebuild_async() {
  {
    std::lock_guard lock(mu_);
    pending_ = true;
    ++submitted_gen_;
  }
  cv_.notify_one();
}

void SnapshotManager::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return !pending_ && !building_; });
}

service::RebuildOutcome SnapshotManager::rebuild_now() {
  std::uint64_t my_gen = 0;
  {
    std::lock_guard lock(mu_);
    pending_ = true;
    my_gen = ++submitted_gen_;
  }
  cv_.notify_one();
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this, my_gen] { return done_gen_ >= my_gen; });
  return last_outcome_;
}

SnapshotManager::Stats SnapshotManager::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void SnapshotManager::worker_loop() {
  for (;;) {
    std::uint64_t claimed_gen = 0;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return pending_ || stop_; });
      // Drain the pending slot even on shutdown so rebuild_now callers racing
      // the destructor still observe their request completing.
      if (stop_ && !pending_) return;
      pending_ = false;
      building_ = true;
      // Claim every request submitted so far: the build about to run copies
      // the graph *after* this point, so it observes all of their inputs.
      claimed_gen = submitted_gen_;
    }
    run_one_rebuild(claimed_gen);
    {
      std::lock_guard lock(mu_);
      building_ = false;
    }
    idle_cv_.notify_all();
    done_cv_.notify_all();
  }
}

void SnapshotManager::run_one_rebuild(std::uint64_t claimed_gen) {
  // Copy the input under the lock, build without it: set_graph and new
  // rebuild_async calls stay non-blocking for the whole build.
  graph::Graph g;
  {
    std::lock_guard lock(mu_);
    g = graph_;
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    auto snap = build_sharded_oracle(g, opts_, shards_);
    const auto build_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    const std::uint64_t epoch = svc_.swap_snapshot(std::move(snap), build_ns);
    std::lock_guard lock(mu_);
    ++stats_.rebuilds_ok;
    stats_.last_build_ns = build_ns;
    stats_.last_epoch = epoch;
    stats_.last_error.clear();
    done_gen_ = claimed_gen;
    last_outcome_ = {true, epoch, build_ns, {}};
  } catch (const std::exception& e) {
    // The serving snapshot is untouched: a failed build is an observability
    // event, not an outage.
    std::lock_guard lock(mu_);
    ++stats_.rebuilds_failed;
    stats_.last_error = e.what();
    done_gen_ = claimed_gen;
    last_outcome_ = {false, stats_.last_epoch, 0, e.what()};
  }
}

}  // namespace dapsp::serve
