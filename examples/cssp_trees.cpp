// Visualizing CSSSP collections: build the consistent h-hop trees on the
// paper's Figure-1 gadget and emit Graphviz DOT files (one per tree) so the
// truncation and consistency are visible.
//
//   ./cssp_trees [h] [out_prefix]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/cssp.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

int main(int argc, char** argv) {
  using namespace dapsp;
  using graph::NodeId;

  const auto h = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 3);
  const std::string prefix = argc > 2 ? argv[2] : "/tmp/cssp_tree";

  const graph::Graph g = graph::fig1_gadget(h);
  std::vector<NodeId> sources(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) sources[v] = v;
  const auto cssp = core::build_cssp(
      g, sources, h, graph::max_finite_hop_distance(g, 2 * h));

  std::cout << "figure-1 gadget (h=" << h << "): n=" << g.node_count()
            << ", CSSSP built in " << cssp.stats.rounds << " rounds\n\n";
  std::cout << "tree membership (rows: source, x = node in tree):\n     ";
  for (NodeId v = 0; v < g.node_count(); ++v) std::cout << v % 10;
  std::cout << "\n";
  for (std::size_t i = 0; i < cssp.sources.size(); ++i) {
    std::cout << "  " << (cssp.sources[i] < 10 ? " " : "") << cssp.sources[i]
              << ": ";
    for (NodeId v = 0; v < g.node_count(); ++v) {
      std::cout << (cssp.in_tree(i, v) ? 'x' : '.');
    }
    std::cout << "\n";
  }

  // Emit the graph plus the first two trees as DOT.
  {
    std::ofstream dot(prefix + "_graph.dot");
    graph::write_dot(dot, g);
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(2, cssp.sources.size());
       ++i) {
    std::ostringstream name;
    name << prefix << "_T" << cssp.sources[i] << ".dot";
    std::ofstream dot(name.str());
    graph::write_tree_dot(dot, g, cssp.parent[i], cssp.sources[i]);
    std::cout << "wrote " << name.str() << "\n";
  }
  std::cout << "wrote " << prefix << "_graph.dot\n"
            << "render with: dot -Tpng " << prefix << "_graph.dot -o out.png\n";
  return 0;
}
