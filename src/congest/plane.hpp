// MessagePlane: the engine's pluggable round-exchange backend.
//
// Every executed round the engine finalizes its senders' outboxes into the
// SoA per-link columns (congest/engine.*).  With the default in-process
// plane that is the end of the story: receivers gather straight from the
// columns.  A *remote* plane interposes a real transport between finalize
// and gather: the engine serializes the round into the canonical block
// below, hands it to the plane's exchange(), and gathers the receive side
// from the bytes the plane returns.  The socket backend (src/net/) is the
// second implementation: every worker process executes the solver in
// deterministic lockstep, ships only the senders it *owns* (a contiguous
// vertex range) to the coordinator, and gathers the round from the
// authoritative concatenation the coordinator broadcasts back.
//
// Canonical round block (all integers little-endian):
//
//   block  := u32 sender_count | sender_count x sender
//   sender := u32 sender_id | u32 group_count | u32 byte_len | groups
//   groups := group_count x (u32 link_slot | u32 count | count x msg)
//   msg    := u32 tag | u32 used | used x u64 field
//
// Senders appear in ascending id order (the engine's deterministic
// accounting order); groups appear in the sender's first-touch link order;
// messages within a group keep send order.  `byte_len` is the size of the
// sender's `groups` bytes, so a shard can slice its owned senders without
// decoding message payloads.  A message costs exactly 8 + 8*used bytes on
// the wire -- the same formula RunStats::message_bytes uses -- so the
// in-process byte stat *is* the real wire payload byte count, bit for bit.
//
// Lifecycle contract: one begin_run per engine construction, one exchange
// per executed round (fast-forwarded silent gaps are deterministic and
// exchange nothing), one end_run when Engine::run() returns.  Remote planes
// use the calls as barriers, so every process in a lockstep fleet must
// construct and run engines in the same order -- true for all solvers in
// this repository because engine construction order is a pure function of
// the (graph, options) inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "congest/message.hpp"
#include "congest/metrics.hpp"

namespace dapsp::congest {

class MessagePlane {
 public:
  virtual ~MessagePlane() = default;

  virtual const char* name() const noexcept = 0;

  /// True when the engine must serialize every executed round through
  /// exchange().  The in-process plane returns false and the engine skips
  /// encoding entirely (the zero-allocation fast path of PR 8).
  virtual bool remote() const noexcept = 0;

  /// Start of one engine run: node count and directed link count of the
  /// communication graph the engine was built on.
  virtual void begin_run(NodeId nodes, std::uint64_t links) = 0;

  /// Ships the canonical round block and replaces `block` with the
  /// authoritative bytes to gather from.  On a healthy lockstep run the
  /// returned bytes equal the input bit for bit; a mismatch is a
  /// distributed-consistency failure and the plane must throw.
  virtual void exchange(Round round, std::string& block) = 0;

  /// End of the run, with the engine's final (deterministic) stats.
  virtual void end_run(const RunStats& stats) = 0;
};

/// The multi-threaded simulator backend: no serialization, no transport;
/// every hook is a no-op and remote() steers the engine onto the direct
/// column-gather path.  Stateless, hence a process-wide singleton.
class InProcessPlane final : public MessagePlane {
 public:
  static InProcessPlane& instance() noexcept;

  const char* name() const noexcept override { return "inproc"; }
  bool remote() const noexcept override { return false; }
  void begin_run(NodeId, std::uint64_t) override {}
  void exchange(Round, std::string&) override {}
  void end_run(const RunStats&) override {}
};

// --- canonical block primitives -------------------------------------------
//
// Shared by the engine's encoder, the socket plane's shard slicer, and the
// coordinator's reassembly; all little-endian, bounds-checked on the read
// side (a truncated or corrupt block latches `ok` false instead of reading
// out of range).

inline void block_put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline void block_put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Overwrites 4 bytes at `pos` (for length fields patched after the fact).
inline void block_patch_u32(std::string& out, std::size_t pos,
                            std::uint32_t v) {
  out[pos] = static_cast<char>(v & 0xff);
  out[pos + 1] = static_cast<char>((v >> 8) & 0xff);
  out[pos + 2] = static_cast<char>((v >> 16) & 0xff);
  out[pos + 3] = static_cast<char>((v >> 24) & 0xff);
}

class BlockReader {
 public:
  explicit BlockReader(std::string_view s)
      : p_(reinterpret_cast<const unsigned char*>(s.data())),
        end_(p_ + s.size()) {}

  bool ok() const noexcept { return ok_; }
  bool done() const noexcept { return p_ == end_; }
  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

  std::uint32_t u32() noexcept {
    if (remaining() < 4) return fail32();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p_[i]} << (8 * i);
    p_ += 4;
    return v;
  }

  std::uint64_t u64() noexcept {
    if (remaining() < 8) return fail64();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p_[i]} << (8 * i);
    p_ += 8;
    return v;
  }

  /// Borrows `len` raw bytes; empty view (and latched failure) when short.
  std::string_view bytes(std::size_t len) noexcept {
    if (remaining() < len) {
      ok_ = false;
      return {};
    }
    std::string_view v(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return v;
  }

  void skip(std::size_t len) noexcept {
    if (remaining() < len) {
      ok_ = false;
      return;
    }
    p_ += len;
  }

 private:
  std::uint32_t fail32() noexcept {
    ok_ = false;
    return 0;
  }
  std::uint64_t fail64() noexcept {
    ok_ = false;
    return 0;
  }

  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

/// FNV-1a 64 over raw bytes: the round digest every worker stamps on its
/// ROUND frame and checks on the DELIVER it gets back.  Not cryptographic;
/// it detects divergence and corruption, not adversaries.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

}  // namespace dapsp::congest
