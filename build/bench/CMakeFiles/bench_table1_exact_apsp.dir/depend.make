# Empty dependencies file for bench_table1_exact_apsp.
# This may be replaced when dependencies are built.
