// E8 -- Theorem I.5: (1+eps)-approximate APSP with zero weights.
//
// Shape expectations: rounds grow as eps shrinks (our per-scale construction
// gives ~(n/eps) log(nW), inside the theorem's O((n/eps^2) log n)); the
// worst observed ratio never exceeds 1+eps; zero-reachable pairs are exact.
#include "core/approx_apsp.hpp"
#include "graph/generators.hpp"
#include "harness.hpp"
#include "seq/dijkstra.hpp"

int main() {
  using namespace dapsp;
  using bench::fmt;

  bench::banner("E8: Theorem I.5 ((1+eps)-approximate APSP)",
                "eps sweep on a zero-weight-heavy graph.");

  const graph::NodeId n = 28;
  graph::WeightSpec spec;
  spec.min_weight = 0;
  spec.max_weight = 32;
  spec.zero_fraction = 0.4;
  const graph::Graph g = graph::erdos_renyi(n, 3.5 / n, spec, 888);
  const auto exact = seq::apsp(g);

  bench::Table table({"eps", "scales", "rounds", "impl bound", "paper bound",
                      "worst ratio", "allowed", "mean ratio"});

  for (const double eps : {2.0, 1.0, 0.5, 0.25, 0.125}) {
    core::ApproxApspParams p;
    p.eps = eps;
    const auto res = core::approx_apsp(g, p);
    double worst = 1.0, sum = 0.0;
    std::uint64_t count = 0;
    for (graph::NodeId s = 0; s < n; ++s) {
      for (graph::NodeId v = 0; v < n; ++v) {
        if (exact[s][v] == graph::kInfDist || exact[s][v] == 0) continue;
        const double r = static_cast<double>(res.dist[s][v]) /
                         static_cast<double>(exact[s][v]);
        worst = std::max(worst, r);
        sum += r;
        ++count;
      }
    }
    table.row({fmt(eps, 3), fmt(std::uint64_t{res.scales}),
               fmt(res.stats.rounds), fmt(res.implementation_bound),
               fmt(res.paper_bound), fmt(worst, 4), fmt(1.0 + eps, 3),
               fmt(count > 0 ? sum / static_cast<double>(count) : 1.0, 4)});
  }
  table.print();
  return 0;
}
