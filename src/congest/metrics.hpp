// Round/message/congestion accounting for a simulator run.
//
// Round counts are the quantity every theorem in the paper bounds, so the
// engine treats them as first-class results rather than debug output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/message.hpp"
#include "obs/histogram.hpp"

namespace dapsp::congest {

/// Counters for injected faults (see congest/faults.hpp).  All fields are
/// deterministic: a (seed, plan) pair produces bit-identical counts across
/// thread counts and schedulers.  All zero when no fault plan is installed.
struct FaultStats {
  std::uint64_t dropped = 0;        ///< messages destroyed by drop_prob
  std::uint64_t duplicated = 0;     ///< extra copies injected by dup_prob
  std::uint64_t delayed = 0;        ///< copies rescheduled to a later round
  std::uint64_t deferred = 0;       ///< copies held back by a bandwidth cap
  std::uint64_t crash_dropped = 0;  ///< deliveries discarded at a down node
  std::uint64_t delivered = 0;      ///< copies that reached a live inbox
  std::uint64_t max_backlog = 0;    ///< peak messages buffered in the plane

  bool any() const {
    return dropped | duplicated | delayed | deferred | crash_dropped |
           delivered | max_backlog;
  }

  FaultStats& operator+=(const FaultStats& o) {
    dropped += o.dropped;
    duplicated += o.duplicated;
    delayed += o.delayed;
    deferred += o.deferred;
    crash_dropped += o.crash_dropped;
    delivered += o.delivered;
    max_backlog = max_backlog > o.max_backlog ? max_backlog : o.max_backlog;
    return *this;
  }

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

struct RunStats {
  Round rounds = 0;               ///< rounds executed (init round 0 excluded)
  Round last_message_round = 0;   ///< last round in which any message was sent
  std::uint64_t total_messages = 0;
  /// Maximum number of messages carried by one directed link in one round.
  /// CONGEST allows exactly 1; values above 1 mean the schedule would need
  /// that many CONGEST rounds for the busiest link (reported, never hidden).
  std::uint64_t max_link_congestion = 0;
  Round max_congestion_round = 0;
  /// Maximum messages sent over one directed link across the whole run
  /// (the "congestion" of Lemma II.15).
  std::uint64_t max_link_total = 0;
  std::uint32_t max_message_fields = 0;
  /// Payload bytes moved by delivery: per message, an 8-byte (tag, used)
  /// header plus 8 bytes per *used* field.  Deterministic (bit-identical
  /// across schedulers and thread counts) -- the old AoS arena copied all
  /// kMaxFields words per message and no stat ever said so.
  std::uint64_t message_bytes = 0;
  bool hit_round_limit = false;
  std::vector<std::uint64_t> per_round_messages;  ///< filled when recording

  /// Silent rounds the sparse engine fast-forwarded instead of executing.
  /// They are fully counted in `rounds` (and as zeros in
  /// `per_round_messages`); this records how many never paid a simulation
  /// step.  Always 0 on the dense fallback path.
  Round skipped_rounds = 0;

  /// Injected-fault counters; all zero unless a FaultPlan was attached.
  FaultStats faults;

  /// Distribution of per-round message counts (one sample per simulated
  /// round, fast-forwarded silent rounds included as zeros).  Deterministic:
  /// bit-identical across schedulers and thread counts, like
  /// per_round_messages but always on and O(1) space.
  obs::Histogram round_messages_hist;

  /// Simulator wall-clock per engine phase, in seconds (host-machine
  /// observability, NOT part of the deterministic CONGEST accounting above;
  /// equivalence tests must ignore these).
  double send_seconds = 0.0;
  double deliver_seconds = 0.0;
  double receive_seconds = 0.0;

  /// Per-round wall-clock distributions (ns) for each engine phase; host
  /// observability like the *_seconds totals.  Executed rounds only --
  /// fast-forwarded rounds cost no wall-clock and record no sample.
  obs::Histogram send_ns_hist;
  obs::Histogram deliver_ns_hist;
  obs::Histogram receive_ns_hist;

  /// Sequential composition of two phases (rounds add, maxima combine).
  RunStats& operator+=(const RunStats& o);

  std::string summary() const;

  /// "send=..s deliver=..s receive=..s skipped=.." -- empty when nothing was
  /// recorded (all timers zero and no rounds skipped).
  std::string timing_summary() const;

  /// Per-round distributions: "round_msgs[...] send_ns[...] deliver_ns[...]
  /// receive_ns[...]" -- empty when no round was recorded.
  std::string histogram_summary() const;
};

}  // namespace dapsp::congest
