#include "core/blocker_apsp.hpp"

#include <algorithm>

#include "baseline/bf_apsp.hpp"
#include "congest/primitives.hpp"
#include "core/blocker.hpp"
#include "core/bounds.hpp"
#include "congest/engine.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using congest::GatherItem;
using congest::RunStats;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

namespace {

constexpr std::uint32_t kTagFinalDist = 70;  // {source_index, hops, dist}

/// Parent fix-up as pipelined per-source BFS waves over *tight* edges
/// (arcs p->v with dist(x,p) + w(p,v) = dist(x,v)).
///
/// Re-deriving parents from distance equality alone is wrong with
/// zero-weight edges: two nodes at equal distance joined by a zero edge
/// satisfy each other's equation and can adopt each other (a parent 2-cycle
/// that never reaches the source).  The wave restores a well-founded order:
/// source i announces (i, hop 0, dist 0) in round i+1; a node that hears a
/// tight predecessor settles with hop+1, adopting the lowest-hop (then
/// smallest-id) announcer of that round, and relays next round.  First
/// arrival is minimal hop count, so parents are exactly the hop-minimal /
/// smallest-id convention of the sequential oracle and chains must reach
/// the source.  Settling happens once per (node, source): k + max-hops + 1
/// rounds total, per-link congestion up to the number of waves crossing a
/// link in one round (recorded by the engine, never hidden).
class ParentFixupProtocol final : public congest::Protocol {
 public:
  ParentFixupProtocol(const Graph& g, NodeId self,
                      std::vector<Weight> final_dist,
                      std::int32_t self_source_index,
                      std::vector<NodeId>* parent_out)
      : dist_(std::move(final_dist)),
        self_source_(self_source_index),
        parent_(parent_out) {
    for (const auto& e : g.in_edges(self)) {
      in_weight_.emplace_back(e.from, e.weight);
    }
    in_weight_.erase(
        std::unique(in_weight_.begin(), in_weight_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        in_weight_.end());
    settled_.assign(dist_.size(), false);
    hop_.assign(dist_.size(), 0);
  }

  void send_phase(congest::Context& ctx) override {
    const congest::Round r = ctx.round();
    last_round_ = r;
    if (self_source_ >= 0 &&
        r == static_cast<congest::Round>(self_source_) + 1) {
      const auto i = static_cast<std::size_t>(self_source_);
      settled_[i] = true;
      out_.push_back(i);
    }
    for (const std::size_t i : out_) {
      ctx.broadcast(congest::Message(
          kTagFinalDist, {static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(hop_[i]), dist_[i]}));
    }
    out_.clear();
  }

  void receive_phase(congest::Context& ctx) override {
    for (const congest::Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagFinalDist) continue;
      const auto it = std::lower_bound(
          in_weight_.begin(), in_weight_.end(), env.from,
          [](const auto& p, NodeId v) { return p.first < v; });
      if (it == in_weight_.end() || it->first != env.from) continue;
      const auto i = static_cast<std::size_t>(env.msg.f[0]);
      if (settled_[i] || dist_[i] == kInfDist) continue;
      if (env.msg.f[2] + it->second != dist_[i]) continue;  // not tight
      const auto hop = static_cast<std::uint32_t>(env.msg.f[1]) + 1;
      const NodeId cur = (*parent_)[i];
      if (cur == graph::kNoNode || hop < hop_[i] ||
          (hop == hop_[i] && env.from < cur)) {
        (*parent_)[i] = env.from;
        hop_[i] = hop;
      }
      touched_.push_back(i);
    }
    // Everything that received a tight announcement this round settles now
    // and relays next round.
    for (const std::size_t i : touched_) {
      if (settled_[i]) continue;
      settled_[i] = true;
      out_.push_back(i);
    }
    touched_.clear();
  }

  bool quiescent() const override {
    return out_.empty() &&
           (self_source_ < 0 ||
            last_round_ >= static_cast<congest::Round>(self_source_) + 1);
  }

 private:
  std::vector<Weight> dist_;
  std::int32_t self_source_;
  std::vector<NodeId>* parent_;
  std::vector<std::pair<NodeId, Weight>> in_weight_;
  std::vector<bool> settled_;
  std::vector<std::uint32_t> hop_;
  std::vector<std::size_t> out_;      // settled last round, to relay
  std::vector<std::size_t> touched_;  // sources heard this round
  congest::Round last_round_ = 0;
};

/// Runs the fix-up phase over the final distance matrix in `res`,
/// overwriting res.parent rows for reachable non-source nodes.
RunStats run_parent_fixup(const Graph& g, BlockerApspResult& res) {
  const NodeId n = g.node_count();
  const std::size_t k = res.sources.size();
  std::vector<std::int32_t> source_of(n, -1);
  for (std::size_t i = 0; i < k; ++i) {
    source_of[res.sources[i]] = static_cast<std::int32_t>(i);
  }
  std::vector<std::vector<NodeId>> parents(
      n, std::vector<NodeId>(k, graph::kNoNode));
  std::vector<std::unique_ptr<congest::Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<Weight> dist(k);
    for (std::size_t i = 0; i < k; ++i) dist[i] = res.dist[i][v];
    procs.push_back(std::make_unique<ParentFixupProtocol>(
        g, v, std::move(dist), source_of[v], &parents[v]));
  }
  congest::EngineOptions opt;
  opt.max_rounds = static_cast<congest::Round>(k) + n + 2;
  congest::Engine engine(g, std::move(procs), opt);
  const RunStats stats = engine.run();
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < k; ++i) {
      if (v == res.sources[i] || res.dist[i][v] == kInfDist) continue;
      if (parents[v][i] != graph::kNoNode) res.parent[i][v] = parents[v][i];
    }
  }
  return stats;
}

}  // namespace

BlockerApspResult blocker_apsp(const Graph& g, BlockerApspParams params) {
  const NodeId n = g.node_count();
  if (params.sources.empty()) {
    params.sources.resize(n);
    for (NodeId v = 0; v < n; ++v) params.sources[v] = v;
  }
  std::sort(params.sources.begin(), params.sources.end());
  params.sources.erase(
      std::unique(params.sources.begin(), params.sources.end()),
      params.sources.end());
  const std::size_t k = params.sources.size();

  if (params.h == 0) {
    params.h =
        params.delta_for_h > 0
            ? static_cast<std::uint32_t>(bounds::choose_h_for_delta(
                  n, k, static_cast<std::uint64_t>(params.delta_for_h)))
            : static_cast<std::uint32_t>(bounds::choose_h_for_weight(
                  n, k,
                  static_cast<std::uint64_t>(
                      std::max<Weight>(g.max_weight(), 1))));
  }
  if (params.delta2h == 0) {
    params.delta2h =
        2 * static_cast<Weight>(params.h) * std::max<Weight>(g.max_weight(), 1);
  }

  BlockerApspResult res;
  res.sources = params.sources;
  res.h = params.h;

  // Step 1: CSSSP (Algorithm 1 with hop bound 2h + child notification).
  CsspCollection cssp = build_cssp(g, params.sources, params.h, params.delta2h);
  res.stats += cssp.stats;
  res.cssp_rounds = cssp.stats.rounds;

  // Step 2: blocker set.
  BlockerSetResult bs = compute_blocker_set(g, cssp);
  res.blockers = bs.blockers;
  res.stats += bs.stats;
  res.blocker_rounds = bs.stats.rounds;

  // Step 3: per-blocker full SSSP trees, forward and reverse.
  const std::size_t q = res.blockers.size();
  std::vector<std::vector<Weight>> from_blocker(q);  // dist(c, v), known at v
  std::vector<std::vector<NodeId>> from_blocker_parent(q);
  std::vector<std::vector<Weight>> to_blocker(q);    // dist(v, c), known at v
  RunStats sssp_stats;
  for (std::size_t j = 0; j < q; ++j) {
    auto fwd = baseline::bf_sssp(g, res.blockers[j]);
    sssp_stats += fwd.stats;
    from_blocker[j] = std::move(fwd.dist);
    from_blocker_parent[j] = std::move(fwd.parent);
    auto rev = baseline::bf_sssp(g, res.blockers[j], /*reverse=*/true);
    sssp_stats += rev.stats;
    to_blocker[j] = std::move(rev.dist);
  }
  res.stats += sssp_stats;
  res.sssp_rounds = sssp_stats.rounds;

  // Step 4: every source x announces dist(x, c) for each blocker c.
  RunStats combine_stats;
  const congest::BfsTree tree = congest::build_bfs_tree(g, 0, &combine_stats);
  std::vector<std::vector<GatherItem>> items(n);
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId x = params.sources[i];
    for (std::size_t j = 0; j < q; ++j) {
      if (to_blocker[j][x] == kInfDist) continue;
      items[x].push_back(GatherItem{x, static_cast<std::int64_t>(j),
                                    to_blocker[j][x]});
    }
  }
  const std::vector<GatherItem> announced =
      congest::gather_to_all(g, tree, items, &combine_stats);
  res.stats += combine_stats;
  res.combine_rounds = combine_stats.rounds;

  // Step 5: local combine.  dist(x,c) comes from the announcements, and
  // dist(c,v) is node-local knowledge from the forward SSSPs.
  std::vector<std::vector<Weight>> source_to_blocker(
      k, std::vector<Weight>(q, kInfDist));
  std::vector<std::int32_t> source_index(n, -1);
  for (std::size_t i = 0; i < k; ++i) {
    source_index[params.sources[i]] = static_cast<std::int32_t>(i);
  }
  for (const GatherItem& it : announced) {
    const std::int32_t i = source_index[it.origin];
    util::check(i >= 0, "blocker_apsp: announcement from a non-source");
    source_to_blocker[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(it.a)] = it.b;
  }

  res.dist.assign(k, std::vector<Weight>(n, kInfDist));
  res.parent.assign(k, std::vector<NodeId>(n, kNoNode));
  for (std::size_t i = 0; i < k; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      Weight best = cssp.dist2h[i][v];
      NodeId parent = best == kInfDist ? kNoNode : cssp.parent2h[i][v];
      for (std::size_t j = 0; j < q; ++j) {
        const Weight a = source_to_blocker[i][j];
        const Weight b = from_blocker[j][v];
        if (a == kInfDist || b == kInfDist) continue;
        if (a + b < best) {
          best = a + b;
          parent = from_blocker_parent[j][v];
        }
      }
      res.dist[i][v] = best;
      res.parent[i][v] = parent;
    }
  }

  // Parent fix-up: a blocker node reached via its own SSSP tree root has no
  // locally-known last edge (its reverse-SSSP parent chain lives at other
  // nodes).  One k-round exchange repairs every parent: in round i each node
  // broadcasts its final distance from source i and receivers adopt the
  // smallest-id neighbor whose announced distance extends to their own.
  {
    const RunStats fix = run_parent_fixup(g, res);
    res.stats += fix;
    res.combine_rounds += fix.rounds;
  }

  res.theoretical_bound = bounds::blocker_apsp(
      n, k, std::max<std::uint64_t>(q, 1), params.h,
      static_cast<std::uint64_t>(params.delta2h));
  return res;
}

}  // namespace dapsp::core
