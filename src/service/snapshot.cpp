#include "service/snapshot.hpp"

namespace dapsp::service {

using graph::kInfDist;
using graph::kNoNode;

// Mirror of DistanceOracle::path over the virtual accessors, so every
// snapshot implementation answers path queries bit-identically to the flat
// oracle (the differential tests compare them element-wise).
std::optional<std::vector<NodeId>> OracleSnapshot::path(NodeId u,
                                                        NodeId v) const {
  const NodeId n = node_count();
  if (u >= n || v >= n || !has_paths()) return std::nullopt;
  if (u == v) return std::vector<NodeId>{u};
  if (dist(u, v) == kInfDist) return std::nullopt;
  std::vector<NodeId> out;
  out.reserve(8);
  out.push_back(u);
  NodeId cur = u;
  while (cur != v) {
    // Each hop strictly shrinks the remaining hop count, so a walk longer
    // than n means the table is corrupt, not slow.
    if (out.size() > n) return std::nullopt;
    const NodeId hop = next_hop(cur, v);
    if (hop == kNoNode) return std::nullopt;
    out.push_back(hop);
    cur = hop;
  }
  return out;
}

}  // namespace dapsp::service
