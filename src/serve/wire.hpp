// Length-prefixed binary query protocol for the distance-oracle service.
//
// The text/JSONL protocol pays per-line tokenizing and decimal formatting on
// every query; the binary protocol ships many (s, t) pairs per frame and
// answers them through QueryService::query_batch (per-shard dispatch on the
// thread pool), which is what gives batch+binary its throughput edge in
// BENCH_QUERY.json.  Framing:
//
//   frame    := u32le payload_len | payload            (len <= kMaxFrameBytes)
//   request  := 'D' 'Q' u8 version=1 u8 opcode | body
//     0x01 BATCH   body := u32le count | count x { u8 qtype u32le u u32le v }
//     0x02 STATS   body := empty (response carries the stats JSON document)
//     0x03 QUIT    body := empty (ends the session, no response)
//     0x04 REBUILD body := empty (runs the session's rebuild hook)
//   response := 'D' 'R' u8 version=1 u8 opcode | body
//     0x81 BATCH   body := u32le count | count x result
//       result(ok)  := u8 qtype 0x01 i64le dist u32le next
//                      u32le path_len | path_len x u32le
//       result(err) := u8 qtype 0x00 u32le msg_len | msg bytes
//     0x82 STATS   body := u32le json_len | json bytes
//     0x83 REBUILD body := u64le epoch u64le build_ns
//     0xEE ERROR   body := u16le code u32le msg_len | msg bytes
//
// qtype is 0=dist 1=next 2=path; dist/next use the library sentinels
// (kInfDist, kNoNode) verbatim.  Malformed input is answered with a
// structured ERROR frame, never best-effort partial output: recoverable
// frames (bad magic/version/opcode, oversized or corrupt batch body) are
// consumed whole and serving continues; a truncated length prefix or
// payload cannot be resynchronized and ends the session after the ERROR
// frame.  Oversized batches (count > config().max_batch) are rejected with
// kBatchTooLarge before any query executes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/query_service.hpp"

namespace dapsp::serve::wire {

inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  ///< 64 MiB

enum class ErrorCode : std::uint16_t {
  kBadMagic = 1,      ///< payload does not start with 'D','Q'
  kBadVersion = 2,    ///< unknown protocol version
  kBadOpcode = 3,     ///< unknown request opcode
  kTruncated = 4,     ///< stream ended inside a frame, or body shorter
                      ///< than its declared count
  kFrameTooLarge = 5, ///< length prefix exceeds kMaxFrameBytes
  kBatchTooLarge = 6, ///< batch count exceeds the service's max_batch
  kBadQueryType = 7,  ///< qtype byte outside {0,1,2}
};

const char* error_code_name(ErrorCode c);

// --- client-side encoding (tests, benches, remote callers) ----------------

void append_batch_request(std::string& buf,
                          std::span<const service::Query> queries);
void append_stats_request(std::string& buf);
void append_quit_request(std::string& buf);
void append_rebuild_request(std::string& buf);

// --- client-side decoding --------------------------------------------------

/// One parsed response frame.
struct Response {
  enum class Kind { kBatch, kStats, kRebuild, kError };
  Kind kind = Kind::kError;
  std::vector<service::QueryResult> results;  ///< kBatch
  std::string stats_json;                     ///< kStats
  std::uint64_t epoch = 0;                    ///< kRebuild
  std::uint64_t build_ns = 0;                 ///< kRebuild
  ErrorCode code = ErrorCode::kBadMagic;      ///< kError
  std::string message;                        ///< kError
};

/// Reads one response frame; nullopt on clean EOF at a frame boundary.
/// Throws std::runtime_error on a corrupt response stream (a server bug,
/// not expected input).
std::optional<Response> read_response(std::istream& in);

// --- server loop -----------------------------------------------------------

/// Reads request frames from `in` until EOF or a QUIT frame, answering each
/// on `out`; BATCH frames execute through svc.query_batch (one snapshot per
/// frame, results in request order).  Returns the number of ERROR frames
/// emitted, mirroring serve_stream's malformed-line count.
int serve_binary(const service::QueryService& svc, std::istream& in,
                 std::ostream& out, const service::ServeOptions& opts = {});

}  // namespace dapsp::serve::wire
