#include "obs/json.hpp"

#include <array>
#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dapsp::obs {

// --- escaping --------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          std::array<char, 8> buf;
          std::snprintf(buf.data(), buf.size(), "\\u%04x", u);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"' << json_escape(s) << '"';
}

void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Shortest round-trip representation; always a valid JSON number.
  std::array<char, 32> buf;
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) {
    os << "null";
    return;
  }
  os.write(buf.data(), ptr - buf.data());
}

// --- JsonWriter ------------------------------------------------------------

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;  // value completes the "key": pair, no comma here
    return;
  }
  if (need_comma_) os_ << ',';
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  stack_.pop_back();
  os_ << '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  stack_.pop_back();
  os_ << ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  if (need_comma_) os_ << ',';
  write_json_string(os_, k);
  os_ << ':';
  need_comma_ = true;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_json_string(os_, s);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  write_json_double(os_, v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

// --- validation ------------------------------------------------------------
//
// Recursive-descent RFC 8259 parser that only answers valid/invalid.  Depth
// is bounded so adversarial input ("[[[[..." ) cannot blow the stack.

namespace {

class Validator {
 public:
  explicit Validator(std::string_view s) : s_(s) {}

  bool run() {
    skip_ws();
    if (!parse_value(0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool consume(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                      s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool parse_object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !parse_string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value(depth + 1)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!parse_value(depth + 1)) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string() {
    ++pos_;  // '"'
    while (!eof()) {
      const auto c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
          ++pos_;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digit() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool parse_number() {
    consume('-');
    if (consume('0')) {
      // leading zero: no further integer digits allowed
    } else {
      if (!digit()) return false;
      while (digit()) {
      }
    }
    if (consume('.')) {
      if (!digit()) return false;
      while (digit()) {
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) return false;
      while (digit()) {
      }
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Validator(text).run(); }

std::vector<std::size_t> jsonl_invalid_lines(std::string_view text) {
  std::vector<std::size_t> bad;
  std::size_t lineno = 0;
  while (!text.empty()) {
    ++lineno;
    const std::size_t nl = text.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{}
                                        : text.substr(nl + 1);
    const bool blank =
        line.find_first_not_of(" \t\r") == std::string_view::npos;
    if (!blank && !json_valid(line)) bad.push_back(lineno);
  }
  return bad;
}

}  // namespace dapsp::obs
