#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/properties.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::graph {

using util::Xoshiro256;

Weight draw_weight(const WeightSpec& spec, std::uint64_t seed,
                   std::uint64_t edge_index) {
  if (spec.min_weight < 0 || spec.max_weight < spec.min_weight) {
    throw std::logic_error("WeightSpec: invalid weight range");
  }
  Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (edge_index + 1)));
  if (spec.zero_fraction > 0.0 && rng.chance(spec.zero_fraction)) return 0;
  return rng.uniform(spec.min_weight, spec.max_weight);
}

namespace {

/// Draws the next weight from the builder-local counter.
class WeightDrawer {
 public:
  WeightDrawer(const WeightSpec& spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {}
  Weight next() { return draw_weight(spec_, seed_, counter_++); }

 private:
  WeightSpec spec_;
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

/// Random permutation of [0, n).
std::vector<NodeId> permutation(NodeId n, Xoshiro256& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = n; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

Graph erdos_renyi(NodeId n, double p, const WeightSpec& spec,
                  std::uint64_t seed, bool directed, bool connect) {
  GraphBuilder b(n, directed);
  Xoshiro256 rng(seed);
  WeightDrawer w(spec, seed + 1);

  if (connect && n > 1) {
    // Random backbone: a permutation path (cycle when directed, so that
    // reachability holds in both directions).
    const auto perm = permutation(n, rng);
    for (NodeId i = 0; i + 1 < n; ++i) {
      b.add_edge(perm[i], perm[i + 1], w.next());
    }
    if (directed && n > 2) b.add_edge(perm[n - 1], perm[0], w.next());
  }

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = directed ? 0 : u + 1; v < n; ++v) {
      if (u == v) continue;
      if (!rng.chance(p)) continue;
      if (b.has_arc(u, v)) continue;
      b.add_edge(u, v, w.next());
    }
  }
  return std::move(b).build();
}

Graph path(NodeId n, const WeightSpec& spec, std::uint64_t seed,
           bool directed) {
  GraphBuilder b(n, directed);
  WeightDrawer w(spec, seed);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, w.next());
  return std::move(b).build();
}

Graph cycle(NodeId n, const WeightSpec& spec, std::uint64_t seed,
            bool directed) {
  if (n < 3) throw std::logic_error("cycle: need n >= 3");
  GraphBuilder b(n, directed);
  WeightDrawer w(spec, seed);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, w.next());
  b.add_edge(n - 1, 0, w.next());
  return std::move(b).build();
}

Graph grid(NodeId rows, NodeId cols, const WeightSpec& spec,
           std::uint64_t seed) {
  const NodeId n = rows * cols;
  GraphBuilder b(n, /*directed=*/false);
  WeightDrawer w(spec, seed);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), w.next());
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), w.next());
    }
  }
  return std::move(b).build();
}

Graph star(NodeId n, const WeightSpec& spec, std::uint64_t seed) {
  GraphBuilder b(n, /*directed=*/false);
  WeightDrawer w(spec, seed);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i, w.next());
  return std::move(b).build();
}

Graph complete(NodeId n, const WeightSpec& spec, std::uint64_t seed,
               bool directed) {
  GraphBuilder b(n, directed);
  WeightDrawer w(spec, seed);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = directed ? 0 : u + 1; v < n; ++v) {
      if (u != v) b.add_edge(u, v, w.next());
    }
  }
  return std::move(b).build();
}

Graph random_tree(NodeId n, const WeightSpec& spec, std::uint64_t seed) {
  GraphBuilder b(n, /*directed=*/false);
  Xoshiro256 rng(seed);
  WeightDrawer w(spec, seed + 1);
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.below(v));
    b.add_edge(parent, v, w.next());
  }
  return std::move(b).build();
}

Graph barabasi_albert(NodeId n, NodeId attach, const WeightSpec& spec,
                      std::uint64_t seed) {
  if (attach < 1) throw std::logic_error("barabasi_albert: attach >= 1");
  GraphBuilder b(n, /*directed=*/false);
  Xoshiro256 rng(seed);
  WeightDrawer w(spec, seed + 1);
  // Endpoint pool: every edge contributes both endpoints, so sampling the
  // pool uniformly is degree-proportional sampling.
  std::vector<NodeId> pool;
  const NodeId seed_nodes = std::max<NodeId>(attach, 2);
  for (NodeId v = 1; v < std::min(seed_nodes, n); ++v) {
    b.add_edge(v - 1, v, w.next());
    pool.push_back(v - 1);
    pool.push_back(v);
  }
  for (NodeId v = seed_nodes; v < n; ++v) {
    // The first draw always lands (v is not yet in the pool and the pool
    // only holds existing nodes), so every node attaches and the graph stays
    // connected; later draws skip duplicates.
    for (NodeId a = 0; a < attach; ++a) {
      const NodeId target = pool[rng.below(pool.size())];
      if (target == v || b.has_arc(v, target)) continue;
      b.add_edge(v, target, w.next());
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return std::move(b).build();
}

Graph layered(NodeId layers, NodeId width, NodeId fanout,
              const WeightSpec& spec, std::uint64_t seed, bool directed) {
  if (layers < 1 || width < 1) throw std::logic_error("layered: bad shape");
  const NodeId n = layers * width;
  GraphBuilder b(n, directed);
  Xoshiro256 rng(seed);
  WeightDrawer w(spec, seed + 1);
  const auto id = [width](NodeId layer, NodeId i) { return layer * width + i; };
  for (NodeId layer = 0; layer + 1 < layers; ++layer) {
    for (NodeId i = 0; i < width; ++i) {
      // Guarantee one forward edge, then add random extras.
      const auto first = static_cast<NodeId>(rng.below(width));
      b.add_edge(id(layer, i), id(layer + 1, first), w.next());
      for (NodeId f = 1; f < fanout; ++f) {
        const auto t = static_cast<NodeId>(rng.below(width));
        if (!b.has_arc(id(layer, i), id(layer + 1, t))) {
          b.add_edge(id(layer, i), id(layer + 1, t), w.next());
        }
      }
    }
  }
  return std::move(b).build();
}

Graph isp_topology(NodeId pops, NodeId pop_size, Weight backbone_min,
                   Weight backbone_max, double zero_fraction,
                   std::uint64_t seed) {
  if (pops < 3 || pop_size < 1) {
    throw std::logic_error("isp_topology: need pops >= 3, pop_size >= 1");
  }
  const NodeId n = pops * pop_size;
  GraphBuilder b(n, /*directed=*/false);
  Xoshiro256 rng(seed);
  const auto gateway = [pop_size](NodeId pop) { return pop * pop_size; };
  // Backbone ring over the PoP gateways.
  for (NodeId p = 0; p < pops; ++p) {
    b.add_edge(gateway(p), gateway((p + 1) % pops),
               rng.uniform(backbone_min, backbone_max));
  }
  // Access tree inside each PoP (random attachment to earlier routers).
  for (NodeId p = 0; p < pops; ++p) {
    for (NodeId r = 1; r < pop_size; ++r) {
      const auto parent =
          gateway(p) + static_cast<NodeId>(rng.below(r));
      const Weight w =
          rng.chance(zero_fraction) ? 0 : rng.uniform(1, 4);
      b.add_edge(parent, gateway(p) + r, w);
    }
  }
  return std::move(b).build();
}

Graph fig1_gadget(NodeId h) {
  if (h < 2) throw std::logic_error("fig1_gadget: need h >= 2");
  // Nodes: 0 = s; 1..h = cheap chain (node h is "z"); h+1..h+h = tail.
  // s --(w=0)x h--> z is the cheap h-hop route of weight 0.
  // s --(w=1)-----> z is the expensive 1-hop shortcut.
  // tail_i hangs off z with zero-weight hops.
  const NodeId n = 2 * h + 1;
  GraphBuilder b(n, /*directed=*/false);
  const NodeId z = h;
  b.add_edge(0, 1, 0);
  for (NodeId i = 1; i < h; ++i) b.add_edge(i, i + 1, 0);
  b.add_edge(0, z, 1);  // shortcut
  NodeId prev = z;
  for (NodeId i = h + 1; i < n; ++i) {
    b.add_edge(prev, i, 0);
    prev = i;
  }
  return std::move(b).build();
}

Graph bounded_distance_graph(NodeId n, double p, Weight delta,
                             std::uint64_t seed, bool directed) {
  if (delta < 0) throw std::logic_error("bounded_distance_graph: delta < 0");
  WeightSpec spec;
  spec.min_weight = 0;
  spec.max_weight = std::max<Weight>(1, delta / 4);
  spec.zero_fraction = 0.1;
  Graph g = erdos_renyi(n, p, spec, seed, directed, /*connect=*/true);
  while (max_finite_distance(g) > delta) {
    // Halve all weights (floor) until the eccentricity fits; terminates
    // because all-zero weights give distance 0 <= delta.
    GraphBuilder b(n, directed);
    for (const Edge& e : g.edges()) {
      if (!directed && e.from > e.to) continue;  // builder re-adds reverses
      b.add_edge(e.from, e.to, e.weight / 2);
    }
    g = std::move(b).build();
  }
  return g;
}

Graph rmat(std::uint32_t scale, NodeId edgefactor, const WeightSpec& spec,
           std::uint64_t seed, bool directed, bool connect,
           std::size_t threads) {
  if (scale < 1 || scale > 26) {
    throw std::logic_error("rmat: need 1 <= scale <= 26");
  }
  const NodeId n = NodeId{1} << scale;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * edgefactor;

  // Classic Graph500 quadrant partition.  Quadrants are chosen top-down per
  // bit: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;

  // Candidate endpoints are a pure function of (seed, edge index), so the
  // fill order -- and therefore the thread count -- cannot change the
  // output.  The builder pass below is sequential and consumes candidates
  // in index order.
  std::vector<std::pair<NodeId, NodeId>> cand(m);
  const auto draw = [&](std::size_t i) {
    Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    NodeId src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform01();
      src <<= 1;
      dst <<= 1;
      if (r < kA) {
        // top-left: neither bit set
      } else if (r < kA + kB) {
        dst |= 1;
      } else if (r < kA + kB + kC) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    cand[i] = {src, dst};
  };
  if (threads > 1) {
    util::ThreadPool pool(threads);
    pool.parallel_for(m, draw);
  } else {
    for (std::uint64_t i = 0; i < m; ++i) draw(i);
  }

  GraphBuilder b(n, directed);
  Xoshiro256 rng(seed);
  WeightDrawer w(spec, seed + 1);
  if (connect && n > 1) {
    // Random backbone path (cycle when directed) exactly as in erdos_renyi,
    // so differential workloads get strongly connected inputs.
    const auto perm = permutation(n, rng);
    for (NodeId i = 0; i + 1 < n; ++i) {
      b.add_edge(perm[i], perm[i + 1], w.next());
    }
    if (directed && n > 2) b.add_edge(perm[n - 1], perm[0], w.next());
  }
  for (const auto& [src, dst] : cand) {
    if (src == dst) continue;
    if (b.has_arc(src, dst)) continue;
    b.add_edge(src, dst, w.next());
  }
  return std::move(b).build();
}

}  // namespace dapsp::graph
