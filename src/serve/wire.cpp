#include "serve/wire.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace dapsp::serve::wire {

namespace {

constexpr char kReqMagic0 = 'D';
constexpr char kReqMagic1 = 'Q';
constexpr char kRespMagic0 = 'D';
constexpr char kRespMagic1 = 'R';
constexpr std::uint8_t kVersion = 1;

constexpr std::uint8_t kOpBatch = 0x01;
constexpr std::uint8_t kOpStats = 0x02;
constexpr std::uint8_t kOpQuit = 0x03;
constexpr std::uint8_t kOpRebuild = 0x04;
constexpr std::uint8_t kOpKPath = 0x05;
constexpr std::uint8_t kOpRoute = 0x06;
constexpr std::uint8_t kOpReport = 0x07;
constexpr std::uint8_t kOpBc = 0x08;
constexpr std::uint8_t kOpBatchResp = 0x81;
constexpr std::uint8_t kOpStatsResp = 0x82;
constexpr std::uint8_t kOpRebuildResp = 0x83;
constexpr std::uint8_t kOpKPathResp = 0x85;
constexpr std::uint8_t kOpRouteResp = 0x86;
constexpr std::uint8_t kOpReportResp = 0x87;
constexpr std::uint8_t kOpBcResp = 0x88;
constexpr std::uint8_t kOpError = 0xEE;

// Per-query wire size inside a batch request: qtype + u + v.
constexpr std::size_t kQueryWireBytes = 1 + 4 + 4;

// --- little-endian primitives ---------------------------------------------

void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xFF));
  buf.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_i64(std::string& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over one frame payload.  `ok` latches false on the
/// first short read so callers can decode optimistically and test once.
struct Reader {
  const unsigned char* p;
  std::size_t len;
  std::size_t pos = 0;
  bool ok = true;

  explicit Reader(std::string_view payload)
      : p(reinterpret_cast<const unsigned char*>(payload.data())),
        len(payload.size()) {}

  bool need(std::size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p[pos]) |
                      static_cast<std::uint16_t>(p[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = v << 8 | p[pos + static_cast<std::size_t>(i)];
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = v << 8 | p[pos + static_cast<std::size_t>(i)];
    }
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string bytes(std::size_t n) {
    if (!need(n)) return {};
    std::string out(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return out;
  }
};

void frame_and_write(std::ostream& out, const std::string& payload) {
  std::string prefix;
  put_u32(prefix, static_cast<std::uint32_t>(payload.size()));
  out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
}

void begin_request(std::string& buf, std::uint8_t opcode) {
  buf.push_back(kReqMagic0);
  buf.push_back(kReqMagic1);
  buf.push_back(static_cast<char>(kVersion));
  buf.push_back(static_cast<char>(opcode));
}

void begin_response(std::string& buf, std::uint8_t opcode) {
  buf.push_back(kRespMagic0);
  buf.push_back(kRespMagic1);
  buf.push_back(static_cast<char>(kVersion));
  buf.push_back(static_cast<char>(opcode));
}

/// status(err) for an analytics response: the query reached the service and
/// failed there (bad ids, analytics unavailable, ...) -- in-band, not a
/// protocol ERROR frame.
void put_status(std::string& p, const service::QueryResult& r) {
  if (r.ok) {
    p.push_back('\1');
    return;
  }
  p.push_back('\0');
  put_u32(p, static_cast<std::uint32_t>(r.error.size()));
  p.append(r.error);
}

void put_route(std::string& p, const query::Route& rt) {
  put_i64(p, rt.weight);
  put_u32(p, static_cast<std::uint32_t>(rt.nodes.size()));
  for (const graph::NodeId x : rt.nodes) put_u32(p, x);
}

query::Route read_route(Reader& r) {
  query::Route rt;
  rt.weight = r.i64();
  const std::uint32_t len = r.u32();
  rt.nodes.reserve(len);
  for (std::uint32_t i = 0; r.ok && i < len; ++i) rt.nodes.push_back(r.u32());
  return rt;
}

/// Decodes the leading status byte of an analytics response body into
/// `out->ok` / `out->error`; returns out->ok.
bool read_status(Reader& r, service::QueryResult* out) {
  out->ok = r.u8() != 0;
  if (!out->ok) {
    const std::uint32_t mlen = r.u32();
    out->error = r.bytes(mlen);
  }
  return out->ok;
}

std::string make_error_payload(ErrorCode code, std::string_view msg) {
  std::string p;
  p.push_back(kRespMagic0);
  p.push_back(kRespMagic1);
  p.push_back(static_cast<char>(kVersion));
  p.push_back(static_cast<char>(kOpError));
  put_u16(p, static_cast<std::uint16_t>(code));
  put_u32(p, static_cast<std::uint32_t>(msg.size()));
  p.append(msg);
  return p;
}

void append_result(std::string& p, const service::QueryResult& r) {
  p.push_back(static_cast<char>(r.type));
  if (!r.ok) {
    p.push_back('\0');
    put_u32(p, static_cast<std::uint32_t>(r.error.size()));
    p.append(r.error);
    return;
  }
  p.push_back('\1');
  put_i64(p, r.dist);
  put_u32(p, r.next_hop);
  put_u32(p, static_cast<std::uint32_t>(r.path.size()));
  for (const graph::NodeId v : r.path) put_u32(p, v);
}

/// Reads exactly `want` payload bytes after a complete length prefix.
/// Returns false on EOF mid-payload (unrecoverable truncation).
bool read_exact(std::istream& in, std::string& buf, std::size_t want) {
  buf.resize(want);
  in.read(buf.data(), static_cast<std::streamsize>(want));
  return static_cast<std::size_t>(in.gcount()) == want;
}

}  // namespace

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kBadOpcode: return "bad_opcode";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kBatchTooLarge: return "batch_too_large";
    case ErrorCode::kBadQueryType: return "bad_query_type";
    case ErrorCode::kBadK: return "bad_k";
    case ErrorCode::kBadAvoidSet: return "bad_avoid_set";
    case ErrorCode::kBadBody: return "bad_body";
  }
  return "?";
}

void append_batch_request(std::string& buf,
                          std::span<const service::Query> queries) {
  std::string p;
  begin_request(p, kOpBatch);
  put_u32(p, static_cast<std::uint32_t>(queries.size()));
  for (const service::Query& q : queries) {
    p.push_back(static_cast<char>(q.type));
    put_u32(p, q.u);
    put_u32(p, q.v);
  }
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_stats_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpStats);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_quit_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpQuit);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_rebuild_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpRebuild);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_kpath_request(std::string& buf, graph::NodeId u, graph::NodeId v,
                          std::uint32_t k) {
  std::string p;
  begin_request(p, kOpKPath);
  put_u32(p, u);
  put_u32(p, v);
  put_u32(p, k);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_route_request(std::string& buf, graph::NodeId u, graph::NodeId v,
                          const query::RouteConstraints& c) {
  std::string p;
  begin_request(p, kOpRoute);
  put_u32(p, u);
  put_u32(p, v);
  put_u32(p, c.max_hops);
  put_u32(p, static_cast<std::uint32_t>(c.avoid_nodes.size()));
  put_u32(p, static_cast<std::uint32_t>(c.avoid_edges.size()));
  for (const graph::NodeId x : c.avoid_nodes) put_u32(p, x);
  for (const auto& [a, b] : c.avoid_edges) {
    put_u32(p, a);
    put_u32(p, b);
  }
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_report_request(std::string& buf) {
  std::string p;
  begin_request(p, kOpReport);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

void append_bc_request(std::string& buf, std::uint32_t samples) {
  std::string p;
  begin_request(p, kOpBc);
  put_u32(p, samples);
  put_u32(buf, static_cast<std::uint32_t>(p.size()));
  buf.append(p);
}

std::optional<Response> read_response(std::istream& in) {
  std::string lenbuf(4, '\0');
  in.read(lenbuf.data(), 4);
  if (in.gcount() == 0) return std::nullopt;  // clean EOF between frames
  if (in.gcount() != 4) throw std::runtime_error("wire: truncated length");
  Reader lr(lenbuf);
  const std::uint32_t len = lr.u32();
  if (len > kMaxFrameBytes) throw std::runtime_error("wire: response too big");
  std::string payload;
  if (!read_exact(in, payload, len)) {
    throw std::runtime_error("wire: truncated response payload");
  }
  Reader r(payload);
  const char m0 = static_cast<char>(r.u8());
  const char m1 = static_cast<char>(r.u8());
  const std::uint8_t ver = r.u8();
  const std::uint8_t op = r.u8();
  if (!r.ok || m0 != kRespMagic0 || m1 != kRespMagic1 || ver != kVersion) {
    throw std::runtime_error("wire: bad response header");
  }
  Response resp;
  switch (op) {
    case kOpBatchResp: {
      resp.kind = Response::Kind::kBatch;
      const std::uint32_t count = r.u32();
      resp.results.reserve(count);
      for (std::uint32_t i = 0; r.ok && i < count; ++i) {
        service::QueryResult qr;
        qr.type = static_cast<service::QueryType>(r.u8());
        const std::uint8_t ok = r.u8();
        if (ok == 0) {
          const std::uint32_t mlen = r.u32();
          qr.error = r.bytes(mlen);
          qr.ok = false;
        } else {
          qr.ok = true;
          qr.dist = r.i64();
          qr.next_hop = r.u32();
          const std::uint32_t plen = r.u32();
          qr.path.reserve(plen);
          for (std::uint32_t j = 0; r.ok && j < plen; ++j) {
            qr.path.push_back(r.u32());
          }
        }
        resp.results.push_back(std::move(qr));
      }
      break;
    }
    case kOpStatsResp: {
      resp.kind = Response::Kind::kStats;
      const std::uint32_t jlen = r.u32();
      resp.stats_json = r.bytes(jlen);
      break;
    }
    case kOpRebuildResp: {
      resp.kind = Response::Kind::kRebuild;
      resp.epoch = r.u64();
      resp.build_ns = r.u64();
      break;
    }
    case kOpKPathResp: {
      resp.kind = Response::Kind::kKPath;
      resp.result.type = service::QueryType::kKPaths;
      if (!read_status(r, &resp.result)) break;
      const std::uint32_t n = r.u32();
      resp.result.routes.reserve(n);
      for (std::uint32_t i = 0; r.ok && i < n; ++i) {
        resp.result.routes.push_back(read_route(r));
      }
      if (!resp.result.routes.empty()) {
        resp.result.dist = resp.result.routes.front().weight;
      }
      break;
    }
    case kOpRouteResp: {
      resp.kind = Response::Kind::kRoute;
      resp.result.type = service::QueryType::kRoute;
      if (!read_status(r, &resp.result)) break;
      resp.result.feasible = r.u8() != 0;
      if (resp.result.feasible) {
        query::Route rt = read_route(r);
        resp.result.dist = rt.weight;
        resp.result.path = rt.nodes;
        resp.result.routes.push_back(std::move(rt));
      }
      break;
    }
    case kOpReportResp: {
      resp.kind = Response::Kind::kReport;
      resp.result.type = service::QueryType::kReport;
      if (!read_status(r, &resp.result)) break;
      auto& g = resp.result.report;
      g.radius = r.i64();
      g.diameter = r.i64();
      g.reachable_pairs = r.u64();
      const std::uint32_t n = r.u32();
      g.per_source.reserve(n);
      for (std::uint32_t i = 0; r.ok && i < n; ++i) {
        query::SourceReport s;
        s.eccentricity = r.i64();
        s.farness = r.i64();
        s.reached = r.u32();
        g.per_source.push_back(s);
      }
      break;
    }
    case kOpBcResp: {
      resp.kind = Response::Kind::kBc;
      resp.result.type = service::QueryType::kBetweenness;
      if (!read_status(r, &resp.result)) break;
      const std::uint32_t n = r.u32();
      resp.result.centrality.reserve(n);
      for (std::uint32_t i = 0; r.ok && i < n; ++i) {
        resp.result.centrality.push_back(std::bit_cast<double>(r.u64()));
      }
      break;
    }
    case kOpError: {
      resp.kind = Response::Kind::kError;
      resp.code = static_cast<ErrorCode>(r.u16());
      const std::uint32_t mlen = r.u32();
      resp.message = r.bytes(mlen);
      break;
    }
    default:
      throw std::runtime_error("wire: unknown response opcode");
  }
  if (!r.ok) throw std::runtime_error("wire: short response body");
  return resp;
}

int serve_binary(const service::QueryService& svc, std::istream& in,
                 std::ostream& out, const service::ServeOptions& opts) {
  int errors = 0;
  const auto fail = [&](ErrorCode code, const std::string& msg) {
    ++errors;
    frame_and_write(out, make_error_payload(code, msg));
  };
  for (;;) {
    std::string lenbuf(4, '\0');
    in.read(lenbuf.data(), 4);
    if (in.gcount() == 0) return errors;  // clean EOF at a frame boundary
    if (in.gcount() != 4) {
      fail(ErrorCode::kTruncated, "stream ended inside a length prefix");
      return errors;
    }
    Reader lr(lenbuf);
    const std::uint32_t len = lr.u32();
    if (len > kMaxFrameBytes) {
      // The declared payload may not even exist; resync is impossible.
      fail(ErrorCode::kFrameTooLarge,
           "frame of " + std::to_string(len) + " bytes exceeds limit of " +
               std::to_string(kMaxFrameBytes));
      return errors;
    }
    std::string payload;
    if (!read_exact(in, payload, len)) {
      fail(ErrorCode::kTruncated, "stream ended inside a frame payload");
      return errors;
    }
    // From here every error is recoverable: the bad frame is fully consumed,
    // so answer with an ERROR frame and keep serving.
    Reader r(payload);
    const char m0 = static_cast<char>(r.u8());
    const char m1 = static_cast<char>(r.u8());
    if (!r.ok || m0 != kReqMagic0 || m1 != kReqMagic1) {
      fail(ErrorCode::kBadMagic, "request does not start with 'DQ'");
      continue;
    }
    const std::uint8_t ver = r.u8();
    if (!r.ok || ver != kVersion) {
      fail(ErrorCode::kBadVersion,
           "unsupported protocol version " + std::to_string(ver));
      continue;
    }
    const std::uint8_t op = r.u8();
    if (!r.ok) {
      fail(ErrorCode::kTruncated, "request header shorter than 4 bytes");
      continue;
    }
    switch (op) {
      case kOpQuit:
        return errors;
      case kOpStats: {
        std::ostringstream json;
        obs::JsonWriter w(json);
        svc.stats().write_json(w);
        std::string p;
        p.push_back(kRespMagic0);
        p.push_back(kRespMagic1);
        p.push_back(static_cast<char>(kVersion));
        p.push_back(static_cast<char>(kOpStatsResp));
        const std::string doc = json.str();
        put_u32(p, static_cast<std::uint32_t>(doc.size()));
        p.append(doc);
        frame_and_write(out, p);
        break;
      }
      case kOpRebuild: {
        if (!opts.on_rebuild) {
          fail(ErrorCode::kBadOpcode,
               "rebuild is not available on this session");
          break;
        }
        const service::RebuildOutcome rb = opts.on_rebuild();
        if (!rb.ok) {
          // A failed rebuild is a server-side condition, not a protocol
          // error: report it without counting toward the malformed total.
          frame_and_write(out, make_error_payload(ErrorCode::kBadOpcode,
                                                  "rebuild failed: " +
                                                      rb.error));
          break;
        }
        std::string p;
        p.push_back(kRespMagic0);
        p.push_back(kRespMagic1);
        p.push_back(static_cast<char>(kVersion));
        p.push_back(static_cast<char>(kOpRebuildResp));
        put_u64(p, rb.epoch);
        put_u64(p, rb.build_ns);
        frame_and_write(out, p);
        break;
      }
      case kOpBatch: {
        const std::uint32_t count = r.u32();
        if (!r.ok) {
          fail(ErrorCode::kTruncated, "batch frame missing its count");
          break;
        }
        if (count > svc.config().max_batch) {
          fail(ErrorCode::kBatchTooLarge,
               "batch of " + std::to_string(count) +
                   " queries exceeds max_batch=" +
                   std::to_string(svc.config().max_batch));
          break;
        }
        if (payload.size() - r.pos != count * kQueryWireBytes) {
          fail(ErrorCode::kTruncated,
               "batch body holds " +
                   std::to_string((payload.size() - r.pos) / kQueryWireBytes) +
                   " queries but declares " + std::to_string(count));
          break;
        }
        std::vector<service::Query> queries;
        queries.reserve(count);
        bool bad_type = false;
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t t = r.u8();
          service::Query q;
          q.u = r.u32();
          q.v = r.u32();
          if (t >= service::kPointQueryTypeCount) {
            // Analytics types have dedicated opcodes: their bodies are not
            // the fixed-size records a batch frame is made of.
            bad_type = true;
            break;
          }
          q.type = static_cast<service::QueryType>(t);
          queries.push_back(q);
        }
        if (bad_type) {
          // Reject the whole batch: partial answers would desynchronize the
          // caller's results[i] <-> queries[i] pairing.
          fail(ErrorCode::kBadQueryType,
               "batch contains a query type outside dist/next/path "
               "(analytics use dedicated opcodes)");
          break;
        }
        const std::vector<service::QueryResult> results =
            svc.query_batch(queries);
        std::string p;
        p.push_back(kRespMagic0);
        p.push_back(kRespMagic1);
        p.push_back(static_cast<char>(kVersion));
        p.push_back(static_cast<char>(kOpBatchResp));
        put_u32(p, static_cast<std::uint32_t>(results.size()));
        for (const service::QueryResult& qr : results) append_result(p, qr);
        frame_and_write(out, p);
        break;
      }
      case kOpKPath: {
        service::Query q;
        q.type = service::QueryType::kKPaths;
        q.u = r.u32();
        q.v = r.u32();
        q.k = r.u32();
        if (!r.ok) {
          fail(ErrorCode::kTruncated, "kpath body shorter than 12 bytes");
          break;
        }
        if (r.pos != payload.size()) {
          fail(ErrorCode::kBadBody, "kpath body has trailing bytes");
          break;
        }
        if (q.k == 0) {
          fail(ErrorCode::kBadK, "kpath k must be >= 1");
          break;
        }
        const service::QueryResult qr = svc.query(q);
        std::string p;
        begin_response(p, kOpKPathResp);
        put_status(p, qr);
        if (qr.ok) {
          put_u32(p, static_cast<std::uint32_t>(qr.routes.size()));
          for (const query::Route& rt : qr.routes) put_route(p, rt);
        }
        frame_and_write(out, p);
        break;
      }
      case kOpRoute: {
        service::Query q;
        q.type = service::QueryType::kRoute;
        q.u = r.u32();
        q.v = r.u32();
        q.constraints.max_hops = r.u32();
        const std::uint32_t n_nodes = r.u32();
        const std::uint32_t n_edges = r.u32();
        if (!r.ok) {
          fail(ErrorCode::kTruncated, "route header shorter than 20 bytes");
          break;
        }
        // Bound the avoid sets before trusting the declared counts with any
        // allocation: a hostile count must cost nothing.
        if (n_nodes > svc.config().max_avoid ||
            n_edges > svc.config().max_avoid) {
          fail(ErrorCode::kBadAvoidSet,
               "route avoid set exceeds max_avoid=" +
                   std::to_string(svc.config().max_avoid));
          break;
        }
        const std::size_t want = static_cast<std::size_t>(n_nodes) * 4 +
                                 static_cast<std::size_t>(n_edges) * 8;
        const std::size_t have = payload.size() - r.pos;
        if (have < want) {
          fail(ErrorCode::kTruncated,
               "route avoid sets truncated (" + std::to_string(have) +
                   " bytes, need " + std::to_string(want) + ")");
          break;
        }
        if (have > want) {
          fail(ErrorCode::kBadBody, "route body has trailing bytes");
          break;
        }
        q.constraints.avoid_nodes.reserve(n_nodes);
        for (std::uint32_t i = 0; i < n_nodes; ++i) {
          q.constraints.avoid_nodes.push_back(r.u32());
        }
        q.constraints.avoid_edges.reserve(n_edges);
        for (std::uint32_t i = 0; i < n_edges; ++i) {
          const graph::NodeId a = r.u32();
          const graph::NodeId b = r.u32();
          q.constraints.avoid_edges.emplace_back(a, b);
        }
        const service::QueryResult qr = svc.query(q);
        std::string p;
        begin_response(p, kOpRouteResp);
        put_status(p, qr);
        if (qr.ok) {
          p.push_back(qr.feasible ? '\1' : '\0');
          if (qr.feasible) put_route(p, qr.routes.front());
        }
        frame_and_write(out, p);
        break;
      }
      case kOpReport: {
        if (r.pos != payload.size()) {
          fail(ErrorCode::kBadBody, "report body must be empty");
          break;
        }
        service::Query q;
        q.type = service::QueryType::kReport;
        const service::QueryResult qr = svc.query(q);
        std::string p;
        begin_response(p, kOpReportResp);
        put_status(p, qr);
        if (qr.ok) {
          const query::GraphReport& g = qr.report;
          put_i64(p, g.radius);
          put_i64(p, g.diameter);
          put_u64(p, g.reachable_pairs);
          put_u32(p, static_cast<std::uint32_t>(g.per_source.size()));
          for (const query::SourceReport& s : g.per_source) {
            put_i64(p, s.eccentricity);
            put_i64(p, s.farness);
            put_u32(p, s.reached);
          }
        }
        frame_and_write(out, p);
        break;
      }
      case kOpBc: {
        service::Query q;
        q.type = service::QueryType::kBetweenness;
        q.samples = r.u32();
        if (!r.ok) {
          fail(ErrorCode::kTruncated, "bc body shorter than 4 bytes");
          break;
        }
        if (r.pos != payload.size()) {
          fail(ErrorCode::kBadBody, "bc body has trailing bytes");
          break;
        }
        const service::QueryResult qr = svc.query(q);
        std::string p;
        begin_response(p, kOpBcResp);
        put_status(p, qr);
        if (qr.ok) {
          put_u32(p, static_cast<std::uint32_t>(qr.centrality.size()));
          for (const double d : qr.centrality) {
            put_u64(p, std::bit_cast<std::uint64_t>(d));
          }
        }
        frame_and_write(out, p);
        break;
      }
      default:
        fail(ErrorCode::kBadOpcode,
             "unknown request opcode " + std::to_string(op));
        break;
    }
  }
}

}  // namespace dapsp::serve::wire
