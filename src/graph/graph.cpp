#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace dapsp::graph {

namespace {
constexpr std::uint64_t pack(NodeId u, NodeId v) noexcept {
  return (std::uint64_t{u} << 32) | v;
}
}  // namespace

std::optional<Weight> Graph::arc_weight(NodeId u, NodeId v) const noexcept {
  std::optional<Weight> best;
  for (const Edge& e : out_edges(u)) {
    if (e.to == v && (!best || e.weight < *best)) best = e.weight;
  }
  return best;
}

GraphBuilder& GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  if (u >= n_ || v >= n_) throw std::logic_error("add_edge: node id out of range");
  if (u == v) throw std::logic_error("add_edge: self-loops are not allowed");
  if (w < 0) throw std::logic_error("add_edge: negative weight");
  arcs_.push_back({u, v, w});
  arc_keys_.insert(pack(u, v));
  if (!directed_) {
    arcs_.push_back({v, u, w});
    arc_keys_.insert(pack(v, u));
  }
  return *this;
}

bool GraphBuilder::has_arc(NodeId u, NodeId v) const noexcept {
  return arc_keys_.contains(pack(u, v));
}

Graph GraphBuilder::build() && {
  Graph g;
  g.n_ = n_;
  g.directed_ = directed_;
  g.edges_ = std::move(arcs_);

  std::sort(g.edges_.begin(), g.edges_.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.from, a.to, a.weight) < std::tie(b.from, b.to, b.weight);
  });

  g.out_offsets_.assign(n_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.out_offsets_[e.from + 1];
    g.max_weight_ = std::max(g.max_weight_, e.weight);
  }
  for (NodeId v = 0; v < n_; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];

  g.in_edges_ = g.edges_;
  std::sort(g.in_edges_.begin(), g.in_edges_.end(),
            [](const Edge& a, const Edge& b) {
              return std::tie(a.to, a.from, a.weight) <
                     std::tie(b.to, b.from, b.weight);
            });
  g.in_offsets_.assign(n_ + 1, 0);
  for (const Edge& e : g.in_edges_) ++g.in_offsets_[e.to + 1];
  for (NodeId v = 0; v < n_; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];

  // Communication graph: union of {u,v} over all arcs, deduplicated.
  std::vector<std::pair<NodeId, NodeId>> links;
  links.reserve(g.edges_.size() * 2);
  for (const Edge& e : g.edges_) {
    links.emplace_back(e.from, e.to);
    links.emplace_back(e.to, e.from);
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());

  g.comm_offsets_.assign(n_ + 1, 0);
  g.comm_adj_.reserve(links.size());
  for (const auto& [u, v] : links) {
    ++g.comm_offsets_[u + 1];
    g.comm_adj_.push_back(v);
  }
  for (NodeId v = 0; v < n_; ++v) g.comm_offsets_[v + 1] += g.comm_offsets_[v];

  return g;
}

}  // namespace dapsp::graph
