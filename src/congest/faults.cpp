#include "congest/faults.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace dapsp::congest {

namespace {

// Purposes keep the per-message fate draws independent of each other.
enum FatePurpose : std::uint64_t {
  kFateDrop = 1,
  kFateDup = 2,
  kFateDelay = 3,
  kFateDelayLen = 4,
};

/// Counter-based draw: a pure function of its inputs, never a shared stream.
/// This is what makes fault outcomes independent of thread count and of how
/// many rounds the sparse scheduler fast-forwarded (skipped rounds draw
/// nothing because nothing was sent).
std::uint64_t fate_bits(std::uint64_t seed, Round round, std::uint64_t slot,
                        std::uint64_t index, std::uint64_t purpose) noexcept {
  std::uint64_t state = seed;
  state ^= util::splitmix64(state) ^ (round * 0x9e3779b97f4a7c15ULL);
  state ^= util::splitmix64(state) ^ (slot * 0xbf58476d1ce4e5b9ULL);
  state ^= util::splitmix64(state) ^ (index * 0x94d049bb133111ebULL);
  state ^= util::splitmix64(state) ^ (purpose * 0xd6e8feb86659fd93ULL);
  return util::splitmix64(state);
}

bool fate_chance(double p, std::uint64_t seed, Round round, std::uint64_t slot,
                 std::uint64_t index, std::uint64_t purpose) noexcept {
  if (p <= 0.0) return false;
  const double u = static_cast<double>(
                       fate_bits(seed, round, slot, index, purpose) >> 11) *
                   0x1.0p-53;
  return u < p;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad spec \"" + spec + "\": " + why);
}

std::uint64_t parse_u64(const std::string& spec, const std::string& text,
                        const char* what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    bad_spec(spec, std::string(what) + " wants an unsigned integer, got \"" +
                       text + "\"");
  }
}

double parse_prob(const std::string& spec, const std::string& text,
                  const char* what) {
  double v = 0.0;
  try {
    std::size_t pos = 0;
    v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk");
  } catch (const std::exception&) {
    bad_spec(spec,
             std::string(what) + " wants a probability, got \"" + text + "\"");
  }
  if (v < 0.0 || v > 1.0) {
    bad_spec(spec, std::string(what) + " must be in [0, 1], got " + text);
  }
  return v;
}

std::string format_prob(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

}  // namespace

bool FaultPlan::enabled() const noexcept {
  return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 ||
         link_bandwidth > 0 || !crashes.empty();
}

void FaultPlan::validate() const {
  auto bad = [](const std::string& why) {
    throw std::invalid_argument("FaultPlan: " + why);
  };
  auto check_prob = [&](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0)) {
      bad(std::string(what) + " must be in [0, 1], got " + format_prob(p));
    }
  };
  check_prob(drop_prob, "drop_prob");
  check_prob(dup_prob, "dup_prob");
  check_prob(delay_prob, "delay_prob");
  if (max_delay == 0) bad("max_delay must be >= 1");
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const Crash& c = crashes[i];
    if (c.revive <= c.at) {
      bad("crash of node " + std::to_string(c.node) +
          " revives at or before it happens");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (crashes[j].node == c.node) {
        bad("node " + std::to_string(c.node) +
            " has more than one crash interval");
      }
    }
  }
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string token;
  std::istringstream fields(spec);
  while (std::getline(fields, token, ',')) {
    if (token.empty()) bad_spec(spec, "empty field");
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      bad_spec(spec, "field \"" + token + "\" is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "drop") {
      plan.drop_prob = parse_prob(spec, value, "drop");
    } else if (key == "dup") {
      plan.dup_prob = parse_prob(spec, value, "dup");
    } else if (key == "delay") {
      // delay=P or delay=P:K (K = max delay in rounds, default 1).
      const std::size_t colon = value.find(':');
      plan.delay_prob =
          parse_prob(spec, value.substr(0, colon), "delay probability");
      plan.max_delay = colon == std::string::npos
                           ? 1
                           : parse_u64(spec, value.substr(colon + 1),
                                       "delay bound");
      if (plan.max_delay == 0) bad_spec(spec, "delay bound must be >= 1");
    } else if (key == "bw") {
      plan.link_bandwidth = parse_u64(spec, value, "bw");
    } else if (key == "crash") {
      // crash=NODE@AT or crash=NODE@AT..REVIVE
      const std::size_t at_pos = value.find('@');
      if (at_pos == std::string::npos) {
        bad_spec(spec, "crash wants NODE@ROUND, got \"" + value + "\"");
      }
      Crash c;
      c.node = static_cast<NodeId>(
          parse_u64(spec, value.substr(0, at_pos), "crash node"));
      const std::string when = value.substr(at_pos + 1);
      const std::size_t dots = when.find("..");
      c.at = parse_u64(spec, when.substr(0, dots), "crash round");
      if (dots != std::string::npos) {
        c.revive = parse_u64(spec, when.substr(dots + 2), "revive round");
      }
      plan.crashes.push_back(c);
    } else if (key == "seed") {
      plan.seed = parse_u64(spec, value, "seed");
    } else {
      bad_spec(spec, "unknown key \"" + key + "\"");
    }
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::spec() const {
  std::ostringstream os;
  const char* sep = "";
  auto field = [&]() -> std::ostringstream& {
    os << sep;
    sep = ",";
    return os;
  };
  if (drop_prob > 0.0) field() << "drop=" << format_prob(drop_prob);
  if (dup_prob > 0.0) field() << "dup=" << format_prob(dup_prob);
  if (delay_prob > 0.0) {
    field() << "delay=" << format_prob(delay_prob) << ":" << max_delay;
  }
  if (link_bandwidth > 0) field() << "bw=" << link_bandwidth;
  for (const Crash& c : crashes) {
    field() << "crash=" << c.node << "@" << c.at;
    if (c.revive != kNever) os << ".." << c.revive;
  }
  field() << "seed=" << seed;
  return os.str();
}

FaultPlane::FaultPlane(const FaultPlan& plan, NodeId nodes,
                       std::vector<NodeId> link_from,
                       std::vector<NodeId> link_target)
    : plan_(plan),
      link_from_(std::move(link_from)),
      link_target_(std::move(link_target)) {
  plan_.validate();
  crash_at_.assign(nodes, FaultPlan::kNever);
  revive_at_.assign(nodes, FaultPlan::kNever);
  for (const FaultPlan::Crash& c : plan_.crashes) {
    if (c.node >= nodes) {
      throw std::invalid_argument(
          "FaultPlan: crash node " + std::to_string(c.node) +
          " out of range for a " + std::to_string(nodes) + "-node graph");
    }
    crash_at_[c.node] = c.at;
    revive_at_[c.node] = c.revive;
  }
  queues_.resize(link_from_.size());
  active_mark_.assign(link_from_.size(), 0);
}

bool FaultPlane::node_down(NodeId v, Round r) const noexcept {
  return r >= crash_at_[v] && r < revive_at_[v];
}

bool FaultPlane::down_forever(NodeId v, Round r) const noexcept {
  return revive_at_[v] == FaultPlan::kNever && r >= crash_at_[v];
}

void FaultPlane::begin_round() { round_ = FaultStats{}; }

void FaultPlane::push_frame(std::uint32_t slot, const Message& m, Round ready) {
  LinkQueue& q = queues_[slot];
  q.frames.push_back(Frame{m, ready, q.next_seq++, false});
  std::push_heap(q.frames.begin(), q.frames.end(),
                 [](const Frame& a, const Frame& b) {
                   return a.ready != b.ready ? a.ready > b.ready
                                             : a.seq > b.seq;
                 });
  if (!active_mark_[slot]) {
    active_mark_[slot] = 1;
    active_slots_.push_back(slot);
  }
  ++pending_total_;
}

void FaultPlane::admit(Round r, std::uint32_t slot, const Message* msgs,
                       std::uint32_t count) {
  const std::uint64_t seed = plan_.seed;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (fate_chance(plan_.drop_prob, seed, r, slot, i, kFateDrop)) {
      ++round_.dropped;
      continue;
    }
    std::uint32_t copies = 1;
    if (fate_chance(plan_.dup_prob, seed, r, slot, i, kFateDup)) {
      copies = 2;
      ++round_.duplicated;
    }
    for (std::uint32_t c = 0; c < copies; ++c) {
      // Each copy draws its own delay; the copy index is folded into the
      // draw counter so the duplicate can land in a different round.
      const std::uint64_t draw = std::uint64_t{i} * 2 + c;
      Round delay = 0;
      if (fate_chance(plan_.delay_prob, seed, r, slot, draw, kFateDelay)) {
        delay = 1 + fate_bits(seed, r, slot, draw, kFateDelayLen) %
                        plan_.max_delay;
        ++round_.delayed;
      }
      push_frame(slot, msgs[i], r + delay);
    }
  }
}

void FaultPlane::release(Round r, std::vector<std::vector<Envelope>>& inbox,
                         std::vector<std::uint8_t>& inbox_mark,
                         std::vector<NodeId>& receivers) {
  if (pending_total_ > round_.max_backlog) round_.max_backlog = pending_total_;
  // Ascending slot order makes each receiver's inbox sender-ascending, the
  // same order the fault-free arena produces.
  std::sort(active_slots_.begin(), active_slots_.end());
  const std::uint64_t cap = plan_.link_bandwidth;
  const auto later = [](const Frame& a, const Frame& b) {
    return a.ready != b.ready ? a.ready > b.ready : a.seq > b.seq;
  };
  std::size_t kept = 0;
  for (const std::uint32_t slot : active_slots_) {
    LinkQueue& q = queues_[slot];
    const NodeId to = link_target_[slot];
    std::uint64_t crossed = 0;
    while (!q.frames.empty() && q.frames.front().ready <= r &&
           (cap == 0 || crossed < cap)) {
      std::pop_heap(q.frames.begin(), q.frames.end(), later);
      const Frame frame = q.frames.back();
      q.frames.pop_back();
      --pending_total_;
      ++crossed;  // a discarded delivery still crossed the link
      if (node_down(to, r)) {
        ++round_.crash_dropped;
        continue;
      }
      if (!inbox_mark[to]) {
        inbox_mark[to] = 1;
        inbox[to].clear();
        receivers.push_back(to);
      }
      inbox[to].push_back(Envelope{link_from_[slot], frame.msg});
      ++round_.delivered;
    }
    // Anything eligible but still queued was starved by the bandwidth cap;
    // count each held message once.
    for (Frame& f : q.frames) {
      if (f.ready <= r && !f.deferred) {
        f.deferred = true;
        ++round_.deferred;
      }
    }
    if (q.frames.empty()) {
      active_mark_[slot] = 0;
    } else {
      active_slots_[kept++] = slot;
    }
  }
  active_slots_.resize(kept);
  std::sort(receivers.begin(), receivers.end());
}

Round FaultPlane::next_due_round() const noexcept {
  Round due = FaultPlan::kNever;
  for (const std::uint32_t slot : active_slots_) {
    const Round top = queues_[slot].frames.front().ready;
    if (top < due) due = top;
  }
  return due;
}

}  // namespace dapsp::congest
