#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "util/int_math.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::util {
namespace {

TEST(IntMath, IsqrtSmallValues) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(2), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(8), 2u);
  EXPECT_EQ(isqrt(9), 3u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
}

TEST(IntMath, IsqrtCeil) {
  EXPECT_EQ(isqrt_ceil(0), 0u);
  EXPECT_EQ(isqrt_ceil(1), 1u);
  EXPECT_EQ(isqrt_ceil(2), 2u);
  EXPECT_EQ(isqrt_ceil(4), 2u);
  EXPECT_EQ(isqrt_ceil(5), 3u);
  EXPECT_EQ(isqrt_ceil(9), 3u);
  EXPECT_EQ(isqrt_ceil(10), 4u);
}

TEST(IntMath, IsqrtLargeExhaustiveProperty) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng();
    const std::uint64_t r = isqrt_u128(u128{x});
    EXPECT_LE(u128{r} * r, u128{x});
    EXPECT_GT((u128{r} + 1) * (u128{r} + 1), u128{x});
  }
}

TEST(IntMath, IsqrtPerfectSquares128) {
  for (std::uint64_t r : {1ull, 3ull, 1000ull, 1ull << 31, (1ull << 40) + 17}) {
    const u128 sq = u128{r} * r;
    EXPECT_EQ(isqrt_u128(sq), r);
    EXPECT_EQ(isqrt_ceil_u128(sq), r);
    EXPECT_EQ(isqrt_ceil_u128(sq + 1), r + 1);
  }
}

TEST(IntMath, CeilMulSqrtAgainstDouble) {
  // ceil(d * sqrt(num/den)) must match careful floating point on moderate
  // inputs (floats are only the oracle here, never the implementation).
  Xoshiro256 rng(13);
  for (int i = 0; i < 3000; ++i) {
    const auto d = static_cast<std::uint64_t>(rng.below(100000));
    const auto num = static_cast<std::uint64_t>(rng.below(10000)) + 1;
    const auto den = static_cast<std::uint64_t>(rng.below(10000)) + 1;
    const std::uint64_t got = ceil_mul_sqrt(d, num, den);
    const long double exact =
        static_cast<long double>(d) *
        std::sqrt(static_cast<long double>(num) / static_cast<long double>(den));
    // Verify the defining inequality instead of trusting the float ceil:
    // got is the smallest m with m*m*den >= d*d*num.
    EXPECT_GE(u128{got} * got * den, u128{d} * d * num);
    if (got > 0) {
      EXPECT_LT(u128{got - 1} * (got - 1) * den, u128{d} * d * num);
    }
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(exact), 1.5);
  }
}

TEST(IntMath, CeilMulSqrtZeroCases) {
  EXPECT_EQ(ceil_mul_sqrt(0, 5, 3), 0u);
  EXPECT_EQ(ceil_mul_sqrt(7, 0, 3), 0u);
  EXPECT_EQ(ceil_mul_sqrt(7, 4, 1), 14u);  // 7*2
  EXPECT_EQ(ceil_mul_sqrt(7, 1, 4), 4u);   // ceil(3.5)
}

TEST(IntMath, CmpMulSqrtBasics) {
  // 2*sqrt(2) ~ 2.83 vs 3
  EXPECT_EQ(cmp_mul_sqrt(2, 2, 1, 3), -1);
  // 3*sqrt(2) ~ 4.24 vs 4
  EXPECT_EQ(cmp_mul_sqrt(3, 2, 1, 4), 1);
  // 2*sqrt(4) == 4
  EXPECT_EQ(cmp_mul_sqrt(2, 4, 1, 4), 0);
  // negative lhs vs positive rhs
  EXPECT_EQ(cmp_mul_sqrt(-2, 2, 1, 1), -1);
  // negative both: -2*sqrt(2) ~ -2.83 vs -3 -> greater
  EXPECT_EQ(cmp_mul_sqrt(-2, 2, 1, -3), 1);
  // gamma == 0
  EXPECT_EQ(cmp_mul_sqrt(5, 0, 1, 1), -1);
  EXPECT_EQ(cmp_mul_sqrt(5, 0, 1, -1), 1);
  EXPECT_EQ(cmp_mul_sqrt(5, 0, 1, 0), 0);
}

TEST(IntMath, CmpMulSqrtMatchesLongDouble) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t a = rng.uniform(-1000, 1000);
    const std::uint64_t num = rng.below(500) + 1;
    const std::uint64_t den = rng.below(500) + 1;
    const std::int64_t b = rng.uniform(-3000, 3000);
    const long double lhs =
        static_cast<long double>(a) *
        std::sqrt(static_cast<long double>(num) / static_cast<long double>(den));
    const long double diff = lhs - static_cast<long double>(b);
    const int got = cmp_mul_sqrt(a, num, den, b);
    if (std::fabs(static_cast<double>(diff)) > 1e-6) {
      EXPECT_EQ(got, diff < 0 ? -1 : 1)
          << "a=" << a << " num=" << num << " den=" << den << " b=" << b;
    }
  }
}

TEST(IntMath, CheckThrows) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), std::logic_error);
}

TEST(IntMath, ToStringU128) {
  EXPECT_EQ(to_string_u128(0), "0");
  EXPECT_EQ(to_string_u128(12345), "12345");
  const u128 big = u128{1'000'000'000'000ull} * 1'000'000ull;
  EXPECT_EQ(to_string_u128(big), "1000000000000000000");
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  bool all_same = true;
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a(), y = b(), z = c();
    all_same = all_same && (x == y);
    any_diff = any_diff || (x != z);
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedBatches) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50ull * (64 * 63 / 2));
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  int count = 0;
  pool.parallel_for(17, [&](std::size_t) { ++count; });  // inline path
  EXPECT_EQ(count, 17);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ConcurrentSubmittersAllComplete) {
  // Many threads driving one pool at once (the serving-tier pattern: every
  // client connection issues query batches on the service's pool).  A loser
  // of the submit race must run its batch inline, never hang or drop work.
  ThreadPool pool(3);
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 40;
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        pool.parallel_for(64, [&](std::size_t i) { sum += i; });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kSubmitters) * kRounds * (64 * 63 / 2));
}

}  // namespace
}  // namespace dapsp::util
