#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace dapsp::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw SocketError(what + ": " + std::strerror(err));
}

int ms_left(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// poll() for readability with EINTR handling; throws SocketTimeout on
/// deadline, SocketError on poll failure.
void wait_readable(int fd, Clock::time_point deadline) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, ms_left(deadline));
    if (r > 0) return;  // readable, or HUP/ERR -- the read reports which
    if (r == 0) throw SocketTimeout("socket read: deadline expired");
    if (errno == EINTR) continue;
    throw_errno("poll", errno);
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("tcp endpoint host must be a numeric IPv4 address: " +
                      host);
  }
  return addr;
}

Socket make_stream_socket(bool is_unix) {
  const int fd = ::socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket", errno);
  Socket s(fd);
  if (!is_unix) {
    // Round frames are small and strictly request/response; never batch.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return s;
}

}  // namespace

Endpoint Endpoint::parse(std::string_view spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = std::string(spec.substr(5));
    if (ep.path.empty()) throw SocketError("empty unix socket path");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    const std::string_view rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw SocketError("malformed tcp endpoint (want tcp:<ipv4>:<port>): " +
                        std::string(spec));
    }
    ep.host = std::string(rest.substr(0, colon));
    const std::string_view port_str = rest.substr(colon + 1);
    std::uint32_t port = 0;
    for (const char c : port_str) {
      if (c < '0' || c > '9' || port > 65535) {
        throw SocketError("malformed tcp port: " + std::string(spec));
      }
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (port == 0 || port > 65535) {
      throw SocketError("tcp port out of range: " + std::string(spec));
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw SocketError("endpoint must start with unix: or tcp: -- got " +
                    std::string(spec));
}

std::string Endpoint::spec() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const Endpoint& ep) : bound_(ep) {
  fd_ = make_stream_socket(ep.is_unix);
  if (ep.is_unix) {
    ::unlink(ep.path.c_str());  // stale file from a crashed prior run
    const sockaddr_un addr = make_unix_addr(ep.path);
    if (::bind(fd_.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + ep.spec(), errno);
    }
  } else {
    sockaddr_in addr = make_tcp_addr(ep.host, ep.port);
    if (::bind(fd_.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + ep.spec(), errno);
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      throw_errno("getsockname", errno);
    }
    bound_.port = ntohs(addr.sin_port);
  }
  if (::listen(fd_.fd(), SOMAXCONN) != 0) {
    throw_errno("listen " + bound_.spec(), errno);
  }
}

Listener::~Listener() {
  fd_.close();
  if (bound_.is_unix) ::unlink(bound_.path.c_str());
}

Socket Listener::accept_within(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    try {
      wait_readable(fd_.fd(), deadline);
    } catch (const SocketTimeout&) {
      throw SocketTimeout("accept on " + bound_.spec() +
                          ": no worker connected within deadline");
    }
    const int fd = ::accept(fd_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw_errno("accept", errno);
  }
}

Socket connect_with_retry(const Endpoint& ep, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  auto backoff = std::chrono::milliseconds(1);
  for (;;) {
    Socket s = make_stream_socket(ep.is_unix);
    int rc;
    if (ep.is_unix) {
      const sockaddr_un addr = make_unix_addr(ep.path);
      do {
        rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
      } while (rc != 0 && errno == EINTR);
    } else {
      const sockaddr_in addr = make_tcp_addr(ep.host, ep.port);
      do {
        rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
      } while (rc != 0 && errno == EINTR);
    }
    if (rc == 0) return s;
    // Not-yet-listening shows as ECONNREFUSED (tcp, bound unix file) or
    // ENOENT (unix file not created yet); both are retryable races against
    // the coordinator's startup.
    if (errno != ECONNREFUSED && errno != ENOENT && errno != EAGAIN) {
      throw_errno("connect " + ep.spec(), errno);
    }
    if (Clock::now() + backoff > deadline) {
      throw SocketTimeout("connect " + ep.spec() +
                          ": peer never started listening");
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

void write_full(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw SocketClosed("socket write: peer closed the connection");
    }
    throw_errno("send", errno);
  }
}

bool read_full(int fd, void* data, std::size_t len, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    wait_readable(fd, deadline);
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw SocketClosed("socket read: peer closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN) continue;
    if (errno == ECONNRESET) {
      throw SocketClosed("socket read: connection reset by peer");
    }
    throw_errno("recv", errno);
  }
  return true;
}

void ignore_sigpipe() noexcept { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace dapsp::net
