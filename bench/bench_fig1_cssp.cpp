// E3 -- Figure 1 (why CSSSP is needed).
//
// The paper's Figure 1 illustrates that parent pointers of h-hop shortest
// paths need not form trees of height h: the prefix of an h-hop shortest
// path is not itself an h-hop shortest path.  We regenerate the phenomenon:
// run Algorithm 1 with hop bound h and count nodes whose parent chains are
// longer than h or dangle (stale parents); then build the CSSSP (2h-hop run
// + verified truncation, Lemma III.4) and show the defects disappear.
#include "core/cssp.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"

namespace {

using namespace dapsp;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;

struct ChainDefects {
  std::uint64_t overlong = 0;  // parent chain longer than h
  std::uint64_t dangling = 0;  // chain enters a node with no/absurd parent
  std::uint64_t inconsistent = 0;  // label does not extend the parent label
};

/// Walks the naive parent pointers of an (h-hop) Algorithm-1 run.
ChainDefects naive_defects(const Graph& g, const core::KsspResult& res,
                           std::uint32_t h) {
  ChainDefects d;
  for (std::size_t i = 0; i < res.sources.size(); ++i) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (res.dist[i][v] == kInfDist || v == res.sources[i]) continue;
      // Label-extension check against the parent's final label.
      const NodeId p = res.parent[i][v];
      if (p == kNoNode) {
        ++d.dangling;
        continue;
      }
      const auto w = g.arc_weight(p, v);
      if (!w || res.dist[i][p] == kInfDist ||
          res.dist[i][p] + *w != res.dist[i][v] ||
          res.hops[i][p] + 1 != res.hops[i][v]) {
        ++d.inconsistent;
      }
      // Chain length check.
      NodeId u = v;
      std::uint32_t steps = 0;
      while (u != res.sources[i] && steps <= h + g.node_count()) {
        const NodeId next = res.parent[i][u];
        if (next == kNoNode) break;
        u = next;
        ++steps;
      }
      if (u == res.sources[i] && steps > h) ++d.overlong;
    }
  }
  return d;
}

}  // namespace

int main() {
  using bench::fmt;
  bench::banner(
      "E3: Figure 1 (h-hop parent pointers vs CSSSP)",
      "Defects in naive h-hop parent structures vs the verified CSSSP "
      "collection on the Figure-1 gadget and random zero-heavy graphs.");

  bench::Table table({"graph", "h", "naive overlong", "naive stale",
                      "cssp height>h", "cssp stale", "cssp members"});

  const auto run_case = [&](const std::string& name, const Graph& g,
                            std::uint32_t h) {
    std::vector<NodeId> sources(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) sources[v] = v;

    core::PipelinedParams p;
    p.sources = sources;
    p.h = h;
    p.delta = graph::max_finite_hop_distance(g, h);
    const auto naive = core::pipelined_kssp(g, p);
    const ChainDefects nd = naive_defects(g, naive, h);

    const auto cssp = core::build_cssp(
        g, sources, h, graph::max_finite_hop_distance(g, 2 * h));
    std::uint64_t over = 0, stale = 0, members = 0;
    for (std::size_t i = 0; i < cssp.sources.size(); ++i) {
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (!cssp.in_tree(i, v)) continue;
        ++members;
        if (cssp.depth[i][v] > h) ++over;
        const NodeId pp = cssp.parent[i][v];
        if (v != cssp.sources[i]) {
          const auto w = g.arc_weight(pp, v);
          if (!w || !cssp.in_tree(i, pp) ||
              cssp.dist[i][pp] + *w != cssp.dist[i][v]) {
            ++stale;
          }
        }
      }
    }
    table.row({name, fmt(std::uint64_t{h}), fmt(nd.overlong),
               fmt(nd.dangling + nd.inconsistent), fmt(over), fmt(stale),
               fmt(members)});
  };

  for (const std::uint32_t h : {2u, 3u, 5u}) {
    run_case("fig1(h=" + std::to_string(h) + ")", graph::fig1_gadget(h), h);
  }
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    graph::WeightSpec spec{0, 3, 0.6};
    const Graph g = graph::erdos_renyi(20, 0.2, spec, 1234 + seed);
    run_case("zero-heavy #" + std::to_string(seed), g, 3);
  }
  table.print();
  std::cout << "\nThe naive columns show the Figure-1 phenomenon (chains "
               "longer than h, labels that no longer extend their parent's "
               "final label); the CSSSP columns must be zero.\n";
  return 0;
}
