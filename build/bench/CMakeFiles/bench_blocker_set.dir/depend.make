# Empty dependencies file for bench_blocker_set.
# This may be replaced when dependencies are built.
