// Worker-shard side of the socket backend: `dapsp worker --connect <spec>
// --rank <r>` lands in worker_main(), which dials the coordinator, receives
// the job (graph + solver options), replicates the whole build with a
// SocketPlane installed as the process-global message plane, and ships its
// owned result rows back.  See coordinator.hpp for the big picture and
// docs/BACKENDS.md for the design.
#pragma once

#include <cstdint>
#include <string>

namespace dapsp::net {

struct WorkerOptions {
  std::string connect;  ///< coordinator endpoint spec ("unix:…"/"tcp:…")
  std::uint32_t rank = 0;
  std::uint32_t timeout_ms = 120000;  ///< connect + per-frame deadline
};

/// Runs one worker session to completion.  Returns the process exit code:
/// 0 on success, 1 on any failure (after best-effort sending ABORT to the
/// coordinator and printing the reason to stderr).
int worker_main(const WorkerOptions& opts);

}  // namespace dapsp::net
