// Weighted graph representation shared by the sequential oracles and the
// CONGEST simulator.
//
// Graphs may be directed or undirected.  Edge weights are non-negative
// integers; zero weights are first-class citizens (they are the entire point
// of the paper).  For a directed graph the *communication* network is the
// underlying undirected graph (CONGEST model, Sec. I-B of the paper), which
// `Graph` exposes through the `comm_*` accessors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

namespace dapsp::graph {

using NodeId = std::uint32_t;
using Weight = std::int64_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr Weight kInfDist = static_cast<Weight>(1) << 60;

/// A directed arc u -> v with non-negative weight w.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  Weight weight = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable-after-build weighted graph in CSR form.
///
/// Build with `GraphBuilder`; the finished graph provides
///  * `out_edges(v)` / `in_edges(v)`      — directed adjacency,
///  * `comm_neighbors(v)`                 — undirected communication links,
/// all as contiguous spans.
class Graph {
 public:
  Graph() = default;

  bool directed() const noexcept { return directed_; }
  NodeId node_count() const noexcept { return n_; }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// All directed arcs (for an undirected graph each input edge appears as
  /// two arcs).
  std::span<const Edge> edges() const noexcept { return edges_; }

  std::span<const Edge> out_edges(NodeId v) const noexcept {
    return {edges_.data() + out_offsets_[v],
            edges_.data() + out_offsets_[v + 1]};
  }

  /// Incoming arcs of v, materialized as Edge{from,to=v,w}.
  std::span<const Edge> in_edges(NodeId v) const noexcept {
    return {in_edges_.data() + in_offsets_[v],
            in_edges_.data() + in_offsets_[v + 1]};
  }

  /// Neighbors over the underlying undirected communication graph, sorted
  /// ascending and deduplicated.  Every CONGEST message travels along one of
  /// these links.
  std::span<const NodeId> comm_neighbors(NodeId v) const noexcept {
    return {comm_adj_.data() + comm_offsets_[v],
            comm_adj_.data() + comm_offsets_[v + 1]};
  }

  std::size_t comm_degree(NodeId v) const noexcept {
    return comm_offsets_[v + 1] - comm_offsets_[v];
  }

  /// Number of undirected communication links.
  std::size_t comm_edge_count() const noexcept { return comm_adj_.size() / 2; }

  /// Weight of arc u->v, or nullopt if absent.  If parallel arcs exist the
  /// minimum weight is returned (parallel arcs are allowed by the builder but
  /// never produced by the generators).
  std::optional<Weight> arc_weight(NodeId u, NodeId v) const noexcept;

  /// Largest edge weight W (0 for an edgeless graph).
  Weight max_weight() const noexcept { return max_weight_; }

 private:
  friend class GraphBuilder;

  NodeId n_ = 0;
  bool directed_ = false;
  Weight max_weight_ = 0;
  std::vector<Edge> edges_;              // sorted by (from, to)
  std::vector<std::size_t> out_offsets_; // size n_+1
  std::vector<Edge> in_edges_;           // sorted by (to, from)
  std::vector<std::size_t> in_offsets_;  // size n_+1
  std::vector<NodeId> comm_adj_;         // undirected adjacency
  std::vector<std::size_t> comm_offsets_;
};

/// Accumulates edges, then `build()`s the CSR graph.  For an undirected
/// graph, `add_edge(u,v,w)` creates both arcs.
class GraphBuilder {
 public:
  GraphBuilder(NodeId n, bool directed) : n_(n), directed_(directed) {}

  NodeId node_count() const noexcept { return n_; }
  bool directed() const noexcept { return directed_; }

  /// Adds edge u->v (and v->u when undirected).  Self-loops are rejected:
  /// they never participate in shortest paths and would create degenerate
  /// communication links.  Throws std::logic_error on bad input.
  GraphBuilder& add_edge(NodeId u, NodeId v, Weight w);

  /// True if arc u->v was already added (O(1); used by generators to avoid
  /// parallel edges).
  bool has_arc(NodeId u, NodeId v) const noexcept;

  std::size_t pending_edge_count() const noexcept { return arcs_.size(); }

  Graph build() &&;

 private:
  NodeId n_;
  bool directed_;
  std::vector<Edge> arcs_;
  std::unordered_set<std::uint64_t> arc_keys_;
};

}  // namespace dapsp::graph
