# Empty dependencies file for dapsp_bench_harness.
# This may be replaced when dependencies are built.
