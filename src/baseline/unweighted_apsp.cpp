#include "baseline/unweighted_apsp.hpp"

#include <algorithm>

#include "congest/engine.hpp"
#include "util/int_math.hpp"

namespace dapsp::baseline {

using congest::Context;
using congest::Engine;
using congest::EngineOptions;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using congest::Round;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

namespace {

constexpr std::uint32_t kTagLabel = 60;  // {source_index, d}

struct PaConfig {
  const Graph* g = nullptr;
  std::vector<NodeId> sources;
  std::vector<std::int32_t> source_index;
  Weight cap = 0;
};

class PositiveApspProtocol final : public Protocol {
 public:
  PositiveApspProtocol(
      const PaConfig& cfg, NodeId self,
      const std::function<std::optional<Weight>(const graph::Edge&)>& weight_of)
      : cfg_(cfg), self_(self) {
    d_of_.assign(cfg.sources.size(), kInfDist);
    sends_.assign(cfg.sources.size(), 0);
    for (const auto& e : cfg.g->in_edges(self)) {
      const auto w = weight_of(e);
      if (!w) continue;
      util::check(*w >= 1, "positive_apsp: transformed weights must be >= 1");
      const auto it = std::lower_bound(
          in_weight_.begin(), in_weight_.end(), e.from,
          [](const auto& p, NodeId v) { return p.first < v; });
      if (it != in_weight_.end() && it->first == e.from) {
        it->second = std::min(it->second, *w);
      } else {
        in_weight_.insert(it, {e.from, *w});
      }
    }
    const std::int32_t idx = cfg.source_index[self];
    if (idx >= 0) {
      d_of_[static_cast<std::size_t>(idx)] = 0;
      labels_.push_back({0, static_cast<std::uint32_t>(idx)});
    }
  }

  void send_phase(Context& ctx) override {
    const Round r = ctx.round();
    last_round_ = r;
    if (labels_.empty()) return;
    // One label fires per round: d + pos is strictly increasing.
    std::size_t lo = 0, hi = labels_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (static_cast<Round>(labels_[mid].d) + mid + 1 < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= labels_.size() ||
        static_cast<Round>(labels_[lo].d) + lo + 1 != r) {
      return;
    }
    ++sends_[labels_[lo].src];
    ctx.broadcast(Message(kTagLabel, {static_cast<std::int64_t>(labels_[lo].src),
                                      labels_[lo].d}));
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagLabel) continue;
      const auto it = std::lower_bound(
          in_weight_.begin(), in_weight_.end(), env.from,
          [](const auto& p, NodeId v) { return p.first < v; });
      if (it == in_weight_.end() || it->first != env.from) continue;
      const auto src = static_cast<std::uint32_t>(env.msg.f[0]);
      const Weight d = env.msg.f[1] + it->second;
      if (cfg_.cap > 0 && d > cfg_.cap) continue;
      if (d >= d_of_[src]) continue;
      // Replace the label: remove the old position, insert the new one.
      if (d_of_[src] != kInfDist) {
        const Label old{d_of_[src], src};
        const auto pos = std::lower_bound(labels_.begin(), labels_.end(), old);
        labels_.erase(pos);
      }
      d_of_[src] = d;
      const Label nw{d, src};
      labels_.insert(std::lower_bound(labels_.begin(), labels_.end(), nw), nw);
      settle_round_ = ctx.round();
    }
  }

  bool quiescent() const override {
    if (labels_.empty()) return true;
    return static_cast<Round>(labels_.back().d) + labels_.size() <= last_round_;
  }

  /// Schedules d + pos + 1 are strictly increasing, so the next spontaneous
  /// send is the first schedule past `now`.  Once every schedule has passed
  /// the node keeps polling (send_phase is then a no-op) so last_round_ --
  /// which quiescent() compares against -- advances exactly as on the dense
  /// path.
  Round next_send_round(Round now) const override {
    if (labels_.empty()) return kNeverSends;
    std::size_t lo = 0, hi = labels_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (static_cast<Round>(labels_[mid].d) + mid + 1 <= now) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= labels_.size()) return now + 1;
    return static_cast<Round>(labels_[lo].d) + lo + 1;
  }

  const std::vector<Weight>& dist() const { return d_of_; }
  Round settle_round() const { return settle_round_; }
  std::uint64_t max_sends() const {
    std::uint64_t m = 0;
    for (const auto s : sends_) m = std::max(m, s);
    return m;
  }

 private:
  struct Label {
    Weight d;
    std::uint32_t src;
    friend auto operator<=>(const Label&, const Label&) = default;
  };

  const PaConfig& cfg_;
  NodeId self_;
  std::vector<std::pair<NodeId, Weight>> in_weight_;
  std::vector<Label> labels_;  // sorted by (d, src)
  std::vector<Weight> d_of_;
  std::vector<std::uint64_t> sends_;
  Round settle_round_ = 0;
  Round last_round_ = 0;
};

}  // namespace

PositiveApspResult positive_apsp(const Graph& g, PositiveApspParams params) {
  const NodeId n = g.node_count();
  if (params.sources.empty()) {
    params.sources.resize(n);
    for (NodeId v = 0; v < n; ++v) params.sources[v] = v;
  }
  if (!params.weight_of) {
    params.weight_of = [](const graph::Edge&) -> std::optional<Weight> {
      return Weight{1};
    };
    if (params.distance_cap == 0) {
      params.distance_cap = n > 1 ? n - 1 : 1;  // unit weights: hop distance
    }
  }
  util::check(params.distance_cap > 0 || params.max_rounds > 0,
              "positive_apsp: need a distance cap or explicit round budget");

  PaConfig cfg;
  cfg.g = &g;
  cfg.sources = params.sources;
  cfg.cap = params.distance_cap;
  cfg.source_index.assign(n, -1);
  for (std::size_t i = 0; i < cfg.sources.size(); ++i) {
    cfg.source_index[cfg.sources[i]] = static_cast<std::int32_t>(i);
  }

  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(
        std::make_unique<PositiveApspProtocol>(cfg, v, params.weight_of));
  }
  EngineOptions opt;
  opt.max_rounds =
      params.max_rounds > 0
          ? params.max_rounds
          : static_cast<Round>(params.distance_cap) + cfg.sources.size() + 4;
  Engine engine(g, std::move(procs), opt);

  PositiveApspResult res;
  res.stats = engine.run();
  res.sources = cfg.sources;
  res.dist.assign(cfg.sources.size(), std::vector<Weight>(n, kInfDist));
  for (NodeId v = 0; v < n; ++v) {
    const auto& p =
        static_cast<const PositiveApspProtocol&>(engine.protocol(v));
    for (std::size_t i = 0; i < cfg.sources.size(); ++i) {
      res.dist[i][v] = p.dist()[i];
    }
    res.settle_round = std::max(res.settle_round, p.settle_round());
    res.max_sends_per_node_per_source =
        std::max(res.max_sends_per_node_per_source, p.max_sends());
  }
  return res;
}

PositiveApspResult unweighted_apsp(const Graph& g) {
  return positive_apsp(g, {});
}

std::vector<std::vector<bool>> zero_reach_congest(const Graph& g,
                                                  congest::RunStats* stats) {
  PositiveApspParams params;
  params.weight_of = [](const graph::Edge& e) -> std::optional<Weight> {
    if (e.weight != 0) return std::nullopt;
    return Weight{1};
  };
  params.distance_cap = g.node_count() > 1 ? g.node_count() - 1 : 1;
  PositiveApspResult run = positive_apsp(g, std::move(params));
  if (stats != nullptr) *stats += run.stats;

  const NodeId n = g.node_count();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (NodeId s = 0; s < n; ++s) {
    reach[s][s] = true;
    for (NodeId v = 0; v < n; ++v) {
      if (run.dist[s][v] != graph::kInfDist) reach[s][v] = true;
    }
  }
  return reach;
}

}  // namespace dapsp::baseline
