// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// wall-clock cost per simulated round, message delivery throughput, and the
// exact-key arithmetic.  These measure the *simulator*, not the algorithms'
// round complexity (that's what E1-E9 report).
//
// The Sparse/Dense pairs run the same protocol under the active-set
// scheduler (default) and the exhaustive dense fallback; both produce
// bit-identical stats (tested), so their time ratio is a pure measurement of
// the scheduler.  scripts/bench_engine.sh captures the JSON as
// BENCH_ENGINE.json.
#include <benchmark/benchmark.h>

#include <fstream>
#include <string>

#include "baseline/bf_apsp.hpp"
#include "congest/engine.hpp"
#include "core/key.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "harness.hpp"
#include "obs/critpath.hpp"
#include "obs/trace.hpp"
#include "util/int_math.hpp"

namespace {

using namespace dapsp;

/// Flips the engine to the dense fallback for one benchmark's scope.
struct DenseScope {
  explicit DenseScope(bool on) { congest::Engine::set_force_dense(on); }
  ~DenseScope() { congest::Engine::set_force_dense(false); }
};

void record_engine_counters(benchmark::State& state,
                            const congest::RunStats& s) {
  state.counters["simulated_rounds"] = static_cast<double>(s.rounds);
  state.counters["skipped_rounds"] = static_cast<double>(s.skipped_rounds);
  state.counters["messages"] = static_cast<double>(s.total_messages);
  state.counters["send_s"] = s.send_seconds;
  state.counters["deliver_s"] = s.deliver_seconds;
  state.counters["receive_s"] = s.receive_seconds;
}

// Runs the scenario once more under a work-item recorder (outside the timed
// loop) and attaches the critical-path summary as counters, so
// BENCH_ENGINE.json carries the causal chain next to the wall-clock numbers:
//   critpath_ns   longest dependence chain, attributed wall-clock (ns)
//   critpath_len  steps on that chain
//   critpath_pct  chain time as % of the run's engine phase wall-clock
// The chain itself is deterministic (cost-weighted, see docs/PERF.md); only
// the ns attribution varies run to run.
template <typename Run>
void record_critpath_counters(benchmark::State& state, Run&& run) {
  obs::TraceRecorder::Options ropt;
  ropt.work_item_capacity = std::size_t{1} << 20;
  obs::TraceRecorder rec(ropt);
  congest::Engine::set_global_recorder(&rec);
  const congest::RunStats stats = run();
  congest::Engine::set_global_recorder(nullptr);
  const obs::CritPathReport rep = obs::analyze_critical_path(rec);
  const double wall_ns =
      (stats.send_seconds + stats.deliver_seconds + stats.receive_seconds) *
      1e9;
  state.counters["critpath_ns"] = static_cast<double>(rep.total_ns);
  state.counters["critpath_len"] = static_cast<double>(rep.chain_len);
  state.counters["critpath_pct"] =
      wall_ns > 0.0 ? 100.0 * static_cast<double>(rep.total_ns) / wall_ns
                    : 0.0;
}

// Bellman-Ford SSSP on a long path: the frontier is one node per round, so
// the active set is ~1/n of the graph -- the best case the active-set
// scheduler is built for.
void run_path_sssp(benchmark::State& state, bool dense) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::path(n, {1, 4, 0.0}, 11);
  DenseScope scope(dense);
  record_critpath_counters(state,
                           [&] { return baseline::bf_sssp(g, 0).stats; });
  for (auto _ : state) {
    auto res = baseline::bf_sssp(g, 0);
    benchmark::DoNotOptimize(res.dist.data());
    record_engine_counters(state, res.stats);
  }
}

void BM_PathSsspSparse(benchmark::State& state) {
  run_path_sssp(state, /*dense=*/false);
}
BENCHMARK(BM_PathSsspSparse)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_PathSsspDense(benchmark::State& state) {
  run_path_sssp(state, /*dense=*/true);
}
BENCHMARK(BM_PathSsspDense)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// Pipelined SSSP on a cycle: Algorithm 1's schedule (d + position) fires
// each node a handful of times across a Theta(n) round span, so almost all
// rounds are silent for almost all nodes.
void run_pipelined_cycle(benchmark::State& state, bool dense) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::cycle(n, {1, 3, 0.0}, 12);
  const graph::Weight delta = graph::max_finite_distance(g);
  core::PipelinedParams p;
  p.sources = {0};
  p.h = n - 1;
  p.delta = delta;
  DenseScope scope(dense);
  record_critpath_counters(state,
                           [&] { return core::pipelined_kssp(g, p).stats; });
  for (auto _ : state) {
    auto res = core::pipelined_kssp(g, p);
    benchmark::DoNotOptimize(res.dist.data());
    record_engine_counters(state, res.stats);
  }
}

void BM_PipelinedCycleSparse(benchmark::State& state) {
  run_pipelined_cycle(state, /*dense=*/false);
}
BENCHMARK(BM_PipelinedCycleSparse)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_PipelinedCycleDense(benchmark::State& state) {
  run_pipelined_cycle(state, /*dense=*/true);
}
BENCHMARK(BM_PipelinedCycleDense)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_EngineFloodRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::erdos_renyi(n, 4.0 / n, {1, 4, 0.0}, 1);
  for (auto _ : state) {
    auto res = baseline::bf_sssp(g, 0);
    benchmark::DoNotOptimize(res.dist.data());
    state.counters["rounds"] = static_cast<double>(res.stats.rounds);
  }
}
BENCHMARK(BM_EngineFloodRound)->Arg(64)->Arg(256)->Arg(1024);

void BM_PipelinedApsp(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::erdos_renyi(n, 4.0 / n, {0, 6, 0.2}, 2);
  const graph::Weight delta = graph::max_finite_distance(g);
  record_critpath_counters(
      state, [&] { return core::pipelined_apsp(g, delta).stats; });
  for (auto _ : state) {
    auto res = core::pipelined_apsp(g, delta);
    benchmark::DoNotOptimize(res.dist.data());
    state.counters["simulated_rounds"] =
        static_cast<double>(res.stats.rounds);
    state.counters["messages"] = static_cast<double>(res.stats.total_messages);
  }
}
BENCHMARK(BM_PipelinedApsp)->Arg(24)->Arg(48);

void BM_KeyCompare(benchmark::State& state) {
  const core::GammaSq gamma{1234, 567};
  std::uint64_t acc = 0;
  std::int64_t d = 1;
  for (auto _ : state) {
    const core::Key a{d % 100000, static_cast<std::uint32_t>(d % 64)};
    const core::Key b{(d * 7) % 100000, static_cast<std::uint32_t>(d % 61)};
    acc += static_cast<std::uint64_t>(a.compare(b, gamma) + 1);
    ++d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_KeyCompare);

void BM_CeilMulSqrt(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint64_t d = 1;
  for (auto _ : state) {
    acc += util::ceil_mul_sqrt(d % 1000000, 12345, 678);
    ++d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CeilMulSqrt);

}  // namespace

// Custom main: one warm-up comparison table (per-phase wall-clock and
// per-round distribution quantiles, sparse vs dense) before the
// google-benchmark runs, so `bench_engine_micro` with no flags already shows
// where the time goes.
//
// Two extra flags (peeled off before google-benchmark parses argv, which
// rejects anything it does not recognise) export the warm-up runs through
// the engine trace sink -- CI uses them to publish a sample trace artifact:
//   --dapsp-trace=FILE        Chrome trace_event JSON of the warm-up runs
//   --dapsp-run-record=FILE   compact JSONL run record of the same runs
int main(int argc, char** argv) {
  std::string trace_file;
  std::string record_file;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--dapsp-trace=", 0) == 0) {
      trace_file = a.substr(std::string("--dapsp-trace=").size());
    } else if (a.rfind("--dapsp-run-record=", 0) == 0) {
      record_file = a.substr(std::string("--dapsp-run-record=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  dapsp::bench::banner(
      "ENGINE", "Simulator substrate microbenchmarks (active-set scheduler "
                "vs dense fallback; identical stats, different wall-clock).");
  {
    dapsp::obs::TraceRecorder recorder;
    const bool tracing = !trace_file.empty() || !record_file.empty();
    if (tracing) dapsp::congest::Engine::set_global_recorder(&recorder);
    const dapsp::graph::Graph g =
        dapsp::graph::path(2048, {1, 4, 0.0}, 11);
    auto sparse = dapsp::baseline::bf_sssp(g, 0);
    dapsp::congest::Engine::set_force_dense(true);
    auto dense = dapsp::baseline::bf_sssp(g, 0);
    dapsp::congest::Engine::set_force_dense(false);
    if (tracing) dapsp::congest::Engine::set_global_recorder(nullptr);
    dapsp::bench::print_phase_timing({
        {"path-sssp n=2048 sparse", sparse.stats},
        {"path-sssp n=2048 dense", dense.stats},
    });
    std::cout << '\n';
    dapsp::bench::print_round_histograms({
        {"path-sssp n=2048 sparse", sparse.stats},
        {"path-sssp n=2048 dense", dense.stats},
    });
    std::cout << '\n';
    if (!trace_file.empty()) {
      std::ofstream f(trace_file);
      if (!f) {
        std::cerr << "cannot open " << trace_file << '\n';
        return 1;
      }
      recorder.write_chrome_trace(f);
      std::cout << "wrote " << trace_file << '\n';
    }
    if (!record_file.empty()) {
      std::ofstream f(record_file);
      if (!f) {
        std::cerr << "cannot open " << record_file << '\n';
        return 1;
      }
      recorder.write_run_record(f);
      std::cout << "wrote " << record_file << '\n';
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
