#include "core/cssp.hpp"

#include <algorithm>
#include <optional>

#include "congest/engine.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using congest::Context;
using congest::Engine;
using congest::EngineOptions;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using congest::Round;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

namespace {

constexpr std::uint32_t kTagLabel = 30;    // {tree, d, l}
constexpr std::uint32_t kTagConfirm = 31;  // {tree}
constexpr std::uint32_t kTagChild = 32;    // {tree}

/// Post-processing of the 2h-hop run into verified h-hop trees.
///
/// Why verification is needed: a node's recorded (d, l, parent) triple
/// describes the path that delivered its best label, but the parent may have
/// improved afterwards to a cheaper path with more hops.  Such a parent's
/// final label no longer extends to this node's label, and the parent may
/// even fall outside the truncated tree, leaving a dangling pointer.  Nodes
/// whose true shortest path fits in h hops always have final-consistent
/// parent chains (a cheaper parent label would contradict exactness), so
/// verification never drops required members (Definition III.3).
///
/// Protocol, one engine:
///   rounds 1..k:          node broadcasts its final (d, l) label for tree
///                         r-1 (if finite); receivers remember their
///                         parent's labels.
///   round k+1+i + depth:  tree i's confirmation wave: the source emits
///                         CONFIRM(i); a node whose local parent-label check
///                         passed forwards it one round after hearing it
///                         from its candidate parent.
class TreeVerifyProtocol final : public Protocol {
 public:
  struct NodeData {
    // Final 2h-run labels and parents, per tree.
    std::vector<Weight> dist;
    std::vector<std::uint32_t> hops;
    std::vector<NodeId> parent;
  };

  TreeVerifyProtocol(const Graph& g, const std::vector<NodeId>& sources,
                     std::uint32_t h, NodeId self, NodeData data)
      : g_(g), sources_(sources), h_(h), self_(self), data_(std::move(data)) {
    const std::size_t k = sources.size();
    parent_label_d_.assign(k, kInfDist);
    parent_label_l_.assign(k, 0);
    confirmed_.assign(k, false);
    forward_.clear();
    for (std::size_t i = 0; i < k; ++i) {
      if (sources[i] == self) confirmed_[i] = true;
    }
  }

  void send_phase(Context& ctx) override {
    const Round r = ctx.round();
    last_round_ = r;
    const std::size_t k = sources_.size();
    if (r >= 1 && r <= k) {
      const std::size_t i = static_cast<std::size_t>(r) - 1;
      if (data_.dist[i] != kInfDist) {
        ctx.broadcast(Message(kTagLabel,
                              {static_cast<std::int64_t>(i), data_.dist[i],
                               static_cast<std::int64_t>(data_.hops[i])}));
      }
      return;
    }
    // Confirmation wave: source i emits at round k+1+i; relays forward what
    // arrived last round.
    if (r >= k + 1) {
      const std::size_t i = static_cast<std::size_t>(r - k - 1);
      if (i < k && sources_[i] == self_) {
        ctx.broadcast(Message(kTagConfirm, {static_cast<std::int64_t>(i)}));
      }
    }
    for (const std::int64_t t : forward_) {
      ctx.broadcast(Message(kTagConfirm, {t}));
    }
    forward_.clear();
  }

  void receive_phase(Context& ctx) override {
    const std::size_t k = sources_.size();
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag == kTagLabel) {
        const auto i = static_cast<std::size_t>(env.msg.f[0]);
        if (data_.parent[i] == env.from) {
          parent_label_d_[i] = env.msg.f[1];
          parent_label_l_[i] = static_cast<std::uint32_t>(env.msg.f[2]);
        }
      } else if (env.msg.tag == kTagConfirm) {
        const auto i = static_cast<std::size_t>(env.msg.f[0]);
        if (i >= k || confirmed_[i]) continue;
        if (data_.parent[i] != env.from) continue;
        if (!local_check(i)) continue;
        confirmed_[i] = true;
        forward_.push_back(env.msg.f[0]);
      }
    }
  }

  bool quiescent() const override {
    return forward_.empty() &&
           last_round_ >= 2 * sources_.size() + h_ + 2;
  }

  /// In-tree verdict after the run.
  bool in_tree(std::size_t i) const { return confirmed_[i]; }

 private:
  /// v's label for tree i must be within h hops and extend its parent's
  /// final label across the connecting arc.
  bool local_check(std::size_t i) const {
    if (data_.dist[i] == kInfDist || data_.hops[i] > h_) return false;
    const NodeId p = data_.parent[i];
    if (p == kNoNode) return false;
    if (parent_label_d_[i] == kInfDist) return false;
    const auto w = g_.arc_weight(p, self_);
    if (!w) return false;
    return parent_label_d_[i] + *w == data_.dist[i] &&
           parent_label_l_[i] + 1 == data_.hops[i];
  }

  const Graph& g_;
  const std::vector<NodeId>& sources_;
  std::uint32_t h_;
  NodeId self_;
  NodeData data_;
  std::vector<Weight> parent_label_d_;
  std::vector<std::uint32_t> parent_label_l_;
  std::vector<bool> confirmed_;
  std::vector<std::int64_t> forward_;
  Round last_round_ = 0;
};

/// Round-robin child notification: in round i+1 every node with a confirmed
/// parent in tree i tells that parent about the edge.
class ChildNotifyProtocol final : public Protocol {
 public:
  ChildNotifyProtocol(NodeId self, std::vector<NodeId> parent_per_tree)
      : self_(self), parent_(std::move(parent_per_tree)) {}

  void send_phase(Context& ctx) override {
    const Round r = ctx.round();
    last_round_ = r;
    if (r == 0 || r > parent_.size()) return;
    const std::size_t i = static_cast<std::size_t>(r) - 1;
    if (parent_[i] != kNoNode && parent_[i] != self_) {
      ctx.send(parent_[i], Message(kTagChild, {static_cast<std::int64_t>(i)}));
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagChild) continue;
      children_.emplace_back(static_cast<std::size_t>(env.msg.f[0]), env.from);
    }
  }

  bool quiescent() const override { return last_round_ >= parent_.size(); }

  const std::vector<std::pair<std::size_t, NodeId>>& children() const {
    return children_;
  }

 private:
  NodeId self_;
  std::vector<NodeId> parent_;
  std::vector<std::pair<std::size_t, NodeId>> children_;
  Round last_round_ = 0;
};

}  // namespace

CsspCollection build_cssp(const Graph& g, const std::vector<NodeId>& sources,
                          std::uint32_t h, Weight delta2h) {
  util::check(h >= 1, "build_cssp: need h >= 1");
  CsspCollection c;
  c.h = h;

  // Step 1: Algorithm 1 with hop bound 2h.
  PipelinedParams params;
  params.sources = sources;
  params.h = 2 * h;
  params.delta = delta2h;
  KsspResult run = pipelined_kssp(g, std::move(params));
  c.sources = run.sources;
  c.stats = run.stats;
  c.theoretical_bound = run.theoretical_bound;
  c.dist2h = std::move(run.dist);
  c.hops2h = std::move(run.hops);
  c.parent2h = run.parent;  // copied into per-node data below as well

  const std::size_t k = c.sources.size();
  const NodeId n = g.node_count();

  // Step 2: distributed verify-and-confirm of the truncated h-hop trees
  // (Lemma III.4 plus the stale-parent repair described above).
  {
    std::vector<std::unique_ptr<Protocol>> procs;
    procs.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      TreeVerifyProtocol::NodeData data;
      data.dist.resize(k);
      data.hops.resize(k);
      data.parent.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        data.dist[i] = c.dist2h[i][v];
        data.hops[i] = c.hops2h[i][v];
        data.parent[i] = run.parent[i][v];
      }
      procs.push_back(std::make_unique<TreeVerifyProtocol>(
          g, c.sources, h, v, std::move(data)));
    }
    EngineOptions opt;
    opt.max_rounds = 2 * k + h + 4;
    Engine engine(g, std::move(procs), opt);
    c.stats += engine.run();

    c.parent.assign(k, std::vector<NodeId>(n, kNoNode));
    c.depth.assign(k, std::vector<std::uint32_t>(n, 0));
    c.dist.assign(k, std::vector<Weight>(n, kInfDist));
    for (NodeId v = 0; v < n; ++v) {
      const auto& p = static_cast<const TreeVerifyProtocol&>(engine.protocol(v));
      for (std::size_t i = 0; i < k; ++i) {
        if (!p.in_tree(i)) continue;
        c.parent[i][v] = v == c.sources[i] ? kNoNode : run.parent[i][v];
        c.depth[i][v] = v == c.sources[i] ? 0 : c.hops2h[i][v];
        c.dist[i][v] = v == c.sources[i] ? 0 : c.dist2h[i][v];
      }
    }
  }

  // Step 3: child notification (k rounds, one message per node per round).
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> parents(k, kNoNode);
    for (std::size_t i = 0; i < k; ++i) parents[i] = c.parent[i][v];
    procs.push_back(std::make_unique<ChildNotifyProtocol>(v, std::move(parents)));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(k) + 2;
  Engine engine(g, std::move(procs), opt);
  c.stats += engine.run();

  c.children.assign(k, std::vector<std::vector<NodeId>>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const ChildNotifyProtocol&>(engine.protocol(v));
    for (const auto& [tree, child] : p.children()) {
      c.children[tree][v].push_back(child);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      std::sort(c.children[i][v].begin(), c.children[i][v].end());
    }
  }
  return c;
}

}  // namespace dapsp::core
