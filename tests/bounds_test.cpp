// Tests for the closed-form round-bound helpers (the "paper column" of the
// bench tables).
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"

namespace dapsp::core::bounds {
namespace {

TEST(Bounds, HkSspMatchesClosedForm) {
  // 2*sqrt(h*k*Delta) + h + k (+slack).
  EXPECT_EQ(hk_ssp(4, 9, 16), 2u * 24 + 4 + 9 + 2);
  EXPECT_EQ(hk_ssp(1, 1, 1), 2u + 1 + 1 + 2);
  EXPECT_EQ(hk_ssp(5, 5, 0), 5u + 5 + 2);  // delta = 0 degenerates
}

TEST(Bounds, ApspSpecializesHkSsp) {
  EXPECT_EQ(apsp_pipelined(10, 25), hk_ssp(10, 10, 25));
  EXPECT_EQ(k_ssp_pipelined(10, 3, 25), hk_ssp(10, 3, 25));
}

TEST(Bounds, ApspGrowsLikeNSqrtDelta) {
  // Theorem I.1(ii) shape: doubling Delta multiplies the leading term by
  // sqrt(2); doubling n doubles it.
  const double r1 = static_cast<double>(apsp_pipelined(100, 64));
  const double r2 = static_cast<double>(apsp_pipelined(100, 256));
  EXPECT_NEAR(r2 / r1, 2.0, 0.3);  // sqrt(4x) = 2x
  const double r3 = static_cast<double>(apsp_pipelined(200, 64));
  EXPECT_NEAR(r3 / r1, 2.0, 0.3);
}

TEST(Bounds, CustomGammaReducesToPaperBound) {
  const GammaSq paper = GammaSq::paper(9, 4, 16);
  const std::uint64_t custom = hk_ssp_custom_gamma(4, 9, 16, paper);
  const std::uint64_t direct = hk_ssp(4, 9, 16);
  // Same leading structure; ceilings may differ by a couple of rounds.
  EXPECT_NEAR(static_cast<double>(custom), static_cast<double>(direct), 4.0);
}

TEST(Bounds, ShortRange) {
  EXPECT_EQ(short_range_congestion(16), 5u);  // sqrt(16)+1
  EXPECT_EQ(short_range_congestion(17), 6u);  // ceil(sqrt)+1
  EXPECT_EQ(short_range_dilation(4, 9), 6u + 4 + 2);
}

TEST(Bounds, BlockerSetSizeShrinksWithH) {
  const std::uint64_t q1 = blocker_set_size(128, 4);
  const std::uint64_t q2 = blocker_set_size(128, 16);
  EXPECT_GT(q1, q2);
  EXPECT_GE(q1, 128u / 4);  // at least the cover term
}

TEST(Bounds, DescendantUpdate) {
  EXPECT_EQ(descendant_update(10, 5), 14u);
}

TEST(Bounds, ChooseHForWeightBalances) {
  // Larger W pushes h down (Theorem I.2 tradeoff).
  const std::uint64_t h1 = choose_h_for_weight(256, 256, 1);
  const std::uint64_t h16 = choose_h_for_weight(256, 256, 16);
  const std::uint64_t h256 = choose_h_for_weight(256, 256, 256);
  EXPECT_GE(h1, h16);
  EXPECT_GE(h16, h256);
  EXPECT_GE(h256, 1u);
  EXPECT_LT(h1, 256u);
}

TEST(Bounds, ChooseHForDeltaBalances) {
  const std::uint64_t ha = choose_h_for_delta(256, 256, 16);
  const std::uint64_t hb = choose_h_for_delta(256, 256, 4096);
  EXPECT_GE(ha, hb);
  EXPECT_GE(hb, 1u);
}

TEST(Bounds, AgarwalComparisonRow) {
  // n^{3/2} * sqrt(log n): sanity for the Table-I comparison column.
  EXPECT_GT(agarwal_n32(256), 256u * 16);
  EXPECT_LT(agarwal_n32(256), 256u * 16 * 8);
}

TEST(Bounds, ApproxShrinksWithEps) {
  EXPECT_GT(approx_apsp(64, 0.25), approx_apsp(64, 0.5));
  EXPECT_GT(approx_apsp(64, 0.5), approx_apsp(64, 1.0));
}

TEST(Bounds, LogHelpers) {
  EXPECT_EQ(ceil_log2(1), 1u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_EQ(ceil_ln(2), 1u);
  EXPECT_EQ(ceil_ln(100), 5u);
}

TEST(Bounds, CorollaryI4Crossover) {
  // Corollary I.4(i): with W = n^{1-e}, the Theorem-I.2 bound
  // O(W^{1/4} n^{5/4} log^{1/2} n) undercuts the n^{3/2} log^{1/2} n bound
  // of [3] for every e > 0.  Spot-check the formulas' ordering.
  const std::uint64_t n = 4096;
  for (double e : {0.25, 0.5, 1.0}) {
    const auto w = static_cast<std::uint64_t>(
        std::pow(static_cast<double>(n), 1.0 - e));
    const double ours = std::pow(static_cast<double>(std::max<std::uint64_t>(w, 1)), 0.25) *
                        std::pow(static_cast<double>(n), 1.25) *
                        std::sqrt(static_cast<double>(ceil_log2(n)));
    EXPECT_LT(ours, static_cast<double>(agarwal_n32(n)) * 1.01)
        << "epsilon " << e;
  }
}

}  // namespace
}  // namespace dapsp::core::bounds
