#include "congest/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dapsp::congest {

using graph::Graph;
using graph::NodeId;

namespace {

/// The engine's concrete Context: writes straight into the link buffers.
class EngineContext final : public Context {
 public:
  EngineContext(Engine& e, graph::NodeId self, Round round,
                std::span<const Envelope> inbox, bool may_send)
      : Context(self, round, inbox, may_send), engine_(e) {}

  graph::NodeId node_count() const noexcept override {
    return engine_.graph().node_count();
  }

  std::span<const graph::NodeId> neighbors() const noexcept override {
    return engine_.graph().comm_neighbors(self_);
  }

  void send(graph::NodeId to, const Message& m) override {
    if (!may_send_) {
      throw std::logic_error("Context::send: sending in receive_phase");
    }
    engine_.enqueue(self_, engine_.link_slot(self_, to), m);
  }

  void broadcast(const Message& m) override {
    if (!may_send_) {
      throw std::logic_error("Context::broadcast: sending in receive_phase");
    }
    const auto deg = engine_.graph().comm_degree(self_);
    const std::size_t base = engine_.link_base(self_);
    for (std::size_t j = 0; j < deg; ++j) engine_.enqueue(self_, base + j, m);
  }

 private:
  Engine& engine_;
};

}  // namespace

void Engine::enqueue(graph::NodeId from, std::size_t slot, const Message& m) {
  if (link_out_[slot].empty()) touched_[from].push_back(slot);
  link_out_[slot].push_back(m);
}

Engine::Engine(const Graph& g, std::vector<std::unique_ptr<Protocol>> protocols,
               EngineOptions options)
    : graph_(g), protocols_(std::move(protocols)), options_(options) {
  util::check(protocols_.size() == g.node_count(),
              "Engine: need one protocol per node");
  const NodeId n = g.node_count();

  link_base_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    link_base_[v + 1] = link_base_[v] + g.comm_degree(v);
  }
  link_out_.resize(link_base_[n]);
  link_lifetime_count_.assign(link_base_[n], 0);
  touched_.resize(n);
  inbox_.resize(n);

  in_links_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.comm_neighbors(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      in_links_[nbrs[j]].push_back({u, link_base_[u] + j});
    }
  }
  // comm_neighbors is sorted, so in_links_ per receiver is already
  // sender-ascending (u iterates ascending); no extra sort needed.
}

Engine::~Engine() = default;

util::ThreadPool& Engine::pool() {
  if (options_.threads > 0) {
    if (!own_pool_) own_pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    return *own_pool_;
  }
  return util::ThreadPool::global();
}

std::size_t Engine::link_slot(NodeId from, NodeId to) const {
  const auto nbrs = graph_.comm_neighbors(from);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) {
    throw std::logic_error("Context::send: target is not a neighbor");
  }
  return link_base_[from] + static_cast<std::size_t>(it - nbrs.begin());
}

void Engine::run_init_round() {
  auto& p = pool();
  const NodeId n = graph_.node_count();
  p.parallel_for(n, [&](std::size_t v) {
    EngineContext ctx(*this, static_cast<NodeId>(v), 0, {}, /*may_send=*/true);
    protocols_[v]->init(ctx);
  });
  deliver();
  p.parallel_for(n, [&](std::size_t v) {
    EngineContext ctx(*this, static_cast<NodeId>(v), 0, inbox_[v],
                      /*may_send=*/false);
    protocols_[v]->receive_phase(ctx);
  });
  init_done_ = true;
}

void Engine::deliver() {
  // Congestion + message accounting over touched links (single-threaded:
  // the per-round touched set is small relative to node work).
  round_messages_ = 0;
  std::uint64_t max_cong = 0;
  for (NodeId sender = 0; sender < graph_.node_count(); ++sender) {
    for (const std::size_t slot : touched_[sender]) {
      const auto c = static_cast<std::uint64_t>(link_out_[slot].size());
      round_messages_ += c;
      max_cong = std::max(max_cong, c);
      link_lifetime_count_[slot] += c;
      stats_.max_link_total =
          std::max(stats_.max_link_total, link_lifetime_count_[slot]);
      for (const Message& m : link_out_[slot]) {
        stats_.max_message_fields = std::max(stats_.max_message_fields, m.used);
        if (options_.trace != nullptr) {
          const NodeId to =
              graph_.comm_neighbors(sender)[slot - link_base_[sender]];
          options_.trace->on_message(round_, sender, to, m);
        }
      }
    }
  }
  if (round_messages_ > 0) {
    stats_.total_messages += round_messages_;
    stats_.last_message_round = round_;
    if (max_cong > stats_.max_link_congestion) {
      stats_.max_link_congestion = max_cong;
      stats_.max_congestion_round = round_;
    }
  }
  if (options_.record_per_round) {
    stats_.per_round_messages.push_back(round_messages_);
  }

  // Gather per receiver, in (sender, send order) order -- or, when
  // scrambling, in a deterministic per-(receiver, round) permutation.
  const NodeId n = graph_.node_count();
  pool().parallel_for(n, [&](std::size_t v) {
    auto& in = inbox_[v];
    in.clear();
    for (const auto& [from, slot] : in_links_[v]) {
      for (const Message& m : link_out_[slot]) in.push_back({from, m});
    }
    if (options_.scramble_inbox && in.size() > 1) {
      util::Xoshiro256 rng(options_.scramble_seed ^ (v * 0x9e3779b9ULL) ^
                           (round_ << 20));
      for (std::size_t i = in.size(); i > 1; --i) {
        std::swap(in[i - 1], in[rng.below(i)]);
      }
    }
  });

  // Retire outboxes.
  for (auto& t : touched_) {
    for (const std::size_t slot : t) link_out_[slot].clear();
    t.clear();
  }
}

std::uint64_t Engine::step() {
  if (!init_done_) {
    run_init_round();
    return round_messages_;
  }
  ++round_;
  stats_.rounds = round_;

  auto& p = pool();
  const NodeId n = graph_.node_count();
  p.parallel_for(n, [&](std::size_t v) {
    EngineContext ctx(*this, static_cast<NodeId>(v), round_, {},
                      /*may_send=*/true);
    protocols_[v]->send_phase(ctx);
  });
  deliver();
  p.parallel_for(n, [&](std::size_t v) {
    EngineContext ctx(*this, static_cast<NodeId>(v), round_, inbox_[v],
                      /*may_send=*/false);
    protocols_[v]->receive_phase(ctx);
  });
  return round_messages_;
}

RunStats Engine::run() {
  if (!init_done_) run_init_round();

  while (round_ < options_.max_rounds) {
    const std::uint64_t sent = step();
    if (options_.stop_on_quiescence && sent == 0) {
      const bool all_quiet = std::all_of(
          protocols_.begin(), protocols_.end(),
          [](const auto& p) { return p->quiescent(); });
      if (all_quiet) return stats_;
    }
  }
  // Ran out of budget: only a failure if someone still wanted to talk.
  const bool all_quiet =
      round_messages_ == 0 &&
      std::all_of(protocols_.begin(), protocols_.end(),
                  [](const auto& p) { return p->quiescent(); });
  stats_.hit_round_limit = !all_quiet;
  return stats_;
}

}  // namespace dapsp::congest
