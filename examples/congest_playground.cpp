// Writing your own CONGEST protocol on the simulator substrate.
//
// This example implements a classic exercise from scratch -- leader election
// by min-id flooding followed by an echo (convergecast) that tells the
// leader when the flood has terminated -- and prints the round/message
// accounting the engine collects.  Use it as a template for new protocols.
//
//   ./congest_playground [n] [seed]
#include <cstdlib>
#include <iostream>

#include "congest/engine.hpp"
#include "graph/generators.hpp"

namespace {

using namespace dapsp;
using congest::Context;
using congest::Envelope;
using congest::Message;
using graph::NodeId;

constexpr std::uint32_t kTagMinId = 1;  // {candidate}
constexpr std::uint32_t kTagEcho = 2;   // {leader}

/// Every node floods the smallest id it has heard; once a node's view is
/// stable and all children of the (implicit) flood tree echoed, the echo
/// climbs back to the leader.
class LeaderElection final : public congest::Protocol {
 public:
  explicit LeaderElection(NodeId self) : self_(self), best_(self) {}

  void init(Context& ctx) override {
    ctx.broadcast(Message(kTagMinId, {best_}));
  }

  void send_phase(Context& ctx) override {
    if (improved_) {
      improved_ = false;
      ctx.broadcast(Message(kTagMinId, {best_}));
    }
  }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag == kTagMinId && env.msg.f[0] < best_) {
        best_ = env.msg.f[0];
        improved_ = true;
      }
    }
  }

  bool quiescent() const override { return !improved_; }

  NodeId leader() const { return static_cast<NodeId>(best_); }

 private:
  NodeId self_;
  std::int64_t best_;
  bool improved_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 32;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 5;

  const graph::Graph g = graph::barabasi_albert(n, 2, {1, 1, 0.0}, seed);

  std::vector<std::unique_ptr<congest::Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<LeaderElection>(v));
  }
  congest::EngineOptions opt;
  opt.record_per_round = true;
  congest::Engine engine(g, std::move(procs), opt);
  const congest::RunStats stats = engine.run();

  std::cout << "leader election on a scale-free network (n=" << n << ")\n";
  std::cout << "  elected leader: "
            << static_cast<const LeaderElection&>(engine.protocol(n - 1))
                   .leader()
            << " (expected 0)\n";
  std::cout << "  " << stats.summary() << "\n";
  std::cout << "  per-round message wave:";
  for (const auto m : stats.per_round_messages) std::cout << ' ' << m;
  std::cout << "\n\nAll nodes agree: ";
  bool agree = true;
  for (NodeId v = 0; v < n; ++v) {
    agree = agree &&
            static_cast<const LeaderElection&>(engine.protocol(v)).leader() ==
                0;
  }
  std::cout << (agree ? "yes" : "NO") << "\n";
  return 0;
}
