file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma215_short_range.dir/bench_lemma215_short_range.cpp.o"
  "CMakeFiles/bench_lemma215_short_range.dir/bench_lemma215_short_range.cpp.o.d"
  "bench_lemma215_short_range"
  "bench_lemma215_short_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma215_short_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
