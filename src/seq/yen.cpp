#include "seq/yen.hpp"

#include <algorithm>
#include <set>

#include "seq/constrained.hpp"

namespace dapsp::seq {

using graph::Graph;
using graph::NodeId;
using graph::Weight;
using query::Route;
using query::RouteConstraints;

namespace {

struct RouteLess {
  bool operator()(const Route& a, const Route& b) const {
    return query::route_less(a, b);
  }
};

}  // namespace

std::vector<Route> k_shortest_paths(const Graph& g, NodeId source,
                                    NodeId target, std::uint32_t k) {
  std::vector<Route> paths;
  if (k == 0) return paths;
  auto first = constrained_route(g, source, target, RouteConstraints{});
  if (!first) return paths;
  paths.push_back(std::move(*first));

  // Candidate pool ordered by the shared route total order; `seen` dedupes
  // by node sequence so a path discovered from two spur nodes enters once.
  std::set<Route, RouteLess> candidates;
  std::set<std::vector<NodeId>> seen;
  seen.insert(paths.back().nodes);

  while (paths.size() < k) {
    const Route last = paths.back();
    Weight prefix_weight = 0;
    for (std::size_t i = 0; i + 1 < last.nodes.size(); ++i) {
      const NodeId spur = last.nodes[i];
      RouteConstraints c;
      // The root (everything before the spur node) must not be revisited,
      // and the spur edges of every accepted path sharing this root are
      // banned so the spur path deviates.
      c.avoid_nodes.assign(last.nodes.begin(),
                           last.nodes.begin() + static_cast<std::ptrdiff_t>(i));
      for (const Route& p : paths) {
        if (p.nodes.size() <= i + 1) continue;
        if (!std::equal(p.nodes.begin(),
                        p.nodes.begin() + static_cast<std::ptrdiff_t>(i + 1),
                        last.nodes.begin())) {
          continue;
        }
        c.avoid_edges.emplace_back(p.nodes[i], p.nodes[i + 1]);
      }
      if (auto spur_route = constrained_route(g, spur, target, c)) {
        Route cand;
        cand.nodes.assign(
            last.nodes.begin(),
            last.nodes.begin() + static_cast<std::ptrdiff_t>(i));
        cand.nodes.insert(cand.nodes.end(), spur_route->nodes.begin(),
                          spur_route->nodes.end());
        cand.weight = prefix_weight + spur_route->weight;
        if (seen.insert(cand.nodes).second) candidates.insert(std::move(cand));
      }
      prefix_weight += *g.arc_weight(last.nodes[i], last.nodes[i + 1]);
    }
    if (candidates.empty()) break;
    paths.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return paths;
}

}  // namespace dapsp::seq
