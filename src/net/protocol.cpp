#include "net/protocol.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "net/socket.hpp"

namespace dapsp::net {

using congest::BlockReader;
using congest::block_patch_u32;
using congest::block_put_u32;
using congest::block_put_u64;
using graph::NodeId;

const char* frame_type_name(FrameType t) noexcept {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kJob: return "JOB";
    case FrameType::kRunBegin: return "RUN_BEGIN";
    case FrameType::kRound: return "ROUND";
    case FrameType::kDeliver: return "DELIVER";
    case FrameType::kRunEnd: return "RUN_END";
    case FrameType::kResultMeta: return "RESULT_META";
    case FrameType::kResultRows: return "RESULT_ROWS";
    case FrameType::kDone: return "DONE";
    case FrameType::kBye: return "BYE";
    case FrameType::kAbort: return "ABORT";
  }
  return "?";
}

void write_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    throw SocketError("frame too large: " + std::to_string(payload.size()) +
                      " bytes of " + frame_type_name(type));
  }
  std::string buf;
  buf.reserve(5 + payload.size());
  block_put_u32(buf, static_cast<std::uint32_t>(payload.size() + 1));
  buf.push_back(static_cast<char>(type));
  buf.append(payload);
  write_full(fd, buf.data(), buf.size());
}

std::optional<Frame> read_frame(int fd, int timeout_ms) {
  std::array<unsigned char, 4> len_bytes;
  if (!read_full(fd, len_bytes.data(), len_bytes.size(), timeout_ms)) {
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{len_bytes[std::size_t(i)]} << (8 * i);
  if (len == 0 || len > kMaxFrameBytes) {
    throw SocketError("bad frame length: " + std::to_string(len));
  }
  std::string body(len, '\0');
  if (!read_full(fd, body.data(), body.size(), timeout_ms)) {
    throw SocketClosed("socket read: peer closed mid-frame");
  }
  const auto type_byte = static_cast<std::uint8_t>(body[0]);
  if (type_byte < static_cast<std::uint8_t>(FrameType::kHello) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kAbort)) {
    throw SocketError("unknown frame type byte: " + std::to_string(type_byte));
  }
  Frame f;
  f.type = static_cast<FrameType>(type_byte);
  f.payload = body.substr(1);
  return f;
}

ShardRange shard_range(NodeId n, std::uint32_t rank,
                       std::uint32_t workers) noexcept {
  const std::uint64_t lo = std::uint64_t{n} * rank / workers;
  const std::uint64_t hi = std::uint64_t{n} * (rank + 1) / workers;
  return {static_cast<NodeId>(lo), static_cast<NodeId>(hi)};
}

namespace {
[[noreturn]] void bad_block(const char* what) {
  throw std::runtime_error(std::string("malformed canonical block: ") + what);
}
}  // namespace

void slice_owned(std::string_view block, NodeId lo, NodeId hi,
                 std::string& out) {
  out.clear();
  block_put_u32(out, 0);  // owned count, patched at the end
  BlockReader r(block);
  const std::uint32_t total = r.u32();
  std::uint32_t owned = 0;
  for (std::uint32_t s = 0; s < total && r.ok(); ++s) {
    const std::uint32_t id = r.u32();
    const std::uint32_t groups = r.u32();
    const std::uint32_t body_len = r.u32();
    if (!r.ok()) break;
    const std::string_view body = r.bytes(body_len);
    if (!r.ok()) break;
    if (id >= lo && id < hi) {
      ++owned;
      block_put_u32(out, id);
      block_put_u32(out, groups);
      block_put_u32(out, body_len);
      out.append(body);
    }
  }
  if (!r.ok() || !r.done()) bad_block("slice_owned walk failed");
  block_patch_u32(out, 0, owned);
}

std::uint64_t block_message_bytes(std::string_view block) {
  BlockReader r(block);
  std::uint64_t bytes = 0;
  const std::uint32_t senders = r.u32();
  for (std::uint32_t s = 0; s < senders && r.ok(); ++s) {
    r.u32();  // sender id
    const std::uint32_t groups = r.u32();
    r.u32();  // byte_len
    for (std::uint32_t g = 0; g < groups && r.ok(); ++g) {
      r.u32();  // link slot
      const std::uint32_t cnt = r.u32();
      for (std::uint32_t j = 0; j < cnt && r.ok(); ++j) {
        r.u32();  // tag
        const std::uint32_t used = r.u32();
        if (used > congest::Message::kMaxFields) bad_block("field count");
        r.skip(std::size_t{used} * 8);
        bytes += 8 + 8 * std::uint64_t{used};
      }
    }
  }
  if (!r.ok() || !r.done()) bad_block("message-bytes walk failed");
  return bytes;
}

namespace {

void append_histogram(std::string& out, const obs::Histogram& h) {
  for (const std::uint64_t b : h.buckets()) block_put_u64(out, b);
  block_put_u64(out, h.count());
  block_put_u64(out, h.sum());
  block_put_u64(out, h.min());
  block_put_u64(out, h.max());
}

obs::Histogram parse_histogram(BlockReader& r) {
  std::array<std::uint64_t, obs::Histogram::kBuckets> buckets;
  for (auto& b : buckets) b = r.u64();
  const std::uint64_t count = r.u64();
  const std::uint64_t sum = r.u64();
  const std::uint64_t min = r.u64();
  const std::uint64_t max = r.u64();
  return obs::Histogram::from_raw(buckets, count, sum, min, max);
}

}  // namespace

void append_run_stats(std::string& out, const congest::RunStats& s) {
  block_put_u64(out, s.rounds);
  block_put_u64(out, s.last_message_round);
  block_put_u64(out, s.total_messages);
  block_put_u64(out, s.max_link_congestion);
  block_put_u64(out, s.max_congestion_round);
  block_put_u64(out, s.max_link_total);
  block_put_u32(out, s.max_message_fields);
  block_put_u64(out, s.message_bytes);
  out.push_back(s.hit_round_limit ? '\x01' : '\x00');
  block_put_u64(out, s.skipped_rounds);
  block_put_u64(out, s.faults.dropped);
  block_put_u64(out, s.faults.duplicated);
  block_put_u64(out, s.faults.delayed);
  block_put_u64(out, s.faults.deferred);
  block_put_u64(out, s.faults.crash_dropped);
  block_put_u64(out, s.faults.delivered);
  block_put_u64(out, s.faults.max_backlog);
  append_histogram(out, s.round_messages_hist);
}

congest::RunStats parse_run_stats(BlockReader& r) {
  congest::RunStats s;
  s.rounds = r.u64();
  s.last_message_round = r.u64();
  s.total_messages = r.u64();
  s.max_link_congestion = r.u64();
  s.max_congestion_round = r.u64();
  s.max_link_total = r.u64();
  s.max_message_fields = r.u32();
  s.message_bytes = r.u64();
  const std::string_view flag = r.bytes(1);
  s.hit_round_limit = !flag.empty() && flag[0] != '\0';
  s.skipped_rounds = r.u64();
  s.faults.dropped = r.u64();
  s.faults.duplicated = r.u64();
  s.faults.delayed = r.u64();
  s.faults.deferred = r.u64();
  s.faults.crash_dropped = r.u64();
  s.faults.delivered = r.u64();
  s.faults.max_backlog = r.u64();
  s.round_messages_hist = parse_histogram(r);
  if (!r.ok()) throw std::runtime_error("parse_run_stats: truncated blob");
  return s;
}

void append_string(std::string& out, std::string_view s) {
  block_put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::string read_string(BlockReader& r) {
  const std::uint32_t len = r.u32();
  return std::string(r.bytes(len));
}

void encode_job(std::string& out, const JobSpec& job) {
  out.clear();
  block_put_u32(out, job.rank);
  block_put_u32(out, job.workers);
  block_put_u32(out, job.solver);
  block_put_u32(out, job.h);
  block_put_u64(out, std::bit_cast<std::uint64_t>(job.eps));
  out.push_back(job.dense ? '\x01' : '\x00');
  block_put_u32(out, job.engine_threads);
  block_put_u32(out, job.timeout_ms);
  block_put_u64(out, job.crash_at);
  append_string(out, job.graph_text);
}

JobSpec decode_job(std::string_view payload) {
  BlockReader r(payload);
  JobSpec job;
  job.rank = r.u32();
  job.workers = r.u32();
  job.solver = r.u32();
  job.h = r.u32();
  job.eps = std::bit_cast<double>(r.u64());
  const std::string_view dense = r.bytes(1);
  job.dense = !dense.empty() && dense[0] != '\0';
  job.engine_threads = r.u32();
  job.timeout_ms = r.u32();
  job.crash_at = r.u64();
  job.graph_text = read_string(r);
  if (!r.ok() || !r.done()) {
    throw std::runtime_error("decode_job: malformed JOB payload");
  }
  return job;
}

}  // namespace dapsp::net
