#include "core/key.hpp"

namespace dapsp::core {

int list_order(const Key& a, NodeId xa, const Key& b, NodeId xb,
               const GammaSq& g) {
  if (const int c = a.compare(b, g); c != 0) return c;
  if (a.d != b.d) return a.d < b.d ? -1 : 1;
  if (xa != xb) return xa < xb ? -1 : 1;
  return 0;
}

int list_order(const Key& a, NodeId xa, const Key& b, NodeId xb,
               const KappaKernel& kernel) {
  if (const int c = kernel.compare(a, b); c != 0) return c;
  if (a.d != b.d) return a.d < b.d ? -1 : 1;
  if (xa != xb) return xa < xb ? -1 : 1;
  return 0;
}

void KappaKernel::ceil_kappa_span(std::span<const Key> keys,
                                  std::span<std::uint64_t> out) const {
  util::check(keys.size() == out.size(),
              "KappaKernel::ceil_kappa_span: size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) out[i] = ceil_kappa(keys[i]);
}

void KappaKernel::compare_span(const Key& probe, std::span<const Key> keys,
                               std::span<int> out) const {
  util::check(keys.size() == out.size(),
              "KappaKernel::compare_span: size mismatch");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out[i] = compare(keys[i], probe);
  }
}

}  // namespace dapsp::core
