// Robust blocking-socket plumbing for the multi-process backend.
//
// Everything here is deliberately boring POSIX: local stream sockets
// (Unix-domain by default, 127.0.0.1 TCP on request), full-length reads and
// writes that survive partial transfers and EINTR, poll()-based deadlines,
// and connect retry with exponential backoff so a worker can dial the
// coordinator's listener before it finishes accepting the previous peer.
// EPIPE/ECONNRESET surface as SocketClosed (the peer process died -- the
// coordinator turns that into a partition error naming the shard), never as
// SIGPIPE (callers must install ignore_sigpipe() once per process).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dapsp::net {

/// Transport-level failure (syscall error, malformed endpoint, oversize
/// frame).  The two subclasses below distinguish the cases the coordinator
/// words differently; everything else is a plain SocketError.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A deadline expired while waiting for the peer.
class SocketTimeout final : public SocketError {
 public:
  using SocketError::SocketError;
};

/// The peer hung up: EOF mid-object, EPIPE/ECONNRESET on write.
class SocketClosed final : public SocketError {
 public:
  using SocketError::SocketError;
};

/// A local rendezvous address: "unix:<path>" or "tcp:<ipv4>:<port>".
/// TCP hosts are numeric IPv4 only -- the backend never leaves loopback, so
/// there is nothing to resolve.
struct Endpoint {
  bool is_unix = true;
  std::string path;             ///< unix socket path
  std::string host = "127.0.0.1";  ///< tcp numeric address
  std::uint16_t port = 0;          ///< tcp port; 0 = kernel-assigned

  /// Parses a spec string; throws SocketError on malformed input.
  static Endpoint parse(std::string_view spec);
  /// The canonical spec string ("unix:/tmp/x" / "tcp:127.0.0.1:4242").
  std::string spec() const;
};

/// Owning fd wrapper; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Bound, listening rendezvous socket.  Unix paths are unlinked on both
/// bind (stale socket files from a crashed prior run) and destruction; a
/// TCP endpoint with port 0 reports the kernel-assigned port via bound().
class Listener {
 public:
  explicit Listener(const Endpoint& ep);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const Endpoint& bound() const noexcept { return bound_; }

  /// Accepts one connection; throws SocketTimeout after `timeout_ms`.
  Socket accept_within(int timeout_ms);

 private:
  Socket fd_;
  Endpoint bound_;
};

/// Dials `ep`, retrying refused/not-yet-bound connects with exponential
/// backoff (1 ms doubling to 100 ms) until `timeout_ms` elapses.
Socket connect_with_retry(const Endpoint& ep, int timeout_ms);

/// Writes all `len` bytes, looping over partial writes and EINTR.  Throws
/// SocketClosed when the peer is gone (EPIPE/ECONNRESET), SocketError on
/// any other failure.  Blocking fd; no deadline -- local-socket writes only
/// stall when the peer stops draining, which the read deadlines catch.
void write_full(int fd, const void* data, std::size_t len);

/// Reads exactly `len` bytes with a poll() deadline per chunk.  Returns
/// false on a clean EOF before the first byte (orderly peer shutdown);
/// throws SocketClosed on EOF mid-object, SocketTimeout on deadline,
/// SocketError otherwise.
bool read_full(int fd, void* data, std::size_t len, int timeout_ms);

/// Process-wide SIGPIPE suppression (idempotent).  Call once before any
/// socket writes; broken pipes then surface as EPIPE -> SocketClosed.
void ignore_sigpipe() noexcept;

}  // namespace dapsp::net
