#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "seq/dijkstra.hpp"
#include "seq/hop_limited.hpp"

namespace dapsp::graph {

Weight max_finite_distance(const Graph& g) {
  Weight best = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto r = seq::dijkstra(g, s);
    for (const Weight d : r.dist) {
      if (d != kInfDist) best = std::max(best, d);
    }
  }
  return best;
}

Weight max_finite_hop_distance(const Graph& g, std::uint32_t h) {
  Weight best = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto r = seq::hop_limited_sssp(g, s, h);
    for (const Weight d : r.dist) {
      if (d != kInfDist) best = std::max(best, d);
    }
  }
  return best;
}

bool strongly_connected(const Graph& g) {
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto r = seq::dijkstra(g, s);
    for (const Weight d : r.dist) {
      if (d == kInfDist) return false;
    }
  }
  return true;
}

namespace {

/// BFS eccentricities over the communication graph.
std::vector<Weight> comm_bfs(const Graph& g, NodeId source) {
  std::vector<Weight> dist(g.node_count(), kInfDist);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : g.comm_neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

}  // namespace

Weight comm_diameter(const Graph& g) {
  Weight best = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (const Weight d : comm_bfs(g, s)) {
      if (d == kInfDist) return kInfDist;
      best = std::max(best, d);
    }
  }
  return best;
}

bool comm_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = comm_bfs(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](Weight d) { return d == kInfDist; });
}

}  // namespace dapsp::graph
