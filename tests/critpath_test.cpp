// Tests for the critical-path profiler (obs/critpath.*): deterministic
// chain extraction across schedulers and thread counts, graceful ring
// truncation, wall-clock attribution bounds, the same-round mutual-wake
// regression, and exporter JSON validity.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "baseline/bf_apsp.hpp"
#include "congest/engine.hpp"
#include "core/pipelined_ssp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dapsp::obs {
namespace {

using congest::Engine;

/// Restores every process-wide engine override on scope exit.
struct EngineOverrideGuard {
  ~EngineOverrideGuard() {
    Engine::set_global_recorder(nullptr);
    Engine::set_force_dense(false);
    Engine::set_force_threads(Engine::kNoThreadOverride);
  }
};

/// Runs `run` under a fresh work-item recorder and analyzes it.
template <typename Run>
CritPathReport profiled(Run&& run,
                        std::size_t item_capacity = std::size_t{1} << 20) {
  TraceRecorder::Options opt;
  opt.work_item_capacity = item_capacity;
  TraceRecorder rec(opt);
  Engine::set_global_recorder(&rec);
  run();
  Engine::set_global_recorder(nullptr);
  return analyze_critical_path(rec);
}

/// The deterministic projection of a chain: everything except the measured
/// nanosecond fields, which legitimately vary run to run.
using DetStep = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                           std::uint32_t, std::uint64_t, bool, std::uint32_t>;

std::vector<DetStep> det_chain(const CritPathReport& rep) {
  std::vector<DetStep> out;
  for (const RunCritPath& run : rep.runs) {
    for (const ChainStep& s : run.chain) {
      out.emplace_back(s.round, s.node, s.msgs_in, s.msgs_out, s.cost,
                       s.via_wake, s.wake_from);
    }
  }
  return out;
}

/// Structural invariants every extracted chain must satisfy.
void expect_well_formed(const CritPathReport& rep) {
  for (const RunCritPath& run : rep.runs) {
    ASSERT_FALSE(run.chain.empty());
    EXPECT_FALSE(run.chain.front().via_wake);
    for (std::size_t i = 0; i < run.chain.size(); ++i) {
      const ChainStep& s = run.chain[i];
      EXPECT_EQ(s.cost, 1u + s.msgs_in + s.msgs_out);
      if (i > 0) {
        const ChainStep& p = run.chain[i - 1];
        EXPECT_GE(s.round, p.round);  // oldest first, rounds nondecreasing
        if (s.via_wake) {
          // A wake edge names the sender: the previous chain step.
          EXPECT_EQ(s.wake_from, p.node);
        } else {
          // A prev edge stays on one node and strictly advances the round.
          EXPECT_EQ(s.node, p.node);
          EXPECT_GT(s.round, p.round);
        }
      }
    }
    EXPECT_EQ(run.compute_ns + run.deliver_ns + run.wait_ns, run.total_ns);
  }
}

TEST(CritPath, EmptyWithoutWorkItems) {
  TraceRecorder rec;  // default options: no work-item ring
  const graph::Graph g = graph::path(16, {1, 4, 0.0}, 7);
  Engine::set_global_recorder(&rec);
  baseline::bf_sssp(g, 0);
  Engine::set_global_recorder(nullptr);
  const CritPathReport rep = analyze_critical_path(rec);
  EXPECT_TRUE(rep.runs.empty());
  EXPECT_EQ(rep.chain_len, 0u);
  EXPECT_EQ(rep.items_seen, 0u);
}

TEST(CritPath, PathSsspChainWalksThePath) {
  EngineOverrideGuard guard;
  const graph::NodeId n = 256;
  const graph::Graph g = graph::path(n, {1, 4, 0.0}, 11);
  const CritPathReport rep = profiled([&] { baseline::bf_sssp(g, 0); });
  ASSERT_EQ(rep.runs.size(), 1u);
  EXPECT_TRUE(rep.complete());
  EXPECT_FALSE(rep.truncated);
  // The frontier is one node per round: the chain must thread the whole
  // path, alternating wake (message hop) and prev (same node) edges.
  EXPECT_GE(rep.chain_len, static_cast<std::uint64_t>(n));
  expect_well_formed(rep);
  std::uint64_t wakes = 0;
  for (const ChainStep& s : rep.runs[0].chain) wakes += s.via_wake ? 1 : 0;
  EXPECT_GE(wakes, static_cast<std::uint64_t>(n) - 2);
}

TEST(CritPath, AttributionBoundedByWallClock) {
  EngineOverrideGuard guard;
  const graph::Graph g = graph::path(1024, {1, 4, 0.0}, 11);
  core::PipelinedParams p;
  p.sources = {0};
  p.h = 1023;
  p.delta = graph::max_finite_distance(g);
  const auto t0 = std::chrono::steady_clock::now();
  const CritPathReport rep = profiled([&] { core::pipelined_kssp(g, p); });
  const auto wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  ASSERT_EQ(rep.runs.size(), 1u);
  EXPECT_GT(rep.total_ns, 0u);
  EXPECT_LE(rep.total_ns, wall_ns);
  EXPECT_GE(rep.total_ns, rep.max_phase_ns);
  EXPECT_EQ(rep.compute_ns + rep.deliver_ns + rep.wait_ns, rep.total_ns);
  expect_well_formed(rep);
}

// The acceptance bar: the extracted chain is bit-identical across thread
// counts and across the sparse/dense schedulers, like RunStats.
TEST(CritPath, ChainBitIdenticalAcrossThreadsAndSchedulers) {
  EngineOverrideGuard guard;
  const graph::NodeId n = 1024;
  const graph::Graph g = graph::path(n, {1, 4, 0.0}, 11);
  core::PipelinedParams p;
  p.sources = {0};
  p.h = n - 1;
  p.delta = graph::max_finite_distance(g);

  Engine::set_force_dense(false);
  Engine::set_force_threads(1);
  const CritPathReport base = profiled([&] { core::pipelined_kssp(g, p); });
  ASSERT_EQ(base.runs.size(), 1u);
  EXPECT_GE(base.chain_len, static_cast<std::uint64_t>(n) / 2);
  const std::vector<DetStep> want = det_chain(base);

  for (const bool dense : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
      Engine::set_force_dense(dense);
      Engine::set_force_threads(threads);
      const CritPathReport rep =
          profiled([&] { core::pipelined_kssp(g, p); });
      EXPECT_EQ(rep.chain_len, base.chain_len)
          << "dense=" << dense << " threads=" << threads;
      EXPECT_EQ(rep.total_cost, base.total_cost)
          << "dense=" << dense << " threads=" << threads;
      EXPECT_EQ(det_chain(rep), want)
          << "dense=" << dense << " threads=" << threads;
    }
  }
}

// Ring wrap-around: with a tiny work-item capacity the oldest items are
// overwritten; the analysis must cut the chain there and flag it, never
// follow a stale index.
TEST(CritPath, RingWrapAroundTruncatesGracefully) {
  EngineOverrideGuard guard;
  const graph::Graph g = graph::path(256, {1, 4, 0.0}, 11);
  const CritPathReport rep =
      profiled([&] { baseline::bf_sssp(g, 0); }, /*item_capacity=*/64);
  ASSERT_EQ(rep.runs.size(), 1u);
  EXPECT_GT(rep.items_dropped, 0u);
  EXPECT_FALSE(rep.complete());
  EXPECT_TRUE(rep.truncated);
  // The retained tail still yields a well-formed chain over retained items.
  EXPECT_GT(rep.chain_len, 0u);
  EXPECT_LE(rep.chain_len, 64u);
  expect_well_formed(rep);
}

// Regression: two nodes exchanging messages in the same round used to form
// a predecessor cycle (A woke B, B woke A) and the chain reconstruction
// walked it forever.  A wake-reached item participates through its send
// state only, so the walk must terminate.
TEST(CritPath, SameRoundMutualWakeTerminates) {
  EngineOverrideGuard guard;
  // Two sources on a two-node graph: both endpoints send to each other in
  // the same round -- the minimal repro of the cycle.
  const graph::Graph tiny = graph::path(2, {1, 1, 0.0}, 3);
  const CritPathReport small = profiled(
      [&] { core::pipelined_apsp(tiny, graph::max_finite_distance(tiny)); });
  ASSERT_EQ(small.runs.size(), 1u);
  EXPECT_GT(small.chain_len, 0u);
  expect_well_formed(small);

  // And at APSP scale, where many such exchanges overlap per round.
  const graph::Graph g = graph::path(48, {1, 4, 0.0}, 11);
  const CritPathReport rep = profiled(
      [&] { core::pipelined_apsp(g, graph::max_finite_distance(g)); });
  ASSERT_EQ(rep.runs.size(), 1u);
  EXPECT_GT(rep.chain_len, 0u);
  expect_well_formed(rep);
}

TEST(CritPath, SummaryFoldsAndMatchesReport) {
  EngineOverrideGuard guard;
  const graph::Graph g = graph::path(64, {1, 4, 0.0}, 11);
  const CritPathReport rep = profiled([&] { baseline::bf_sssp(g, 0); });
  const CritPathSummary s = summarize(rep);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.runs, rep.runs.size());
  EXPECT_EQ(s.chain_len, rep.chain_len);
  EXPECT_EQ(s.total_ns, rep.total_ns);

  CritPathSummary acc;
  EXPECT_TRUE(acc.empty());
  acc += s;
  acc += s;
  EXPECT_EQ(acc.runs, 2 * s.runs);
  EXPECT_EQ(acc.chain_len, 2 * s.chain_len);
  EXPECT_EQ(acc.total_ns, 2 * s.total_ns);

  std::ostringstream os;
  JsonWriter w(os);
  s.write_json(w);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
}

TEST(CritPath, ExportersEmitValidJson) {
  EngineOverrideGuard guard;
  TraceRecorder::Options opt;
  opt.work_item_capacity = std::size_t{1} << 16;
  TraceRecorder rec(opt);
  const graph::Graph g = graph::path(64, {1, 4, 0.0}, 11);
  Engine::set_global_recorder(&rec);
  baseline::bf_sssp(g, 0);
  Engine::set_global_recorder(nullptr);
  const CritPathReport rep = analyze_critical_path(rec);
  ASSERT_EQ(rep.runs.size(), 1u);

  // The shared JSON block.
  std::ostringstream block;
  JsonWriter bw(block);
  write_critpath_json(rep, bw);
  EXPECT_TRUE(json_valid(block.str()));
  EXPECT_NE(block.str().find("\"chain\""), std::string::npos);

  // The run-record line.
  std::ostringstream line;
  write_critpath_record_line(rep, line);
  EXPECT_TRUE(jsonl_invalid_lines(line.str()).empty()) << line.str();
  EXPECT_EQ(line.str().rfind("{\"type\":\"critpath\"", 0), 0u);

  // The full run record (per-round lines + trailing critpath line) and the
  // Chrome trace with flame events.
  std::ostringstream record;
  rec.write_run_record(record);
  EXPECT_TRUE(jsonl_invalid_lines(record.str()).empty());
  EXPECT_NE(record.str().find("\"type\":\"critpath\""), std::string::npos);

  std::ostringstream chrome;
  rec.write_chrome_trace(chrome);
  EXPECT_TRUE(json_valid(chrome.str()));
  EXPECT_NE(chrome.str().find("critpath"), std::string::npos);

  // The human table at least names the chain.
  std::ostringstream table;
  write_critpath_table(rep, table);
  EXPECT_NE(table.str().find("chain"), std::string::npos);
}

}  // namespace
}  // namespace dapsp::obs
