// Coordinator of the multi-process socket backend.
//
// socket_build_oracle() runs one oracle build across W worker processes:
// it spawns `dapsp worker` children (fork/exec of this binary by default),
// hands each the full job (graph + solver options) over a local socket,
// drives every executed engine round in lockstep -- collecting each shard's
// owned senders, verifying all replicas' round digests agree, broadcasting
// the reassembled canonical block back -- and reassembles the final oracle
// from the result rows each worker owns.  See docs/BACKENDS.md for the
// design and protocol.hpp for the frame grammar.
//
// Failure semantics: a worker that crashes, hangs past the timeout, or
// diverges from its replicas kills the whole fleet and raises a
// std::runtime_error naming the shard ("partition: worker 2 (nodes
// [24,36)) ..."); the coordinator never hangs on a dead worker and never
// returns a partially-assembled oracle.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "service/oracle.hpp"

namespace dapsp::net {

struct SocketBackendOptions {
  std::uint32_t workers = 2;
  bool tcp = false;  ///< default Unix-domain; true = loopback TCP
  std::uint32_t timeout_ms = 120000;  ///< per-frame deadline, both sides
  /// Worker executable; empty = /proc/self/exe (the running dapsp binary).
  /// Tests point this at the CLI binary so the gtest process never re-execs
  /// itself.
  std::string worker_binary;
  std::uint32_t engine_threads = 0;  ///< per-worker engine pool; 0 = global
  /// Crash-injection test hook: worker `crash_rank` calls _exit just before
  /// its `crash_at`-th round exchange.  0 = disabled.
  std::uint32_t crash_rank = 0;
  std::uint64_t crash_at = 0;
};

/// Transport-side tallies of one coordinated build (host observability;
/// never part of the deterministic result).
struct SocketRunReport {
  std::uint64_t engine_runs = 0;      ///< RUN_BEGIN barriers observed
  std::uint64_t round_exchanges = 0;  ///< ROUND/DELIVER barriers driven
  std::uint64_t frames = 0;           ///< frames sent + received
  std::uint64_t wire_bytes = 0;       ///< bytes sent + received (with headers)
};

/// Runs `build` across `opts.workers` processes and returns the assembled
/// oracle -- bit-identical (modulo wall-clock stats) to build_oracle(g,
/// build) in-process.  Throws std::runtime_error on worker death,
/// divergence, protocol violation, or timeout.
service::DistanceOracle socket_build_oracle(const graph::Graph& g,
                                            const service::OracleBuildOptions& build,
                                            const SocketBackendOptions& opts,
                                            SocketRunReport* report = nullptr);

}  // namespace dapsp::net
