// Blocker set computation (Section III-B of the paper; Definition III.1).
//
// Given an h-hop CSSSP collection, a blocker set Q hits every root-to-leaf
// path of length exactly h in every tree.  The algorithm is the greedy one
// from [3] with the paper's two improvements:
//  * initial scores (per-tree counts of depth-h descendants) are computed by
//    a pipelined convergecast in h + k rounds instead of O(n*h),
//  * descendant score updates after picking a blocker use the pipelined
//    Algorithm 4 (k + h - 1 rounds), relying on the CSSSP property that the
//    subtrees below the chosen node coincide across trees (Lemma III.6).
// Ancestor updates pipeline along the in-tree of Lemma III.7.  Because both
// update phases lean on CSSSP consistency for collision-freedom, the engine's
// per-link congestion stats double as an empirical check of those lemmas
// (tests assert max congestion 1).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/metrics.hpp"
#include "congest/primitives.hpp"
#include "core/cssp.hpp"
#include "graph/graph.hpp"

namespace dapsp::core {

/// scores[v][i] = number of depth-h descendants of v in tree i (v included
/// when its own depth is h).  Node-major: row v is node v's local state.
using ScoreMatrix = std::vector<std::vector<std::uint64_t>>;

/// Phase A: distributed pipelined score initialization (h + k + 1 rounds).
ScoreMatrix init_scores_distributed(const graph::Graph& g,
                                    const CsspCollection& cssp,
                                    congest::RunStats* stats);

/// Sequential oracle for the same quantity (tests).
ScoreMatrix init_scores_sequential(const CsspCollection& cssp);

struct BlockerSetResult {
  std::vector<NodeId> blockers;
  congest::RunStats stats;
  std::uint64_t size_bound = 0;  ///< (n ln n)/h-style greedy guarantee
  /// Max per-link per-round congestion seen inside the ancestor/descendant
  /// update phases; 1 when the CSSSP staggering argument holds.
  std::uint64_t update_congestion = 0;
  /// Longest single ancestor/descendant update phase (Lemma III.8 bounds the
  /// descendant phase by k + h - 1 rounds).
  congest::Round max_update_phase_rounds = 0;
  std::uint64_t score_init_rounds = 0;
};

/// Greedy blocker set over the CSSSP collection.  Runs entirely as CONGEST
/// phases (score init, convergecast max, broadcast, pipelined updates).
BlockerSetResult compute_blocker_set(const graph::Graph& g,
                                     const CsspCollection& cssp);

/// Sequential validation: true iff every depth-h leaf's root path contains a
/// blocker (Definition III.1).
bool covers_all_h_paths(const CsspCollection& cssp,
                        const std::vector<NodeId>& blockers);

}  // namespace dapsp::core
