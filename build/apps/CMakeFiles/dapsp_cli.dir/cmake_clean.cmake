file(REMOVE_RECURSE
  "CMakeFiles/dapsp_cli.dir/dapsp_cli.cpp.o"
  "CMakeFiles/dapsp_cli.dir/dapsp_cli.cpp.o.d"
  "dapsp_cli"
  "dapsp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
