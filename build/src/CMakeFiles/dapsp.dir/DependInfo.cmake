
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bf_apsp.cpp" "src/CMakeFiles/dapsp.dir/baseline/bf_apsp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/baseline/bf_apsp.cpp.o.d"
  "/root/repo/src/baseline/unweighted_apsp.cpp" "src/CMakeFiles/dapsp.dir/baseline/unweighted_apsp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/baseline/unweighted_apsp.cpp.o.d"
  "/root/repo/src/cli/commands.cpp" "src/CMakeFiles/dapsp.dir/cli/commands.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/cli/commands.cpp.o.d"
  "/root/repo/src/cli/options.cpp" "src/CMakeFiles/dapsp.dir/cli/options.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/cli/options.cpp.o.d"
  "/root/repo/src/congest/engine.cpp" "src/CMakeFiles/dapsp.dir/congest/engine.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/congest/engine.cpp.o.d"
  "/root/repo/src/congest/metrics.cpp" "src/CMakeFiles/dapsp.dir/congest/metrics.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/congest/metrics.cpp.o.d"
  "/root/repo/src/congest/multiplex.cpp" "src/CMakeFiles/dapsp.dir/congest/multiplex.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/congest/multiplex.cpp.o.d"
  "/root/repo/src/congest/primitives.cpp" "src/CMakeFiles/dapsp.dir/congest/primitives.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/congest/primitives.cpp.o.d"
  "/root/repo/src/core/approx_apsp.cpp" "src/CMakeFiles/dapsp.dir/core/approx_apsp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/approx_apsp.cpp.o.d"
  "/root/repo/src/core/blocker.cpp" "src/CMakeFiles/dapsp.dir/core/blocker.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/blocker.cpp.o.d"
  "/root/repo/src/core/blocker_apsp.cpp" "src/CMakeFiles/dapsp.dir/core/blocker_apsp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/blocker_apsp.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/dapsp.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/cssp.cpp" "src/CMakeFiles/dapsp.dir/core/cssp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/cssp.cpp.o.d"
  "/root/repo/src/core/key.cpp" "src/CMakeFiles/dapsp.dir/core/key.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/key.cpp.o.d"
  "/root/repo/src/core/paths.cpp" "src/CMakeFiles/dapsp.dir/core/paths.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/paths.cpp.o.d"
  "/root/repo/src/core/pipelined_ssp.cpp" "src/CMakeFiles/dapsp.dir/core/pipelined_ssp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/pipelined_ssp.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/CMakeFiles/dapsp.dir/core/routing.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/routing.cpp.o.d"
  "/root/repo/src/core/scaled_apsp.cpp" "src/CMakeFiles/dapsp.dir/core/scaled_apsp.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/scaled_apsp.cpp.o.d"
  "/root/repo/src/core/short_range.cpp" "src/CMakeFiles/dapsp.dir/core/short_range.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/core/short_range.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/dapsp.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/dapsp.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/dapsp.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/CMakeFiles/dapsp.dir/graph/properties.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/graph/properties.cpp.o.d"
  "/root/repo/src/seq/bellman_ford.cpp" "src/CMakeFiles/dapsp.dir/seq/bellman_ford.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/seq/bellman_ford.cpp.o.d"
  "/root/repo/src/seq/dijkstra.cpp" "src/CMakeFiles/dapsp.dir/seq/dijkstra.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/seq/dijkstra.cpp.o.d"
  "/root/repo/src/seq/hop_limited.cpp" "src/CMakeFiles/dapsp.dir/seq/hop_limited.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/seq/hop_limited.cpp.o.d"
  "/root/repo/src/seq/zero_reach.cpp" "src/CMakeFiles/dapsp.dir/seq/zero_reach.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/seq/zero_reach.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/dapsp.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/dapsp.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
