#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure, capturing the
# reference outputs the repository ships (test_output.txt, bench_output.txt).
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
echo "done: test_output.txt, bench_output.txt"
