#include "harness.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace dapsp::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << std::setw(static_cast<int>(widths[c])) << cell << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << "-|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }
std::string fmt(std::int64_t v) { return std::to_string(v); }

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_seconds(double seconds) {
  if (seconds < 1e-3) return fmt(seconds * 1e6, 0) + "us";
  if (seconds < 1.0) return fmt(seconds * 1e3, 2) + "ms";
  return fmt(seconds, 2) + "s";
}

void print_phase_timing(
    const std::vector<std::pair<std::string, congest::RunStats>>& runs,
    std::ostream& os) {
  Table t({"run", "rounds", "skipped", "send", "deliver", "receive", "total"});
  for (const auto& [label, s] : runs) {
    const double total = s.send_seconds + s.deliver_seconds + s.receive_seconds;
    t.row({label, fmt(static_cast<std::uint64_t>(s.rounds)),
           fmt(static_cast<std::uint64_t>(s.skipped_rounds)),
           fmt_seconds(s.send_seconds), fmt_seconds(s.deliver_seconds),
           fmt_seconds(s.receive_seconds), fmt_seconds(total)});
  }
  t.print(os);
}

void print_round_histograms(
    const std::vector<std::pair<std::string, congest::RunStats>>& runs,
    std::ostream& os) {
  const auto ns = [](std::uint64_t v) {
    return fmt_seconds(static_cast<double>(v) * 1e-9);
  };
  Table t({"run", "rounds", "msgs p50", "msgs p90", "msgs p99", "msgs max",
           "send p99", "deliver p99", "receive p99"});
  for (const auto& [label, s] : runs) {
    const auto& m = s.round_messages_hist;
    t.row({label, fmt(static_cast<std::uint64_t>(s.rounds)), fmt(m.p50()),
           fmt(m.p90()), fmt(m.p99()), fmt(m.max()),
           ns(s.send_ns_hist.p99()), ns(s.deliver_ns_hist.p99()),
           ns(s.receive_ns_hist.p99())});
  }
  t.print(os);
}

void banner(const std::string& experiment, const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

}  // namespace dapsp::bench
