// Synchronous CONGEST round engine.
//
// Executes one `Protocol` instance per node in lockstep rounds that match
// the paper's algorithm structure (send at the start of a round, receive at
// the end of the same round):
//   round 0:  Protocol::init acts as the send step (the paper's algorithms
//             mostly stay silent here; Algorithm 2's source does send), then
//             messages are delivered and receive_phase runs.
//   round r:  send_phase (may send along incident links, based on state from
//             the end of round r-1), delivery, receive_phase (sees every
//             message sent this round via Context::inbox(); sending here is
//             an error).
// This send/receive split matters: with zero-weight edges a pipelined
// entry's scheduled send round can equal its arrival round, so an engine
// that delivered messages one round later would miss schedules forever.
//
// Within a round all nodes run concurrently on a thread pool; message
// delivery is gathered per receiver in (sender id, send order) order, so
// parallel and single-threaded executions are bit-identical.
//
// Termination: the engine stops at `max_rounds`, or earlier when no message
// is in flight and every protocol reports `quiescent()` — i.e. it would
// never spontaneously send again without new input.  Quiescence detection is
// a simulator-level convenience (a global observer); the algorithms' own
// termination arguments are their round bounds, which tests assert.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "util/thread_pool.hpp"

#include "congest/message.hpp"
#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::congest {

class Engine;

/// Per-node, per-round view handed to protocol code.
///
/// Abstract so that protocol instances can run either directly on the
/// engine or behind the multiplexer (congest/multiplex.hpp), which queues
/// their sends to respect the one-message-per-link-per-round budget.
class Context {
 public:
  virtual ~Context() = default;

  NodeId self() const noexcept { return self_; }
  Round round() const noexcept { return round_; }
  virtual NodeId node_count() const noexcept = 0;

  /// Communication neighbors (sorted ascending).
  virtual std::span<const NodeId> neighbors() const noexcept = 0;

  /// Messages sent to this node in this round's send phase, ordered by
  /// (sender id, send order).  Empty during the send phase.
  std::span<const Envelope> inbox() const noexcept { return inbox_; }

  /// Sends `m` along the link to `to` (must be a neighbor).  Only legal in
  /// init / send_phase; throws in receive_phase.
  virtual void send(NodeId to, const Message& m) = 0;

  /// Sends `m` along every incident link.
  virtual void broadcast(const Message& m) = 0;

 protected:
  Context(NodeId self, Round round, std::span<const Envelope> inbox,
          bool may_send)
      : self_(self), round_(round), inbox_(inbox), may_send_(may_send) {}

  NodeId self_;
  Round round_;
  std::span<const Envelope> inbox_;
  bool may_send_;
};

/// Node-local protocol logic.  Implementations own only their node's state;
/// the engine guarantees each phase runs exactly once per node per round.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Round 0 setup; acts as round 0's send step (sending allowed).
  virtual void init(Context& /*ctx*/) {}

  /// Start of round r: may send, inbox empty.
  virtual void send_phase(Context& /*ctx*/) {}

  /// End of round r: sees everything sent this round, may not send.
  virtual void receive_phase(Context& /*ctx*/) {}

  /// True if, absent further incoming messages, this node will never send
  /// again.  Default suits purely reactive protocols.
  virtual bool quiescent() const { return true; }
};

/// Observer invoked once per delivered message (during the single-threaded
/// accounting pass, so implementations need no locking).  For debugging,
/// visualization, and the message-wave benches.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_message(Round round, NodeId from, NodeId to,
                          const Message& msg) = 0;
};

/// Ready-made sink: keeps up to `limit` events in memory.
class MessageLog final : public TraceSink {
 public:
  struct Event {
    Round round;
    NodeId from;
    NodeId to;
    Message msg;
  };

  explicit MessageLog(std::size_t limit = 100000) : limit_(limit) {}

  void on_message(Round round, NodeId from, NodeId to,
                  const Message& msg) override {
    if (events_.size() < limit_) events_.push_back({round, from, to, msg});
    ++total_;
  }

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t total() const { return total_; }
  bool truncated() const { return total_ > events_.size(); }

 private:
  std::size_t limit_;
  std::vector<Event> events_;
  std::uint64_t total_ = 0;
};

struct EngineOptions {
  Round max_rounds = 1'000'000;
  bool stop_on_quiescence = true;
  bool record_per_round = false;
  /// Deterministically permute each inbox instead of delivering in
  /// (sender, send order).  The CONGEST model does not promise any arrival
  /// order; tests flip this to prove protocols only rely on message
  /// *content*.  Seeded per (receiver, round), so runs stay reproducible.
  bool scramble_inbox = false;
  std::uint64_t scramble_seed = 0x5eed;
  /// Worker threads for node execution; 0 = use the process-global pool.
  /// Results are bit-identical for every value (tested).
  std::size_t threads = 0;
  /// Optional message observer (not owned; must outlive the engine).
  TraceSink* trace = nullptr;
};

class Engine {
 public:
  /// `protocols` must contain exactly one entry per node.
  Engine(const graph::Graph& g,
         std::vector<std::unique_ptr<Protocol>> protocols,
         EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs to quiescence or the round limit; returns accumulated stats.
  /// May be called once per engine.
  RunStats run();

  /// Executes exactly one round (for step-debugging and tests).  Returns the
  /// number of messages sent in that round.
  std::uint64_t step();

  const graph::Graph& graph() const noexcept { return graph_; }
  Protocol& protocol(NodeId v) { return *protocols_[v]; }
  const Protocol& protocol(NodeId v) const { return *protocols_[v]; }
  const RunStats& stats() const noexcept { return stats_; }
  Round current_round() const noexcept { return round_; }

  // Low-level send plumbing for Context implementations (not for protocol
  // code; protocols must go through Context so the phase rules hold).
  std::size_t link_slot(NodeId from, NodeId to) const;
  std::size_t link_base(NodeId v) const { return link_base_[v]; }
  void enqueue(NodeId from, std::size_t slot, const Message& m);

 private:
  void run_init_round();
  void deliver();
  util::ThreadPool& pool();

  const graph::Graph& graph_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> own_pool_;  // when options_.threads > 0
  RunStats stats_;
  Round round_ = 0;
  bool init_done_ = false;

  // Per directed link (CSR position in comm adjacency of the sender):
  // messages enqueued this round.
  std::vector<std::size_t> link_base_;              // per node, into link_out_
  std::vector<std::vector<Message>> link_out_;
  std::vector<std::vector<std::size_t>> touched_;   // per node, dirty links
  std::uint64_t round_messages_ = 0;                // messages this round
  std::vector<std::uint64_t> link_lifetime_count_;  // per link, whole run

  // Incoming link list per receiver: (sender, link slot), sender-ascending.
  struct InLink {
    NodeId from;
    std::size_t slot;
  };
  std::vector<std::vector<InLink>> in_links_;
  std::vector<std::vector<Envelope>> inbox_;
};

}  // namespace dapsp::congest
