#include "core/short_range.hpp"

#include <algorithm>
#include <optional>

#include "congest/engine.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using congest::Context;
using congest::Engine;
using congest::EngineOptions;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using congest::Round;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

namespace {

constexpr std::uint32_t kTagPair = 20;  // {source_index, d, l}

struct SrConfig {
  const Graph* g = nullptr;
  std::uint32_t h = 0;
  GammaSq gamma;
  KappaKernel kernel;  // batched/fast-path kappa arithmetic for this gamma
  std::vector<NodeId> sources;
  const std::vector<std::vector<Weight>>* initial = nullptr;
};

class ShortRangeProtocol final : public Protocol {
 public:
  ShortRangeProtocol(const SrConfig& cfg, NodeId self)
      : cfg_(cfg), self_(self) {
    const std::size_t k = cfg.sources.size();
    d_.assign(k, kInfDist);
    l_.assign(k, 0);
    p_.assign(k, kNoNode);
    dirty_.assign(k, false);
    sends_per_source_.assign(k, 0);
    for (const auto& e : cfg.g->in_edges(self)) {
      in_weight_.emplace_back(e.from, e.weight);
    }
    in_weight_.erase(
        std::unique(in_weight_.begin(), in_weight_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        in_weight_.end());
  }

  void init(Context& ctx) override {
    for (std::size_t i = 0; i < cfg_.sources.size(); ++i) {
      Weight d0 = kInfDist;
      if (cfg_.initial != nullptr && !cfg_.initial->empty()) {
        d0 = (*cfg_.initial)[i][self_];
      } else if (cfg_.sources[i] == self_) {
        d0 = 0;
      }
      if (d0 != kInfDist) {
        d_[i] = d0;
        l_[i] = 0;
        dirty_[i] = true;
      }
    }
    // The paper's Algorithm 2 sends (0,0) from the source in round 0.
    emit_due(ctx, 0);
  }

  void send_phase(Context& ctx) override { emit_due(ctx, ctx.round()); }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagPair) continue;
      const auto w = arc_weight_from(env.from);
      if (!w) continue;
      const auto i = static_cast<std::size_t>(env.msg.f[0]);
      const Weight d = env.msg.f[1] + *w;
      const auto l = static_cast<std::uint32_t>(env.msg.f[2]) + 1;
      if (l > cfg_.h) continue;
      // Step 6: adopt strictly better (d, l) pairs.
      if (d < d_[i] || (d == d_[i] && l < l_[i])) {
        d_[i] = d;
        l_[i] = l;
        p_[i] = env.from;
        dirty_[i] = true;
        settle_round_ = ctx.round();
      }
    }
  }

  bool quiescent() const override {
    return std::none_of(dirty_.begin(), dirty_.end(), [](bool b) { return b; });
  }

  const std::vector<Weight>& dist() const { return d_; }
  const std::vector<std::uint32_t>& hops() const { return l_; }
  const std::vector<NodeId>& parent() const { return p_; }
  Round settle_round() const { return settle_round_; }
  /// Max messages emitted for any single source (Lemma II.15's congestion).
  std::uint64_t max_sends_one_source() const {
    std::uint64_t m = 0;
    for (const std::uint64_t c : sends_per_source_) m = std::max(m, c);
    return m;
  }
  std::uint64_t late_sends() const { return late_; }

 private:
  void emit_due(Context& ctx, Round r) {
    // Stage dirty sources, resolve their send rounds in one batched kernel
    // pass, then emit the ones due now.
    due_idx_.clear();
    due_keys_.clear();
    for (std::size_t i = 0; i < d_.size(); ++i) {
      if (!dirty_[i]) continue;
      due_idx_.push_back(i);
      due_keys_.push_back(Key{d_[i], l_[i]});
    }
    due_ck_.resize(due_keys_.size());
    cfg_.kernel.ceil_kappa_span(due_keys_, due_ck_);
    for (std::size_t j = 0; j < due_idx_.size(); ++j) {
      const std::uint64_t due = due_ck_[j];
      if (due > r) continue;  // scheduled for a later round
      if (due < r) ++late_;   // should never happen (invariant violation)
      const std::size_t i = due_idx_[j];
      dirty_[i] = false;
      ++sends_per_source_[i];
      ctx.broadcast(Message(kTagPair, {static_cast<std::int64_t>(i), d_[i],
                                       static_cast<std::int64_t>(l_[i])}));
    }
  }

  std::optional<Weight> arc_weight_from(NodeId y) const {
    const auto it = std::lower_bound(
        in_weight_.begin(), in_weight_.end(), y,
        [](const auto& p, NodeId v) { return p.first < v; });
    if (it == in_weight_.end() || it->first != y) return std::nullopt;
    return it->second;
  }

  const SrConfig& cfg_;
  NodeId self_;
  std::vector<Weight> d_;
  std::vector<std::uint32_t> l_;
  std::vector<NodeId> p_;
  std::vector<bool> dirty_;
  std::vector<std::pair<NodeId, Weight>> in_weight_;
  Round settle_round_ = 0;
  std::vector<std::uint64_t> sends_per_source_;
  std::uint64_t late_ = 0;
  std::vector<std::size_t> due_idx_;   // per-round scratch, grow-only
  std::vector<Key> due_keys_;
  std::vector<std::uint64_t> due_ck_;
};

}  // namespace

void ShortRangeParams::finalize(const Graph& g) {
  util::check(!sources.empty(), "ShortRangeParams: need at least one source");
  util::check(h >= 1, "ShortRangeParams: need h >= 1");
  util::check(delta >= 0, "ShortRangeParams: delta must be non-negative");
  for (const NodeId s : sources) {
    util::check(s < g.node_count(), "ShortRangeParams: source out of range");
  }
  if (!initial.empty()) {
    util::check(initial.size() == sources.size(),
                "ShortRangeParams: initial must have one row per source");
    for (const auto& row : initial) {
      util::check(row.size() == g.node_count(),
                  "ShortRangeParams: initial row must have one entry per node");
    }
  }
  if (gamma.num == 0 && gamma.den == 0) {
    gamma = sources.size() == 1
                ? GammaSq{h, 1}  // the paper's sqrt(h)
                : GammaSq::paper(sources.size(), h,
                                 static_cast<std::uint64_t>(delta));
  }
}

ShortRangeResult short_range(const Graph& g, ShortRangeParams params) {
  params.finalize(g);
  const NodeId n = g.node_count();
  const std::size_t k = params.sources.size();

  SrConfig cfg;
  cfg.g = &g;
  cfg.h = params.h;
  cfg.gamma = params.gamma;
  cfg.kernel = KappaKernel(cfg.gamma);
  cfg.sources = params.sources;
  cfg.initial = &params.initial;

  ShortRangeResult res;
  res.sources = params.sources;
  res.dilation_bound =
      util::ceil_mul_sqrt(static_cast<std::uint64_t>(params.delta),
                          params.gamma.num, params.gamma.den) +
      params.h + 2;
  res.congestion_bound =
      params.gamma.num == 0
          ? params.h + 1
          : util::ceil_mul_sqrt(params.h, params.gamma.den, params.gamma.num) +
                1;

  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<ShortRangeProtocol>(cfg, v));
  }
  EngineOptions opt;
  opt.max_rounds = static_cast<Round>(
      static_cast<double>(res.dilation_bound) *
      std::max(1.0, params.round_budget_factor));
  Engine engine(g, std::move(procs), opt);
  res.stats = engine.run();

  res.dist.assign(k, std::vector<Weight>(n, kInfDist));
  res.hops.assign(k, std::vector<std::uint32_t>(n, 0));
  res.parent.assign(k, std::vector<NodeId>(n, kNoNode));
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = static_cast<const ShortRangeProtocol&>(engine.protocol(v));
    for (std::size_t i = 0; i < k; ++i) {
      res.dist[i][v] = p.dist()[i];
      res.hops[i][v] = p.hops()[i];
      res.parent[i][v] = p.parent()[i];
    }
    res.settle_round = std::max(res.settle_round, p.settle_round());
    res.max_sends_per_node =
        std::max(res.max_sends_per_node, p.max_sends_one_source());
    res.late_sends += p.late_sends();
  }
  return res;
}

}  // namespace dapsp::core
