file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_cssp.dir/bench_fig1_cssp.cpp.o"
  "CMakeFiles/bench_fig1_cssp.dir/bench_fig1_cssp.cpp.o.d"
  "bench_fig1_cssp"
  "bench_fig1_cssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
