// Sequential references for whole-graph analytics: distance reports
// (eccentricity / radius / diameter / farness) and betweenness centrality.
//
// Betweenness is Brandes' algorithm over the *canonical* shortest-path DAG:
// an arc (u, v) belongs to source s's DAG iff d(s,u) + w(u,v) = d(s,v) AND
// l(s,u) + 1 = l(s,v), where (d, l) is the (distance, hops) lexicographic
// metric of seq::dijkstra.  Restricting to hop-minimal shortest paths keeps
// the DAG acyclic even with zero-weight edges (hops strictly increase along
// arcs), which is exactly why the paper's algorithms carry l everywhere.
// query::Analytics::betweenness rebuilds the same DAG from the served
// closure and must agree up to floating-point accumulation order.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "query/types.hpp"

namespace dapsp::seq {

/// Whole-graph distance report from n Dijkstra sweeps (finite-distance
/// semantics; see query::GraphReport).
query::GraphReport graph_report(const graph::Graph& g);

/// Betweenness centrality accumulated over the canonical shortest-path DAGs
/// of `sources` (ordered-pair convention: every (s, t) with finite distance
/// contributes, including both directions of an undirected pair).  Nodes
/// are scored for their role as intermediates only (endpoints excluded).
std::vector<double> betweenness(const graph::Graph& g,
                                const std::vector<graph::NodeId>& sources);

}  // namespace dapsp::seq
