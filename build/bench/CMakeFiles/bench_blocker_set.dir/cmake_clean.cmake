file(REMOVE_RECURSE
  "CMakeFiles/bench_blocker_set.dir/bench_blocker_set.cpp.o"
  "CMakeFiles/bench_blocker_set.dir/bench_blocker_set.cpp.o.d"
  "bench_blocker_set"
  "bench_blocker_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocker_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
