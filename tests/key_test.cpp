#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/key.hpp"
#include "util/rng.hpp"

namespace dapsp::core {
namespace {

TEST(GammaSq, PaperValue) {
  const GammaSq g = GammaSq::paper(16, 4, 64);
  EXPECT_EQ(g.num, 64u);
  EXPECT_EQ(g.den, 64u);
  EXPECT_EQ(g.ceil_gamma(), 1u);
}

TEST(GammaSq, DegenerateDeltaZero) {
  const GammaSq g = GammaSq::paper(4, 4, 0);
  EXPECT_EQ(g.den, 1u);  // gamma = sqrt(k*h), keeps keys hop-dominated
}

TEST(Key, CompareUnitGamma) {
  // gamma = 1: kappa = d + l.
  const GammaSq g = GammaSq::unit();
  EXPECT_LT((Key{2, 3}).compare(Key{3, 3}, g), 0);
  EXPECT_EQ((Key{2, 3}).compare(Key{3, 2}, g), 0);  // 5 == 5
  EXPECT_GT((Key{4, 3}).compare(Key{3, 3}, g), 0);
}

TEST(Key, CompareHopOnly) {
  const GammaSq g = GammaSq::hop_only();
  EXPECT_LT((Key{100, 1}).compare(Key{0, 2}, g), 0);
  EXPECT_EQ((Key{100, 2}).compare(Key{0, 2}, g), 0);
}

TEST(Key, CompareIrrationalGamma) {
  // gamma = sqrt(2): d=5,l=0 -> 7.07; d=4,l=2 -> 7.65
  const GammaSq g{2, 1};
  EXPECT_LT((Key{5, 0}).compare(Key{4, 2}, g), 0);
  EXPECT_GT((Key{4, 2}).compare(Key{5, 0}, g), 0);
  EXPECT_EQ((Key{3, 1}).compare(Key{3, 1}, g), 0);
}

TEST(Key, CompareMatchesLongDoubleRandomized) {
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const GammaSq g{rng.below(64) + 1, rng.below(64) + 1};
    const Key a{static_cast<Weight>(rng.below(1000)),
                static_cast<std::uint32_t>(rng.below(64))};
    const Key b{static_cast<Weight>(rng.below(1000)),
                static_cast<std::uint32_t>(rng.below(64))};
    const long double gamma = std::sqrt(static_cast<long double>(g.num) /
                                        static_cast<long double>(g.den));
    const long double ka = static_cast<long double>(a.d) * gamma + a.l;
    const long double kb = static_cast<long double>(b.d) * gamma + b.l;
    const int got = a.compare(b, g);
    if (std::fabs(static_cast<double>(ka - kb)) > 1e-6) {
      EXPECT_EQ(got, ka < kb ? -1 : 1)
          << "a=(" << a.d << "," << a.l << ") b=(" << b.d << "," << b.l
          << ") gamma^2=" << g.num << "/" << g.den;
    }
  }
}

TEST(Key, CeilKappaExamples) {
  const GammaSq g{2, 1};  // gamma = sqrt(2)
  EXPECT_EQ((Key{0, 0}).ceil_kappa(g), 0u);
  EXPECT_EQ((Key{1, 0}).ceil_kappa(g), 2u);  // ceil(1.41)
  EXPECT_EQ((Key{2, 0}).ceil_kappa(g), 3u);  // ceil(2.83)
  EXPECT_EQ((Key{2, 5}).ceil_kappa(g), 8u);
  EXPECT_EQ((Key{5, 1}).send_round(g, 3), 8u + 4u);  // ceil(7.07)+1+3
}

TEST(Key, CeilKappaIsUpperBoundAndTight) {
  util::Xoshiro256 rng(78);
  for (int i = 0; i < 3000; ++i) {
    const GammaSq g{rng.below(100) + 1, rng.below(100) + 1};
    const Key k{static_cast<Weight>(rng.below(100000)),
                static_cast<std::uint32_t>(rng.below(1000))};
    const std::uint64_t c = k.ceil_kappa(g);
    // c - l = ceil(d * gamma): verify the defining inequalities exactly.
    const std::uint64_t m = c - k.l;
    const auto d = static_cast<std::uint64_t>(k.d);
    EXPECT_GE(util::u128{m} * m * g.den, util::u128{d} * d * g.num);
    if (m > 0) {
      EXPECT_LT(util::u128{m - 1} * (m - 1) * g.den, util::u128{d} * d * g.num);
    }
  }
}

TEST(Key, ListOrderTieBreaking) {
  const GammaSq g = GammaSq::unit();
  // Same kappa (d+l = 5): smaller d first.
  EXPECT_LT(list_order(Key{2, 3}, 0, Key{3, 2}, 0, g), 0);
  // Same kappa and d: smaller source id first.
  EXPECT_LT(list_order(Key{2, 3}, 1, Key{2, 3}, 4, g), 0);
  EXPECT_EQ(list_order(Key{2, 3}, 4, Key{2, 3}, 4, g), 0);
  EXPECT_GT(list_order(Key{3, 3}, 0, Key{2, 3}, 9, g), 0);
}

TEST(Key, SendSchedulesStrictlyIncreaseAlongSortedLists) {
  // The engine relies on ceil(kappa)+pos being strictly increasing in list
  // order; simulate random sorted lists and check.
  util::Xoshiro256 rng(79);
  for (int trial = 0; trial < 200; ++trial) {
    const GammaSq g{rng.below(50) + 1, rng.below(50) + 1};
    std::vector<std::pair<Key, NodeId>> entries;
    for (int i = 0; i < 50; ++i) {
      entries.emplace_back(Key{static_cast<Weight>(rng.below(200)),
                               static_cast<std::uint32_t>(rng.below(20))},
                           static_cast<NodeId>(rng.below(8)));
    }
    std::sort(entries.begin(), entries.end(), [&](const auto& a, const auto& b) {
      return list_order(a.first, a.second, b.first, b.second, g) < 0;
    });
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::uint64_t sched = entries[i].first.ceil_kappa(g) + i + 1;
      if (i > 0) {
        EXPECT_GT(sched, prev);
      }
      prev = sched;
    }
  }
}

}  // namespace
}  // namespace dapsp::core
