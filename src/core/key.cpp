#include "core/key.hpp"

namespace dapsp::core {

int list_order(const Key& a, NodeId xa, const Key& b, NodeId xb,
               const GammaSq& g) {
  if (const int c = a.compare(b, g); c != 0) return c;
  if (a.d != b.d) return a.d < b.d ? -1 : 1;
  if (xa != xb) return xa < xb ? -1 : 1;
  return 0;
}

}  // namespace dapsp::core
