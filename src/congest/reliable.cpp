#include "congest/reliable.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/int_math.hpp"

namespace dapsp::congest {

using graph::Graph;
using graph::NodeId;

/// Buffers the inner protocol's sends into the per-link pending queues.
class ReliableTransport::RelSendContext final : public Context {
 public:
  RelSendContext(ReliableTransport& rt, Context& outer)
      : Context(outer.self(), outer.round(), {}, /*may_send=*/true),
        rt_(rt), outer_(outer) {}

  NodeId node_count() const noexcept override { return outer_.node_count(); }
  std::span<const NodeId> neighbors() const noexcept override {
    return outer_.neighbors();
  }

  void send(NodeId to, const Message& m) override {
    const auto nbrs = neighbors();
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
    util::check(it != nbrs.end() && *it == to,
                "RelSendContext::send: target is not a neighbor");
    rt_.enqueue_inner(static_cast<std::size_t>(it - nbrs.begin()), m);
  }

  void broadcast(const Message& m) override {
    for (std::size_t j = 0; j < neighbors().size(); ++j) {
      rt_.enqueue_inner(j, m);
    }
  }

 private:
  ReliableTransport& rt_;
  Context& outer_;
};

/// Read-only view handing the inner protocol its in-order inbox.
class ReliableTransport::RelRecvContext final : public Context {
 public:
  RelRecvContext(Context& outer, std::span<const Envelope> inbox)
      : Context(outer.self(), outer.round(), inbox, /*may_send=*/false),
        outer_(outer) {}

  NodeId node_count() const noexcept override { return outer_.node_count(); }
  std::span<const NodeId> neighbors() const noexcept override {
    return outer_.neighbors();
  }
  void send(NodeId, const Message&) override {
    throw std::logic_error("reliable: inner protocol sent in receive_phase");
  }
  void broadcast(const Message&) override {
    throw std::logic_error("reliable: inner protocol sent in receive_phase");
  }

 private:
  Context& outer_;
};

ReliableTransport::ReliableTransport(const Graph& g, NodeId self,
                                     std::unique_ptr<Protocol> inner,
                                     ReliableOptions opt)
    : g_(g), self_(self), inner_(std::move(inner)), opt_(opt) {
  util::check(opt_.window > 0, "ReliableOptions: window must be >= 1");
  util::check(opt_.backoff_base > 0,
              "ReliableOptions: backoff_base must be >= 1");
  util::check(opt_.backoff_cap >= opt_.backoff_base,
              "ReliableOptions: backoff_cap < backoff_base");
  out_.resize(g.comm_degree(self));
  in_.resize(g.comm_degree(self));
}

std::size_t ReliableTransport::link_index(NodeId from) const {
  const auto nbrs = g_.comm_neighbors(self_);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), from);
  util::check(it != nbrs.end() && *it == from,
              "ReliableTransport: message from a non-neighbor");
  return static_cast<std::size_t>(it - nbrs.begin());
}

void ReliableTransport::enqueue_inner(std::size_t link, const Message& inner) {
  util::check(inner.used + 3 <= Message::kMaxFields,
              "reliable: inner message too large to wrap");
  out_[link].pending.push_back(inner);
}

void ReliableTransport::pump_link_sends(Context& ctx, Round now) {
  const auto nbrs = ctx.neighbors();
  for (std::size_t j = 0; j < out_.size(); ++j) {
    SendLink& sl = out_[j];
    // Promote queued inner messages into the send window.
    while (!sl.pending.empty() && sl.frames.size() < opt_.window) {
      const Message& inner = sl.pending.front();
      Frame fr;
      fr.seq = sl.next_seq++;
      fr.payload = Message(kTagData, {static_cast<std::int64_t>(fr.seq),
                                      std::int64_t{0},
                                      static_cast<std::int64_t>(inner.tag)});
      for (std::uint32_t i = 0; i < inner.used; ++i) {
        fr.payload.f[fr.payload.used++] = inner.f[i];
      }
      fr.next_resend = now;
      fr.backoff = opt_.backoff_base;
      sl.frames.push_back(fr);
      sl.pending.pop_front();
    }
    const std::uint64_t outstanding = sl.frames.size() + sl.pending.size();
    if (outstanding > stats_.max_outstanding) {
      stats_.max_outstanding = outstanding;
    }
    // One transport message per link per round: the lowest-seq due data
    // frame (its f1 piggybacks the cumulative ack), else a pure ack if one
    // is owed.
    Frame* due = nullptr;
    for (Frame& fr : sl.frames) {
      if (fr.next_resend <= now) {
        due = &fr;
        break;
      }
    }
    if (due != nullptr) {
      due->payload.f[1] = static_cast<std::int64_t>(in_[j].cum);
      ctx.send(nbrs[j], due->payload);
      ++stats_.data_frames;
      if (due->sent_once) ++stats_.retransmits;
      due->sent_once = true;
      due->next_resend = now + due->backoff;
      due->backoff = std::min(due->backoff * 2, opt_.backoff_cap);
      in_[j].ack_owed = false;
    } else if (in_[j].ack_owed) {
      ctx.send(nbrs[j],
               Message(kTagAck, {static_cast<std::int64_t>(in_[j].cum)}));
      ++stats_.pure_acks;
      in_[j].ack_owed = false;
    }
  }
}

void ReliableTransport::init(Context& ctx) {
  RelSendContext sub(*this, ctx);
  inner_->init(sub);
  pump_link_sends(ctx, ctx.round());
}

void ReliableTransport::send_phase(Context& ctx) {
  RelSendContext sub(*this, ctx);
  inner_->send_phase(sub);
  pump_link_sends(ctx, ctx.round());
}

void ReliableTransport::receive_phase(Context& ctx) {
  delivery_.clear();
  for (const Envelope& env : ctx.inbox()) {
    const std::size_t j = link_index(env.from);
    const auto ack = [&](std::int64_t upto) {
      SendLink& sl = out_[j];
      while (!sl.frames.empty() &&
             sl.frames.front().seq <= static_cast<std::uint64_t>(upto)) {
        sl.frames.pop_front();
      }
    };
    if (env.msg.tag == kTagAck) {
      ack(env.msg.f[0]);
      continue;
    }
    if (env.msg.tag != kTagData) continue;
    ack(env.msg.f[1]);  // piggybacked cumulative ack
    RecvLink& rl = in_[j];
    rl.ack_owed = true;  // every data frame deserves an ack, duplicate or not
    const auto seq = static_cast<std::uint64_t>(env.msg.f[0]);
    if (seq <= rl.cum || rl.buffered.contains(seq)) {
      ++stats_.duplicates_dropped;
      continue;
    }
    Message inner;
    inner.tag = static_cast<std::uint32_t>(env.msg.f[2]);
    for (std::uint32_t i = 3; i < env.msg.used; ++i) {
      inner.f[inner.used++] = env.msg.f[i];
    }
    rl.buffered.emplace(seq, inner);
    // Deliver the contiguous prefix in order.
    for (auto it = rl.buffered.find(rl.cum + 1); it != rl.buffered.end();
         it = rl.buffered.find(rl.cum + 1)) {
      delivery_.push_back({env.from, it->second});
      ++rl.cum;
      rl.buffered.erase(it);
    }
  }
  if (!delivery_.empty()) {
    RelRecvContext sub(ctx, delivery_);
    inner_->receive_phase(sub);
  }
}

bool ReliableTransport::quiescent() const {
  for (std::size_t j = 0; j < out_.size(); ++j) {
    if (!out_[j].pending.empty() || !out_[j].frames.empty()) return false;
    if (in_[j].ack_owed) return false;
  }
  return inner_->quiescent();
}

Round ReliableTransport::next_send_round(Round now) const {
  Round wake = inner_->next_send_round(now);
  for (std::size_t j = 0; j < out_.size(); ++j) {
    if (in_[j].ack_owed || !out_[j].pending.empty()) return now + 1;
    for (const Frame& fr : out_[j].frames) {
      const Round t = fr.next_resend > now + 1 ? fr.next_resend : now + 1;
      if (t < wake) wake = t;
    }
  }
  return wake;
}

ReliableResult run_reliable(
    const Graph& g, const ReliableFactory& make, EngineOptions options,
    ReliableOptions transport_options,
    const std::function<void(NodeId, ReliableTransport&)>& accessor) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<Protocol>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<ReliableTransport>(g, v, make(v),
                                                        transport_options));
  }
  Engine engine(g, std::move(procs), options);
  ReliableResult res;
  res.stats = engine.run();
  for (NodeId v = 0; v < n; ++v) {
    auto& rt = static_cast<ReliableTransport&>(engine.protocol(v));
    res.transport += rt.transport_stats();
    if (accessor) accessor(v, rt);
  }
  return res;
}

}  // namespace dapsp::congest
