// Closed-form round bounds from the paper, used by tests ("the run finished
// within the theorem's bound") and benches ("paper column vs measured
// column").  All formulas are exact-integer upper bounds of the stated
// expressions (ceilings applied pessimistically).
#pragma once

#include <cstdint>

#include "core/key.hpp"

namespace dapsp::core::bounds {

/// Lemma II.14 / Theorem I.1(i): (h,k)-SSP completes by round
/// ceil(Delta*gamma + h + Delta*gamma + k) with gamma = sqrt(hk/Delta),
/// i.e. 2*sqrt(h*k*Delta) + h + k.
std::uint64_t hk_ssp(std::uint64_t h, std::uint64_t k, std::uint64_t delta);

/// Theorem I.1(ii): APSP in 2n*sqrt(Delta) + 2n rounds.
std::uint64_t apsp_pipelined(std::uint64_t n, std::uint64_t delta);

/// Theorem I.1(iii): k-SSP in 2*sqrt(n*k*Delta) + n + k rounds.
std::uint64_t k_ssp_pipelined(std::uint64_t n, std::uint64_t k,
                              std::uint64_t delta);

/// Generic bound for a custom gamma: ceil(Delta*gamma) + h + list-capacity
/// where list capacity = k * (ceil(h/gamma) + 1); reduces to hk_ssp for the
/// paper's gamma.  Used by the gamma ablation.
std::uint64_t hk_ssp_custom_gamma(std::uint64_t h, std::uint64_t k,
                                  std::uint64_t delta, const GammaSq& gamma);

/// Lemma II.15 congestion: per-source short-range congestion <= ceil(sqrt(h)).
std::uint64_t short_range_congestion(std::uint64_t h);

/// Short-range dilation for distances <= Delta: ceil(Delta*sqrt(h/Delta)) + h
/// = ceil(sqrt(h*Delta)) + h (single source; Algorithm 2's schedule uses
/// gamma = sqrt(h/Delta) so that congestion stays sqrt(h)).
std::uint64_t short_range_dilation(std::uint64_t h, std::uint64_t delta);

/// Blocker set size bound q = O(n ln n / h); we report the explicit greedy
/// set-cover guarantee ceil((n/h) * (ln(n^2) + 1)) used by [3].
std::uint64_t blocker_set_size(std::uint64_t n, std::uint64_t h);

/// Lemma III.8: descendant-score update rounds k + h - 1.
std::uint64_t descendant_update(std::uint64_t k, std::uint64_t h);

/// Lemma III.2 total: Algorithm 3 k-SSP rounds O(n*q + sqrt(h*k*Delta_h))
/// with Delta_h the max h'-hop distance used in CSSSP construction (h' = 2h).
/// This is the explicit bound our implementation is tested against:
/// n*q-term uses per-blocker 2n (fwd+rev SSSP) + broadcast.
std::uint64_t blocker_apsp(std::uint64_t n, std::uint64_t k, std::uint64_t q,
                           std::uint64_t h, std::uint64_t delta2h);

/// Theorem I.2 h choice: h = n^{1/2} log^{1/2} n / (W^{1/4} k^{1/4}),
/// clamped to [1, n-1].  (The paper's Step-1/Step-2 balance point.)
std::uint64_t choose_h_for_weight(std::uint64_t n, std::uint64_t k,
                                  std::uint64_t w);

/// Theorem I.3 h choice: h = n^{2/3} log^{2/3} n / (Delta^{1/3} k^{1/3} / n^{1/3}) —
/// the balance of n^2 log n / h against sqrt(h k Delta); explicitly
/// h = (n^2 log n)^{2/3} / (k*Delta)^{1/3}, clamped to [1, n-1].
std::uint64_t choose_h_for_delta(std::uint64_t n, std::uint64_t k,
                                 std::uint64_t delta);

/// Agarwal et al. [3] deterministic APSP bound (comparison row in Table I):
/// O(n^{3/2} log^{1/2} n); we report n^{3/2} * sqrt(log2 n) rounded up.
std::uint64_t agarwal_n32(std::uint64_t n);

/// Theorem I.5: approximate APSP rounds O((n/eps^2) log n); explicit form
/// reported by the bench harness.
std::uint64_t approx_apsp(std::uint64_t n, double eps);

/// Natural-log-based ln(n) >= 1 helper (integer ceiling).
std::uint64_t ceil_ln(std::uint64_t n);
/// ceil(log2(n)) with log2(1) = 1 to avoid zero factors in bounds.
std::uint64_t ceil_log2(std::uint64_t n);

}  // namespace dapsp::core::bounds
