#include "service/query_service.hpp"

#include <charconv>
#include <chrono>
#include <limits>
#include <list>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace dapsp::service {

using graph::kInfDist;
using graph::kNoNode;

// ---------------------------------------------------------------------------
// Sharded LRU cache for reconstructed paths.
//
// Every entry is stamped with the epoch of the snapshot that produced it; a
// lookup only hits when the stored epoch matches the querying snapshot's
// epoch, so a swap implicitly invalidates the whole cache without touching
// it (stale entries age out through normal LRU turnover or are overwritten
// in place on the next miss for their pair).

class QueryService::PathCache {
 public:
  PathCache(std::size_t capacity, std::size_t shards)
      : shards_(std::max<std::size_t>(1, shards)),
        per_shard_capacity_(std::max<std::size_t>(
            1, (capacity + shards_.size() - 1) / shards_.size())) {}

  bool lookup(std::uint64_t key, std::uint64_t epoch,
              std::vector<NodeId>* out) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end() || it->second->second.epoch != epoch) {
      // Absent, or computed against a snapshot that has since been swapped
      // out: a stale path must never be served.
      ++s.misses;
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
    *out = it->second->second.path;
    ++s.hits;
    return true;
  }

  void insert(std::uint64_t key, std::uint64_t epoch,
              const std::vector<NodeId>& path) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      // Raced with another miss, or overwriting a stale-epoch entry; refresh
      // recency and take the new snapshot's answer.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      it->second->second = Entry{epoch, path};
      return;
    }
    s.lru.emplace_front(key, Entry{epoch, path});
    s.map.emplace(key, s.lru.begin());
    if (s.map.size() > per_shard_capacity_) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      ++s.evictions;
    }
  }

  void account(ServiceStats* st) const {
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      st->cache_hits += s.hits;
      st->cache_misses += s.misses;
      st->cache_evictions += s.evictions;
    }
  }

  void reset() {
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      s.hits = s.misses = s.evictions = 0;
    }
  }

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    std::vector<NodeId> path;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<std::uint64_t, Entry>> lru;
    std::unordered_map<std::uint64_t,
                       decltype(lru)::iterator> map;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& shard(std::uint64_t key) {
    // splitmix64 finalizer: adjacent (u,v) keys land in different shards.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return shards_[(x ^ (x >> 31)) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_;
};

// ---------------------------------------------------------------------------
// Lock-free counters; materialized into ServiceStats on demand.
//
// Successful queries feed per-bucket atomic counters mirroring
// obs::Histogram's log-bucket layout, so a snapshot can rebuild a full
// histogram via Histogram::from_raw.  Failed queries only bump errors /
// error_ns: their wall-clock must not distort latency quantiles, and an
// all-error snapshot must render min=0, not a UINT64_MAX sentinel.  Swap
// and rebuild latencies are rare events recorded under a small mutex.

struct QueryService::Recorder {
  struct PerType {
    std::array<std::atomic<std::uint64_t>, obs::Histogram::kBuckets>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> min_ns{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> error_ns{0};
  };
  std::array<PerType, kQueryTypeCount> types;
  std::atomic<std::uint64_t> batches{0};

  mutable std::mutex swap_mu;
  std::uint64_t swaps = 0;            // guarded by swap_mu
  obs::Histogram swap_ns;             // guarded by swap_mu
  obs::Histogram rebuild_ns;          // guarded by swap_mu

  void record(QueryType type, std::uint64_t ns, bool ok) {
    PerType& t = types[static_cast<std::size_t>(type)];
    if (!ok) {
      t.errors.fetch_add(1, std::memory_order_relaxed);
      t.error_ns.fetch_add(ns, std::memory_order_relaxed);
      return;
    }
    t.buckets[obs::Histogram::bucket_index(ns)].fetch_add(
        1, std::memory_order_relaxed);
    t.count.fetch_add(1, std::memory_order_relaxed);
    t.total_ns.fetch_add(ns, std::memory_order_relaxed);
    update_min(t.min_ns, ns);
    update_max(t.max_ns, ns);
  }

  void record_swap(std::uint64_t publish_ns, std::uint64_t build_ns) {
    std::lock_guard lock(swap_mu);
    ++swaps;
    swap_ns.record(publish_ns);
    if (build_ns > 0) rebuild_ns.record(build_ns);
  }

  QueryTypeStats snapshot(std::size_t i) const {
    const PerType& t = types[i];
    std::array<std::uint64_t, obs::Histogram::kBuckets> raw;
    for (std::size_t b = 0; b < raw.size(); ++b) {
      raw[b] = t.buckets[b].load(std::memory_order_relaxed);
    }
    QueryTypeStats out;
    out.latency = obs::Histogram::from_raw(
        raw, t.count.load(std::memory_order_relaxed),
        t.total_ns.load(std::memory_order_relaxed),
        t.min_ns.load(std::memory_order_relaxed),
        t.max_ns.load(std::memory_order_relaxed));
    out.errors = t.errors.load(std::memory_order_relaxed);
    out.error_ns = t.error_ns.load(std::memory_order_relaxed);
    return out;
  }

  void reset() {
    for (PerType& t : types) {
      for (auto& b : t.buckets) b = 0;
      t.count = 0;
      t.total_ns = 0;
      t.min_ns = std::numeric_limits<std::uint64_t>::max();
      t.max_ns = 0;
      t.errors = 0;
      t.error_ns = 0;
    }
    batches = 0;
    std::lock_guard lock(swap_mu);
    swaps = 0;
    swap_ns = obs::Histogram{};
    rebuild_ns = obs::Histogram{};
  }

  static void update_min(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v < cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v > cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
};

// ---------------------------------------------------------------------------

QueryService::QueryService(DistanceOracle oracle, QueryServiceConfig cfg)
    : QueryService(std::make_shared<FlatSnapshot>(std::move(oracle)), cfg) {}

QueryService::QueryService(std::shared_ptr<OracleSnapshot> snapshot,
                           QueryServiceConfig cfg)
    : cfg_(cfg),
      snap_(std::shared_ptr<const OracleSnapshot>(std::move(snapshot))),
      recorder_(std::make_unique<Recorder>()),
      pool_(std::make_unique<util::ThreadPool>(cfg.threads)) {
  if (cfg_.path_cache_capacity > 0) {
    cache_ = std::make_unique<PathCache>(cfg_.path_cache_capacity,
                                         cfg_.cache_shards);
  }
}

QueryService::~QueryService() = default;

std::uint64_t QueryService::swap_snapshot(
    std::shared_ptr<OracleSnapshot> next, std::uint64_t rebuild_ns) {
  const auto t0 = std::chrono::steady_clock::now();
  // Stamp the epoch while we still hold the only reference, then publish.
  // Readers that loaded the old snapshot keep serving from it until their
  // queries finish; its destructor runs when the last reference drops.
  const std::uint64_t e =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  next->set_epoch(e);
  std::shared_ptr<const OracleSnapshot> retired{std::move(next)};
  {
    std::lock_guard lock(snap_mu_);
    snap_.swap(retired);
  }
  // `retired` now holds the previous snapshot; if no in-flight query pins
  // it, its destructor runs here -- outside the lock, so a slow teardown
  // never stalls readers.
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  recorder_->record_swap(ns, rebuild_ns);
  return e;
}

QueryResult QueryService::execute(const OracleSnapshot& snap,
                                  const Query& q) const {
  QueryResult r;
  r.type = q.type;
  r.u = q.u;
  r.v = q.v;
  const NodeId n = snap.node_count();
  if (q.u >= n || q.v >= n) {
    r.error = "node id out of range (n=" + std::to_string(n) + ")";
    return r;
  }
  switch (q.type) {
    case QueryType::kDist:
      r.ok = true;
      r.dist = snap.dist(q.u, q.v);
      break;
    case QueryType::kNextHop:
      if (!snap.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      r.ok = true;
      r.dist = snap.dist(q.u, q.v);
      r.next_hop = snap.next_hop(q.u, q.v);
      break;
    case QueryType::kPath: {
      if (!snap.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      r.ok = true;
      r.dist = snap.dist(q.u, q.v);
      if (r.dist == kInfDist) break;  // unreachable: valid, empty path
      const std::uint64_t key =
          static_cast<std::uint64_t>(q.u) * n + q.v;
      if (cache_ && cache_->lookup(key, snap.epoch(), &r.path)) break;
      auto p = snap.path(q.u, q.v);
      // dist is finite and the snapshot has a next-hop table, so
      // reconstruction can only fail on a corrupt table.
      if (!p) {
        r.ok = false;
        r.error = "path reconstruction failed (corrupt next-hop table)";
        return r;
      }
      r.path = std::move(*p);
      if (cache_) cache_->insert(key, snap.epoch(), r.path);
      break;
    }
  }
  return r;
}

QueryResult QueryService::timed_execute(const OracleSnapshot& snap,
                                        const Query& q) const {
  const auto t0 = std::chrono::steady_clock::now();
  QueryResult r = execute(snap, q);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  recorder_->record(q.type, ns, r.ok);
  return r;
}

QueryResult QueryService::query(const Query& q) const {
  // Pin the serving snapshot for the duration of this query: a concurrent
  // swap retires the old snapshot only after this reference drops.
  const std::shared_ptr<const OracleSnapshot> snap = snapshot();
  return timed_execute(*snap, q);
}

std::vector<QueryResult> QueryService::query_batch(
    std::span<const Query> queries) const {
  // One snapshot for the whole batch: a swap mid-batch never yields a
  // response mixing epochs.
  const std::shared_ptr<const OracleSnapshot> snap = snapshot();
  std::vector<QueryResult> results(queries.size());
  pool_->parallel_for(queries.size(), [&](std::size_t i) {
    results[i] = timed_execute(*snap, queries[i]);
  });
  recorder_->batches.fetch_add(1, std::memory_order_relaxed);
  return results;
}

ServiceStats QueryService::stats() const {
  ServiceStats st;
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    st.per_type[i] = recorder_->snapshot(i);
  }
  st.batches = recorder_->batches.load();
  if (cache_) cache_->account(&st);
  {
    std::lock_guard lock(recorder_->swap_mu);
    st.swaps = recorder_->swaps;
    st.swap_ns = recorder_->swap_ns;
    st.rebuild_ns = recorder_->rebuild_ns;
  }
  const std::shared_ptr<const OracleSnapshot> snap = snapshot();
  st.snapshot_epoch = snap->epoch();
  st.shards = snap->shard_layout();
  if (const obs::CritPathSummary* cp = snap->build_critpath()) {
    st.last_build_critpath = *cp;
  }
  return st;
}

void QueryService::reset_stats() {
  recorder_->reset();
  if (cache_) cache_->reset();
}

// ---------------------------------------------------------------------------
// Text protocol.

namespace {

std::optional<NodeId> parse_node(std::string_view tok) {
  std::uint32_t out = 0;
  const auto* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, out);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return out;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

/// Structured serve-loop error: in JSON mode carries a machine-readable
/// `code` alongside the human message (the message may echo user input, so
/// it goes through the escaping writer).
void write_serve_error(std::ostream& out, bool json, std::string_view code,
                       const std::string& msg) {
  if (json) {
    out << "{\"ok\":false,\"code\":\"" << code << "\",\"error\":";
    obs::write_json_string(out, msg);
    out << "}\n";
  } else {
    out << "error: " << msg << "\n";
  }
}

}  // namespace

std::optional<Query> QueryService::parse_query(std::string_view line,
                                               std::string* error) {
  const auto toks = split_ws(line);
  if (toks.size() != 3) {
    if (error) *error = "expected '<dist|next|path> U V'";
    return std::nullopt;
  }
  Query q;
  if (toks[0] == "dist") {
    q.type = QueryType::kDist;
  } else if (toks[0] == "next") {
    q.type = QueryType::kNextHop;
  } else if (toks[0] == "path") {
    q.type = QueryType::kPath;
  } else {
    if (error) {
      *error = "unknown query type '" + std::string(toks[0]) +
               "' (dist|next|path)";
    }
    return std::nullopt;
  }
  const auto u = parse_node(toks[1]);
  const auto v = parse_node(toks[2]);
  if (!u || !v) {
    if (error) *error = "node ids must be non-negative integers";
    return std::nullopt;
  }
  q.u = *u;
  q.v = *v;
  return q;
}

void QueryService::write_result_text(const QueryResult& r, std::ostream& out) {
  if (!r.ok) {
    out << "error: " << r.error << "\n";
    return;
  }
  out << query_type_name(r.type) << " " << r.u << " " << r.v << " = ";
  if (r.dist == kInfDist) {
    out << "unreachable\n";
    return;
  }
  switch (r.type) {
    case QueryType::kDist:
      out << r.dist;
      break;
    case QueryType::kNextHop:
      out << (r.next_hop == kNoNode ? std::string("-")
                                    : std::to_string(r.next_hop))
          << " (dist " << r.dist << ")";
      break;
    case QueryType::kPath:
      for (std::size_t i = 0; i < r.path.size(); ++i) {
        out << (i ? " " : "") << r.path[i];
      }
      out << " (dist " << r.dist << ", " << (r.path.size() - 1) << " hops)";
      break;
  }
  out << "\n";
}

void QueryService::write_result_json(const QueryResult& r, std::ostream& out) {
  out << "{\"type\":\"" << query_type_name(r.type) << "\",\"u\":" << r.u
      << ",\"v\":" << r.v << ",\"ok\":" << (r.ok ? "true" : "false");
  if (!r.ok) {
    // r.error embeds caller-controlled text (e.g. the unknown query token);
    // escape it or a quote in the input corrupts the JSONL stream.
    out << ",\"error\":";
    obs::write_json_string(out, r.error);
    out << "}\n";
    return;
  }
  out << ",\"dist\":";
  if (r.dist == kInfDist) {
    out << "null";
  } else {
    out << r.dist;
  }
  if (r.type == QueryType::kNextHop && r.next_hop != kNoNode) {
    out << ",\"next\":" << r.next_hop;
  }
  if (r.type == QueryType::kPath && r.dist != kInfDist) {
    out << ",\"path\":[";
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      out << (i ? "," : "") << r.path[i];
    }
    out << "]";
  }
  out << "}\n";
}

void QueryService::serve_batch_directive(std::istream& in, std::ostream& out,
                                         const ServeOptions& opts,
                                         std::uint64_t count,
                                         int* malformed) const {
  if (count > cfg_.max_batch) {
    // Reject the batch whole: consume and discard its body so an oversized
    // request never degrades into best-effort line-by-line answers, then
    // report one structured error for it.
    std::string line;
    for (std::uint64_t seen = 0; seen < count && std::getline(in, line);) {
      const auto toks = split_ws(line);
      if (toks.empty() || toks[0].front() == '#') continue;
      ++seen;
    }
    ++*malformed;
    write_serve_error(out, opts.json, "batch_too_large",
                      "batch of " + std::to_string(count) +
                          " exceeds max batch size " +
                          std::to_string(cfg_.max_batch));
    return;
  }
  // Collect the body (blank lines and comments are skipped, as outside a
  // batch).  EOF before `count` query lines rejects the batch whole.
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(count));
  std::string line;
  while (lines.size() < count && std::getline(in, line)) {
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0].front() == '#') continue;
    lines.push_back(line);
  }
  if (lines.size() < count) {
    ++*malformed;
    write_serve_error(out, opts.json, "batch_truncated",
                      "batch of " + std::to_string(count) +
                          " truncated by end of input after " +
                          std::to_string(lines.size()) + " lines");
    return;
  }
  // Parse every line; parse failures keep their position so responses line
  // up 1:1 with requests.
  std::vector<std::optional<Query>> parsed(lines.size());
  std::vector<std::string> parse_errors(lines.size());
  std::vector<Query> good;
  good.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    parsed[i] = parse_query(lines[i], &parse_errors[i]);
    if (parsed[i]) good.push_back(*parsed[i]);
  }
  const std::vector<QueryResult> results = query_batch(good);
  std::size_t next_result = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!parsed[i]) {
      ++*malformed;
      write_serve_error(out, opts.json, "parse_error", parse_errors[i]);
      continue;
    }
    const QueryResult& r = results[next_result++];
    if (opts.json) {
      write_result_json(r, out);
    } else {
      write_result_text(r, out);
    }
  }
}

int QueryService::serve_stream(std::istream& in, std::ostream& out,
                               const ServeOptions& opts) const {
  const bool json = opts.json;
  int malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0].front() == '#') continue;
    if (toks[0] == "quit" || toks[0] == "exit") break;
    if (toks[0] == "stats") {
      const ServiceStats st = stats();
      if (json) {
        obs::JsonWriter w(out);
        w.begin_object().key("stats");
        st.write_json(w);
        w.end_object();
        out << "\n";
      } else {
        out << st.summary() << "\n";
      }
      continue;
    }
    if (toks[0] == "batch") {
      std::uint64_t count = 0;
      bool count_ok = toks.size() == 2;
      if (count_ok) {
        const auto* end = toks[1].data() + toks[1].size();
        const auto [ptr, ec] = std::from_chars(toks[1].data(), end, count);
        count_ok = ec == std::errc{} && ptr == end;
      }
      if (!count_ok) {
        ++malformed;
        write_serve_error(out, json, "parse_error",
                          "batch needs a count: 'batch N'");
        continue;
      }
      serve_batch_directive(in, out, opts, count, &malformed);
      continue;
    }
    if (toks[0] == "rebuild") {
      if (!opts.on_rebuild) {
        ++malformed;
        write_serve_error(out, json, "rebuild_unavailable",
                          "no rebuild hook installed for this session");
        continue;
      }
      const RebuildOutcome rc = opts.on_rebuild();
      if (json) {
        out << "{\"rebuild\":{\"ok\":" << (rc.ok ? "true" : "false");
        if (rc.ok) {
          out << ",\"epoch\":" << rc.epoch << ",\"build_ns\":" << rc.build_ns;
        } else {
          out << ",\"error\":";
          obs::write_json_string(out, rc.error);
        }
        out << "}}\n";
      } else if (rc.ok) {
        out << "rebuild: epoch=" << rc.epoch << " build_ns=" << rc.build_ns
            << "\n";
      } else {
        out << "error: rebuild failed: " << rc.error << "\n";
      }
      continue;
    }
    std::string error;
    const auto q = parse_query(line, &error);
    if (!q) {
      ++malformed;
      write_serve_error(out, json, "parse_error", error);
      continue;
    }
    const QueryResult r = query(*q);
    if (json) {
      write_result_json(r, out);
    } else {
      write_result_text(r, out);
    }
  }
  return malformed;
}

}  // namespace dapsp::service
