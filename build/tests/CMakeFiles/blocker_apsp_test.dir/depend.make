# Empty dependencies file for blocker_apsp_test.
# This may be replaced when dependencies are built.
