// Wire protocol of the socket backend.
//
// Framing mirrors serve/wire.*: every frame is `u32le length | u8 type |
// payload`, where length counts the type byte plus the payload and is
// capped at kMaxFrameBytes (a garbled length fails loudly instead of
// allocating gigabytes).  One coordinator talks to W workers in strict
// lockstep; the conversation per worker is
//
//   worker -> HELLO{rank}
//   coord  -> JOB{JobSpec}
//   per engine run:
//     worker -> RUN_BEGIN{run_idx, n, links}          (byte-equal across W)
//     per executed round:
//       worker -> ROUND{run_idx, round, digest, owned sender slice}
//       coord  -> DELIVER{reassembled canonical round block}
//     worker -> RUN_END{run_idx, rounds, stats blob}  (byte-equal across W)
//   worker -> RESULT_META{owned rows, chunk count, rows digest | shared blob}
//   worker -> RESULT_ROWS{row chunk} * chunk_count
//   worker -> DONE
//   coord  -> BYE
//
// Either side may send ABORT{message} instead of its next frame; the
// receiver surfaces the message and tears down.  All multi-byte integers
// are little-endian via the canonical-block helpers in congest/plane.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "congest/metrics.hpp"
#include "congest/plane.hpp"
#include "graph/graph.hpp"

namespace dapsp::net {

/// Same ceiling as serve/wire.*: 64 MiB.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kJob = 2,
  kRunBegin = 3,
  kRound = 4,
  kDeliver = 5,
  kRunEnd = 6,
  kResultMeta = 7,
  kResultRows = 8,
  kDone = 9,
  kBye = 10,
  kAbort = 11,
};

const char* frame_type_name(FrameType t) noexcept;

struct Frame {
  FrameType type = FrameType::kAbort;
  std::string payload;
};

/// Writes one frame (single send of header + payload).  Throws SocketClosed
/// when the peer is gone, SocketError on oversize payloads.
void write_frame(int fd, FrameType type, std::string_view payload);

/// Reads one frame within `timeout_ms`.  Returns nullopt on a clean EOF at
/// a frame boundary (orderly shutdown); throws SocketTimeout / SocketClosed
/// / SocketError otherwise (including unknown type bytes and bad lengths).
std::optional<Frame> read_frame(int fd, int timeout_ms);

/// Contiguous vertex range owned by `rank` out of `workers` shards:
/// [n*rank/workers, n*(rank+1)/workers).  Ranges tile [0, n) in rank order
/// and differ in size by at most one vertex.
struct ShardRange {
  graph::NodeId lo = 0;
  graph::NodeId hi = 0;  ///< exclusive
};
ShardRange shard_range(graph::NodeId n, std::uint32_t rank,
                       std::uint32_t workers) noexcept;

/// Extracts the sender records owned by [lo, hi) from a canonical round
/// block (see congest/plane.hpp) into `out` as `u32 owned_count | records`.
/// Header-only walk -- byte_len lets it skip message payloads.  Throws
/// std::runtime_error on a malformed block.
void slice_owned(std::string_view block, graph::NodeId lo, graph::NodeId hi,
                 std::string& out);

/// Sum of the wire message bytes a canonical block carries (8 + 8*used per
/// message) -- the coordinator's independent check against the workers'
/// RunStats::message_bytes.  Throws std::runtime_error on malformed input.
std::uint64_t block_message_bytes(std::string_view block);

/// Serializes the deterministic subset of RunStats -- every field except
/// the wall-clock timings/histograms and per_round_messages (off in oracle
/// builds), fault counters included so a nonzero count can never hide.
/// Byte-equality of two encodings == equality of that subset, which is how
/// the coordinator compares workers without field-by-field plumbing.
void append_run_stats(std::string& out, const congest::RunStats& s);

/// Inverse of append_run_stats; wall-clock fields come back zeroed.
/// Throws std::runtime_error on malformed input.
congest::RunStats parse_run_stats(congest::BlockReader& r);

/// Everything a worker needs to replicate the build, shipped in one JOB
/// frame (the graph travels as its graph::write_graph text image, which
/// round-trips canonically because GraphBuilder::finish sorts adjacency).
struct JobSpec {
  std::uint32_t rank = 0;
  std::uint32_t workers = 1;
  std::uint32_t solver = 0;  ///< service::Solver enum value
  std::uint32_t h = 0;
  double eps = 0.5;
  bool dense = false;             ///< force the dense fallback engine
  std::uint32_t engine_threads = 0;  ///< per-worker pool size; 0 = global
  std::uint32_t timeout_ms = 0;
  std::uint64_t crash_at = 0;  ///< test hook: _exit before the Nth exchange
  std::string graph_text;
};

void encode_job(std::string& out, const JobSpec& job);
JobSpec decode_job(std::string_view payload);

// Small helpers shared by coordinator and worker payload codecs.
void append_string(std::string& out, std::string_view s);
std::string read_string(congest::BlockReader& r);

/// Incremental FNV-1a 64: seed with kFnvBasis, fold chunks in order;
/// equals congest::fnv1a64 of the concatenation.  Used for the result-row
/// digests, which are hashed chunk by chunk on both sides.
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
inline std::uint64_t fnv1a64_acc(std::uint64_t h,
                                 std::string_view bytes) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace dapsp::net
