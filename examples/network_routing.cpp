// Routing-table construction on a mesh network with a handful of gateway
// nodes, using the faster blocker-set k-SSP algorithm (Algorithm 3 /
// Theorem I.2).  Every node ends up knowing its distance and next-hop-back
// (last edge) toward each gateway -- the classic distance-vector use case
// the CONGEST k-SSP problem models.
//
//   ./network_routing [rows] [cols] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/blocker_apsp.hpp"
#include "core/pipelined_ssp.hpp"
#include "core/routing.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main(int argc, char** argv) {
  using namespace dapsp;

  const graph::NodeId rows =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 4;
  const graph::NodeId cols =
      argc > 2 ? static_cast<graph::NodeId>(std::atoi(argv[2])) : 5;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  // Mesh with link costs 1..10; a few zero-cost links model co-located
  // routers connected by a backplane.
  graph::WeightSpec weights;
  weights.min_weight = 1;
  weights.max_weight = 10;
  weights.zero_fraction = 0.15;
  const graph::Graph g = graph::grid(rows, cols, weights, seed);

  // Gateways: the four mesh corners.
  core::BlockerApspParams params;
  params.sources = {0, cols - 1, (rows - 1) * cols, rows * cols - 1};
  params.h = 3;

  std::cout << "mesh " << rows << "x" << cols << ", gateways:";
  for (const auto s : params.sources) std::cout << ' ' << s;
  std::cout << "\n\n";

  const core::BlockerApspResult res = core::blocker_apsp(g, params);

  std::cout << "Algorithm 3 phases (rounds): cssp=" << res.cssp_rounds
            << " blocker=" << res.blocker_rounds << " sssp=" << res.sssp_rounds
            << " combine=" << res.combine_rounds
            << "  total=" << res.stats.rounds << "\n";
  std::cout << "blocker set size q=" << res.blockers.size() << " (h=" << res.h
            << ")\n\n";

  std::cout << "routing table (dist/last-hop toward each gateway):\n  node |";
  for (const auto s : res.sources) {
    std::cout << std::setw(10) << ("gw " + std::to_string(s)) << " |";
  }
  std::cout << "\n";
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::cout << "  " << std::setw(4) << v << " |";
    for (std::size_t i = 0; i < res.sources.size(); ++i) {
      std::string cell;
      if (res.dist[i][v] == graph::kInfDist) {
        cell = "--";
      } else {
        cell = std::to_string(res.dist[i][v]);
        if (res.parent[i][v] != graph::kNoNode) {
          cell += "/" + std::to_string(res.parent[i][v]);
        }
      }
      std::cout << std::setw(10) << cell << " |";
    }
    std::cout << "\n";
  }

  // Full next-hop forwarding: build hop-by-hop tables from an APSP run and
  // push a packet from the last node to each gateway.
  const auto apsp = core::pipelined_apsp(g, graph::max_finite_distance(g));
  const auto tables = core::build_routing_tables(g, apsp);
  const graph::NodeId src = rows * cols - 1;
  std::cout << "\nforwarding from node " << src << ":\n";
  for (const auto gw : res.sources) {
    const auto r = core::route(g, tables, src, gw);
    if (!r) {
      std::cout << "  -> " << gw << ": unreachable\n";
      continue;
    }
    std::cout << "  -> " << gw << " (cost " << r->cost << "): ";
    for (std::size_t i = 0; i < r->path.size(); ++i) {
      std::cout << (i ? " > " : "") << r->path[i];
    }
    std::cout << "\n";
  }
  return 0;
}
