# Empty dependencies file for bench_scaled_vs_pipelined.
# This may be replaced when dependencies are built.
