// Value types shared by the analytics query layer (src/query/) and its
// sequential reference implementations (src/seq/).
//
// Every analytics answer is defined in terms of the repo-wide *canonical
// path* contract (see seq/dijkstra.hpp): among equal-weight paths the
// fewest-hop one wins, and among equal (weight, hops) the smaller
// predecessor id wins at every node, making the chosen path unique.  Both
// the closure-backed engine (query/analytics.hpp) and the sequential
// references (seq/constrained.hpp, seq/yen.hpp, seq/centrality.hpp)
// implement these semantics independently, which is what makes the
// differential tests in tests/property_test.cpp exact comparisons instead
// of tolerance checks (betweenness excepted: its dependency accumulation is
// floating point, so only it compares with a tolerance).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dapsp::query {

using graph::NodeId;
using graph::Weight;

/// One concrete route: node sequence plus its total weight.  `nodes` always
/// starts at the query source and ends at the target; a single-node route
/// (source == target) has weight 0.
struct Route {
  Weight weight = 0;
  std::vector<NodeId> nodes;

  std::uint32_t hops() const {
    return nodes.empty() ? 0 : static_cast<std::uint32_t>(nodes.size() - 1);
  }

  friend bool operator==(const Route&, const Route&) = default;
};

/// Total order used to rank alternative routes and Yen candidates:
/// (weight, hops, lexicographic node sequence).  Strict-weak and total over
/// distinct simple paths, so both the engine and the reference sort
/// candidate sets identically.
inline bool route_less(const Route& a, const Route& b) {
  if (a.weight != b.weight) return a.weight < b.weight;
  if (a.nodes.size() != b.nodes.size()) return a.nodes.size() < b.nodes.size();
  return a.nodes < b.nodes;
}

/// Constraints for a `route` query.  All default-constructed fields mean
/// "unconstrained", i.e. the query degenerates to the canonical shortest
/// path.
struct RouteConstraints {
  /// Maximum number of edges on the route; 0 = unlimited.  Values >= n-1
  /// are vacuous and treated as unlimited.
  std::uint32_t max_hops = 0;
  /// Nodes the route must not visit.  A source or target listed here makes
  /// the query infeasible.
  std::vector<NodeId> avoid_nodes;
  /// Node pairs the route must not traverse.  For an undirected graph the
  /// pair bans the link in both directions; for a directed graph only the
  /// listed orientation.
  std::vector<std::pair<NodeId, NodeId>> avoid_edges;

  bool unconstrained() const {
    return max_hops == 0 && avoid_nodes.empty() && avoid_edges.empty();
  }

  friend bool operator==(const RouteConstraints&,
                         const RouteConstraints&) = default;
};

/// Per-source row of a whole-graph report.  All quantities are over
/// *finite* distances only, so they stay well-defined on graphs that are
/// not strongly connected (see docs/QUERY.md).
struct SourceReport {
  Weight eccentricity = 0;    ///< max finite dist from this source
  Weight farness = 0;         ///< sum of finite dists from this source
  std::uint32_t reached = 0;  ///< targets (!= source) with finite dist

  friend bool operator==(const SourceReport&, const SourceReport&) = default;
};

/// Whole-graph distance report: radius/diameter are the min/max source
/// eccentricity, reachable_pairs counts ordered (s, t != s) pairs with
/// finite distance.
struct GraphReport {
  Weight radius = 0;
  Weight diameter = 0;
  std::uint64_t reachable_pairs = 0;
  std::vector<SourceReport> per_source;

  friend bool operator==(const GraphReport&, const GraphReport&) = default;
};

/// Deterministic source sample for betweenness: `samples` == 0 (or >= n)
/// selects every source; otherwise sources are taken at a fixed stride so a
/// sample spreads over the id range instead of clustering at 0.  Shared by
/// the engine and the reference so a differential run scores the same
/// source set.
inline std::vector<NodeId> betweenness_sources(NodeId n,
                                               std::uint32_t samples) {
  std::vector<NodeId> out;
  if (n == 0) return out;
  if (samples == 0 || samples >= n) {
    out.resize(n);
    for (NodeId i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(samples);
  for (std::uint32_t i = 0; i < samples; ++i) {
    out.push_back(static_cast<NodeId>(
        (static_cast<std::uint64_t>(i) * n) / samples));
  }
  return out;
}

}  // namespace dapsp::query
