file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_exact_apsp.dir/bench_table1_exact_apsp.cpp.o"
  "CMakeFiles/bench_table1_exact_apsp.dir/bench_table1_exact_apsp.cpp.o.d"
  "bench_table1_exact_apsp"
  "bench_table1_exact_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_exact_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
