#include "service/oracle.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "congest/engine.hpp"
#include "congest/faults.hpp"
#include "core/approx_apsp.hpp"
#include "core/blocker_apsp.hpp"
#include "core/pipelined_ssp.hpp"
#include "core/scaled_apsp.hpp"
#include "graph/properties.hpp"
#include "obs/trace.hpp"
#include "seq/dijkstra.hpp"
#include "util/int_math.hpp"

namespace dapsp::service {

using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;

const char* solver_name(Solver s) {
  switch (s) {
    case Solver::kPipelined: return "pipelined";
    case Solver::kBlocker: return "blocker";
    case Solver::kScaled: return "scaled";
    case Solver::kApprox: return "approx";
    case Solver::kReference: return "reference";
  }
  return "?";
}

Solver parse_solver(const std::string& word) {
  if (word == "pipelined") return Solver::kPipelined;
  if (word == "blocker") return Solver::kBlocker;
  if (word == "scaled") return Solver::kScaled;
  if (word == "approx") return Solver::kApprox;
  if (word == "reference") return Solver::kReference;
  throw std::invalid_argument(
      "unknown solver '" + word +
      "' (pipelined|blocker|scaled|approx|reference)");
}

std::size_t DistanceOracle::memory_bytes() const noexcept {
  return dist_.capacity() * sizeof(Weight) + next_.capacity() * sizeof(NodeId);
}

std::optional<std::vector<NodeId>> DistanceOracle::path(NodeId u,
                                                        NodeId v) const {
  if (u >= n_ || v >= n_ || next_.empty()) return std::nullopt;
  if (u == v) return std::vector<NodeId>{u};
  if (dist(u, v) == kInfDist) return std::nullopt;
  std::vector<NodeId> out;
  out.reserve(8);
  out.push_back(u);
  NodeId cur = u;
  while (cur != v) {
    // Each hop strictly shrinks the remaining hop count, so a walk longer
    // than n means the table is corrupt, not slow.
    if (out.size() > n_) return std::nullopt;
    const NodeId hop = next_hop(cur, v);
    if (hop == kNoNode) return std::nullopt;
    out.push_back(hop);
    cur = hop;
  }
  return out;
}

namespace {

void check_square(const std::vector<std::vector<Weight>>& dist) {
  const std::size_t n = dist.size();
  util::check(n > 0, "make_oracle: empty distance matrix");
  for (const auto& row : dist) {
    util::check(row.size() == n, "make_oracle: distance matrix not square");
  }
}

std::vector<Weight> flatten(const std::vector<std::vector<Weight>>& dist) {
  const std::size_t n = dist.size();
  std::vector<Weight> flat;
  flat.reserve(n * n);
  for (const auto& row : dist) flat.insert(flat.end(), row.begin(), row.end());
  return flat;
}

/// next_hop(s, v) for every v of one source: all nodes on the shortest path
/// s -> v share the same first hop, so one backward walk per unresolved node
/// resolves its whole parent chain at once.  `stack` is caller-provided
/// scratch so a full-matrix build reuses one allocation across sources.
void fill_next_hops_from_parents(NodeId s, NodeId n,
                                 std::span<const Weight> dist_row,
                                 std::span<const NodeId> parent_row,
                                 NodeId* next_row, std::vector<NodeId>& stack) {
  for (NodeId v = 0; v < n; ++v) {
    if (v == s || dist_row[v] == kInfDist || next_row[v] != kNoNode) continue;
    stack.clear();
    NodeId cur = v;
    // Walk toward s until we hit a node whose first hop is known or whose
    // parent is s itself.
    while (true) {
      util::check(stack.size() <= n, "make_oracle: parent chain has a cycle");
      const NodeId p = parent_row[cur];
      util::check(p != kNoNode && p < n,
                  "make_oracle: parent chain does not reach its source");
      if (p == s || next_row[p] != kNoNode) break;
      stack.push_back(cur);
      cur = p;
    }
    const NodeId hop = parent_row[cur] == s ? cur : next_row[parent_row[cur]];
    next_row[cur] = hop;
    for (const NodeId w : stack) next_row[w] = hop;
  }
}

/// Fault-plan safety net for engine-backed builds: when the process-global
/// fault plan is active, an unreachable entry in the result may mean the
/// faults (a crashed cut vertex, unrecovered losses) severed pairs that the
/// real graph connects -- silently serving kInfDist for them would be a
/// wrong answer wearing an honest face.  Compare the oracle's infinite
/// entries against plain BFS reachability on g and fail loudly on mismatch.
void check_fault_partition(const Graph& g, const DistanceOracle& o) {
  const congest::FaultPlan* plan = congest::Engine::global_fault_plan();
  if (plan == nullptr || !plan->enabled()) return;
  const NodeId n = g.node_count();
  std::vector<std::uint8_t> seen(n);
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    queue.assign(1, s);
    seen[s] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const auto& e : g.out_edges(queue[head])) {
        if (!seen[e.to]) {
          seen[e.to] = 1;
          queue.push_back(e.to);
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (seen[v] && o.dist(s, v) == kInfDist) {
        throw std::runtime_error(
            "build_oracle: fault plan \"" + plan->spec() +
            "\" partitioned the run: " + std::to_string(v) +
            " is reachable from " + std::to_string(s) +
            " in the graph but the solver found no distance (crashed node "
            "on every path, or losses the protocol could not recover)");
      }
    }
  }
}

DistanceOracle build_oracle_impl(const Graph& g,
                                 const OracleBuildOptions& opts);

/// Installs a work-item-recording trace recorder as the process-global
/// recorder for the duration of one oracle build, so the engines the solver
/// constructs internally feed the critical-path analyzer.  Only engaged
/// when no global recorder exists -- an already-installed one (the CLI's
/// --trace flags) owns the observation and its own export carries the
/// analysis.  Engine ctors latch the global under the same single-threaded
/// setup contract as set_global_recorder itself.
class ScopedBuildRecorder {
 public:
  explicit ScopedBuildRecorder(bool enabled) {
    if (!enabled || congest::Engine::global_recorder() != nullptr) return;
    obs::TraceRecorder::Options ropt;
    ropt.work_item_capacity = std::size_t{1} << 20;
    rec_ = std::make_unique<obs::TraceRecorder>(ropt);
    congest::Engine::set_global_recorder(rec_.get());
  }
  ~ScopedBuildRecorder() {
    if (rec_) congest::Engine::set_global_recorder(nullptr);
  }
  ScopedBuildRecorder(const ScopedBuildRecorder&) = delete;
  ScopedBuildRecorder& operator=(const ScopedBuildRecorder&) = delete;

  const obs::TraceRecorder* recorder() const noexcept { return rec_.get(); }

 private:
  std::unique_ptr<obs::TraceRecorder> rec_;
};

}  // namespace

void next_hops_from_parents(NodeId s, NodeId n,
                            std::span<const Weight> dist_row,
                            std::span<const NodeId> parent_row,
                            NodeId* next_row) {
  std::vector<NodeId> stack;
  fill_next_hops_from_parents(s, n, dist_row, parent_row, next_row, stack);
}

DistanceOracle make_oracle(const std::vector<std::vector<Weight>>& dist,
                           const std::vector<std::vector<NodeId>>& parent,
                           OracleMeta meta) {
  check_square(dist);
  const NodeId n = static_cast<NodeId>(dist.size());
  DistanceOracle o;
  o.n_ = n;
  o.exact_ = meta.exact;
  o.meta_ = std::move(meta);
  o.dist_ = flatten(dist);
  if (!parent.empty()) {
    util::check(parent.size() == dist.size() && parent[0].size() == dist.size(),
                "make_oracle: parent matrix shape mismatch");
    o.next_.assign(static_cast<std::size_t>(n) * n, kNoNode);
    std::vector<NodeId> stack;
    for (NodeId s = 0; s < n; ++s) {
      fill_next_hops_from_parents(s, n, dist[s], parent[s],
                                  o.next_.data() + o.flat(s, 0), stack);
    }
  }
  return o;
}

DistanceOracle make_oracle_from_distances(
    const Graph& g, const std::vector<std::vector<Weight>>& dist,
    const std::vector<std::vector<std::uint32_t>>& hops, OracleMeta meta) {
  check_square(dist);
  util::check(g.node_count() == dist.size(),
              "make_oracle_from_distances: matrix does not match graph");
  util::check(hops.size() == dist.size(),
              "make_oracle_from_distances: hops matrix shape mismatch");
  const NodeId n = static_cast<NodeId>(dist.size());
  DistanceOracle o;
  o.n_ = n;
  o.exact_ = meta.exact;
  o.meta_ = std::move(meta);
  o.dist_ = flatten(dist);
  o.next_.assign(static_cast<std::size_t>(n) * n, kNoNode);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || dist[u][v] == kInfDist) continue;
      NodeId best = kNoNode;
      std::uint32_t best_h = 0;
      for (const auto& e : g.out_edges(u)) {
        const Weight dw = dist[e.to][v];
        if (dw == kInfDist || e.weight + dw != dist[u][v]) continue;
        const std::uint32_t hw = hops[e.to][v];
        if (best == kNoNode || hw < best_h || (hw == best_h && e.to < best)) {
          best = e.to;
          best_h = hw;
        }
      }
      util::check(best != kNoNode,
                  "make_oracle_from_distances: no edge realizes dist(u,v)");
      o.next_[o.flat(u, v)] = best;
    }
  }
  return o;
}

DistanceOracle make_oracle_from_rows(NodeId n, std::vector<Weight> dist,
                                     std::vector<NodeId> next,
                                     OracleMeta meta) {
  const std::size_t cells = static_cast<std::size_t>(n) * n;
  util::check(n > 0, "make_oracle_from_rows: empty oracle");
  util::check(dist.size() == cells,
              "make_oracle_from_rows: dist table is not n*n");
  util::check(next.empty() || next.size() == cells,
              "make_oracle_from_rows: next table is not n*n");
  DistanceOracle o;
  o.n_ = n;
  o.exact_ = meta.exact;
  o.meta_ = std::move(meta);
  o.dist_ = std::move(dist);
  o.next_ = std::move(next);
  return o;
}

DistanceOracle build_oracle(const Graph& g, const OracleBuildOptions& opts) {
  util::check(g.node_count() > 0, "build_oracle: empty graph");
  // kReference never touches the engine: no fault plan can have bent it,
  // and there is no round structure for the profiler to observe.
  const ScopedBuildRecorder profile(opts.critpath &&
                                    opts.solver != Solver::kReference);
  DistanceOracle o = build_oracle_impl(g, opts);
  if (opts.solver != Solver::kReference) check_fault_partition(g, o);
  if (profile.recorder() != nullptr) {
    o.meta_.critpath =
        obs::summarize(obs::analyze_critical_path(*profile.recorder()));
  }
  return o;
}

namespace {

DistanceOracle build_oracle_impl(const Graph& g,
                                 const OracleBuildOptions& opts) {
  const NodeId n = g.node_count();
  switch (opts.solver) {
    case Solver::kPipelined: {
      const Weight delta = graph::max_finite_distance(g);
      auto res = core::pipelined_apsp(g, delta);
      return make_oracle(res.dist, res.parent,
                         {"pipelined APSP (Algorithm 1, Thm I.1 ii)", true,
                          res.stats, {}});
    }
    case Solver::kBlocker: {
      core::BlockerApspParams p;
      p.h = opts.h;
      auto res = core::blocker_apsp(g, p);
      return make_oracle(res.dist, res.parent,
                         {"blocker APSP (Algorithm 3, h=" +
                              std::to_string(res.h) + ")",
                          true, res.stats, {}});
    }
    case Solver::kScaled: {
      core::ScaledApspParams p;
      p.h = n > 1 ? n - 1 : 1;
      p.delta = graph::max_finite_distance(g);
      auto res = core::scaled_hhop_apsp(g, p);
      return make_oracle_from_distances(
          g, res.dist, res.hops,
          {"scaled per-source APSP (Sec. II-C)", true, res.stats, {}});
    }
    case Solver::kApprox: {
      core::ApproxApspParams p;
      p.eps = opts.eps;
      auto res = core::approx_apsp(g, p);
      std::ostringstream label;
      label << "approx APSP (Thm I.5, eps=" << opts.eps << ", " << res.scales
            << " scales); distance-only";
      return make_oracle(res.dist, {}, {label.str(), false, res.stats, {}});
    }
    case Solver::kReference: {
      std::vector<std::vector<Weight>> dist(n);
      std::vector<std::vector<NodeId>> parent(n);
      for (NodeId s = 0; s < n; ++s) {
        auto r = seq::dijkstra(g, s);
        dist[s] = std::move(r.dist);
        parent[s] = std::move(r.parent);
      }
      return make_oracle(dist, parent,
                         {"reference (sequential Dijkstra sweep)", true, {},
                          {}});
    }
  }
  throw std::logic_error("build_oracle: unhandled solver");
}

}  // namespace

}  // namespace dapsp::service
