#include "service/query_service.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <iomanip>
#include <limits>
#include <list>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"
#include "query/analytics.hpp"

namespace dapsp::service {

using graph::kInfDist;
using graph::kNoNode;

// ---------------------------------------------------------------------------
// Sharded LRU cache for reconstructed paths.
//
// Every entry is stamped with the epoch of the snapshot that produced it; a
// lookup only hits when the stored epoch matches the querying snapshot's
// epoch, so a swap implicitly invalidates the whole cache without touching
// it (stale entries age out through normal LRU turnover or are overwritten
// in place on the next miss for their pair).

class QueryService::PathCache {
 public:
  PathCache(std::size_t capacity, std::size_t shards)
      : shards_(std::max<std::size_t>(1, shards)),
        per_shard_capacity_(std::max<std::size_t>(
            1, (capacity + shards_.size() - 1) / shards_.size())) {}

  bool lookup(std::uint64_t key, std::uint64_t epoch,
              std::vector<NodeId>* out) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end() || it->second->second.epoch != epoch) {
      // Absent, or computed against a snapshot that has since been swapped
      // out: a stale path must never be served.
      ++s.misses;
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
    *out = it->second->second.path;
    ++s.hits;
    return true;
  }

  void insert(std::uint64_t key, std::uint64_t epoch,
              const std::vector<NodeId>& path) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      // Raced with another miss, or overwriting a stale-epoch entry; refresh
      // recency and take the new snapshot's answer.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      it->second->second = Entry{epoch, path};
      return;
    }
    s.lru.emplace_front(key, Entry{epoch, path});
    s.map.emplace(key, s.lru.begin());
    if (s.map.size() > per_shard_capacity_) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      ++s.evictions;
    }
  }

  void account(ServiceStats* st) const {
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      st->cache_hits += s.hits;
      st->cache_misses += s.misses;
      st->cache_evictions += s.evictions;
    }
  }

  void reset() {
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      s.hits = s.misses = s.evictions = 0;
    }
  }

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    std::vector<NodeId> path;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<std::uint64_t, Entry>> lru;
    std::unordered_map<std::uint64_t,
                       decltype(lru)::iterator> map;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& shard(std::uint64_t key) {
    // splitmix64 finalizer: adjacent (u,v) keys land in different shards.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return shards_[(x ^ (x >> 31)) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_;
};

// ---------------------------------------------------------------------------
// Epoch-stamped LRU for analytics results.
//
// Analytics queries (kpath / route / report / bc) cost a search or a full
// matrix scan, so identical requests are worth replaying from memory.  The
// key is a hash of the *entire* query (type, endpoints, k, samples,
// constraints) and the stored query is compared on hit, so a hash collision
// can never serve the wrong answer.  Entries carry the snapshot epoch like
// PathCache entries: a swap invalidates everything implicitly.

class QueryService::AnalyticsCache {
 public:
  explicit AnalyticsCache(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  static std::uint64_t key_of(const Query& q) {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the full query
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001b3ULL;
      }
    };
    mix(static_cast<std::uint64_t>(q.type));
    mix(static_cast<std::uint64_t>(q.u) << 32 | q.v);
    mix(static_cast<std::uint64_t>(q.k) << 32 | q.samples);
    mix(q.constraints.max_hops);
    for (const NodeId x : q.constraints.avoid_nodes) mix(x);
    for (const auto& [a, b] : q.constraints.avoid_edges) {
      mix(static_cast<std::uint64_t>(a) << 32 | b);
    }
    return h;
  }

  bool lookup(const Query& q, std::uint64_t epoch, QueryResult* out) {
    const std::uint64_t key = key_of(q);
    std::lock_guard lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end() || it->second->epoch != epoch ||
        !(it->second->query == q)) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->result;
    ++hits_;
    return true;
  }

  void insert(const Query& q, std::uint64_t epoch, const QueryResult& r) {
    const std::uint64_t key = key_of(q);
    std::lock_guard lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      *it->second = Entry{key, epoch, q, r};
      return;
    }
    lru_.push_front(Entry{key, epoch, q, r});
    map_.emplace(key, lru_.begin());
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  void account(ServiceStats* st) const {
    std::lock_guard lock(mu_);
    st->cache_hits += hits_;
    st->cache_misses += misses_;
    st->cache_evictions += evictions_;
  }

  void reset() {
    std::lock_guard lock(mu_);
    hits_ = misses_ = evictions_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;
    Query query;
    QueryResult result;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

// ---------------------------------------------------------------------------
// Lock-free counters; materialized into ServiceStats on demand.
//
// Successful queries feed per-bucket atomic counters mirroring
// obs::Histogram's log-bucket layout, so a snapshot can rebuild a full
// histogram via Histogram::from_raw.  Failed queries only bump errors /
// error_ns: their wall-clock must not distort latency quantiles, and an
// all-error snapshot must render min=0, not a UINT64_MAX sentinel.  Swap
// and rebuild latencies are rare events recorded under a small mutex.

struct QueryService::Recorder {
  struct PerType {
    std::array<std::atomic<std::uint64_t>, obs::Histogram::kBuckets>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> min_ns{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> error_ns{0};
  };
  std::array<PerType, kQueryTypeCount> types;
  std::atomic<std::uint64_t> batches{0};

  mutable std::mutex swap_mu;
  std::uint64_t swaps = 0;            // guarded by swap_mu
  obs::Histogram swap_ns;             // guarded by swap_mu
  obs::Histogram rebuild_ns;          // guarded by swap_mu

  void record(QueryType type, std::uint64_t ns, bool ok) {
    PerType& t = types[static_cast<std::size_t>(type)];
    if (!ok) {
      t.errors.fetch_add(1, std::memory_order_relaxed);
      t.error_ns.fetch_add(ns, std::memory_order_relaxed);
      return;
    }
    t.buckets[obs::Histogram::bucket_index(ns)].fetch_add(
        1, std::memory_order_relaxed);
    t.count.fetch_add(1, std::memory_order_relaxed);
    t.total_ns.fetch_add(ns, std::memory_order_relaxed);
    update_min(t.min_ns, ns);
    update_max(t.max_ns, ns);
  }

  void record_swap(std::uint64_t publish_ns, std::uint64_t build_ns) {
    std::lock_guard lock(swap_mu);
    ++swaps;
    swap_ns.record(publish_ns);
    if (build_ns > 0) rebuild_ns.record(build_ns);
  }

  QueryTypeStats snapshot(std::size_t i) const {
    const PerType& t = types[i];
    std::array<std::uint64_t, obs::Histogram::kBuckets> raw;
    for (std::size_t b = 0; b < raw.size(); ++b) {
      raw[b] = t.buckets[b].load(std::memory_order_relaxed);
    }
    QueryTypeStats out;
    out.latency = obs::Histogram::from_raw(
        raw, t.count.load(std::memory_order_relaxed),
        t.total_ns.load(std::memory_order_relaxed),
        t.min_ns.load(std::memory_order_relaxed),
        t.max_ns.load(std::memory_order_relaxed));
    out.errors = t.errors.load(std::memory_order_relaxed);
    out.error_ns = t.error_ns.load(std::memory_order_relaxed);
    return out;
  }

  void reset() {
    for (PerType& t : types) {
      for (auto& b : t.buckets) b = 0;
      t.count = 0;
      t.total_ns = 0;
      t.min_ns = std::numeric_limits<std::uint64_t>::max();
      t.max_ns = 0;
      t.errors = 0;
      t.error_ns = 0;
    }
    batches = 0;
    std::lock_guard lock(swap_mu);
    swaps = 0;
    swap_ns = obs::Histogram{};
    rebuild_ns = obs::Histogram{};
  }

  static void update_min(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v < cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v > cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
};

// ---------------------------------------------------------------------------

QueryService::QueryService(DistanceOracle oracle, QueryServiceConfig cfg)
    : QueryService(std::make_shared<FlatSnapshot>(std::move(oracle)), cfg) {}

QueryService::QueryService(std::shared_ptr<OracleSnapshot> snapshot,
                           QueryServiceConfig cfg)
    : cfg_(cfg),
      snap_(std::shared_ptr<const OracleSnapshot>(std::move(snapshot))),
      recorder_(std::make_unique<Recorder>()),
      pool_(std::make_unique<util::ThreadPool>(cfg.threads)) {
  if (cfg_.path_cache_capacity > 0) {
    cache_ = std::make_unique<PathCache>(cfg_.path_cache_capacity,
                                         cfg_.cache_shards);
  }
}

QueryService::~QueryService() = default;

void QueryService::enable_analytics(std::shared_ptr<const graph::Graph> g) {
  analytics_ = std::make_unique<query::Analytics>(std::move(g));
  if (cfg_.analytics_cache_capacity > 0) {
    acache_ = std::make_unique<AnalyticsCache>(cfg_.analytics_cache_capacity);
  }
}

std::uint64_t QueryService::swap_snapshot(
    std::shared_ptr<OracleSnapshot> next, std::uint64_t rebuild_ns) {
  const auto t0 = std::chrono::steady_clock::now();
  // Stamp the epoch while we still hold the only reference, then publish.
  // Readers that loaded the old snapshot keep serving from it until their
  // queries finish; its destructor runs when the last reference drops.
  const std::uint64_t e =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  next->set_epoch(e);
  std::shared_ptr<const OracleSnapshot> retired{std::move(next)};
  {
    std::lock_guard lock(snap_mu_);
    snap_.swap(retired);
  }
  // `retired` now holds the previous snapshot; if no in-flight query pins
  // it, its destructor runs here -- outside the lock, so a slow teardown
  // never stalls readers.
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  recorder_->record_swap(ns, rebuild_ns);
  return e;
}

QueryResult QueryService::execute(const OracleSnapshot& snap,
                                  const Query& q) const {
  QueryResult r;
  r.type = q.type;
  r.u = q.u;
  r.v = q.v;
  if (static_cast<std::size_t>(q.type) >= kPointQueryTypeCount) {
    return execute_analytics(snap, q);
  }
  const NodeId n = snap.node_count();
  if (q.u >= n || q.v >= n) {
    r.error = "node id out of range (n=" + std::to_string(n) + ")";
    return r;
  }
  switch (q.type) {
    case QueryType::kDist:
      r.ok = true;
      r.dist = snap.dist(q.u, q.v);
      break;
    case QueryType::kNextHop:
      if (!snap.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      r.ok = true;
      r.dist = snap.dist(q.u, q.v);
      r.next_hop = snap.next_hop(q.u, q.v);
      break;
    case QueryType::kPath: {
      if (!snap.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      r.ok = true;
      r.dist = snap.dist(q.u, q.v);
      if (r.dist == kInfDist) break;  // unreachable: valid, empty path
      const std::uint64_t key =
          static_cast<std::uint64_t>(q.u) * n + q.v;
      if (cache_ && cache_->lookup(key, snap.epoch(), &r.path)) break;
      auto p = snap.path(q.u, q.v);
      // dist is finite and the snapshot has a next-hop table, so
      // reconstruction can only fail on a corrupt table.
      if (!p) {
        r.ok = false;
        r.error = "path reconstruction failed (corrupt next-hop table)";
        return r;
      }
      r.path = std::move(*p);
      if (cache_) cache_->insert(key, snap.epoch(), r.path);
      break;
    }
  }
  return r;
}

QueryResult QueryService::execute_analytics(const OracleSnapshot& snap,
                                            const Query& q) const {
  QueryResult r;
  r.type = q.type;
  r.u = q.u;
  r.v = q.v;
  if (!analytics_) {
    r.error = "analytics unavailable (no graph attached)";
    return r;
  }
  const NodeId n = snap.node_count();
  if (analytics_->graph().node_count() != n) {
    r.error = "analytics graph does not match snapshot (graph n=" +
              std::to_string(analytics_->graph().node_count()) +
              ", snapshot n=" + std::to_string(n) + ")";
    return r;
  }
  const bool pair_query =
      q.type == QueryType::kKPaths || q.type == QueryType::kRoute;
  if (pair_query && (q.u >= n || q.v >= n)) {
    r.error = "node id out of range (n=" + std::to_string(n) + ")";
    return r;
  }
  // Per-family limits and capability gates, before any work happens.
  switch (q.type) {
    case QueryType::kKPaths:
      if (q.k < 1 || q.k > cfg_.max_k) {
        r.error = "k must be in [1, " + std::to_string(cfg_.max_k) + "]";
        return r;
      }
      if (!snap.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      break;
    case QueryType::kRoute: {
      const auto& c = q.constraints;
      if (c.avoid_nodes.size() > cfg_.max_avoid ||
          c.avoid_edges.size() > cfg_.max_avoid) {
        r.error =
            "avoid set exceeds max_avoid=" + std::to_string(cfg_.max_avoid);
        return r;
      }
      // A budget of >= n-1 hops is vacuous (any loopless path fits), so it is
      // always accepted; between max_hops and n-1 it would force an
      // O(max_hops * n) layered search and is refused.
      if (c.max_hops != 0 && c.max_hops > cfg_.max_hops &&
          c.max_hops < n - 1) {
        r.error = "max_hops " + std::to_string(c.max_hops) +
                  " exceeds limit " + std::to_string(cfg_.max_hops) +
                  " (use 0 for an unlimited hop budget)";
        return r;
      }
      if (!snap.has_paths()) {
        r.error = "oracle is distance-only (no next-hop table)";
        return r;
      }
      break;
    }
    case QueryType::kReport:
    case QueryType::kBetweenness:
      if (!snap.exact()) {
        r.error = "report/bc require exact distances (snapshot is approximate)";
        return r;
      }
      break;
    default:
      r.error = "not an analytics query type";
      return r;
  }
  if (acache_ && acache_->lookup(q, snap.epoch(), &r)) return r;
  switch (q.type) {
    case QueryType::kKPaths:
      r.routes = analytics_->k_shortest(snap, q.u, q.v, q.k);
      r.dist = r.routes.empty() ? kInfDist : r.routes.front().weight;
      r.ok = true;
      break;
    case QueryType::kRoute: {
      auto route =
          analytics_->constrained_route(snap, q.u, q.v, q.constraints);
      r.ok = true;
      if (route) {
        r.feasible = true;
        r.dist = route->weight;
        r.path = route->nodes;
        r.routes.push_back(std::move(*route));
      } else {
        r.feasible = false;
        r.dist = kInfDist;
      }
      break;
    }
    case QueryType::kReport:
      r.report = analytics_->report(snap, *pool_);
      r.ok = true;
      break;
    case QueryType::kBetweenness:
      r.centrality = analytics_->betweenness(snap, q.samples, *pool_);
      r.ok = true;
      break;
    default:
      break;
  }
  if (r.ok && acache_) acache_->insert(q, snap.epoch(), r);
  return r;
}

QueryResult QueryService::timed_execute(const OracleSnapshot& snap,
                                        const Query& q) const {
  const auto t0 = std::chrono::steady_clock::now();
  QueryResult r = execute(snap, q);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  recorder_->record(q.type, ns, r.ok);
  return r;
}

QueryResult QueryService::query(const Query& q) const {
  // Pin the serving snapshot for the duration of this query: a concurrent
  // swap retires the old snapshot only after this reference drops.
  const std::shared_ptr<const OracleSnapshot> snap = snapshot();
  return timed_execute(*snap, q);
}

std::vector<QueryResult> QueryService::query_batch(
    std::span<const Query> queries) const {
  // One snapshot for the whole batch: a swap mid-batch never yields a
  // response mixing epochs.
  const std::shared_ptr<const OracleSnapshot> snap = snapshot();
  std::vector<QueryResult> results(queries.size());
  pool_->parallel_for(queries.size(), [&](std::size_t i) {
    results[i] = timed_execute(*snap, queries[i]);
  });
  recorder_->batches.fetch_add(1, std::memory_order_relaxed);
  return results;
}

ServiceStats QueryService::stats() const {
  ServiceStats st;
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    st.per_type[i] = recorder_->snapshot(i);
  }
  st.batches = recorder_->batches.load();
  if (cache_) cache_->account(&st);
  if (acache_) acache_->account(&st);
  {
    std::lock_guard lock(recorder_->swap_mu);
    st.swaps = recorder_->swaps;
    st.swap_ns = recorder_->swap_ns;
    st.rebuild_ns = recorder_->rebuild_ns;
  }
  const std::shared_ptr<const OracleSnapshot> snap = snapshot();
  st.snapshot_epoch = snap->epoch();
  st.shards = snap->shard_layout();
  if (const obs::CritPathSummary* cp = snap->build_critpath()) {
    st.last_build_critpath = *cp;
  }
  return st;
}

void QueryService::reset_stats() {
  recorder_->reset();
  if (cache_) cache_->reset();
  if (acache_) acache_->reset();
}

// ---------------------------------------------------------------------------
// Text protocol.

namespace {

std::optional<NodeId> parse_node(std::string_view tok) {
  std::uint32_t out = 0;
  const auto* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), end, out);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return out;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

/// Structured serve-loop error: in JSON mode carries a machine-readable
/// `code` alongside the human message (the message may echo user input, so
/// it goes through the escaping writer).
void write_serve_error(std::ostream& out, bool json, std::string_view code,
                       const std::string& msg) {
  if (json) {
    out << "{\"ok\":false,\"code\":\"" << code << "\",\"error\":";
    obs::write_json_string(out, msg);
    out << "}\n";
  } else {
    out << "error: " << msg << "\n";
  }
}

}  // namespace

namespace {

/// Parses "a,b,c" into ids; empty string yields an empty list.
bool parse_node_list(std::string_view s, std::vector<NodeId>* out) {
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view tok = s.substr(0, comma);
    const auto x = parse_node(tok);
    if (!x) return false;
    out->push_back(*x);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return true;
}

/// Parses "a-b,c-d" into endpoint pairs.
bool parse_edge_list(std::string_view s,
                     std::vector<std::pair<NodeId, NodeId>>* out) {
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view tok = s.substr(0, comma);
    const std::size_t dash = tok.find('-');
    if (dash == std::string_view::npos) return false;
    const auto a = parse_node(tok.substr(0, dash));
    const auto b = parse_node(tok.substr(dash + 1));
    if (!a || !b) return false;
    out->emplace_back(*a, *b);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return true;
}

}  // namespace

std::optional<Query> QueryService::parse_query(std::string_view line,
                                               std::string* error) {
  const auto toks = split_ws(line);
  const auto fail = [error](std::string msg) -> std::optional<Query> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  if (toks.empty()) {
    return fail(
        "expected '<dist|next|path> U V', 'kpath U V K', 'route U V "
        "[hops=H] [avoid=...] [avoidedge=...]', 'report' or 'bc [SAMPLES]'");
  }
  Query q;
  // Zero-argument / optional-argument forms first.
  if (toks[0] == "report") {
    if (toks.size() != 1) return fail("expected 'report' with no arguments");
    q.type = QueryType::kReport;
    return q;
  }
  if (toks[0] == "bc") {
    if (toks.size() > 2) return fail("expected 'bc [SAMPLES]'");
    q.type = QueryType::kBetweenness;
    if (toks.size() == 2) {
      const auto s = parse_node(toks[1]);
      if (!s) return fail("bc sample count must be a non-negative integer");
      q.samples = *s;
    }
    return q;
  }
  if (toks[0] == "dist") {
    q.type = QueryType::kDist;
  } else if (toks[0] == "next") {
    q.type = QueryType::kNextHop;
  } else if (toks[0] == "path") {
    q.type = QueryType::kPath;
  } else if (toks[0] == "kpath") {
    q.type = QueryType::kKPaths;
  } else if (toks[0] == "route") {
    q.type = QueryType::kRoute;
  } else {
    return fail("unknown query type '" + std::string(toks[0]) +
                "' (dist|next|path|kpath|route|report|bc)");
  }
  if (toks.size() < 3) {
    return fail("expected '" + std::string(toks[0]) + " U V ...'");
  }
  const auto u = parse_node(toks[1]);
  const auto v = parse_node(toks[2]);
  if (!u || !v) return fail("node ids must be non-negative integers");
  q.u = *u;
  q.v = *v;
  if (q.type == QueryType::kKPaths) {
    if (toks.size() != 4) return fail("expected 'kpath U V K'");
    const auto k = parse_node(toks[3]);
    if (!k || *k == 0) return fail("k must be a positive integer");
    q.k = *k;
    return q;
  }
  if (q.type == QueryType::kRoute) {
    for (std::size_t i = 3; i < toks.size(); ++i) {
      const std::string_view t = toks[i];
      if (t.rfind("hops=", 0) == 0) {
        const auto h = parse_node(t.substr(5));
        if (!h) return fail("hops= must be a non-negative integer");
        q.constraints.max_hops = *h;
      } else if (t.rfind("avoidedge=", 0) == 0) {
        if (!parse_edge_list(t.substr(10), &q.constraints.avoid_edges)) {
          return fail("avoidedge= must be a-b pairs separated by commas");
        }
      } else if (t.rfind("avoid=", 0) == 0) {
        if (!parse_node_list(t.substr(6), &q.constraints.avoid_nodes)) {
          return fail("avoid= must be node ids separated by commas");
        }
      } else {
        return fail("unknown route option '" + std::string(t) +
                    "' (hops=|avoid=|avoidedge=)");
      }
    }
    return q;
  }
  if (toks.size() != 3) {
    return fail("expected '" + std::string(toks[0]) + " U V'");
  }
  return q;
}

namespace {

void write_route_text(const query::Route& rt, std::ostream& out) {
  for (std::size_t i = 0; i < rt.nodes.size(); ++i) {
    out << (i ? " " : "") << rt.nodes[i];
  }
  out << " (dist " << rt.weight << ", " << rt.hops() << " hops)";
}

}  // namespace

void QueryService::write_result_text(const QueryResult& r, std::ostream& out) {
  if (!r.ok) {
    out << "error: " << r.error << "\n";
    return;
  }
  // Whole-graph families do not carry a (u, v) pair or a dist.
  if (r.type == QueryType::kReport) {
    const auto& g = r.report;
    out << "report = radius " << g.radius << ", diameter " << g.diameter
        << ", reachable_pairs " << g.reachable_pairs << ", sources "
        << g.per_source.size() << "\n";
    return;
  }
  if (r.type == QueryType::kBetweenness) {
    // Top scores only; the full vector is available via the JSON protocol.
    std::vector<std::size_t> order(r.centrality.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (r.centrality[a] != r.centrality[b]) {
        return r.centrality[a] > r.centrality[b];
      }
      return a < b;
    });
    out << "bc = " << r.centrality.size() << " nodes, top:";
    const std::size_t top = std::min<std::size_t>(8, order.size());
    for (std::size_t i = 0; i < top; ++i) {
      out << " " << order[i] << "=" << std::setprecision(6)
          << r.centrality[order[i]];
    }
    out << "\n";
    return;
  }
  out << query_type_name(r.type) << " " << r.u << " " << r.v << " = ";
  if (r.type == QueryType::kKPaths) {
    if (r.routes.empty()) {
      out << "unreachable\n";
      return;
    }
    out << r.routes.size() << " paths\n";
    for (std::size_t i = 0; i < r.routes.size(); ++i) {
      out << "  [" << (i + 1) << "] ";
      write_route_text(r.routes[i], out);
      out << "\n";
    }
    return;
  }
  if (r.type == QueryType::kRoute) {
    if (!r.feasible) {
      out << "infeasible\n";
      return;
    }
    write_route_text(r.routes.front(), out);
    out << "\n";
    return;
  }
  if (r.dist == kInfDist) {
    out << "unreachable\n";
    return;
  }
  switch (r.type) {
    case QueryType::kDist:
      out << r.dist;
      break;
    case QueryType::kNextHop:
      out << (r.next_hop == kNoNode ? std::string("-")
                                    : std::to_string(r.next_hop))
          << " (dist " << r.dist << ")";
      break;
    case QueryType::kPath:
      for (std::size_t i = 0; i < r.path.size(); ++i) {
        out << (i ? " " : "") << r.path[i];
      }
      out << " (dist " << r.dist << ", " << (r.path.size() - 1) << " hops)";
      break;
    default:
      break;
  }
  out << "\n";
}

void QueryService::write_result_json(const QueryResult& r, std::ostream& out) {
  out << "{\"type\":\"" << query_type_name(r.type) << "\",\"u\":" << r.u
      << ",\"v\":" << r.v << ",\"ok\":" << (r.ok ? "true" : "false");
  if (!r.ok) {
    // r.error embeds caller-controlled text (e.g. the unknown query token);
    // escape it or a quote in the input corrupts the JSONL stream.
    out << ",\"error\":";
    obs::write_json_string(out, r.error);
    out << "}\n";
    return;
  }
  if (r.type == QueryType::kReport) {
    const auto& g = r.report;
    out << ",\"radius\":" << g.radius << ",\"diameter\":" << g.diameter
        << ",\"reachable_pairs\":" << g.reachable_pairs << ",\"sources\":[";
    for (std::size_t i = 0; i < g.per_source.size(); ++i) {
      const auto& s = g.per_source[i];
      out << (i ? "," : "") << "{\"ecc\":" << s.eccentricity
          << ",\"farness\":" << s.farness << ",\"reached\":" << s.reached
          << "}";
    }
    out << "]}\n";
    return;
  }
  if (r.type == QueryType::kBetweenness) {
    out << ",\"centrality\":[" << std::setprecision(17);
    for (std::size_t i = 0; i < r.centrality.size(); ++i) {
      out << (i ? "," : "") << r.centrality[i];
    }
    out << "]}\n";
    return;
  }
  if (r.type == QueryType::kKPaths) {
    out << ",\"routes\":[";
    for (std::size_t i = 0; i < r.routes.size(); ++i) {
      const auto& rt = r.routes[i];
      out << (i ? "," : "") << "{\"dist\":" << rt.weight << ",\"path\":[";
      for (std::size_t j = 0; j < rt.nodes.size(); ++j) {
        out << (j ? "," : "") << rt.nodes[j];
      }
      out << "]}";
    }
    out << "]}\n";
    return;
  }
  if (r.type == QueryType::kRoute) {
    out << ",\"feasible\":" << (r.feasible ? "true" : "false");
    if (r.feasible) {
      out << ",\"dist\":" << r.dist << ",\"path\":[";
      for (std::size_t i = 0; i < r.path.size(); ++i) {
        out << (i ? "," : "") << r.path[i];
      }
      out << "]";
    }
    out << "}\n";
    return;
  }
  out << ",\"dist\":";
  if (r.dist == kInfDist) {
    out << "null";
  } else {
    out << r.dist;
  }
  if (r.type == QueryType::kNextHop && r.next_hop != kNoNode) {
    out << ",\"next\":" << r.next_hop;
  }
  if (r.type == QueryType::kPath && r.dist != kInfDist) {
    out << ",\"path\":[";
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      out << (i ? "," : "") << r.path[i];
    }
    out << "]";
  }
  out << "}\n";
}

void QueryService::serve_batch_directive(std::istream& in, std::ostream& out,
                                         const ServeOptions& opts,
                                         std::uint64_t count,
                                         int* malformed) const {
  if (count > cfg_.max_batch) {
    // Reject the batch whole: consume and discard its body so an oversized
    // request never degrades into best-effort line-by-line answers, then
    // report one structured error for it.
    std::string line;
    for (std::uint64_t seen = 0; seen < count && std::getline(in, line);) {
      const auto toks = split_ws(line);
      if (toks.empty() || toks[0].front() == '#') continue;
      ++seen;
    }
    ++*malformed;
    write_serve_error(out, opts.json, "batch_too_large",
                      "batch of " + std::to_string(count) +
                          " exceeds max batch size " +
                          std::to_string(cfg_.max_batch));
    return;
  }
  // Collect the body (blank lines and comments are skipped, as outside a
  // batch).  EOF before `count` query lines rejects the batch whole.
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(count));
  std::string line;
  while (lines.size() < count && std::getline(in, line)) {
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0].front() == '#') continue;
    lines.push_back(line);
  }
  if (lines.size() < count) {
    ++*malformed;
    write_serve_error(out, opts.json, "batch_truncated",
                      "batch of " + std::to_string(count) +
                          " truncated by end of input after " +
                          std::to_string(lines.size()) + " lines");
    return;
  }
  // Parse every line; parse failures keep their position so responses line
  // up 1:1 with requests.
  std::vector<std::optional<Query>> parsed(lines.size());
  std::vector<std::string> parse_errors(lines.size());
  std::vector<Query> good;
  good.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    parsed[i] = parse_query(lines[i], &parse_errors[i]);
    if (parsed[i]) good.push_back(*parsed[i]);
  }
  const std::vector<QueryResult> results = query_batch(good);
  std::size_t next_result = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!parsed[i]) {
      ++*malformed;
      write_serve_error(out, opts.json, "parse_error", parse_errors[i]);
      continue;
    }
    const QueryResult& r = results[next_result++];
    if (opts.json) {
      write_result_json(r, out);
    } else {
      write_result_text(r, out);
    }
  }
}

int QueryService::serve_stream(std::istream& in, std::ostream& out,
                               const ServeOptions& opts) const {
  const bool json = opts.json;
  int malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0].front() == '#') continue;
    if (toks[0] == "quit" || toks[0] == "exit") break;
    if (toks[0] == "stats") {
      const ServiceStats st = stats();
      if (json) {
        obs::JsonWriter w(out);
        w.begin_object().key("stats");
        st.write_json(w);
        w.end_object();
        out << "\n";
      } else {
        out << st.summary() << "\n";
      }
      continue;
    }
    if (toks[0] == "batch") {
      std::uint64_t count = 0;
      bool count_ok = toks.size() == 2;
      if (count_ok) {
        const auto* end = toks[1].data() + toks[1].size();
        const auto [ptr, ec] = std::from_chars(toks[1].data(), end, count);
        count_ok = ec == std::errc{} && ptr == end;
      }
      if (!count_ok) {
        ++malformed;
        write_serve_error(out, json, "parse_error",
                          "batch needs a count: 'batch N'");
        continue;
      }
      serve_batch_directive(in, out, opts, count, &malformed);
      continue;
    }
    if (toks[0] == "rebuild") {
      if (!opts.on_rebuild) {
        ++malformed;
        write_serve_error(out, json, "rebuild_unavailable",
                          "no rebuild hook installed for this session");
        continue;
      }
      const RebuildOutcome rc = opts.on_rebuild();
      if (json) {
        out << "{\"rebuild\":{\"ok\":" << (rc.ok ? "true" : "false");
        if (rc.ok) {
          out << ",\"epoch\":" << rc.epoch << ",\"build_ns\":" << rc.build_ns;
        } else {
          out << ",\"error\":";
          obs::write_json_string(out, rc.error);
        }
        out << "}}\n";
      } else if (rc.ok) {
        out << "rebuild: epoch=" << rc.epoch << " build_ns=" << rc.build_ns
            << "\n";
      } else {
        out << "error: rebuild failed: " << rc.error << "\n";
      }
      continue;
    }
    std::string error;
    const auto q = parse_query(line, &error);
    if (!q) {
      ++malformed;
      write_serve_error(out, json, "parse_error", error);
      continue;
    }
    const QueryResult r = query(*q);
    if (json) {
      write_result_json(r, out);
    } else {
      write_result_text(r, out);
    }
  }
  return malformed;
}

}  // namespace dapsp::service
