# Empty compiler generated dependencies file for dapsp_cli.
# This may be replaced when dependencies are built.
