// Deterministic multi-instance scheduling (the CONGEST "congestion +
// dilation" framework).
//
// Section II-C of the paper runs one short-range instance per source and
// cites Ghaffari's randomized scheduling result [10] to execute all of them
// simultaneously in O(dilation + #instances * congestion) rounds.  This
// multiplexer is the deterministic counterpart: every node runs N protocol
// instances; their outgoing messages are FIFO-queued per link and drained at
// the CONGEST budget of one (wrapped) message per link per round.
//
// Instances see the physical round number, so schedule-driven protocols
// (Algorithm 2's ceil(d*gamma+l) rule) simply fire late when queueing delays
// them -- which is exactly how the framework's dilation+congestion bound
// arises.  Correctness of monotone protocols (adopt-the-minimum) is
// unaffected; the stats report how many rounds the schedule stretched.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "congest/engine.hpp"
#include "congest/metrics.hpp"
#include "graph/graph.hpp"

namespace dapsp::congest {

/// Creates instance `i`'s protocol for node `v`.
using InstanceFactory =
    std::function<std::unique_ptr<Protocol>(std::size_t instance, NodeId node)>;

/// Per-node multiplexing protocol.  Wraps each inner message as
/// (kTagMux, instance, inner tag, inner fields...); inner messages may use
/// at most Message::kMaxFields - 2 fields.
class MultiplexProtocol final : public Protocol {
 public:
  static constexpr std::uint32_t kTagMux = 0x4d55;  // "MU"

  MultiplexProtocol(const graph::Graph& g, NodeId self,
                    std::vector<std::unique_ptr<Protocol>> instances);

  void init(Context& ctx) override;
  void send_phase(Context& ctx) override;
  void receive_phase(Context& ctx) override;
  bool quiescent() const override;
  Round next_send_round(Round now) const override;

  Protocol& instance(std::size_t i) { return *instances_[i]; }
  const Protocol& instance(std::size_t i) const { return *instances_[i]; }

  /// Largest backlog any link queue reached (the measured congestion the
  /// framework trades rounds against).
  std::size_t max_queue_depth() const { return max_queue_; }

 private:
  class MuxSendContext;
  class MuxRecvContext;

  void pump_instances_send(Context& ctx);
  void drain_queues(Context& ctx);

  const graph::Graph& g_;
  NodeId self_;
  std::vector<std::unique_ptr<Protocol>> instances_;
  /// Per neighbor index: FIFO of wrapped messages awaiting budget.
  std::vector<std::deque<Message>> queue_;
  std::vector<std::vector<Envelope>> per_instance_inbox_;
  std::size_t max_queue_ = 0;
};

struct MultiplexResult {
  RunStats stats;
  std::size_t max_queue_depth = 0;  ///< max link backlog across all nodes
};

/// Runs `instances` protocol instances per node to completion.
/// `accessor`, if given, is called per node with the finished multiplexer so
/// callers can extract instance results.
MultiplexResult run_multiplexed(
    const graph::Graph& g, std::size_t instances, const InstanceFactory& make,
    Round max_rounds,
    const std::function<void(NodeId, MultiplexProtocol&)>& accessor = {});

}  // namespace dapsp::congest
