// Minimal JSON emission and validation shared by every machine-readable
// line the repository writes (serve JSONL, CLI --format json, the trace
// exporter, BENCH summaries).
//
// The motivating bug: ad-hoc `out << "\"" << s << "\""` sprinkled through
// the reporting paths produced invalid JSON the moment `s` contained a
// quote or backslash -- and the serve protocol echoes raw user input into
// its error strings.  All string emission now funnels through
// `write_json_string`, and `json_valid` gives tests / CI a dependency-free
// way to assert that what we emit actually parses.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dapsp::obs {

/// Returns `s` with JSON string escaping applied (quotes, backslashes,
/// control characters as \uXXXX); no surrounding quotes.
std::string json_escape(std::string_view s);

/// Writes `s` as a JSON string literal, quotes included.
void write_json_string(std::ostream& os, std::string_view s);

/// Writes a double as a JSON number.  NaN/Inf (not representable in JSON)
/// are written as null.
void write_json_double(std::ostream& os, double v);

/// True iff `text` is exactly one valid JSON value (leading/trailing
/// whitespace allowed).  Strict RFC 8259 grammar, bounded nesting depth.
bool json_valid(std::string_view text);

/// Validates line-delimited JSON: every non-empty line must be a valid JSON
/// value.  Returns the 1-based line numbers that failed (empty = all good).
std::vector<std::size_t> jsonl_invalid_lines(std::string_view text);

/// Streaming JSON writer with comma/nesting management, so call sites can
/// never emit a structurally invalid document.  Values written at the top
/// level (no open object/array) are emitted bare, which is what the JSONL
/// emitters use -- one `value`/object per line.
///
///   JsonWriter w(out);
///   w.begin_object().key("rounds").value(42).key("algo").value(name);
///   w.end_object();  // + "\n" by the caller if JSONL
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be inside an object, followed by one value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  /// key + value in one call: w.field("n", 32)
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }
  JsonWriter& field_null(std::string_view k) {
    key(k);
    return null();
  }

 private:
  void before_value();

  enum class Frame : std::uint8_t { kObject, kArray };
  std::ostream& os_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;   // a sibling was already written at this level
  bool after_key_ = false;    // key() emitted, value pending
};

}  // namespace dapsp::obs
