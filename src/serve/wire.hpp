// Length-prefixed binary query protocol for the distance-oracle service.
//
// The text/JSONL protocol pays per-line tokenizing and decimal formatting on
// every query; the binary protocol ships many (s, t) pairs per frame and
// answers them through QueryService::query_batch (per-shard dispatch on the
// thread pool), which is what gives batch+binary its throughput edge in
// BENCH_QUERY.json.  Framing:
//
//   frame    := u32le payload_len | payload            (len <= kMaxFrameBytes)
//   request  := 'D' 'Q' u8 version=1 u8 opcode | body
//     0x01 BATCH   body := u32le count | count x { u8 qtype u32le u u32le v }
//     0x02 STATS   body := empty (response carries the stats JSON document)
//     0x03 QUIT    body := empty (ends the session, no response)
//     0x04 REBUILD body := empty (runs the session's rebuild hook)
//     0x05 KPATH   body := u32le u u32le v u32le k              (exactly 12 B)
//     0x06 ROUTE   body := u32le u u32le v u32le max_hops
//                          u32le n_nodes u32le n_edges
//                          | n_nodes x u32le | n_edges x { u32le a u32le b }
//     0x07 REPORT  body := empty
//     0x08 BC      body := u32le samples                        (exactly 4 B)
//   response := 'D' 'R' u8 version=1 u8 opcode | body
//     0x81 BATCH   body := u32le count | count x result
//       result(ok)  := u8 qtype 0x01 i64le dist u32le next
//                      u32le path_len | path_len x u32le
//       result(err) := u8 qtype 0x00 u32le msg_len | msg bytes
//     0x82 STATS   body := u32le json_len | json bytes
//     0x83 REBUILD body := u64le epoch u64le build_ns
//     0x85 KPATH   body := status | u32le n | n x route
//       route      := i64le dist u32le len | len x u32le
//     0x86 ROUTE   body := status | u8 feasible [ route ]
//     0x87 REPORT  body := status | i64le radius i64le diameter
//                          u64le reachable_pairs u32le n
//                          | n x { i64le ecc i64le farness u32le reached }
//     0x88 BC      body := status | u32le n | n x f64le score
//       status(ok)  := u8 0x01   status(err) := u8 0x00 u32le msg_len | msg
//     0xEE ERROR   body := u16le code u32le msg_len | msg bytes
//
// qtype is 0=dist 1=next 2=path; dist/next use the library sentinels
// (kInfDist, kNoNode) verbatim.  BATCH frames carry only those point types
// -- the analytics families have dedicated opcodes because their bodies and
// answers are not fixed-size records.  Malformed input is answered with a
// structured ERROR frame, never best-effort partial output: recoverable
// frames (bad magic/version/opcode, oversized or corrupt batch body, a bad
// k / avoid-set / trailing analytics body) are consumed whole and serving
// continues; a truncated length prefix or payload cannot be resynchronized
// and ends the session after the ERROR frame.  Oversized batches (count >
// config().max_batch) are rejected with kBatchTooLarge before any query
// executes; service-level failures (bad ids, analytics unavailable) travel
// in-band as a status(err) inside the family's own response frame.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/query_service.hpp"

namespace dapsp::serve::wire {

inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  ///< 64 MiB

enum class ErrorCode : std::uint16_t {
  kBadMagic = 1,      ///< payload does not start with 'D','Q'
  kBadVersion = 2,    ///< unknown protocol version
  kBadOpcode = 3,     ///< unknown request opcode
  kTruncated = 4,     ///< stream ended inside a frame, or body shorter
                      ///< than its declared count
  kFrameTooLarge = 5, ///< length prefix exceeds kMaxFrameBytes
  kBatchTooLarge = 6, ///< batch count exceeds the service's max_batch
  kBadQueryType = 7,  ///< batch qtype byte outside the point types {0,1,2}
  kBadK = 8,          ///< KPATH with k == 0
  kBadAvoidSet = 9,   ///< ROUTE avoid-set count exceeds the service limit
  kBadBody = 10,      ///< analytics body has the wrong size (trailing bytes)
};

const char* error_code_name(ErrorCode c);

// --- client-side encoding (tests, benches, remote callers) ----------------

void append_batch_request(std::string& buf,
                          std::span<const service::Query> queries);
void append_stats_request(std::string& buf);
void append_quit_request(std::string& buf);
void append_rebuild_request(std::string& buf);
void append_kpath_request(std::string& buf, graph::NodeId u, graph::NodeId v,
                          std::uint32_t k);
void append_route_request(std::string& buf, graph::NodeId u, graph::NodeId v,
                          const query::RouteConstraints& c);
void append_report_request(std::string& buf);
void append_bc_request(std::string& buf, std::uint32_t samples);

// --- client-side decoding --------------------------------------------------

/// One parsed response frame.
struct Response {
  enum class Kind { kBatch, kStats, kRebuild, kKPath, kRoute, kReport, kBc,
                    kError };
  Kind kind = Kind::kError;
  std::vector<service::QueryResult> results;  ///< kBatch
  std::string stats_json;                     ///< kStats
  std::uint64_t epoch = 0;                    ///< kRebuild
  std::uint64_t build_ns = 0;                 ///< kRebuild
  /// kKPath/kRoute/kReport/kBc: the decoded analytics answer.  `result.ok`
  /// is false when the server answered with an in-band status(err) (e.g.
  /// analytics unavailable) -- distinct from Kind::kError, which is a
  /// protocol-level ERROR frame.
  service::QueryResult result;
  ErrorCode code = ErrorCode::kBadMagic;      ///< kError
  std::string message;                        ///< kError
};

/// Reads one response frame; nullopt on clean EOF at a frame boundary.
/// Throws std::runtime_error on a corrupt response stream (a server bug,
/// not expected input).
std::optional<Response> read_response(std::istream& in);

// --- server loop -----------------------------------------------------------

/// Reads request frames from `in` until EOF or a QUIT frame, answering each
/// on `out`; BATCH frames execute through svc.query_batch (one snapshot per
/// frame, results in request order).  Returns the number of ERROR frames
/// emitted, mirroring serve_stream's malformed-line count.
int serve_binary(const service::QueryService& svc, std::istream& in,
                 std::ostream& out, const service::ServeOptions& opts = {});

}  // namespace dapsp::serve::wire
