// Log-bucketed (power-of-two) histogram for latency and per-round counts.
//
// Replaces the min/mean/max scalar triples that used to live in
// service/stats.hpp: a mean hides tail latency, and an empty type's
// UINT64_MAX min sentinel leaked straight into reports.  Buckets are
// [2^(i-1), 2^i), so 64 fixed counters cover the whole uint64 range with
// <= 2x relative quantile error; exact min/max/sum are tracked on the side
// so max is precise and quantile answers are clamped into [min, max].
// Empty histograms render every statistic as 0 -- no sentinels.
//
// The type is a plain value (fixed-size array, no allocation): snapshots
// compose with `operator+=` exactly like RunStats/ServiceStats, recording
// is a couple of increments, and deterministic inputs (per-round message
// counts) produce bit-identical histograms across schedulers and thread
// counts.  Concurrent writers keep their own per-bucket atomics and
// materialize via `from_raw` (see query_service.cpp's Recorder).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <string>

namespace dapsp::obs {

class JsonWriter;

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Bucket for value v: 0 holds exactly {0}, bucket i >= 1 holds
  /// [2^(i-1), 2^i).  Public so lock-free recorders can pre-bucket.
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    return v == 0 ? 0
                  : static_cast<std::size_t>(
                        std::min(64 - std::countl_zero(v),
                                 static_cast<int>(kBuckets - 1)));
  }

  /// Upper bound (inclusive) of bucket i, used as the quantile estimate.
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i == 0 ? 0
           : i >= kBuckets - 1
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) { record_n(v, 1); }

  void record_n(std::uint64_t v, std::uint64_t n) {
    if (n == 0) return;
    buckets_[bucket_index(v)] += n;
    count_ += n;
    sum_ += v * n;
    if (v > max_) max_ = v;
    if (v < min_seen_) min_seen_ = v;
  }

  /// Rebuilds a histogram from externally accumulated parts (e.g. atomic
  /// per-bucket counters).  `min`/`max` are ignored when `count` is 0.
  static Histogram from_raw(std::span<const std::uint64_t, kBuckets> buckets,
                            std::uint64_t count, std::uint64_t sum,
                            std::uint64_t min, std::uint64_t max) {
    Histogram h;
    std::copy(buckets.begin(), buckets.end(), h.buckets_.begin());
    h.count_ = count;
    h.sum_ = sum;
    if (count > 0) {
      h.min_seen_ = min;
      h.max_ = max;
    }
    return h;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  bool empty() const noexcept { return count_ == 0; }
  /// Exact extrema; 0 when empty (never a sentinel).
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_seen_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value v such that >= q of recorded samples are <= v, up to bucket
  /// resolution (<= 2x).  q outside (0,1] is clamped; 0 when empty.
  std::uint64_t quantile(double q) const noexcept;
  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p90() const noexcept { return quantile(0.90); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }

  std::span<const std::uint64_t, kBuckets> buckets() const noexcept {
    return buckets_;
  }

  Histogram& operator+=(const Histogram& o) noexcept;
  friend bool operator==(const Histogram&, const Histogram&) = default;

  /// "n=12 mean=340 p50=256 p90=2047 p99=4095 max=3891" (values in the
  /// caller's unit; empty histograms render all zeros).
  std::string summary() const;

  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  ///  "p99":..} as one JSON object on `w` (caller provides the key).
  void write_json(JsonWriter& w) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_seen_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace dapsp::obs
