file(REMOVE_RECURSE
  "libdapsp_bench_harness.a"
)
