// Deterministic fault injection for the CONGEST engine.
//
// The paper's theorems assume flawless synchronous rounds; production
// networks drop, duplicate, delay, and crash.  A `FaultPlan` is a seeded,
// declarative description of such adversity:
//   * per-message drop / duplication with seeded probability,
//   * delivery delay by k rounds through a per-link reorder buffer,
//   * crash-stop nodes at a scheduled round (optionally revived later),
//   * per-link bandwidth caps (B deliveries per round, overflow queued).
//
// Everything is bit-reproducible from the plan's single seed: every fate
// decision is a counter-based hash of (seed, round, link slot, message
// index), never a shared RNG stream, so outcomes are identical across
// thread counts and across the sparse/dense schedulers (tested).  A null or
// all-zero plan costs nothing: the engine only instantiates the fault plane
// when `FaultPlan::enabled()` is true, and the fault-free delivery path is
// byte-for-byte the pre-fault code.
//
// Semantics (all at round granularity, matching the engine's send -> deliver
// -> receive structure):
//   * Drop: the message vanishes; the send is still counted in RunStats
//     (the sender paid for it), the loss is counted in RunStats::faults.
//   * Duplicate: one extra copy is injected on the same link; each copy
//     draws its own delay.
//   * Delay k: the copy is delivered at the end of round r+k instead of r.
//     Later traffic on the link may overtake it (reorder buffer, not a
//     FIFO stall).
//   * Bandwidth B: at most B messages cross a directed link per round;
//     eligible overflow stays queued in (ready round, admission order)
//     order.  B = 0 means unlimited.
//   * Crash-stop at round c: from round c the node runs no phases, sends
//     nothing, and every message delivered to it is discarded.  State is
//     frozen, not lost: an optional revive round brings the node back with
//     its pre-crash protocol state (messages lost while down stay lost).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "congest/message.hpp"
#include "congest/metrics.hpp"

namespace dapsp::congest {

struct FaultPlan {
  static constexpr Round kNever = std::numeric_limits<Round>::max();

  /// One crash-stop interval: the node is down in rounds [at, revive).
  struct Crash {
    NodeId node = 0;
    Round at = 0;
    Round revive = kNever;

    friend bool operator==(const Crash&, const Crash&) = default;
  };

  std::uint64_t seed = 0xfa1175eedULL;
  double drop_prob = 0.0;   ///< per message
  double dup_prob = 0.0;    ///< per surviving message
  double delay_prob = 0.0;  ///< per delivered copy
  Round max_delay = 1;      ///< delays drawn uniformly from [1, max_delay]
  std::uint64_t link_bandwidth = 0;  ///< deliveries per link per round; 0 = off
  std::vector<Crash> crashes;

  /// True when any fault is actually configured; an all-zero plan is
  /// indistinguishable from no plan (the engine skips the fault plane).
  bool enabled() const noexcept;
  bool has_crashes() const noexcept { return !crashes.empty(); }

  /// Throws std::invalid_argument on out-of-range probabilities, zero
  /// max_delay with a positive delay probability, or overlapping / inverted
  /// crash intervals for one node.
  void validate() const;

  /// Parses the CLI spec grammar (see docs/TESTING.md):
  ///   "drop=P,dup=P,delay=P:K,bw=B,crash=NODE@AT[..REVIVE],seed=S"
  /// Fields are comma-separated, each optional, crash repeatable; K (the max
  /// delay) defaults to 1, a crash without ..REVIVE never revives.  Throws
  /// std::invalid_argument with a pointed message on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Round-trips through parse(): a canonical spec string for the plan.
  std::string spec() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Per-engine fault machinery: owns the pending (delayed / over-bandwidth)
/// message buffers and the per-round fault counters.  All calls happen on
/// the engine's single-threaded delivery path; fate decisions are pure
/// functions of (plan seed, round, link slot, message index), so no state
/// here influences randomness.
class FaultPlane {
 public:
  /// `link_from[s]` / `link_target[s]` give the endpoints of directed link
  /// slot s (the engine's CSR numbering).  Throws std::invalid_argument when
  /// the plan references nodes outside [0, n).
  FaultPlane(const FaultPlan& plan, NodeId nodes,
             std::vector<NodeId> link_from, std::vector<NodeId> link_target);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// True when node v executes no phases in round r.
  bool node_down(NodeId v, Round r) const noexcept;
  /// True when node v is down in round r and will never revive (treated as
  /// quiescent by termination detection; it can never act again).
  bool down_forever(NodeId v, Round r) const noexcept;
  /// The round node v comes back up (FaultPlan::kNever when it never does).
  /// Only meaningful while node_down(v, .) holds; the sparse scheduler parks
  /// a down node's wake here.
  Round revive_round(NodeId v) const noexcept { return revive_at_[v]; }

  /// Resets the per-round counters; call once per engine round before
  /// admit/release.
  void begin_round();

  /// Feeds one link's batch of messages sent in round r (contiguous, in
  /// send order) through drop/duplicate/delay and into the pending buffer.
  void admit(Round r, std::uint32_t slot, const Message* msgs,
             std::uint32_t count);

  /// Delivers every pending message due in round r: appends envelopes to
  /// `inbox[target]` (clearing each target's inbox on first touch via
  /// `inbox_mark`) and records touched receivers in `receivers`.  Messages
  /// to down nodes are discarded and counted.  Iterates links in ascending
  /// slot order, so each receiver's inbox is (sender ascending, then ready
  /// round, then admission order) -- deterministic for any thread count.
  void release(Round r, std::vector<std::vector<Envelope>>& inbox,
               std::vector<std::uint8_t>& inbox_mark,
               std::vector<NodeId>& receivers);

  /// Messages still buffered for a future (or bandwidth-starved) delivery.
  bool has_pending() const noexcept { return pending_total_ > 0; }
  /// Earliest round a pending message becomes deliverable; kNeverSends when
  /// nothing is pending.  The sparse scheduler must not fast-forward past
  /// this round.
  Round next_due_round() const noexcept;

  /// Fault counters for the round between the last begin_round() and now.
  const FaultStats& round_stats() const noexcept { return round_; }

 private:
  struct Frame {
    Message msg;
    Round ready = 0;        ///< delivery becomes possible at end of this round
    std::uint64_t seq = 0;  ///< per-link admission order (FIFO tie-break)
    bool deferred = false;  ///< already counted as bandwidth-deferred
  };
  /// Min-heap on (ready, seq) stored per link; empty for idle links.
  struct LinkQueue {
    std::vector<Frame> frames;
    std::uint64_t next_seq = 0;
  };

  void push_frame(std::uint32_t slot, const Message& m, Round ready);

  FaultPlan plan_;
  std::vector<NodeId> link_from_;
  std::vector<NodeId> link_target_;
  /// Crash schedule flattened per node (one interval per node; validate()
  /// rejects overlaps, later intervals for the same node are merged there).
  std::vector<Round> crash_at_;
  std::vector<Round> revive_at_;
  std::vector<LinkQueue> queues_;
  std::vector<std::uint32_t> active_slots_;  ///< non-empty queues, kept sorted
  std::vector<std::uint8_t> active_mark_;
  std::size_t pending_total_ = 0;
  FaultStats round_;
};

}  // namespace dapsp::congest
