// Tests for (1+eps)-approximate APSP with zero-weight edges (Theorem I.5).
#include <gtest/gtest.h>

#include "core/approx_apsp.hpp"
#include "graph/generators.hpp"
#include "seq/dijkstra.hpp"

namespace dapsp::core {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;

void check_ratio(const Graph& g, const ApproxApspResult& res, double eps) {
  const auto exact = seq::apsp(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto d = exact[s][v];
      const auto est = res.dist[s][v];
      if (d == kInfDist) {
        EXPECT_EQ(est, kInfDist) << s << "->" << v;
        continue;
      }
      ASSERT_NE(est, kInfDist) << s << "->" << v;
      EXPECT_GE(est, d) << s << "->" << v;  // never under-estimates
      if (d == 0) {
        EXPECT_EQ(est, 0) << s << "->" << v;  // zero pairs are exact
      } else {
        EXPECT_LE(static_cast<double>(est),
                  (1.0 + eps) * static_cast<double>(d))
            << s << "->" << v;
      }
    }
  }
}

TEST(ApproxApsp, ZeroHeavySweep) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::erdos_renyi(14, 0.25, {0, 6, 0.4}, 4000 + seed,
                                       seed % 2 == 0);
    ApproxApspParams p;
    p.eps = 0.5;
    const auto res = approx_apsp(g, p);
    check_ratio(g, res, p.eps);
    EXPECT_GT(res.scales, 0u);
  }
}

TEST(ApproxApsp, TightEps) {
  const Graph g = graph::erdos_renyi(16, 0.2, {1, 9, 0.2}, 4100);
  ApproxApspParams p;
  p.eps = 0.25;
  const auto res = approx_apsp(g, p);
  check_ratio(g, res, p.eps);
}

TEST(ApproxApsp, LooseEpsUsesFewerRounds) {
  const Graph g = graph::erdos_renyi(16, 0.2, {1, 9, 0.2}, 4200);
  ApproxApspParams tight;
  tight.eps = 0.2;
  ApproxApspParams loose;
  loose.eps = 1.0;
  const auto rt = approx_apsp(g, tight);
  const auto rl = approx_apsp(g, loose);
  check_ratio(g, rt, tight.eps);
  check_ratio(g, rl, loose.eps);
  EXPECT_LT(rl.stats.rounds, rt.stats.rounds);
}

TEST(ApproxApsp, AllZeroGraphIsExact) {
  const Graph g = graph::erdos_renyi(12, 0.3, {0, 0, 0.0}, 4300);
  ApproxApspParams p;
  p.eps = 0.5;
  const auto res = approx_apsp(g, p);
  check_ratio(g, res, p.eps);
}

TEST(ApproxApsp, DirectedGraph) {
  const Graph g = graph::erdos_renyi(14, 0.25, {0, 5, 0.3}, 4400,
                                     /*directed=*/true);
  ApproxApspParams p;
  p.eps = 0.5;
  const auto res = approx_apsp(g, p);
  check_ratio(g, res, p.eps);
}

TEST(ApproxApsp, WithinTheoremBound) {
  const Graph g = graph::erdos_renyi(16, 0.2, {0, 7, 0.3}, 4500);
  ApproxApspParams p;
  p.eps = 0.5;
  const auto res = approx_apsp(g, p);
  check_ratio(g, res, p.eps);
  // Measured rounds fit the implementation's explicit budget; the paper's
  // asymptotic O((n/eps^2) log n) form is reported for comparison (constant
  // factors make it incomparable at n = 16).
  EXPECT_LE(res.stats.rounds, res.implementation_bound);
  EXPECT_GT(res.paper_bound, 0u);
}

TEST(ApproxApsp, RejectsNonPositiveEps) {
  const Graph g = graph::path(4, {1, 1, 0.0}, 4600);
  ApproxApspParams p;
  p.eps = 0.0;
  EXPECT_THROW(approx_apsp(g, p), std::logic_error);
}

}  // namespace
}  // namespace dapsp::core
