// Plain-text edge-list serialization so examples can load/save workloads.
//
// Format:
//   line 1: "dapsp <directed|undirected> <n> <m>"
//   then m lines: "<u> <v> <w>"
// Undirected graphs list each edge once.  '#' starts a comment line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dapsp::graph {

void write_graph(std::ostream& os, const Graph& g);
Graph read_graph(std::istream& is);

void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

/// Graphviz DOT export of the graph (edge labels = weights).
void write_dot(std::ostream& os, const Graph& g);

/// Graphviz DOT export of a rooted tree given parent pointers
/// (parent[v] == kNoNode marks the root / non-members).
void write_tree_dot(std::ostream& os, const Graph& g,
                    const std::vector<NodeId>& parent, NodeId root);

}  // namespace dapsp::graph
