# Empty dependencies file for bench_thm23_blocker_apsp.
# This may be replaced when dependencies are built.
