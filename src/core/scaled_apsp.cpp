#include "core/scaled_apsp.hpp"

#include <algorithm>
#include <optional>

#include "congest/multiplex.hpp"
#include "util/int_math.hpp"

namespace dapsp::core {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Protocol;
using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;

namespace {

constexpr std::uint32_t kTagPair = 21;  // {d, l}

/// Single-source Algorithm 2, self-contained so it can be instantiated once
/// per source behind the multiplexer.  (The standalone driver in
/// short_range.cpp keeps its own multi-source variant; this instance is the
/// paper's literal two-field protocol.)
class ShortRangeInstance final : public Protocol {
 public:
  ShortRangeInstance(const Graph& g, NodeId self, NodeId source,
                     std::uint32_t h, const KappaKernel& kernel)
      : self_(self), source_(source), h_(h), kernel_(&kernel) {
    for (const auto& e : g.in_edges(self)) {
      in_weight_.emplace_back(e.from, e.weight);
    }
    in_weight_.erase(
        std::unique(in_weight_.begin(), in_weight_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        in_weight_.end());
  }

  void init(Context& ctx) override {
    if (self_ == source_) {
      d_ = 0;
      l_ = 0;
      dirty_ = true;
      emit_due(ctx, 0);
    }
  }

  void send_phase(Context& ctx) override { emit_due(ctx, ctx.round()); }

  void receive_phase(Context& ctx) override {
    for (const Envelope& env : ctx.inbox()) {
      if (env.msg.tag != kTagPair) continue;
      const auto it = std::lower_bound(
          in_weight_.begin(), in_weight_.end(), env.from,
          [](const auto& p, NodeId v) { return p.first < v; });
      if (it == in_weight_.end() || it->first != env.from) continue;
      const Weight d = env.msg.f[0] + it->second;
      const auto l = static_cast<std::uint32_t>(env.msg.f[1]) + 1;
      if (l > h_) continue;
      if (d < d_ || (d == d_ && l < l_)) {
        d_ = d;
        l_ = l;
        dirty_ = true;
      }
    }
  }

  bool quiescent() const override { return !dirty_; }

  Weight dist() const { return d_; }
  std::uint32_t hops() const { return l_; }

 private:
  void emit_due(Context& ctx, congest::Round r) {
    if (!dirty_) return;
    const Key key{d_, l_};
    if (kernel_->ceil_kappa(key) > r) return;  // scheduled later
    dirty_ = false;
    ctx.broadcast(Message(kTagPair, {d_, static_cast<std::int64_t>(l_)}));
  }

  NodeId self_;
  NodeId source_;
  std::uint32_t h_;
  const KappaKernel* kernel_;  // shared across all n^2 instances (same gamma)
  std::vector<std::pair<NodeId, Weight>> in_weight_;
  Weight d_ = kInfDist;
  std::uint32_t l_ = 0;
  bool dirty_ = false;
};

}  // namespace

ScaledApspResult scaled_hhop_apsp(const Graph& g, ScaledApspParams params) {
  util::check(params.h >= 1, "scaled_hhop_apsp: need h >= 1");
  if (params.gamma.num == 0 && params.gamma.den == 0) {
    params.gamma = GammaSq{params.h, 1};  // Algorithm 2's sqrt(h)
  }
  const NodeId n = g.node_count();

  const std::uint64_t dilation =
      util::ceil_mul_sqrt(static_cast<std::uint64_t>(params.delta),
                          params.gamma.num, params.gamma.den) +
      params.h + 2;
  const std::uint64_t per_instance_congestion =
      params.gamma.num == 0
          ? params.h + 1
          : util::ceil_mul_sqrt(params.h, params.gamma.den, params.gamma.num) +
                1;
  ScaledApspResult res;
  res.theoretical_bound = dilation + n * per_instance_congestion + 4;
  res.dist.assign(n, std::vector<Weight>(n, kInfDist));
  res.hops.assign(n, std::vector<std::uint32_t>(n, 0));

  // Engine budget: FIFO queueing delays cascade (a late-fired message can
  // delay downstream schedules again), so the clean dilation+n*congestion
  // form is a comparison value, not a hard cap; give the run 2x slack.
  const congest::Round budget = 2 * res.theoretical_bound + 8;
  const KappaKernel kernel(params.gamma);  // outlives every instance
  const congest::MultiplexResult mux = congest::run_multiplexed(
      g, n,
      [&](std::size_t instance, NodeId node) -> std::unique_ptr<Protocol> {
        return std::make_unique<ShortRangeInstance>(
            g, node, static_cast<NodeId>(instance), params.h, kernel);
      },
      budget,
      [&](NodeId v, congest::MultiplexProtocol& node) {
        for (NodeId s = 0; s < n; ++s) {
          const auto& inst =
              static_cast<const ShortRangeInstance&>(node.instance(s));
          res.dist[s][v] = inst.dist();
          res.hops[s][v] = inst.hops();
        }
      });
  res.stats = mux.stats;
  res.max_queue_depth = mux.max_queue_depth;
  return res;
}

}  // namespace dapsp::core
