file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_pipelined_sweep.dir/bench_thm1_pipelined_sweep.cpp.o"
  "CMakeFiles/bench_thm1_pipelined_sweep.dir/bench_thm1_pipelined_sweep.cpp.o.d"
  "bench_thm1_pipelined_sweep"
  "bench_thm1_pipelined_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_pipelined_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
