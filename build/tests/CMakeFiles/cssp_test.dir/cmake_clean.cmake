file(REMOVE_RECURSE
  "CMakeFiles/cssp_test.dir/cssp_test.cpp.o"
  "CMakeFiles/cssp_test.dir/cssp_test.cpp.o.d"
  "cssp_test"
  "cssp_test.pdb"
  "cssp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
