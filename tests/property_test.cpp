// Property-based differential harness: every solver against sequential
// Dijkstra, across seeded graph families.
//
// Each (family, solver) pair sweeps several sizes x seeds, so the suite
// covers well over a hundred generated cases.  For exact solvers the
// properties are strict equality of every distance plus a full validity
// check of every reconstructed path (each hop is a real edge, the weight
// sum equals the reported distance); for the approximate solver the
// distance must land in the [d, (1+eps)d] sandwich and zero-distance pairs
// must be exact.  On failure the offending graph is printed as a
// `read_graph` payload, so any red case can be replayed with
// `dapsp_cli --graph FILE` without re-deriving the generator arguments.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "query/types.hpp"
#include "seq/centrality.hpp"
#include "seq/constrained.hpp"
#include "seq/dijkstra.hpp"
#include "seq/yen.hpp"
#include "service/oracle.hpp"
#include "service/query_service.hpp"

namespace dapsp::service {
namespace {

using graph::Graph;
using graph::kInfDist;
using graph::NodeId;
using graph::Weight;

enum class Family { kPath, kStar, kGrid, kRandom, kZeroCycle };

const char* family_name(Family f) {
  switch (f) {
    case Family::kPath: return "path";
    case Family::kStar: return "star";
    case Family::kGrid: return "grid";
    case Family::kRandom: return "random";
    case Family::kZeroCycle: return "zero_cycle";
  }
  return "?";
}

/// One generated instance.  `n` is a size knob, not always the exact node
/// count (grid rounds to rows x cols).
Graph make_family(Family f, NodeId n, std::uint64_t seed) {
  switch (f) {
    case Family::kPath:
      return graph::path(n, {0, 6, 0.2}, seed, /*directed=*/false);
    case Family::kStar:
      return graph::star(n, {1, 9, 0.0}, seed);
    case Family::kGrid:
      return graph::grid(3, (n + 2) / 3, {0, 4, 0.1}, seed);
    case Family::kRandom:
      return graph::erdos_renyi(n, 0.35, {0, 5, 0.25}, seed,
                                /*directed=*/(seed % 2) == 1);
    case Family::kZeroCycle:
      // Zero-heavy cycle: long zero-weight plateaus stress tie-breaking and
      // hop accounting in every solver.
      return graph::cycle(n, {0, 1, 0.7}, seed, /*directed=*/false);
  }
  throw std::logic_error("unknown family");
}

/// The failing graph, replayable: paste into a file and run
/// `dapsp_cli <cmd> --graph FILE` or feed to graph::read_graph.
std::string replay_payload(const Graph& g, const std::string& where) {
  std::ostringstream os;
  os << where << "; replay payload (graph::read_graph / --graph):\n";
  graph::write_graph(os, g);
  return os.str();
}

/// Weight of the cheapest u->v arc; kInfDist when absent.
Weight arc_weight(const Graph& g, NodeId u, NodeId v) {
  Weight best = kInfDist;
  for (const auto& e : g.out_edges(u)) {
    if (e.to == v && e.weight < best) best = e.weight;
  }
  return best;
}

/// Checks one reconstructed path: endpoints, real edges, weight sum.
void check_path(const Graph& g, const DistanceOracle& o, NodeId u, NodeId v,
                Weight want, const std::string& ctx) {
  const auto p = o.path(u, v);
  if (want == kInfDist) {
    EXPECT_FALSE(p.has_value()) << ctx;
    return;
  }
  ASSERT_TRUE(p.has_value()) << ctx;
  ASSERT_GE(p->size(), 1u) << ctx;
  EXPECT_EQ(p->front(), u) << ctx;
  EXPECT_EQ(p->back(), v) << ctx;
  Weight sum = 0;
  for (std::size_t i = 0; i + 1 < p->size(); ++i) {
    const Weight w = arc_weight(g, (*p)[i], (*p)[i + 1]);
    ASSERT_NE(w, kInfDist)
        << ctx << ": path hop " << (*p)[i] << "->" << (*p)[i + 1]
        << " is not an edge";
    sum += w;
  }
  EXPECT_EQ(sum, want) << ctx << ": path weight sum != distance";
}

struct Case {
  Family family;
  Solver solver;
};

class SolverProperty : public ::testing::TestWithParam<Case> {};

TEST_P(SolverProperty, MatchesDijkstraOnSeededSweep) {
  const Case& c = GetParam();
  OracleBuildOptions opts;
  opts.solver = c.solver;
  opts.eps = 0.5;
  std::uint64_t cases = 0;
  for (NodeId n = 5; n <= 13; n += 4) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Graph g = make_family(c.family, n, seed * 37 + n);
      const DistanceOracle o = build_oracle(g, opts);
      ++cases;
      std::ostringstream tag;
      tag << family_name(c.family) << "/" << solver_name(c.solver)
          << " n=" << n << " seed=" << seed;
      const std::string ctx = replay_payload(g, tag.str());
      const NodeId nn = g.node_count();
      ASSERT_EQ(o.node_count(), nn) << ctx;
      for (NodeId s = 0; s < nn; ++s) {
        const auto dj = seq::dijkstra(g, s);
        for (NodeId v = 0; v < nn; ++v) {
          const Weight want = dj.dist[v];
          const Weight got = o.dist(s, v);
          if (o.exact()) {
            ASSERT_EQ(got, want) << ctx << " pair " << s << "->" << v;
          } else if (want == kInfDist) {
            ASSERT_EQ(got, kInfDist) << ctx << " pair " << s << "->" << v;
          } else {
            ASSERT_GE(got, want) << ctx << " pair " << s << "->" << v;
            if (want == 0) {
              ASSERT_EQ(got, 0) << ctx << " pair " << s << "->" << v;
            } else {
              ASSERT_LE(static_cast<double>(got),
                        (1.0 + opts.eps) * static_cast<double>(want))
                  << ctx << " pair " << s << "->" << v;
            }
          }
          if (o.has_paths()) {
            check_path(g, o, s, v, want,
                       ctx + " path " + std::to_string(s) + "->" +
                           std::to_string(v));
          }
        }
      }
    }
  }
  // 3 sizes x 4 seeds per (family, solver); the full suite of 25 params
  // exercises 300 generated graphs.
  EXPECT_GE(cases, 12u);
}

std::vector<Case> all_cases() {
  std::vector<Case> out;
  for (const Family f : {Family::kPath, Family::kStar, Family::kGrid,
                         Family::kRandom, Family::kZeroCycle}) {
    for (const Solver s : {Solver::kPipelined, Solver::kBlocker,
                           Solver::kScaled, Solver::kApprox,
                           Solver::kReference}) {
      out.push_back({f, s});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Families, SolverProperty, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::string(family_name(param_info.param.family)) + "_" +
             solver_name(param_info.param.solver);
    });

// ---------------------------------------------------------------------------
// Query-differential dimension: the closure-backed analytics engine
// (query::Analytics, exercised through the full QueryService) against the
// sequential references in src/seq/, across graph families including RMAT.
// All comparisons are exact (operator== on the canonical answers) except
// betweenness, whose floating-point accumulation gets a tight tolerance.
// Every returned route is additionally re-walked edge-by-edge against the
// graph, so a bug that fooled both sides identically would still have to
// produce real paths of the claimed weight to pass.

enum class QFamily { kPath, kGrid, kRandom, kZeroCycle, kRmat };

const char* qfamily_name(QFamily f) {
  switch (f) {
    case QFamily::kPath: return "path";
    case QFamily::kGrid: return "grid";
    case QFamily::kRandom: return "random";
    case QFamily::kZeroCycle: return "zero_cycle";
    case QFamily::kRmat: return "rmat";
  }
  return "?";
}

Graph make_qfamily(QFamily f, NodeId n, std::uint64_t seed) {
  switch (f) {
    case QFamily::kPath:
      return graph::path(n, {0, 6, 0.2}, seed, /*directed=*/false);
    case QFamily::kGrid:
      return graph::grid(3, (n + 2) / 3, {0, 4, 0.1}, seed);
    case QFamily::kRandom:
      return graph::erdos_renyi(n, 0.35, {0, 5, 0.25}, seed,
                                /*directed=*/(seed % 2) == 1);
    case QFamily::kZeroCycle:
      return graph::cycle(n, {0, 1, 0.7}, seed, /*directed=*/false);
    case QFamily::kRmat:
      // scale 3..5 (8..32 nodes) keeps the n^2 reference sweeps fast while
      // still exercising the skewed-degree regime the generator exists for.
      return graph::rmat(/*scale=*/2 + n / 4, /*edgefactor=*/3, {0, 7, 0.1},
                         seed, /*directed=*/false);
  }
  throw std::logic_error("unknown family");
}

/// Re-walks one route: endpoints, every hop a real arc, weight sum, no
/// repeated node (routes are loopless by contract).
void check_route(const Graph& g, NodeId u, NodeId v, const query::Route& rt,
                 const std::string& ctx) {
  ASSERT_GE(rt.nodes.size(), 1u) << ctx;
  EXPECT_EQ(rt.nodes.front(), u) << ctx;
  EXPECT_EQ(rt.nodes.back(), v) << ctx;
  std::set<NodeId> seen;
  Weight sum = 0;
  for (std::size_t i = 0; i < rt.nodes.size(); ++i) {
    EXPECT_TRUE(seen.insert(rt.nodes[i]).second)
        << ctx << ": node " << rt.nodes[i] << " repeats (route has a loop)";
    if (i + 1 == rt.nodes.size()) break;
    const Weight w = arc_weight(g, rt.nodes[i], rt.nodes[i + 1]);
    ASSERT_NE(w, kInfDist) << ctx << ": hop " << rt.nodes[i] << "->"
                           << rt.nodes[i + 1] << " is not an edge";
    sum += w;
  }
  EXPECT_EQ(sum, rt.weight) << ctx << ": weight sum != reported weight";
}

/// Checks a route against the constraints it was answered under.
void check_constraints(const query::Route& rt, const query::RouteConstraints& c,
                       const std::string& ctx) {
  if (c.max_hops != 0) EXPECT_LE(rt.hops(), c.max_hops) << ctx;
  for (const NodeId x : c.avoid_nodes) {
    for (const NodeId y : rt.nodes) EXPECT_NE(x, y) << ctx;
  }
  for (const auto& [a, b] : c.avoid_edges) {
    for (std::size_t i = 0; i + 1 < rt.nodes.size(); ++i) {
      const bool fwd = rt.nodes[i] == a && rt.nodes[i + 1] == b;
      const bool rev = rt.nodes[i] == b && rt.nodes[i + 1] == a;
      EXPECT_FALSE(fwd || rev) << ctx << ": route uses avoided edge " << a
                               << "-" << b;
    }
  }
}

struct QueryCase {
  QFamily family;
  Solver solver;
};

class QueryDifferential : public ::testing::TestWithParam<QueryCase> {};

TEST_P(QueryDifferential, MatchesSequentialReferences) {
  const QueryCase& c = GetParam();
  OracleBuildOptions opts;
  opts.solver = c.solver;
  std::uint64_t cases = 0;
  for (NodeId n = 6; n <= 14; n += 4) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Graph g = make_qfamily(c.family, n, seed * 41 + n);
      ++cases;
      std::ostringstream tag;
      tag << qfamily_name(c.family) << "/" << solver_name(c.solver)
          << " n=" << n << " seed=" << seed;
      const std::string ctx = replay_payload(g, tag.str());

      QueryService svc(build_oracle(g, opts));
      svc.enable_analytics(std::make_shared<const Graph>(g));
      ASSERT_TRUE(svc.snapshot()->exact()) << ctx;
      ASSERT_TRUE(svc.snapshot()->has_paths()) << ctx;
      const NodeId nn = g.node_count();
      // The scaled solver is exact on distances but its closure breaks
      // weight ties in scaled order, not the canonical (hops, min-parent)
      // order, so route *node sequences* may legitimately differ from the
      // references on tied graphs.  Weights are still uniquely determined
      // (route_less is weight-primary), so for that solver the comparison
      // drops to weight equality; the re-walk and constraint checks keep
      // the routes honest either way.
      const bool canonical = c.solver != Solver::kScaled;

      // Whole-graph report: exact equality with the reference.
      {
        Query q;
        q.type = QueryType::kReport;
        const QueryResult r = svc.query(q);
        ASSERT_TRUE(r.ok) << ctx << " " << r.error;
        EXPECT_TRUE(r.report == seq::graph_report(g)) << ctx << ": report";
      }

      // Betweenness, full and sampled: same sources by construction, scores
      // equal up to floating-point accumulation.
      for (const std::uint32_t samples : {0u, static_cast<std::uint32_t>(
                                                  nn / 2)}) {
        Query q;
        q.type = QueryType::kBetweenness;
        q.samples = samples;
        const QueryResult r = svc.query(q);
        ASSERT_TRUE(r.ok) << ctx << " " << r.error;
        const std::vector<double> want =
            seq::betweenness(g, query::betweenness_sources(nn, samples));
        ASSERT_EQ(r.centrality.size(), want.size()) << ctx;
        for (NodeId i = 0; i < nn; ++i) {
          EXPECT_NEAR(r.centrality[i], want[i],
                      1e-9 * std::max(1.0, want[i]))
              << ctx << ": bc[" << i << "] samples=" << samples;
        }
      }

      // k shortest paths: exact route-list equality, every route re-walked.
      for (const NodeId u : {NodeId{0}, nn / 2, nn - 1}) {
        for (NodeId v = 0; v < nn; ++v) {
          Query q;
          q.type = QueryType::kKPaths;
          q.u = u;
          q.v = v;
          q.k = 3;
          const QueryResult r = svc.query(q);
          ASSERT_TRUE(r.ok) << ctx << " " << r.error;
          const auto want = seq::k_shortest_paths(g, u, v, 3);
          const std::string at =
              ctx + " kpath " + std::to_string(u) + "->" + std::to_string(v);
          ASSERT_EQ(r.routes.size(), want.size()) << at;
          for (std::size_t i = 0; i < want.size(); ++i) {
            if (canonical) {
              ASSERT_TRUE(r.routes[i] == want[i])
                  << at << ": route " << i << " differs";
            } else {
              ASSERT_EQ(r.routes[i].weight, want[i].weight)
                  << at << ": route " << i << " weight differs";
            }
            check_route(g, u, v, r.routes[i], at);
          }
        }
      }

      // Constrained routes: several constraint shapes per pair, exact
      // optional<Route> equality plus constraint-satisfaction re-walks.
      for (const NodeId u : {NodeId{0}, nn - 1}) {
        for (NodeId v = 0; v < nn; ++v) {
          std::vector<query::RouteConstraints> variants(3);
          variants[1].max_hops = 2;
          variants[2].avoid_nodes = {static_cast<NodeId>((u + v) / 2)};
          variants[2].avoid_edges = {
              {u, static_cast<NodeId>((v + 1) % nn)}};
          for (std::size_t ci = 0; ci < variants.size(); ++ci) {
            Query q;
            q.type = QueryType::kRoute;
            q.u = u;
            q.v = v;
            q.constraints = variants[ci];
            const QueryResult r = svc.query(q);
            ASSERT_TRUE(r.ok) << ctx << " " << r.error;
            const auto want = seq::constrained_route(g, u, v, variants[ci]);
            const std::string at = ctx + " route " + std::to_string(u) +
                                   "->" + std::to_string(v) + " variant " +
                                   std::to_string(ci);
            ASSERT_EQ(r.feasible, want.has_value()) << at;
            if (want) {
              ASSERT_EQ(r.routes.size(), 1u) << at;
              if (canonical) {
                ASSERT_TRUE(r.routes.front() == *want) << at;
              } else {
                ASSERT_EQ(r.routes.front().weight, want->weight) << at;
              }
              check_route(g, u, v, r.routes.front(), at);
              check_constraints(r.routes.front(), variants[ci], at);
            }
          }
        }
      }
    }
  }
  // 3 sizes x 4 seeds per (family, solver); 20 params -> 240 graphs.
  EXPECT_GE(cases, 12u);
}

std::vector<QueryCase> all_query_cases() {
  std::vector<QueryCase> out;
  for (const QFamily f : {QFamily::kPath, QFamily::kGrid, QFamily::kRandom,
                          QFamily::kZeroCycle, QFamily::kRmat}) {
    // The four exact path-capable solvers; approx is excluded because the
    // analytics families require exact distances and a next-hop table.
    for (const Solver s : {Solver::kPipelined, Solver::kBlocker,
                           Solver::kScaled, Solver::kReference}) {
      out.push_back({f, s});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Families, QueryDifferential, ::testing::ValuesIn(all_query_cases()),
    [](const ::testing::TestParamInfo<QueryCase>& param_info) {
      return std::string(qfamily_name(param_info.param.family)) + "_" +
             solver_name(param_info.param.solver);
    });

TEST(SolverPropertyReplay, PayloadRoundTrips) {
  // The failure message's replay payload must parse back to the same graph,
  // otherwise a red case cannot actually be replayed.
  const Graph g = make_family(Family::kRandom, 9, 42);
  std::ostringstream os;
  graph::write_graph(os, g);
  std::istringstream is(os.str());
  const Graph back = graph::read_graph(is);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto a = g.out_edges(v);
    const auto b = back.out_edges(v);
    ASSERT_EQ(a.size(), b.size()) << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to) << v;
      EXPECT_EQ(a[i].weight, b[i].weight) << v;
    }
  }
}

}  // namespace
}  // namespace dapsp::service
