#include "seq/dijkstra.hpp"

#include <queue>
#include <tuple>

namespace dapsp::seq {

using graph::Graph;
using graph::kInfDist;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

namespace {

/// Priority-queue entry ordered by (dist, hops, node) so the settled
/// labels realize the paper's (d, l) tie-breaking deterministically.
struct QEntry {
  Weight dist;
  std::uint32_t hops;
  NodeId via;   // parent candidate
  NodeId node;

  bool operator>(const QEntry& o) const {
    return std::tie(dist, hops, via, node) >
           std::tie(o.dist, o.hops, o.via, o.node);
  }
};

template <typename EdgeFn>
SsspResult run(const Graph& g, NodeId source, EdgeFn&& edges_of) {
  const NodeId n = g.node_count();
  SsspResult r;
  r.dist.assign(n, kInfDist);
  r.hops.assign(n, 0);
  r.parent.assign(n, kNoNode);

  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  pq.push({0, 0, kNoNode, source});
  std::vector<bool> settled(n, false);

  while (!pq.empty()) {
    const QEntry top = pq.top();
    pq.pop();
    if (settled[top.node]) continue;
    settled[top.node] = true;
    r.dist[top.node] = top.dist;
    r.hops[top.node] = top.hops;
    r.parent[top.node] = top.via;
    for (const auto& [nbr, w] : edges_of(top.node)) {
      if (!settled[nbr]) {
        pq.push({top.dist + w, top.hops + 1, top.node, nbr});
      }
    }
  }
  return r;
}

}  // namespace

SsspResult dijkstra(const Graph& g, NodeId source) {
  return run(g, source, [&g](NodeId v) {
    std::vector<std::pair<NodeId, Weight>> out;
    out.reserve(g.out_edges(v).size());
    for (const auto& e : g.out_edges(v)) out.emplace_back(e.to, e.weight);
    return out;
  });
}

SsspResult dijkstra_reverse(const Graph& g, NodeId target) {
  return run(g, target, [&g](NodeId v) {
    std::vector<std::pair<NodeId, Weight>> out;
    out.reserve(g.in_edges(v).size());
    for (const auto& e : g.in_edges(v)) out.emplace_back(e.from, e.weight);
    return out;
  });
}

std::vector<std::vector<Weight>> apsp(const Graph& g) {
  std::vector<std::vector<Weight>> d;
  d.reserve(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    d.push_back(dijkstra(g, s).dist);
  }
  return d;
}

}  // namespace dapsp::seq
