// Microbenchmarks (google-benchmark) for the exact kappa arithmetic: the
// scalar GammaSq routines (always 128-bit) against the KappaKernel's hoisted
// u64 fast path and its batched span entry points.  Both sides are
// bit-identical (tests/key_test.cpp proves it exhaustively); the ratio here
// is the pure cost of re-deriving overflow bounds per call plus the 128-bit
// detour the kernel avoids.
//
// Two gamma regimes per benchmark:
//   paper   gamma^2 = k*h/Delta with small operands -- every element stays
//           on the kernel's u64 fast lane (the common solver regime)
//   huge    gamma^2 with ~2^31-scale terms -- distances near the fast-path
//           boundary, so the kernel mixes fast-lane and 128-bit fallback
// Wired into scripts/run_all.sh via the build/bench/bench_* glob; JSON lands
// in BENCH_bench_key_kernel.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/key.hpp"
#include "harness.hpp"

namespace {

using dapsp::core::GammaSq;
using dapsp::core::KappaKernel;
using dapsp::core::Key;

constexpr std::size_t kBatch = 4096;

GammaSq regime(std::int64_t which) {
  // 0: the paper's gamma for k=16 sources, h=256 hops, Delta=1000.
  // 1: numerator/denominator large enough that d values below push the
  //    squared products past 2^64 and force the exact 128-bit route.
  return which == 0 ? GammaSq::paper(16, 256, 1000)
                    : GammaSq{(1ull << 31) + 7, (1ull << 29) + 3};
}

std::vector<Key> make_keys(std::int64_t which) {
  // Deterministic splitmix-style stream; "huge" scales distances to straddle
  // the kernel's d_fast_/a_fast_ boundaries.
  std::vector<Key> keys(kBatch);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  const std::int64_t dmax = which == 0 ? 100000 : (1ll << 33);
  for (Key& k : keys) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    k.d = static_cast<std::int64_t>(z % static_cast<std::uint64_t>(dmax));
    k.l = static_cast<std::uint32_t>(z >> 56);
  }
  return keys;
}

void BM_CeilKappaScalarGamma(benchmark::State& state) {
  const GammaSq gamma = regime(state.range(0));
  const std::vector<Key> keys = make_keys(state.range(0));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (const Key& k : keys) acc += k.ceil_kappa(gamma);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CeilKappaScalarGamma)->Arg(0)->Arg(1);

void BM_CeilKappaKernel(benchmark::State& state) {
  const KappaKernel kernel(regime(state.range(0)));
  const std::vector<Key> keys = make_keys(state.range(0));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (const Key& k : keys) acc += kernel.ceil_kappa(k);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CeilKappaKernel)->Arg(0)->Arg(1);

void BM_CeilKappaKernelSpan(benchmark::State& state) {
  const KappaKernel kernel(regime(state.range(0)));
  const std::vector<Key> keys = make_keys(state.range(0));
  std::vector<std::uint64_t> out(keys.size());
  for (auto _ : state) {
    kernel.ceil_kappa_span(keys, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CeilKappaKernelSpan)->Arg(0)->Arg(1);

void BM_CompareScalarGamma(benchmark::State& state) {
  const GammaSq gamma = regime(state.range(0));
  const std::vector<Key> keys = make_keys(state.range(0));
  const Key probe = keys[kBatch / 2];
  std::int64_t acc = 0;
  for (auto _ : state) {
    for (const Key& k : keys) acc += k.compare(probe, gamma);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CompareScalarGamma)->Arg(0)->Arg(1);

void BM_CompareKernel(benchmark::State& state) {
  const KappaKernel kernel(regime(state.range(0)));
  const std::vector<Key> keys = make_keys(state.range(0));
  const Key probe = keys[kBatch / 2];
  std::int64_t acc = 0;
  for (auto _ : state) {
    for (const Key& k : keys) acc += kernel.compare(k, probe);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CompareKernel)->Arg(0)->Arg(1);

void BM_CompareKernelSpan(benchmark::State& state) {
  const KappaKernel kernel(regime(state.range(0)));
  const std::vector<Key> keys = make_keys(state.range(0));
  const Key probe = keys[kBatch / 2];
  std::vector<int> out(keys.size());
  for (auto _ : state) {
    kernel.compare_span(probe, keys, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CompareKernelSpan)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  dapsp::bench::banner(
      "KEY-KERNEL",
      "Exact kappa arithmetic: scalar GammaSq routines vs the KappaKernel "
      "fast path (Arg 0 = paper gamma, Arg 1 = overflow-boundary gamma).");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
